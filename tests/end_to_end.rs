//! Cross-crate integration tests through the facade: every machine runs
//! every workload class; accounting invariants hold everywhere.

use ballerino::sim::{run_machine, MachineKind, Width};
use ballerino::workloads::{workload, workload_names};

const KINDS: [MachineKind; 9] = [
    MachineKind::InOrder,
    MachineKind::OutOfOrder,
    MachineKind::OutOfOrderOldestFirst,
    MachineKind::Ces,
    MachineKind::CesMda,
    MachineKind::Casino,
    MachineKind::Fxa,
    MachineKind::Ballerino,
    MachineKind::Ballerino12,
];

#[test]
fn every_machine_commits_every_workload() {
    for wl in workload_names() {
        let t = workload(wl, 1_500, 3);
        for kind in KINDS {
            let r = run_machine(kind, Width::Eight, &t);
            assert_eq!(r.committed, t.len() as u64, "{kind:?} on {wl}");
            assert!(
                r.ipc() > 0.0 && r.ipc() <= 8.0,
                "{kind:?} on {wl}: {}",
                r.ipc()
            );
        }
    }
}

#[test]
fn committed_equals_timing_records_everywhere() {
    use ballerino_sim::stats::TIMING_CLASSES;
    for wl in ["hash_join", "gemm_blocked", "branchy_sort"] {
        let t = workload(wl, 3_000, 5);
        for kind in KINDS {
            let r = run_machine(kind, Width::Eight, &t);
            let recs: u64 = TIMING_CLASSES.iter().map(|&c| r.timing.count(c)).sum();
            assert_eq!(recs, r.committed, "{kind:?} on {wl}");
        }
    }
}

#[test]
fn issue_counts_match_commits_plus_squashed_work() {
    // Total issues >= commits (squashed μops may issue more than once
    // after refetch; every commit requires an issue).
    for wl in ["branchy_sort", "int_crunch"] {
        let t = workload(wl, 3_000, 5);
        for kind in [
            MachineKind::OutOfOrder,
            MachineKind::Ballerino,
            MachineKind::Ces,
        ] {
            let r = run_machine(kind, Width::Eight, &t);
            assert!(
                r.issue_breakdown.total() >= r.committed,
                "{kind:?} on {wl}: issued {} < committed {}",
                r.issue_breakdown.total(),
                r.committed
            );
        }
    }
}

#[test]
fn narrower_machines_are_never_faster_in_time() {
    let t = workload("mixed_media", 3_000, 9);
    for kind in [
        MachineKind::OutOfOrder,
        MachineKind::Ballerino,
        MachineKind::InOrder,
    ] {
        let w8 = run_machine(kind, Width::Eight, &t);
        let w2 = run_machine(kind, Width::Two, &t);
        assert!(
            w8.seconds() < w2.seconds(),
            "{kind:?}: 8-wide {}s vs 2-wide {}s",
            w8.seconds(),
            w2.seconds()
        );
    }
}

#[test]
fn energy_events_scale_with_work() {
    let small = workload("int_crunch", 1_000, 1);
    let large = workload("int_crunch", 4_000, 1);
    let rs = run_machine(MachineKind::Ballerino, Width::Eight, &small);
    let rl = run_machine(MachineKind::Ballerino, Width::Eight, &large);
    assert!(rl.energy.fetched_uops > 3 * rs.energy.fetched_uops);
    assert!(rl.energy.prf_writes > 2 * rs.energy.prf_writes);
    assert!(rl.energy.sched.queue_writes > 2 * rs.energy.sched.queue_writes);
}
