//! The paper's headline claims, asserted as *shape* properties on a
//! reduced suite (the full reproduction lives in the `fig*` binaries and
//! EXPERIMENTS.md).

use ballerino::energy::{DvfsLevel, EnergyModel};
use ballerino::sim::{run_machine, MachineKind, Width};
use ballerino::workloads::workload;
use ballerino_sim::stats::geomean;

const N: usize = 5_000;
/// A representative sub-suite: ILP-rich, latency-bound, MLP-bound,
/// branchy, and indirect-access behaviour.
const WLS: [&str; 6] = [
    "gemm_blocked",
    "int_crunch",
    "hash_join",
    "branchy_sort",
    "pointer_chase",
    "mixed_media",
];

fn geomean_speedup(kind: MachineKind) -> f64 {
    let mut v = Vec::new();
    for wl in WLS {
        let t = workload(wl, N, 42);
        let ino = run_machine(MachineKind::InOrder, Width::Eight, &t);
        let r = run_machine(kind, Width::Eight, &t);
        v.push(r.speedup_over(&ino));
    }
    geomean(&v)
}

#[test]
fn fig11_ordering_holds() {
    let casino = geomean_speedup(MachineKind::Casino);
    let ces = geomean_speedup(MachineKind::Ces);
    let ballerino = geomean_speedup(MachineKind::Ballerino);
    let b12 = geomean_speedup(MachineKind::Ballerino12);
    let ooo = geomean_speedup(MachineKind::OutOfOrder);

    assert!(ooo > 2.0, "OoO must be ≳2x InO, got {ooo:.2}");
    assert!(
        casino < ces,
        "CASINO {casino:.2} must trail CES {ces:.2} at 8-wide"
    );
    assert!(
        ces < ballerino,
        "CES {ces:.2} must trail Ballerino {ballerino:.2}"
    );
    assert!(
        ballerino <= b12 * 1.02,
        "Ballerino {ballerino:.2} ≤ Ballerino-12 {b12:.2}"
    );
    assert!(
        b12 > 0.95 * ooo,
        "Ballerino-12 {b12:.2} must be within ~5% of OoO {ooo:.2} (paper: 2%)"
    );
}

#[test]
fn fig13_steps_are_monotone() {
    let ces = geomean_speedup(MachineKind::Ces);
    let step2 = geomean_speedup(MachineKind::BallerinoStep2);
    let step3 = geomean_speedup(MachineKind::Ballerino);
    let ideal = geomean_speedup(MachineKind::BallerinoIdeal);
    assert!(step2 > 0.98 * ces, "Step2 {step2:.2} vs CES {ces:.2}");
    assert!(step3 > step2, "sharing must help: {step3:.2} vs {step2:.2}");
    assert!(
        ideal >= step3 * 0.995,
        "ideal can only help: {ideal:.2} vs {step3:.2}"
    );
}

#[test]
fn fig16_ballerino_is_more_efficient_than_ooo() {
    let mut effs = Vec::new();
    for wl in WLS {
        let t = workload(wl, N, 42);
        let ooo = run_machine(MachineKind::OutOfOrder, Width::Eight, &t);
        let bal = run_machine(MachineKind::Ballerino12, Width::Eight, &t);
        let edp_ooo = EnergyModel::new(ooo.sizes, DvfsLevel::L4).edp(&ooo.energy);
        let edp_bal = EnergyModel::new(bal.sizes, DvfsLevel::L4).edp(&bal.energy);
        effs.push(edp_ooo / edp_bal);
    }
    let g = geomean(&effs);
    assert!(
        g > 1.10,
        "Ballerino-12 efficiency must beat OoO by >10% (paper 20%), got {g:.2}"
    );
}

#[test]
fn casino_collapses_on_serialized_misses() {
    // §II-C: CASINO is not cache-miss tolerant; CES-style clustering is.
    let t = workload("pointer_chase", N, 42);
    let ino = run_machine(MachineKind::InOrder, Width::Eight, &t);
    let casino = run_machine(MachineKind::Casino, Width::Eight, &t);
    let ces = run_machine(MachineKind::Ces, Width::Eight, &t);
    assert!(
        casino.speedup_over(&ino) < 1.3,
        "CASINO must degenerate to ~InO on dependent misses"
    );
    assert!(
        ces.speedup_over(&ino) > 1.5,
        "CES must overlap the independent chase chains"
    );
}

#[test]
fn oldest_first_is_a_small_gain_on_ooo() {
    let ooo = geomean_speedup(MachineKind::OutOfOrder);
    let of = geomean_speedup(MachineKind::OutOfOrderOldestFirst);
    assert!(
        of >= 0.99 * ooo,
        "oldest-first should not hurt: {of:.2} vs {ooo:.2}"
    );
    assert!(
        of <= 1.10 * ooo,
        "oldest-first gain should be small (paper ~2%)"
    );
}
