//! Property-based fuzzing of *every* scheduler — including Ballerino and
//! FXA — through the real pipeline: random kernels must always commit
//! fully, deterministically, and within the machine's IPC bounds.

use ballerino::isa::OpClass;
use ballerino::sim::{run_machine, MachineKind, Width};
use ballerino::workloads::{Access, BranchBehavior, Kernel, KernelParams, StaticOp};
use proptest::prelude::*;

const KINDS: [MachineKind; 7] = [
    MachineKind::InOrder,
    MachineKind::OutOfOrder,
    MachineKind::Ces,
    MachineKind::Casino,
    MachineKind::Fxa,
    MachineKind::Ballerino,
    MachineKind::BallerinoIdeal,
];

/// A random but well-formed static kernel over up to 6 chains.
fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    let op = (0usize..6, 0u8..8).prop_map(|(chain, what)| match what {
        0 => StaticOp::Compute { class: OpClass::IntAlu, chain },
        1 => StaticOp::Compute { class: OpClass::FpAdd, chain },
        2 => StaticOp::Compute { class: OpClass::IntMul, chain },
        3 => StaticOp::Load { chain, access: Access::Rand },
        4 => StaticOp::Load { chain, access: Access::Chase },
        5 => StaticOp::Store { chain, access: Access::Rand },
        6 => StaticOp::Branch { chain, behavior: BranchBehavior::Biased { taken_prob: 0.8 } },
        _ => StaticOp::Reset { chain },
    });
    (proptest::collection::vec(op, 1..24), 1u64..1000).prop_map(|(body, seed)| {
        Kernel::new(
            KernelParams {
                name: format!("fuzz-{seed}"),
                ws_bytes: 256 << 10,
                chains: 6,
                seed,
            },
            body,
        )
    })
}

proptest! {
    // Each case runs 7 machines; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_scheduler_commits_every_random_kernel(kernel in kernel_strategy()) {
        let t = kernel.generate(1200);
        for kind in KINDS {
            let r = run_machine(kind, Width::Eight, &t);
            prop_assert_eq!(r.committed, t.len() as u64, "{:?} on {}", kind, t.name);
            prop_assert!(r.ipc() > 0.0 && r.ipc() <= 8.0);
            // Conservation: every commit was issued at least once.
            prop_assert!(r.issue_breakdown.total() >= r.committed);
        }
    }

    #[test]
    fn random_kernels_are_deterministic_across_reruns(kernel in kernel_strategy()) {
        let t = kernel.generate(800);
        let a = run_machine(MachineKind::Ballerino, Width::Eight, &t);
        let b = run_machine(MachineKind::Ballerino, Width::Eight, &t);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn spill_heavy_kernels_never_wedge_the_mdp(seed in 1u64..500) {
        // Store→load pairs on every chain: maximal M-dependence pressure.
        let mut body = Vec::new();
        for c in 0..4usize {
            body.push(StaticOp::Reset { chain: c });
            body.push(StaticOp::SpillStore { chain: c, slot: c });
            body.push(StaticOp::Compute { class: OpClass::IntAlu, chain: c });
            body.push(StaticOp::SpillLoad { chain: c, slot: c });
        }
        let k = Kernel::new(
            KernelParams { name: "spill-fuzz".into(), ws_bytes: 4096, chains: 4, seed },
            body,
        );
        let t = k.generate(1000);
        for kind in [MachineKind::OutOfOrder, MachineKind::Ballerino, MachineKind::CesMda] {
            let r = run_machine(kind, Width::Eight, &t);
            prop_assert_eq!(r.committed, t.len() as u64);
        }
    }
}
