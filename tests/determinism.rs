//! Bit-exact determinism: the whole stack (workload generation →
//! simulation → statistics) must reproduce identically run-to-run, since
//! every figure in EXPERIMENTS.md depends on it.

use ballerino::bench::{enumerate_cells, grid_points};
use ballerino::serve::{merge_records, run_campaign, run_cell, to_jsonl, EngineConfig, Shard};
use ballerino::sim::{run_machine, MachineKind, Width};
use ballerino::workloads::workload;

#[test]
fn simulation_is_deterministic() {
    for kind in [
        MachineKind::OutOfOrder,
        MachineKind::Ballerino,
        MachineKind::Casino,
    ] {
        let t1 = workload("branchy_sort", 3_000, 17);
        let t2 = workload("branchy_sort", 3_000, 17);
        assert_eq!(t1.ops, t2.ops);
        let a = run_machine(kind, Width::Eight, &t1);
        let b = run_machine(kind, Width::Eight, &t2);
        assert_eq!(a.cycles, b.cycles, "{kind:?}");
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.mispredicts, b.mispredicts);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.energy.prf_reads, b.energy.prf_reads);
        assert_eq!(a.energy.sched.queue_writes, b.energy.sched.queue_writes);
    }
}

#[test]
fn different_seeds_change_dynamic_behavior_but_not_correctness() {
    for seed in [1u64, 2, 3] {
        let t = workload("hash_join", 2_000, seed);
        let r = run_machine(MachineKind::Ballerino, Width::Eight, &t);
        assert_eq!(r.committed, t.len() as u64);
    }
}

/// The campaign-service invariant on *real* simulation: the merged,
/// key-sorted JSONL of a campaign is byte-identical whether it ran in
/// one uninterrupted process or as three shards, one of which crashed
/// mid-run and resumed from its journal. (The serve crate's own tests
/// pin the same property exhaustively on a synthetic runner; this is
/// the end-to-end cross-check through the cycle-accurate simulator.)
#[test]
fn sharded_crash_resumed_campaign_is_byte_identical_to_uninterrupted() {
    let points = grid_points(
        &[MachineKind::OutOfOrder, MachineKind::Ballerino],
        &[Width::Eight],
        &[None],
        &[100, 200],
    );
    let cells = enumerate_cells(
        &points,
        &["int_crunch", "pointer_chase", "branchy_sort"],
        1_500,
        42,
    );
    let cfg = |shard: Shard, halt_after: Option<usize>| EngineConfig {
        workers: 3,
        mailbox_cap: 2,
        max_attempts: 2,
        backoff_ms: 0,
        shard,
        halt_after,
    };

    // Reference: one process, one shard, no interruptions.
    let single = run_campaign(&cells, &cfg(Shard::single(), None), None, run_cell, |_| {})
        .expect("single-shard campaign");
    let reference = to_jsonl(&single.records);

    // Three shards; shard 1 crashes after 2 cells and resumes from its
    // journal.
    let dir = std::env::temp_dir().join(format!("ballerino-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal = dir.join("shard1.jsonl");
    let _ = std::fs::remove_file(&journal);

    let mut shard_sets = Vec::new();
    for index in 0..3u64 {
        let shard = Shard { index, count: 3 };
        let records = if index == 1 {
            let crashed = run_campaign(
                &cells,
                &cfg(shard, Some(2)),
                Some(&journal),
                run_cell,
                |_| {},
            )
            .expect("crashing shard");
            assert!(crashed.halted, "halt_after must trip");
            let resumed = run_campaign(&cells, &cfg(shard, None), Some(&journal), run_cell, |_| {})
                .expect("resumed shard");
            assert_eq!(resumed.replayed, crashed.records.len());
            resumed.records
        } else {
            run_campaign(&cells, &cfg(shard, None), None, run_cell, |_| {})
                .expect("shard campaign")
                .records
        };
        shard_sets.push(records);
    }
    let merged = merge_records(&shard_sets).expect("shards must not conflict");
    assert_eq!(
        to_jsonl(&merged),
        reference,
        "merged shard output diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
