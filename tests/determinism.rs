//! Bit-exact determinism: the whole stack (workload generation →
//! simulation → statistics) must reproduce identically run-to-run, since
//! every figure in EXPERIMENTS.md depends on it.

use ballerino::sim::{run_machine, MachineKind, Width};
use ballerino::workloads::workload;

#[test]
fn simulation_is_deterministic() {
    for kind in [
        MachineKind::OutOfOrder,
        MachineKind::Ballerino,
        MachineKind::Casino,
    ] {
        let t1 = workload("branchy_sort", 3_000, 17);
        let t2 = workload("branchy_sort", 3_000, 17);
        assert_eq!(t1.ops, t2.ops);
        let a = run_machine(kind, Width::Eight, &t1);
        let b = run_machine(kind, Width::Eight, &t2);
        assert_eq!(a.cycles, b.cycles, "{kind:?}");
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.mispredicts, b.mispredicts);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.energy.prf_reads, b.energy.prf_reads);
        assert_eq!(a.energy.sched.queue_writes, b.energy.sched.queue_writes);
    }
}

#[test]
fn different_seeds_change_dynamic_behavior_but_not_correctness() {
    for seed in [1u64, 2, 3] {
        let t = workload("hash_join", 2_000, seed);
        let r = run_machine(MachineKind::Ballerino, Width::Eight, &t);
        assert_eq!(r.committed, t.len() as u64);
    }
}
