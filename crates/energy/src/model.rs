//! Per-component energy accounting (the nine groups of Fig. 15).

use crate::dvfs::DvfsLevel;
use crate::events::{EnergyEvents, StructureSizes};

/// Core component groups, exactly the Fig. 15 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// L1 instruction + data caches (plus lower levels and DRAM I/O).
    L1Cache,
    /// Fetch and decode pipelines, branch predictors.
    FetchDecode,
    /// Register renaming (RAT, free lists).
    Rename,
    /// Steering logic (P-SCB location fields, steer muxes).
    Steer,
    /// Memory dependence predictor (SSIT/LFST).
    Mdp,
    /// Scheduling structures (IQs + ROB).
    Schedule,
    /// Load/store queues.
    Lsq,
    /// Physical register files.
    Prf,
    /// Functional units and bypass.
    Fu,
}

/// All components in display order.
pub const COMPONENTS: [Component; 9] = [
    Component::L1Cache,
    Component::FetchDecode,
    Component::Rename,
    Component::Steer,
    Component::Mdp,
    Component::Schedule,
    Component::Lsq,
    Component::Prf,
    Component::Fu,
];

impl Component {
    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Component::L1Cache => "L1 I/D$",
            Component::FetchDecode => "Fetch/Decode",
            Component::Rename => "Rename",
            Component::Steer => "Steer",
            Component::Mdp => "MDP",
            Component::Schedule => "Schedule",
            Component::Lsq => "LSQ",
            Component::Prf => "PRF",
            Component::Fu => "FUs",
        }
    }
}

/// Energy per component in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    vals: [f64; 9],
}

impl EnergyBreakdown {
    /// Energy of one component, pJ.
    pub fn get(&self, c: Component) -> f64 {
        self.vals[COMPONENTS
            .iter()
            .position(|&x| x == c)
            .expect("component listed")]
    }

    fn add(&mut self, c: Component, pj: f64) {
        self.vals[COMPONENTS
            .iter()
            .position(|&x| x == c)
            .expect("component listed")] += pj;
    }

    /// Total core energy, pJ.
    pub fn total(&self) -> f64 {
        self.vals.iter().sum()
    }

    /// Iterates `(component, pJ)` in display order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, f64)> + '_ {
        COMPONENTS.iter().copied().zip(self.vals.iter().copied())
    }
}

/// The energy model: fixed per-event energies (pJ, 22 nm class) plus
/// per-cycle leakage scaled by structure sizes and the DVFS level.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    sizes: StructureSizes,
    level: DvfsLevel,
}

// --- Per-event dynamic energies, picojoules at L4. -----------------------
const E_L1I_ACCESS: f64 = 28.0;
const E_FETCH_UOP: f64 = 5.5;
const E_DECODE_UOP: f64 = 7.5;
const E_BP_LOOKUP: f64 = 14.0;
const E_RAT_LOOKUP: f64 = 5.0;
const E_RAT_WRITE: f64 = 4.5;
const E_MDP_LOOKUP: f64 = 2.5;
const E_MDP_UPDATE: f64 = 2.5;
const E_ROB_WRITE: f64 = 7.0;
const E_ROB_READ: f64 = 5.5;
const E_CAM_ENTRY_SEARCH: f64 = 0.17;
const E_SELECT_INPUT: f64 = 0.075;
const E_QUEUE_WRITE: f64 = 3.6;
const E_QUEUE_READ: f64 = 3.4;
const E_HEAD_EXAM: f64 = 1.4;
const E_COPY: f64 = 6.5;
const E_STEER_OP: f64 = 3.0;
const E_LOC_ACCESS: f64 = 1.5;
const E_LSQ_SEARCH: f64 = 14.0;
const E_LSQ_WRITE: f64 = 5.5;
const E_PRF_READ: f64 = 6.5;
const E_PRF_WRITE: f64 = 8.5;
const E_FU_IALU: f64 = 14.0;
const E_FU_IMUL: f64 = 34.0;
const E_FU_IDIV: f64 = 140.0;
const E_FU_FADD: f64 = 28.0;
const E_FU_FMUL: f64 = 38.0;
const E_FU_FDIV: f64 = 190.0;
const E_FU_AGU: f64 = 11.0;
const E_FU_BR: f64 = 7.0;
const E_L1D_ACCESS: f64 = 30.0;
const E_L2_ACCESS: f64 = 75.0;
const E_L3_ACCESS: f64 = 170.0;
const E_DRAM_ACCESS: f64 = 1900.0;

// --- Leakage, picojoules per cycle at L4. --------------------------------
const L_BASE: f64 = 95.0; // fetch/decode/caches/FUs baseline
const L_CAM_ENTRY: f64 = 0.42; // CAM IQ entries leak hard (matchlines)
const L_FIFO_ENTRY: f64 = 0.12;
const L_ROB_ENTRY: f64 = 0.06;
const L_LSQ_ENTRY: f64 = 0.10;
const L_PRF_ENTRY: f64 = 0.05;
const L_STEER: f64 = 3.0;
const L_MDP: f64 = 2.0;

impl EnergyModel {
    /// Builds a model for a machine with the given structure sizes at a
    /// DVFS level.
    pub fn new(sizes: StructureSizes, level: DvfsLevel) -> Self {
        EnergyModel { sizes, level }
    }

    /// The DVFS level in use.
    pub fn level(&self) -> DvfsLevel {
        self.level
    }

    /// Converts event counts into the Fig. 15 component breakdown (pJ).
    pub fn breakdown(&self, ev: &EnergyEvents) -> EnergyBreakdown {
        let mut b = EnergyBreakdown::default();
        let f = |n: u64| n as f64;
        let ds = self.level.dyn_scale();

        b.add(
            Component::L1Cache,
            ds * (f(ev.l1i_accesses) * E_L1I_ACCESS
                + f(ev.l1d_accesses) * E_L1D_ACCESS
                + f(ev.l2_accesses) * E_L2_ACCESS
                + f(ev.l3_accesses) * E_L3_ACCESS
                + f(ev.dram_accesses) * E_DRAM_ACCESS),
        );
        b.add(
            Component::FetchDecode,
            ds * (f(ev.fetched_uops) * E_FETCH_UOP
                + f(ev.decoded_uops) * E_DECODE_UOP
                + f(ev.bp_lookups) * E_BP_LOOKUP),
        );
        b.add(
            Component::Rename,
            ds * (f(ev.rename_lookups) * E_RAT_LOOKUP + f(ev.rename_writes) * E_RAT_WRITE),
        );
        b.add(
            Component::Steer,
            ds * (f(ev.sched.steer_ops) * E_STEER_OP
                + f(ev.sched.loc_reads + ev.sched.loc_writes) * E_LOC_ACCESS),
        );
        b.add(
            Component::Mdp,
            ds * (f(ev.mdp_lookups) * E_MDP_LOOKUP + f(ev.mdp_updates) * E_MDP_UPDATE),
        );
        b.add(
            Component::Schedule,
            ds * (f(ev.sched.cam_entries_searched) * E_CAM_ENTRY_SEARCH
                + f(ev.sched.select_inputs) * E_SELECT_INPUT
                + f(ev.sched.queue_writes) * E_QUEUE_WRITE
                + f(ev.sched.queue_reads) * E_QUEUE_READ
                + f(ev.sched.head_examinations) * E_HEAD_EXAM
                + f(ev.sched.copies) * E_COPY
                + f(ev.rob_writes) * E_ROB_WRITE
                + f(ev.rob_reads) * E_ROB_READ),
        );
        b.add(
            Component::Lsq,
            ds * (f(ev.lsq_searches) * E_LSQ_SEARCH + f(ev.lsq_writes) * E_LSQ_WRITE),
        );
        b.add(
            Component::Prf,
            ds * (f(ev.prf_reads) * E_PRF_READ + f(ev.prf_writes) * E_PRF_WRITE),
        );
        b.add(
            Component::Fu,
            ds * (f(ev.fu.ialu) * E_FU_IALU
                + f(ev.fu.imul) * E_FU_IMUL
                + f(ev.fu.idiv) * E_FU_IDIV
                + f(ev.fu.fadd) * E_FU_FADD
                + f(ev.fu.fmul) * E_FU_FMUL
                + f(ev.fu.fdiv) * E_FU_FDIV
                + f(ev.fu.agu) * E_FU_AGU
                + f(ev.fu.branch) * E_FU_BR),
        );

        // Leakage, integrated over cycles and scaled by voltage.
        let ss = self.level.static_scale();
        // Slower clocks hold each cycle longer: leakage per cycle grows
        // with the period ratio.
        let period_ratio = DvfsLevel::L4.freq_ghz / self.level.freq_ghz;
        let cyc = f(ev.cycles) * ss * period_ratio;
        b.add(Component::FetchDecode, cyc * L_BASE * 0.35);
        b.add(Component::L1Cache, cyc * L_BASE * 0.40);
        b.add(Component::Fu, cyc * L_BASE * 0.25);
        b.add(
            Component::Schedule,
            cyc * (self.sizes.cam_entries as f64 * L_CAM_ENTRY
                + self.sizes.fifo_entries as f64 * L_FIFO_ENTRY
                + self.sizes.rob_entries as f64 * L_ROB_ENTRY),
        );
        b.add(
            Component::Lsq,
            cyc * self.sizes.lsq_entries as f64 * L_LSQ_ENTRY,
        );
        b.add(
            Component::Prf,
            cyc * self.sizes.prf_entries as f64 * L_PRF_ENTRY,
        );
        if self.sizes.has_steer {
            b.add(Component::Steer, cyc * L_STEER);
        }
        if self.sizes.has_mdp {
            b.add(Component::Mdp, cyc * L_MDP);
        }
        b
    }

    /// Energy-delay product: total energy (J) × execution time (s).
    pub fn edp(&self, ev: &EnergyEvents) -> f64 {
        let energy_j = self.breakdown(ev).total() * 1e-12;
        let time_s = self.level.seconds(ev.cycles);
        energy_j * time_s
    }

    /// Average power in watts.
    pub fn power_w(&self, ev: &EnergyEvents) -> f64 {
        let energy_j = self.breakdown(ev).total() * 1e-12;
        let time_s = self.level.seconds(ev.cycles);
        if time_s == 0.0 {
            0.0
        } else {
            energy_j / time_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballerino_sched::SchedEnergyEvents;

    fn events() -> EnergyEvents {
        EnergyEvents {
            cycles: 1000,
            fetched_uops: 4000,
            decoded_uops: 4000,
            l1i_accesses: 1000,
            bp_lookups: 500,
            rename_lookups: 8000,
            rename_writes: 4000,
            rob_writes: 4000,
            rob_reads: 4000,
            sched: SchedEnergyEvents {
                cam_broadcasts: 4000,
                cam_entries_searched: 4000 * 96,
                select_inputs: 1000 * 96 * 8,
                queue_writes: 4000,
                queue_reads: 4000,
                ..Default::default()
            },
            lsq_searches: 1200,
            lsq_writes: 1200,
            prf_reads: 6000,
            prf_writes: 4000,
            l1d_accesses: 1200,
            l2_accesses: 100,
            l3_accesses: 30,
            dram_accesses: 8,
            ..Default::default()
        }
    }

    #[test]
    fn cam_machine_has_dominant_schedule_energy_vs_fifo_machine() {
        let ooo = EnergyModel::new(StructureSizes::default(), DvfsLevel::L4);
        let b_ooo = ooo.breakdown(&events());

        // Same activity but FIFO-style scheduling events and no CAM.
        let mut ev_fifo = events();
        ev_fifo.sched.cam_broadcasts = 0;
        ev_fifo.sched.cam_entries_searched = 0;
        ev_fifo.sched.select_inputs = 1000 * 12;
        ev_fifo.sched.head_examinations = 12_000;
        let sizes_fifo = StructureSizes {
            cam_entries: 0,
            fifo_entries: 92,
            has_steer: true,
            ..StructureSizes::default()
        };
        let fifo = EnergyModel::new(sizes_fifo, DvfsLevel::L4);
        let b_fifo = fifo.breakdown(&ev_fifo);

        // The ROB contribution is common to both designs, so the gap is
        // bounded; the IQ-only gap is far larger.
        assert!(
            b_ooo.get(Component::Schedule) > 2.0 * b_fifo.get(Component::Schedule),
            "CAM schedule energy {} should dwarf FIFO {}",
            b_ooo.get(Component::Schedule),
            b_fifo.get(Component::Schedule)
        );
    }

    #[test]
    fn totals_are_positive_and_components_sum() {
        let m = EnergyModel::new(StructureSizes::default(), DvfsLevel::L4);
        let b = m.breakdown(&events());
        assert!(b.total() > 0.0);
        let sum: f64 = b.iter().map(|(_, v)| v).sum();
        assert!((sum - b.total()).abs() < 1e-9);
    }

    #[test]
    fn dvfs_lowers_dynamic_energy_and_power() {
        let ev = events();
        let hi = EnergyModel::new(StructureSizes::default(), DvfsLevel::L4);
        let lo = EnergyModel::new(StructureSizes::default(), DvfsLevel::L1);
        assert!(lo.breakdown(&ev).total() < hi.breakdown(&ev).total());
        assert!(lo.power_w(&ev) < hi.power_w(&ev));
    }

    #[test]
    fn edp_accounts_for_time() {
        let ev = events();
        let m = EnergyModel::new(StructureSizes::default(), DvfsLevel::L4);
        let edp = m.edp(&ev);
        assert!(edp > 0.0);
        // Twice the cycles at equal energy → strictly larger EDP.
        let mut slow = ev;
        slow.cycles *= 2;
        assert!(m.edp(&slow) > edp);
    }

    #[test]
    fn steer_and_mdp_leakage_gated_by_presence() {
        let ev = EnergyEvents {
            cycles: 1000,
            ..Default::default()
        };
        let with = EnergyModel::new(
            StructureSizes {
                has_steer: true,
                has_mdp: true,
                ..StructureSizes::default()
            },
            DvfsLevel::L4,
        );
        let without = EnergyModel::new(
            StructureSizes {
                has_steer: false,
                has_mdp: false,
                ..StructureSizes::default()
            },
            DvfsLevel::L4,
        );
        assert!(with.breakdown(&ev).get(Component::Steer) > 0.0);
        assert_eq!(without.breakdown(&ev).get(Component::Steer), 0.0);
        assert!(with.breakdown(&ev).get(Component::Mdp) > 0.0);
        assert_eq!(without.breakdown(&ev).get(Component::Mdp), 0.0);
    }

    #[test]
    fn component_labels_are_stable() {
        assert_eq!(Component::Schedule.label(), "Schedule");
        assert_eq!(COMPONENTS.len(), 9);
    }
}
