//! DVFS levels L1–L4 (§VI-E2, after \[45\]).

/// A frequency/voltage operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsLevel {
    /// Level name (`"L1"`..`"L4"`).
    pub name: &'static str,
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
}

impl DvfsLevel {
    /// L4: 3.4 GHz @ 1.04 V (nominal).
    pub const L4: DvfsLevel = DvfsLevel {
        name: "L4",
        freq_ghz: 3.4,
        vdd: 1.04,
    };
    /// L3: 3.2 GHz @ 1.01 V.
    pub const L3: DvfsLevel = DvfsLevel {
        name: "L3",
        freq_ghz: 3.2,
        vdd: 1.01,
    };
    /// L2: 3.0 GHz @ 0.98 V.
    pub const L2: DvfsLevel = DvfsLevel {
        name: "L2",
        freq_ghz: 3.0,
        vdd: 0.98,
    };
    /// L1: 2.8 GHz @ 0.96 V.
    pub const L1: DvfsLevel = DvfsLevel {
        name: "L1",
        freq_ghz: 2.8,
        vdd: 0.96,
    };

    /// All levels, fastest first.
    pub const ALL: [DvfsLevel; 4] = [Self::L4, Self::L3, Self::L2, Self::L1];

    /// Dynamic-energy scale factor relative to L4 (∝ V²).
    pub fn dyn_scale(&self) -> f64 {
        (self.vdd / Self::L4.vdd).powi(2)
    }

    /// Static-power scale factor relative to L4 (∝ V, first order).
    pub fn static_scale(&self) -> f64 {
        self.vdd / Self::L4.vdd
    }

    /// Wall-clock seconds for `cycles` at this level.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_section_vi_e2() {
        assert_eq!(DvfsLevel::L4.freq_ghz, 3.4);
        assert_eq!(DvfsLevel::L1.vdd, 0.96);
        assert_eq!(DvfsLevel::ALL.len(), 4);
    }

    #[test]
    fn lower_levels_save_dynamic_energy() {
        assert_eq!(DvfsLevel::L4.dyn_scale(), 1.0);
        assert!(DvfsLevel::L1.dyn_scale() < 1.0);
        assert!(DvfsLevel::L1.dyn_scale() > 0.7);
    }

    #[test]
    fn lower_levels_run_slower() {
        let c = 3_400_000_000u64;
        assert!((DvfsLevel::L4.seconds(c) - 1.0).abs() < 1e-9);
        assert!(DvfsLevel::L1.seconds(c) > 1.0);
    }
}
