//! Event counts collected by the pipeline model.

use ballerino_isa::OpClass;
use ballerino_sched::SchedEnergyEvents;

/// Functional-unit operation counts by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuOpCounts {
    /// Integer ALU operations.
    pub ialu: u64,
    /// Integer multiplies.
    pub imul: u64,
    /// Integer divides.
    pub idiv: u64,
    /// FP adds.
    pub fadd: u64,
    /// FP multiplies.
    pub fmul: u64,
    /// FP divides.
    pub fdiv: u64,
    /// Address generations (loads + stores).
    pub agu: u64,
    /// Branch resolutions.
    pub branch: u64,
}

impl FuOpCounts {
    /// Records one executed μop.
    pub fn record(&mut self, class: OpClass) {
        match class {
            OpClass::IntAlu => self.ialu += 1,
            OpClass::IntMul => self.imul += 1,
            OpClass::IntDiv => self.idiv += 1,
            OpClass::FpAdd => self.fadd += 1,
            OpClass::FpMul => self.fmul += 1,
            OpClass::FpDiv => self.fdiv += 1,
            OpClass::Load | OpClass::Store => self.agu += 1,
            OpClass::Branch => self.branch += 1,
        }
    }

    /// Total FU operations.
    pub fn total(&self) -> u64 {
        self.ialu
            + self.imul
            + self.idiv
            + self.fadd
            + self.fmul
            + self.fdiv
            + self.agu
            + self.branch
    }
}

/// All energy-relevant event counts from one simulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyEvents {
    /// Cycles simulated (leakage integration).
    pub cycles: u64,
    /// μops fetched.
    pub fetched_uops: u64,
    /// μops decoded.
    pub decoded_uops: u64,
    /// Instruction-cache accesses (one per fetch group).
    pub l1i_accesses: u64,
    /// Branch-predictor lookups.
    pub bp_lookups: u64,
    /// RAT source lookups + destination allocations.
    pub rename_lookups: u64,
    /// RAT writes (new mappings + rollbacks).
    pub rename_writes: u64,
    /// SSIT lookups (loads and stores at rename).
    pub mdp_lookups: u64,
    /// SSIT/LFST updates (training, store fetch updates).
    pub mdp_updates: u64,
    /// ROB allocations.
    pub rob_writes: u64,
    /// ROB commits (reads).
    pub rob_reads: u64,
    /// Scheduler micro-events (from the `Scheduler` implementation).
    pub sched: SchedEnergyEvents,
    /// Load/store queue associative searches.
    pub lsq_searches: u64,
    /// Load/store queue allocations/updates.
    pub lsq_writes: u64,
    /// Physical register file reads (operands at issue).
    pub prf_reads: u64,
    /// Physical register file writes (results).
    pub prf_writes: u64,
    /// Functional-unit operations.
    pub fu: FuOpCounts,
    /// L1D accesses.
    pub l1d_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L3 accesses.
    pub l3_accesses: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
}

/// Structure sizes for leakage scaling (entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureSizes {
    /// Scheduling-window entries implemented as CAM (OoO IQ).
    pub cam_entries: usize,
    /// Scheduling-window entries implemented as FIFO/RAM (S-IQs, P-IQs,
    /// in-order IQs).
    pub fifo_entries: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-queue + store-queue entries.
    pub lsq_entries: usize,
    /// Physical registers.
    pub prf_entries: usize,
    /// Whether steering logic (and its P-SCB/LFST extensions) exists.
    pub has_steer: bool,
    /// Whether the MDP tables exist.
    pub has_mdp: bool,
}

impl Default for StructureSizes {
    fn default() -> Self {
        StructureSizes {
            cam_entries: 96,
            fifo_entries: 0,
            rob_entries: 224,
            lsq_entries: 72 + 56,
            prf_entries: 348,
            has_steer: false,
            has_mdp: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_counts_record_all_classes() {
        let mut f = FuOpCounts::default();
        for c in OpClass::ALL {
            f.record(c);
        }
        assert_eq!(f.total(), 9);
        assert_eq!(f.agu, 2); // load + store
    }

    #[test]
    fn default_sizes_match_table_i_ooo() {
        let s = StructureSizes::default();
        assert_eq!(s.cam_entries, 96);
        assert_eq!(s.rob_entries, 224);
    }
}
