//! # ballerino-energy
//!
//! Event-based, McPAT-style core energy model (22 nm class) standing in
//! for the paper's modified McPAT \[42, 43\]. The pipeline model counts
//! micro-events (CAM broadcasts, queue reads, RAT lookups, cache
//! accesses, ...); this crate converts them into per-component energy
//! using fixed per-event energies plus per-cycle leakage scaled by
//! structure sizes, and computes the efficiency metrics of Figs. 15–17
//! (energy breakdown, 1/EDP, DVFS levels L1–L4).
//!
//! Absolute joules are *not* the claim — the paper's energy results are
//! relative — but the first-order structure (CAM wakeup energy grows with
//! window size and port count; FIFO head examination is cheap; CASINO
//! pays inter-queue copies; FXA keeps a half-size CAM) is modelled
//! faithfully so relative component ratios are preserved.

#![warn(missing_docs)]

pub mod dvfs;
pub mod events;
pub mod model;

pub use dvfs::DvfsLevel;
pub use events::{EnergyEvents, FuOpCounts, StructureSizes};
pub use model::{Component, EnergyBreakdown, EnergyModel, COMPONENTS};
