//! The supervised campaign engine.
//!
//! [`run_campaign`] turns a list of [`SimCell`]s into a set of
//! [`CellRecord`]s on a fixed pool of worker threads, with the
//! service-shaped machinery a long campaign needs:
//!
//! * **Sharding** — `BALLERINO_SHARD=i/n` keeps only the cells whose
//!   stable FNV-1a key hash satisfies `hash % n == i`. Every shard
//!   derives its subset independently from the spec; the subsets
//!   partition the campaign exactly, so `n` processes on `n` machines
//!   cover every cell once.
//! * **Dedup** — cells with identical keys are coalesced before
//!   dispatch and simulated once (batched requests often overlap).
//! * **Checkpoint/replay** — completed cells append to a journal
//!   (`journal` module); on restart the journal is replayed first and
//!   only the missing cells run.
//! * **Backpressure** — the dispatch mailbox is a *bounded*
//!   `sync_channel`; the feeder blocks when workers fall behind instead
//!   of buffering an entire campaign's cells.
//! * **Supervision** — each cell runs under `catch_unwind`; a panicking
//!   cell is retried with exponential backoff up to a cap, then
//!   reported failed. One poisoned cell can't take down the campaign or
//!   wedge a worker.
//! * **Streaming** — records are handed to the caller's sink as they
//!   complete (arrival order), while the returned report carries the
//!   canonical key-sorted set.
//!
//! ## Determinism contract
//!
//! The *streamed* order depends on scheduling; the *merged result set*
//! does not. Simulation is deterministic per cell, the key→shard map is
//! a pure function, and the report sorts by key — so the union of the
//! shard reports (or journals) of any run topology — 1 shard or many,
//! any worker count, any arrival order, crashed-and-resumed or not — is
//! byte-identical as canonical JSONL. `tests/` pins this.

use crate::journal::{read_journal, CellRecord, JournalWriter};
use ballerino_bench::SimCell;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel};
use std::sync::Mutex;

/// A horizontal slice of a campaign: this process owns the cells whose
/// stable hash lands on `index` modulo `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This process's slice, `0..count`.
    pub index: u64,
    /// Total number of slices.
    pub count: u64,
}

impl Shard {
    /// The whole campaign in one process.
    pub fn single() -> Shard {
        Shard { index: 0, count: 1 }
    }

    /// Parses `"i/n"` (e.g. `"0/3"`); requires `i < n` and `n >= 1`.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard '{s}' (want i/n, e.g. 0/3)"))?;
        let index: u64 = i
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index '{i}'"))?;
        let count: u64 = n
            .trim()
            .parse()
            .map_err(|_| format!("bad shard count '{n}'"))?;
        if count == 0 || index >= count {
            return Err(format!(
                "shard {index}/{count} out of range (need index < count)"
            ));
        }
        Ok(Shard { index, count })
    }

    /// The shard from `BALLERINO_SHARD` (unset or empty = single).
    pub fn from_env() -> Result<Shard, String> {
        match std::env::var("BALLERINO_SHARD") {
            Ok(s) if !s.trim().is_empty() => Shard::parse(&s),
            _ => Ok(Shard::single()),
        }
    }

    /// Whether this shard owns `cell`. A pure function of the cell key,
    /// so every process agrees without coordination.
    pub fn owns(&self, cell: &SimCell) -> bool {
        cell.stable_hash() % self.count == self.index
    }
}

/// Engine tuning knobs. [`EngineConfig::from_env`] is the service
/// default; tests construct configs directly.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads.
    pub workers: usize,
    /// Dispatch mailbox capacity (bounded — backpressure, not buffering).
    pub mailbox_cap: usize,
    /// Attempts per cell (1 = no retry).
    pub max_attempts: usize,
    /// Base backoff between attempts; doubles per retry. 0 = no sleep.
    pub backoff_ms: u64,
    /// This process's campaign slice.
    pub shard: Shard,
    /// Crash injection for tests/CI: stop dispatching after this many
    /// newly-executed cells (journaled work keeps its records).
    pub halt_after: Option<usize>,
}

impl EngineConfig {
    /// The service defaults: `BALLERINO_THREADS` workers, a mailbox of
    /// 2× workers (`BALLERINO_SERVE_MAILBOX`), 2 retries
    /// (`BALLERINO_SERVE_RETRIES`), 10 ms base backoff
    /// (`BALLERINO_SERVE_BACKOFF_MS`), shard from `BALLERINO_SHARD`.
    pub fn from_env() -> Result<EngineConfig, String> {
        let workers = ballerino_bench::threads();
        let env_num =
            |name: &str| -> Option<u64> { std::env::var(name).ok().and_then(|s| s.parse().ok()) };
        Ok(EngineConfig {
            workers,
            mailbox_cap: env_num("BALLERINO_SERVE_MAILBOX")
                .map(|v| v.max(1) as usize)
                .unwrap_or(2 * workers.max(1)),
            max_attempts: 1 + env_num("BALLERINO_SERVE_RETRIES").unwrap_or(2) as usize,
            backoff_ms: env_num("BALLERINO_SERVE_BACKOFF_MS").unwrap_or(10),
            shard: Shard::from_env()?,
            halt_after: None,
        })
    }
}

/// What a campaign run produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// All completed records this shard holds (replayed + newly run),
    /// sorted by key.
    pub records: Vec<CellRecord>,
    /// Keys that exhausted their attempts, sorted.
    pub failed: Vec<String>,
    /// Cells this shard owns after dedup.
    pub total_cells: usize,
    /// Duplicate cells coalesced away before dispatch.
    pub coalesced: usize,
    /// Cells satisfied from the journal without re-running.
    pub replayed: usize,
    /// Cells newly executed by this run.
    pub executed: usize,
    /// Retry attempts consumed (beyond each cell's first attempt).
    pub retries: u64,
    /// Whether the run stopped early (`halt_after`).
    pub halted: bool,
}

/// A worker → collector message.
enum Done {
    Ok(CellRecord),
    Failed(String),
}

/// Runs a campaign slice: shard-filter and dedup `cells`, replay the
/// journal, execute what's missing on `cfg.workers` supervised workers,
/// stream every record (replayed first, then completion order) through
/// `sink`, and return the key-sorted report.
///
/// `runner` maps a cell to its record; the service passes
/// [`run_cell`], tests inject panicking or synthetic runners.
pub fn run_campaign<F>(
    cells: &[SimCell],
    cfg: &EngineConfig,
    journal_path: Option<&Path>,
    runner: F,
    mut sink: impl FnMut(&CellRecord),
) -> Result<CampaignReport, String>
where
    F: Fn(&SimCell) -> CellRecord + Sync,
{
    // Shard filter + dedup (first occurrence wins; keys are canonical,
    // so identical keys mean identical work).
    let mut seen = HashSet::new();
    let mut owned: Vec<(String, SimCell)> = Vec::new();
    let mut coalesced = 0usize;
    for cell in cells.iter().filter(|c| cfg.shard.owns(c)) {
        let key = cell.key();
        if seen.insert(key.clone()) {
            owned.push((key, *cell));
        } else {
            coalesced += 1;
        }
    }
    let total_cells = owned.len();

    // Journal replay: completed cells keep their records and never
    // re-run. Journal entries for cells outside this campaign slice
    // (stale specs, other shards) are ignored.
    let mut records: Vec<CellRecord> = Vec::with_capacity(total_cells);
    let mut pending: Vec<(String, SimCell)> = Vec::new();
    let mut replayed = 0usize;
    {
        let journaled: HashMap<String, CellRecord> = match journal_path {
            Some(p) => read_journal(p)
                .map_err(|e| format!("journal {}: {e}", p.display()))?
                .into_iter()
                .map(|r| (r.key.clone(), r))
                .collect(),
            None => HashMap::new(),
        };
        for (key, cell) in owned {
            match journaled.get(&key) {
                Some(rec) => {
                    sink(rec);
                    records.push(rec.clone());
                    replayed += 1;
                }
                None => pending.push((key, cell)),
            }
        }
    }

    let mut journal = match journal_path {
        Some(p) => {
            Some(JournalWriter::append_to(p).map_err(|e| format!("journal {}: {e}", p.display()))?)
        }
        None => None,
    };

    // The engine proper: bounded mailbox, supervised workers, one
    // collector (this thread).
    let halt = AtomicBool::new(false);
    let retries = AtomicU64::new(0);
    let executed = AtomicUsize::new(0);
    let (work_tx, work_rx) = sync_channel::<(String, SimCell)>(cfg.mailbox_cap.max(1));
    let work_rx = Mutex::new(work_rx);
    let (done_tx, done_rx) = channel::<Done>();
    let mut failed: Vec<String> = Vec::new();
    let max_attempts = cfg.max_attempts.max(1);

    std::thread::scope(|scope| {
        // Feeder: dispatch in deterministic enumeration order; the
        // bounded send blocks when workers fall behind (backpressure).
        let feeder_pending = &pending;
        let feeder_halt = &halt;
        scope.spawn(move || {
            for (key, cell) in feeder_pending.iter() {
                if feeder_halt.load(Ordering::SeqCst) {
                    break;
                }
                if work_tx.send((key.clone(), *cell)).is_err() {
                    break; // all workers gone (only happens on teardown)
                }
            }
            // Dropping work_tx disconnects the mailbox: workers drain
            // the residue and exit.
        });

        for _ in 0..cfg.workers.max(1) {
            let done_tx = done_tx.clone();
            let (work_rx, halt) = (&work_rx, &halt);
            let (runner, retries, executed) = (&runner, &retries, &executed);
            scope.spawn(move || loop {
                // Hold the lock only to receive, never while simulating.
                let msg = work_rx.lock().expect("mailbox lock").recv();
                let Ok((key, cell)) = msg else { break };
                if halt.load(Ordering::SeqCst) {
                    continue; // halted: drain without running (unblocks the feeder)
                }
                let mut attempt = 0;
                loop {
                    attempt += 1;
                    match catch_unwind(AssertUnwindSafe(|| runner(&cell))) {
                        Ok(rec) => {
                            executed.fetch_add(1, Ordering::SeqCst);
                            let _ = done_tx.send(Done::Ok(rec));
                            break;
                        }
                        Err(_) if attempt < max_attempts => {
                            retries.fetch_add(1, Ordering::SeqCst);
                            if cfg.backoff_ms > 0 {
                                let ms = cfg.backoff_ms << (attempt - 1).min(6);
                                std::thread::sleep(std::time::Duration::from_millis(ms));
                            }
                        }
                        Err(_) => {
                            let _ = done_tx.send(Done::Failed(key));
                            break;
                        }
                    }
                }
            });
        }
        // The collector holds no sender; disconnect == all workers done.
        drop(done_tx);

        // Collector: journal + stream in arrival order, trip the halt
        // fuse when the crash-injection threshold is reached.
        let mut new_done = 0usize;
        for msg in done_rx.iter() {
            match msg {
                Done::Ok(rec) => {
                    if let Some(j) = journal.as_mut() {
                        if let Err(e) = j.write(&rec) {
                            eprintln!("journal write failed: {e}");
                        }
                    }
                    sink(&rec);
                    records.push(rec);
                    new_done += 1;
                    if let Some(limit) = cfg.halt_after {
                        if new_done >= limit {
                            halt.store(true, Ordering::SeqCst);
                        }
                    }
                }
                Done::Failed(key) => failed.push(key),
            }
        }
    });

    records.sort_by(|a, b| a.key.cmp(&b.key));
    failed.sort();
    Ok(CampaignReport {
        records,
        failed,
        total_cells,
        coalesced,
        replayed,
        executed: executed.into_inner(),
        retries: retries.into_inner(),
        halted: halt.into_inner(),
    })
}

/// The production runner: cycle-accurate simulation via
/// [`SimCell::run`], recorded under the cell's canonical key.
pub fn run_cell(cell: &SimCell) -> CellRecord {
    CellRecord::from_result(cell.key(), &cell.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballerino_bench::{enumerate_cells, grid_points};
    use ballerino_sim::{MachineKind, Width};

    /// A deterministic synthetic runner: no simulation, instant.
    fn synth(cell: &SimCell) -> CellRecord {
        CellRecord {
            key: cell.key(),
            cycles: cell.stable_hash() % 100_000,
            committed: cell.n as u64,
            mispredicts: cell.seed,
            violations: 0,
        }
    }

    fn test_cells() -> Vec<SimCell> {
        let points = grid_points(
            &[
                MachineKind::InOrder,
                MachineKind::OutOfOrder,
                MachineKind::Ballerino,
            ],
            &[Width::Two, Width::Eight],
            &[None, Some(32)],
            &[100, 200],
        );
        enumerate_cells(&points, &["int_crunch", "pointer_chase"], 1000, 42)
    }

    fn cfg(workers: usize) -> EngineConfig {
        EngineConfig {
            workers,
            mailbox_cap: 4,
            max_attempts: 3,
            backoff_ms: 0,
            shard: Shard::single(),
            halt_after: None,
        }
    }

    #[test]
    fn shard_parse_validates() {
        assert_eq!(Shard::parse("0/3").unwrap(), Shard { index: 0, count: 3 });
        assert_eq!(Shard::parse("2/3").unwrap(), Shard { index: 2, count: 3 });
        assert!(Shard::parse("3/3").is_err());
        assert!(Shard::parse("0/0").is_err());
        assert!(Shard::parse("1").is_err());
        assert!(Shard::parse("a/b").is_err());
    }

    #[test]
    fn shards_partition_the_campaign_exactly() {
        let cells = test_cells();
        for count in [1u64, 2, 3, 5] {
            let mut owners = vec![0usize; cells.len()];
            for index in 0..count {
                let shard = Shard { index, count };
                for (i, c) in cells.iter().enumerate() {
                    if shard.owns(c) {
                        owners[i] += 1;
                    }
                }
            }
            assert!(owners.iter().all(|&o| o == 1), "count={count}: {owners:?}");
        }
    }

    #[test]
    fn report_is_sorted_and_worker_count_invariant() {
        let cells = test_cells();
        let base = run_campaign(&cells, &cfg(1), None, synth, |_| {}).unwrap();
        for workers in [2, 4, 7] {
            let r = run_campaign(&cells, &cfg(workers), None, synth, |_| {}).unwrap();
            assert_eq!(r.records, base.records, "workers={workers}");
        }
        let mut keys: Vec<&str> = base.records.iter().map(|r| r.key.as_str()).collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        assert_eq!(keys, sorted);
        keys.dedup();
        assert_eq!(keys.len(), cells.len());
    }

    #[test]
    fn duplicate_cells_coalesce_to_one_execution() {
        let cells = test_cells();
        let mut doubled = cells.clone();
        doubled.extend(cells.iter().copied());
        let calls = AtomicUsize::new(0);
        let r = run_campaign(
            &doubled,
            &cfg(4),
            None,
            |c| {
                calls.fetch_add(1, Ordering::SeqCst);
                synth(c)
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(r.coalesced, cells.len());
        assert_eq!(r.records.len(), cells.len());
        assert_eq!(calls.load(Ordering::SeqCst), cells.len());
    }

    #[test]
    fn flaky_cells_retry_and_poisoned_cells_fail_in_isolation() {
        let cells = test_cells();
        let flaky_key = cells[3].key();
        let poison_key = cells[10].key();
        let attempts = Mutex::new(HashMap::<String, usize>::new());
        let r = run_campaign(
            &cells,
            &cfg(4),
            None,
            |c| {
                let key = c.key();
                let n = {
                    let mut m = attempts.lock().unwrap();
                    let e = m.entry(key.clone()).or_insert(0);
                    *e += 1;
                    *e
                };
                if key == poison_key || (key == flaky_key && n < 3) {
                    panic!("injected fault for {key}");
                }
                synth(c)
            },
            |_| {},
        )
        .unwrap();
        // The poisoned cell fails alone; everything else completes.
        assert_eq!(r.failed, vec![poison_key]);
        assert_eq!(r.records.len(), cells.len() - 1);
        // The flaky cell succeeded on its final allowed attempt.
        assert!(r.records.iter().any(|rec| rec.key == flaky_key));
        // 2 flaky retries + 2 poisoned retries.
        assert_eq!(r.retries, 4);
    }

    #[test]
    fn streaming_sink_sees_every_record_once() {
        let cells = test_cells();
        let mut streamed = Vec::new();
        let r = run_campaign(&cells, &cfg(3), None, synth, |rec| {
            streamed.push(rec.clone());
        })
        .unwrap();
        streamed.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(streamed, r.records);
    }

    #[test]
    fn crash_and_resume_reconstructs_the_exact_result_set() {
        let cells = test_cells();
        let uninterrupted = run_campaign(&cells, &cfg(3), None, synth, |_| {}).unwrap();

        let dir =
            std::env::temp_dir().join(format!("ballerino-engine-crash-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // An LCG drives the "random" crash points (no std randomness in
        // tests either — reproducible failures beat novel ones). The
        // runner is throttled: the instant synthetic runner can drain
        // every cell before the collector trips the halt flag, which
        // would make the resume leg vacuous.
        let throttled = |c: &SimCell| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            synth(c)
        };
        let mut lcg: u64 = 0x5eed;
        let mut interrupted_trials = 0;
        for trial in 0..5 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Leave headroom below the cell count: workers already past
            // the halt check legitimately finish their in-flight cell.
            let halt_after = 1 + (lcg >> 33) as usize % (cells.len() - 8);
            let journal = dir.join(format!("trial{trial}.jsonl"));
            let _ = std::fs::remove_file(&journal);

            // First run: killed after a random prefix.
            let mut crash_cfg = cfg(3);
            crash_cfg.halt_after = Some(halt_after);
            let first =
                run_campaign(&cells, &crash_cfg, Some(&journal), throttled, |_| {}).unwrap();
            assert!(first.halted);
            assert!(first.executed >= halt_after);
            if first.records.len() < cells.len() {
                interrupted_trials += 1;
            }

            // Resume: replays the journal, runs only the missing cells.
            let resumed = run_campaign(&cells, &cfg(3), Some(&journal), synth, |_| {}).unwrap();
            assert!(!resumed.halted);
            assert_eq!(resumed.replayed, first.records.len());
            assert_eq!(resumed.executed, cells.len() - first.records.len());
            assert_eq!(
                resumed.records, uninterrupted.records,
                "trial {trial}: resumed set diverged (halt_after={halt_after})"
            );
        }
        // The resume leg must have been genuinely exercised, not just
        // replay-everything-and-run-nothing.
        assert!(
            interrupted_trials > 0,
            "no trial left cells for the resume to run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_union_equals_single_shard_run() {
        let cells = test_cells();
        let single = run_campaign(&cells, &cfg(2), None, synth, |_| {}).unwrap();
        for count in [2u64, 3] {
            let mut sets = Vec::new();
            for index in 0..count {
                let mut c = cfg(2);
                c.shard = Shard { index, count };
                sets.push(
                    run_campaign(&cells, &c, None, synth, |_| {})
                        .unwrap()
                        .records,
                );
            }
            let merged = crate::journal::merge_records(&sets).unwrap();
            assert_eq!(merged, single.records, "count={count}");
        }
    }
}
