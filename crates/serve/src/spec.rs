//! Campaign specifications: what to simulate.
//!
//! A [`CampaignSpec`] names the design-space axes (machine kinds ×
//! widths × IQ budgets × DRAM grades), the workloads, and the trace
//! shape — the same vocabulary as `ballerino_bench::SweepSpec`, parsed
//! from a small JSON document (see README § "Serving campaigns" for the
//! format). Two modes:
//!
//! * **full** — serve every cell of the cross product.
//! * **sweep** — run the tier-0 analytic triage first
//!   ([`ballerino_bench::tier0_scores`] + [`promote_indices`]) and serve
//!   only the cells of points that could still be on the cost/performance
//!   frontier. Triage is deterministic, so every shard of a campaign
//!   derives the same promoted set independently.

use crate::json::{self, Json};
use ballerino_bench::{
    enumerate_cells, grid_points, kind_from_name, point_cost, promote_indices, tier0_scores,
    SimCell, SweepSpec,
};
use ballerino_sim::{DesignPoint, MachineKind, Width};
use ballerino_workloads::workload_names;

/// How a campaign selects cells from its grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignMode {
    /// Serve every cell of the cross product.
    Full,
    /// Tier-0 triage first; serve only promoted points' cells.
    Sweep,
}

/// A simulation campaign: grid axes × workloads × trace shape.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (journal and log labelling only).
    pub name: String,
    /// Cell-selection mode.
    pub mode: CampaignMode,
    /// Machine kinds to enumerate.
    pub kinds: Vec<MachineKind>,
    /// Width presets to enumerate.
    pub widths: Vec<Width>,
    /// IQ-entry budgets (`None` = the width's Table II default).
    pub iq_budgets: Vec<Option<usize>>,
    /// DRAM timing scales in percent (100 = default).
    pub dram_scales: Vec<u32>,
    /// Workloads each point runs (canonicalized suite names).
    pub workloads: Vec<&'static str>,
    /// μops per workload trace.
    pub n: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl CampaignSpec {
    /// A CI-sized built-in campaign: 3 kinds × 2 widths × 2 DRAM grades
    /// on three workloads with small traces — 36 cells, a few seconds.
    pub fn smoke() -> CampaignSpec {
        CampaignSpec {
            name: "smoke".into(),
            mode: CampaignMode::Full,
            kinds: vec![
                MachineKind::InOrder,
                MachineKind::OutOfOrder,
                MachineKind::Ballerino,
            ],
            widths: vec![Width::Two, Width::Eight],
            iq_budgets: vec![None],
            dram_scales: vec![100, 200],
            workloads: vec!["int_crunch", "pointer_chase", "branchy_sort"],
            n: 2_000,
            seed: 42,
        }
    }

    /// Parses a campaign from its JSON document. Required: `kinds`.
    /// Optional with defaults: `name` ("campaign"), `mode` ("full"),
    /// `widths` (`[8]`), `iq_budgets` (`[null]`), `dram_scales`
    /// (`[100]`), `workloads` (the whole suite), `n` (20000), `seed`
    /// (42).
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        let doc = json::parse(text)?;
        if !matches!(doc, Json::Obj(_)) {
            return Err("campaign spec must be a JSON object".into());
        }

        let name = match doc.get("name") {
            Some(v) => v.as_str().ok_or("'name' must be a string")?.to_string(),
            None => "campaign".into(),
        };
        let mode = match doc.get("mode").map(|v| v.as_str()) {
            None => CampaignMode::Full,
            Some(Some("full")) => CampaignMode::Full,
            Some(Some("sweep")) => CampaignMode::Sweep,
            Some(other) => {
                return Err(format!(
                    "'mode' must be \"full\" or \"sweep\", got {other:?}"
                ))
            }
        };

        let kinds_json = doc
            .get("kinds")
            .and_then(Json::as_arr)
            .ok_or("'kinds' (array of machine names) is required")?;
        let mut kinds = Vec::new();
        for k in kinds_json {
            let s = k.as_str().ok_or("'kinds' entries must be strings")?;
            kinds.push(kind_from_name(s).ok_or_else(|| format!("unknown machine kind '{s}'"))?);
        }
        if kinds.is_empty() {
            return Err("'kinds' must not be empty".into());
        }

        let widths = match doc.get("widths") {
            None => vec![Width::Eight],
            Some(v) => {
                let arr = v.as_arr().ok_or("'widths' must be an array")?;
                let mut out = Vec::new();
                for w in arr {
                    out.push(match w.as_u64() {
                        Some(2) => Width::Two,
                        Some(4) => Width::Four,
                        Some(8) => Width::Eight,
                        Some(10) => Width::Ten,
                        _ => return Err(format!("bad width {w:?} (allowed: 2, 4, 8, 10)")),
                    });
                }
                out
            }
        };

        let iq_budgets = match doc.get("iq_budgets") {
            None => vec![None],
            Some(v) => {
                let arr = v.as_arr().ok_or("'iq_budgets' must be an array")?;
                let mut out = Vec::new();
                for b in arr {
                    out.push(match b {
                        Json::Null => None,
                        _ => Some(
                            b.as_u64()
                                .filter(|&e| e >= 1)
                                .ok_or_else(|| format!("bad IQ budget {b:?}"))?
                                as usize,
                        ),
                    });
                }
                out
            }
        };

        let dram_scales = match doc.get("dram_scales") {
            None => vec![100],
            Some(v) => {
                let arr = v.as_arr().ok_or("'dram_scales' must be an array")?;
                let mut out = Vec::new();
                for d in arr {
                    out.push(
                        d.as_u64()
                            .filter(|&p| (10..=1000).contains(&p))
                            .ok_or_else(|| format!("bad DRAM scale {d:?} (percent, 10..=1000)"))?
                            as u32,
                    );
                }
                out
            }
        };

        let workloads = match doc.get("workloads") {
            None => workload_names(),
            Some(v) => {
                let arr = v.as_arr().ok_or("'workloads' must be an array")?;
                let suite = workload_names();
                let mut out = Vec::new();
                for w in arr {
                    let s = w.as_str().ok_or("'workloads' entries must be strings")?;
                    // Canonicalize to the suite's &'static str (SimCell
                    // borrows it for the process lifetime).
                    let canon = suite
                        .iter()
                        .find(|&&name| name == s)
                        .ok_or_else(|| format!("unknown workload '{s}'"))?;
                    out.push(*canon);
                }
                out
            }
        };
        if workloads.is_empty() {
            return Err("'workloads' must not be empty".into());
        }

        let n = match doc.get("n") {
            None => 20_000,
            Some(v) => v
                .as_u64()
                .filter(|&n| (100..=10_000_000).contains(&n))
                .ok_or("'n' must be an integer in 100..=10000000")? as usize,
        };
        let seed = match doc.get("seed") {
            None => 42,
            Some(v) => v.as_u64().ok_or("'seed' must be a non-negative integer")?,
        };

        Ok(CampaignSpec {
            name,
            mode,
            kinds,
            widths,
            iq_budgets,
            dram_scales,
            workloads,
            n,
            seed,
        })
    }

    /// The campaign's design points: the full grid, or (sweep mode) the
    /// tier-0 promoted subset. Deterministic — every shard derives the
    /// same list.
    pub fn points(&self) -> Vec<DesignPoint> {
        let points = grid_points(
            &self.kinds,
            &self.widths,
            &self.iq_budgets,
            &self.dram_scales,
        );
        match self.mode {
            CampaignMode::Full => points,
            CampaignMode::Sweep => {
                let sweep = self.as_sweep_spec();
                let est = tier0_scores(&sweep, &points);
                let costs: Vec<u64> = points.iter().map(point_cost).collect();
                promote_indices(&costs, &est, sweep.margin_pct())
                    .into_iter()
                    .map(|i| points[i])
                    .collect()
            }
        }
    }

    /// All cells this campaign serves (point-major ×, within a point,
    /// workload order).
    pub fn cells(&self) -> Vec<SimCell> {
        enumerate_cells(&self.points(), &self.workloads, self.n, self.seed)
    }

    /// The equivalent `ballerino_bench::SweepSpec` (for tier-0 triage).
    fn as_sweep_spec(&self) -> SweepSpec {
        SweepSpec {
            kinds: self.kinds.clone(),
            widths: self.widths.clone(),
            iq_budgets: self.iq_budgets.clone(),
            dram_scales: self.dram_scales.clone(),
            workloads: self.workloads.clone(),
            n: self.n,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_spec_with_defaults() {
        let spec = CampaignSpec::from_json(r#"{"kinds": ["ooo"]}"#).unwrap();
        assert_eq!(spec.name, "campaign");
        assert_eq!(spec.mode, CampaignMode::Full);
        assert_eq!(spec.kinds, vec![MachineKind::OutOfOrder]);
        assert_eq!(spec.widths, vec![Width::Eight]);
        assert_eq!(spec.iq_budgets, vec![None]);
        assert_eq!(spec.dram_scales, vec![100]);
        assert_eq!(spec.workloads, workload_names());
        assert_eq!(spec.n, 20_000);
        assert_eq!(spec.seed, 42);
    }

    #[test]
    fn parses_a_full_spec() {
        let spec = CampaignSpec::from_json(
            r#"{
                "name": "iq-sweep", "mode": "sweep",
                "kinds": ["ooo", "ballerino", "b5"],
                "widths": [2, 8],
                "iq_budgets": [null, 32, 96],
                "dram_scales": [100, 200],
                "workloads": ["int_crunch", "pointer_chase"],
                "n": 4000, "seed": 7
            }"#,
        )
        .unwrap();
        assert_eq!(spec.name, "iq-sweep");
        assert_eq!(spec.mode, CampaignMode::Sweep);
        assert_eq!(spec.kinds.len(), 3);
        assert_eq!(spec.kinds[2], MachineKind::BallerinoN(5));
        assert_eq!(spec.iq_budgets, vec![None, Some(32), Some(96)]);
        assert_eq!(spec.workloads, vec!["int_crunch", "pointer_chase"]);
        assert_eq!(spec.n, 4000);
        assert_eq!(spec.seed, 7);
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            r#"{}"#,                                        // kinds required
            r#"{"kinds": []}"#,                             // kinds empty
            r#"{"kinds": ["warp-drive"]}"#,                 // unknown kind
            r#"{"kinds": ["ooo"], "widths": [3]}"#,         // bad width
            r#"{"kinds": ["ooo"], "mode": "turbo"}"#,       // bad mode
            r#"{"kinds": ["ooo"], "workloads": ["nope"]}"#, // unknown workload
            r#"{"kinds": ["ooo"], "workloads": []}"#,       // empty workloads
            r#"{"kinds": ["ooo"], "n": 1}"#,                // n out of range
            r#"["ooo"]"#,                                   // not an object
        ] {
            assert!(CampaignSpec::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn smoke_campaign_cell_count() {
        // 3 kinds × 2 widths × 1 IQ × 2 DRAM = 12 points × 3 workloads.
        assert_eq!(CampaignSpec::smoke().cells().len(), 36);
    }

    #[test]
    fn sweep_mode_prunes_the_grid() {
        let mut spec = CampaignSpec::smoke();
        spec.n = 1_000;
        let full = spec.cells().len();
        spec.mode = CampaignMode::Sweep;
        let pruned = spec.cells().len();
        assert!(pruned <= full);
        assert!(pruned > 0, "triage must keep at least the frontier");
    }
}
