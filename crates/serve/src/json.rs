//! A minimal JSON reader/writer for campaign specs and journal lines.
//!
//! The workspace is deliberately std-only (see DESIGN.md §7), so the
//! service hand-rolls the little JSON it needs: a recursive-descent
//! parser into a dynamic [`Json`] value, plus string escaping for the
//! canonical writer in `journal`. Numbers are kept as `f64` — campaign
//! specs and journal records only carry integers small enough to round
//! trip exactly (< 2⁵³).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers round trip exactly below 2⁵³).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list (specs are small; no map
    /// needed, and preserving order keeps error messages readable).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if this is a number that
    /// is one (rejects fractions, negatives and values above 2⁵³).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

/// Escapes `s` for embedding in a JSON string literal (quotes not
/// included). Control characters use `\u00XX`; everything else is
/// passed through (output is UTF-8, which JSON permits raw).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected '{}' at byte {}", *c as char, pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into());
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed for specs or
                        // journal keys; reject rather than mis-decode.
                        let c = char::from_u32(code).ok_or("surrogate \\u escape")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut v = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(v));
    }
    loop {
        v.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(v));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x\ny"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn integers_round_trip() {
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }
}
