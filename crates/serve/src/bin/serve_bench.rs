//! The campaign service CLI: run a campaign (or one shard of one),
//! streaming canonical JSONL records as cells complete, or merge
//! per-shard outputs into the canonical result file.
//!
//! ```sh
//! serve_bench [--spec FILE | --smoke] [--sweep] [--out FILE]
//!             [--journal FILE] [--halt-after N] [--quiet]
//! serve_bench --merge FILE...
//! ```
//!
//! * `--spec FILE` — campaign spec JSON (see README § "Serving
//!   campaigns"); default is the built-in smoke campaign.
//! * `--sweep` — override the spec's mode to tier-0-triaged sweep.
//! * `--out FILE` — stream records there instead of stdout.
//! * `--journal FILE` — checkpoint journal; rerunning with the same
//!   journal resumes instead of recomputing.
//! * `--halt-after N` — crash injection: stop after N newly-executed
//!   cells (exit code 3). Pair with `--journal`, then rerun to resume.
//! * `--merge FILE...` — read per-shard JSONL files, verify they agree,
//!   and print the canonical key-sorted union to stdout.
//!
//! Environment: `BALLERINO_SHARD=i/n` selects this process's slice;
//! `BALLERINO_THREADS`, `BALLERINO_SERVE_MAILBOX`,
//! `BALLERINO_SERVE_RETRIES`, `BALLERINO_SERVE_BACKOFF_MS` tune the
//! pool (see the README knob table).
//!
//! Exit codes: 0 done, 1 usage/spec error, 2 cells failed permanently,
//! 3 halted early (crash injection).

use ballerino_serve::{
    merge_records, parse_records, run_campaign, run_cell, to_jsonl, CampaignMode, CampaignSpec,
    EngineConfig,
};
use std::io::Write;
use std::path::PathBuf;

struct Args {
    spec_path: Option<PathBuf>,
    sweep: bool,
    out: Option<PathBuf>,
    journal: Option<PathBuf>,
    halt_after: Option<usize>,
    quiet: bool,
    merge: Vec<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_bench [--spec FILE | --smoke] [--sweep] [--out FILE]\n\
         \x20                  [--journal FILE] [--halt-after N] [--quiet]\n\
         \x20      serve_bench --merge FILE..."
    );
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut args = Args {
        spec_path: None,
        sweep: false,
        out: None,
        journal: None,
        halt_after: None,
        quiet: false,
        merge: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spec" => args.spec_path = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--smoke" => args.spec_path = None,
            "--sweep" => args.sweep = true,
            "--out" => args.out = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--journal" => args.journal = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--halt-after" => {
                args.halt_after = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--quiet" => args.quiet = true,
            "--merge" => {
                args.merge = it.by_ref().map(PathBuf::from).collect();
                if args.merge.is_empty() {
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn merge_mode(paths: &[PathBuf]) -> ! {
    let mut sets = Vec::new();
    for p in paths {
        match std::fs::read_to_string(p) {
            Ok(text) => sets.push(parse_records(&text)),
            Err(e) => {
                eprintln!("serve_bench: {}: {e}", p.display());
                std::process::exit(1);
            }
        }
    }
    match merge_records(&sets) {
        Ok(merged) => {
            print!("{}", to_jsonl(&merged));
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("serve_bench: merge conflict: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    if !args.merge.is_empty() {
        merge_mode(&args.merge);
    }

    let mut spec = match &args.spec_path {
        None => CampaignSpec::smoke(),
        Some(p) => {
            let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("serve_bench: {}: {e}", p.display());
                std::process::exit(1);
            });
            CampaignSpec::from_json(&text).unwrap_or_else(|e| {
                eprintln!("serve_bench: bad spec {}: {e}", p.display());
                std::process::exit(1);
            })
        }
    };
    if args.sweep {
        spec.mode = CampaignMode::Sweep;
    }

    let mut cfg = EngineConfig::from_env().unwrap_or_else(|e| {
        eprintln!("serve_bench: {e}");
        std::process::exit(1);
    });
    cfg.halt_after = args.halt_after;

    let cells = spec.cells();
    if !args.quiet {
        eprintln!(
            "campaign '{}': {} cells ({} points × {} workloads), shard {}/{}, {} workers",
            spec.name,
            cells.len(),
            cells.len() / spec.workloads.len().max(1),
            spec.workloads.len(),
            cfg.shard.index,
            cfg.shard.count,
            cfg.workers
        );
    }

    // Stream records as they complete: canonical JSONL to --out or
    // stdout, progress to stderr so the record stream stays clean.
    let mut out: Box<dyn Write> = match &args.out {
        Some(p) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(p).unwrap_or_else(|e| {
                eprintln!("serve_bench: {}: {e}", p.display());
                std::process::exit(1);
            }),
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    let total = cells.iter().filter(|c| cfg.shard.owns(c)).count();
    let mut streamed = 0usize;
    let report = run_campaign(&cells, &cfg, args.journal.as_deref(), run_cell, |rec| {
        writeln!(out, "{}", rec.to_line()).expect("write record");
        streamed += 1;
        if !args.quiet && (streamed.is_multiple_of(16) || streamed == total) {
            eprintln!("  {streamed}/{total} cells done");
        }
    })
    .unwrap_or_else(|e| {
        eprintln!("serve_bench: {e}");
        std::process::exit(1);
    });
    out.flush().expect("flush records");

    if !args.quiet {
        eprintln!(
            "done: {} records ({} replayed from journal, {} executed, {} coalesced, {} retries){}",
            report.records.len(),
            report.replayed,
            report.executed,
            report.coalesced,
            report.retries,
            if report.halted { " [halted]" } else { "" }
        );
    }
    if !report.failed.is_empty() {
        eprintln!(
            "serve_bench: {} cells failed permanently:",
            report.failed.len()
        );
        for key in &report.failed {
            eprintln!("  {key}");
        }
        std::process::exit(2);
    }
    if report.halted {
        std::process::exit(3);
    }
}
