//! Cell records and the checkpoint journal.
//!
//! Every completed cell becomes one [`CellRecord`], serialized as one
//! canonical JSONL line — fixed field order, no whitespace, integers
//! only — so that "same result set" and "byte-identical file" coincide
//! once lines are sorted by key. The journal is an append-only file of
//! those lines; on restart the engine replays it and re-runs only the
//! cells that are missing. A torn final line (the process died
//! mid-write) parses as garbage and is skipped, which is exactly the
//! right recovery: that cell simply runs again.

use crate::json::{self, escape};
use ballerino_sim::SimResult;
use std::io::{BufRead, Write};
use std::path::Path;

/// The result of one simulation cell, as journaled and streamed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// The cell's canonical key (`ballerino_bench::SimCell::key`).
    pub key: String,
    /// Cycles simulated.
    pub cycles: u64,
    /// μops committed.
    pub committed: u64,
    /// Branch mispredictions observed.
    pub mispredicts: u64,
    /// Memory-order violation squashes.
    pub violations: u64,
}

impl CellRecord {
    /// Builds a record from a simulation result.
    pub fn from_result(key: String, r: &SimResult) -> CellRecord {
        CellRecord {
            key,
            cycles: r.cycles,
            committed: r.committed,
            mispredicts: r.mispredicts,
            violations: r.violations,
        }
    }

    /// The canonical JSONL line (no trailing newline). Field order and
    /// spacing are fixed: merged outputs are compared byte-for-byte.
    pub fn to_line(&self) -> String {
        format!(
            r#"{{"key":"{}","cycles":{},"committed":{},"mispredicts":{},"violations":{}}}"#,
            escape(&self.key),
            self.cycles,
            self.committed,
            self.mispredicts,
            self.violations
        )
    }

    /// Parses one journal/JSONL line; `None` for corrupt or truncated
    /// lines (the caller skips them — the cell just re-runs).
    pub fn parse_line(line: &str) -> Option<CellRecord> {
        let doc = json::parse(line.trim()).ok()?;
        Some(CellRecord {
            key: doc.get("key")?.as_str()?.to_string(),
            cycles: doc.get("cycles")?.as_u64()?,
            committed: doc.get("committed")?.as_u64()?,
            mispredicts: doc.get("mispredicts")?.as_u64()?,
            violations: doc.get("violations")?.as_u64()?,
        })
    }
}

/// Parses JSONL text into records, silently skipping blank and corrupt
/// lines (a crash can tear the final line of a journal).
pub fn parse_records(text: &str) -> Vec<CellRecord> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(CellRecord::parse_line)
        .collect()
}

/// Reads a journal file; a missing file is an empty journal.
pub fn read_journal(path: &Path) -> std::io::Result<Vec<CellRecord>> {
    match std::fs::File::open(path) {
        Ok(f) => {
            let mut out = Vec::new();
            for line in std::io::BufReader::new(f).lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                if let Some(rec) = CellRecord::parse_line(&line) {
                    out.push(rec);
                }
            }
            Ok(out)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// An append-only journal writer: one flushed line per record, so every
/// record written before a crash survives it.
pub struct JournalWriter {
    file: std::fs::File,
}

impl JournalWriter {
    /// Opens (or creates) the journal for appending.
    pub fn append_to(path: &Path) -> std::io::Result<JournalWriter> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JournalWriter { file })
    }

    /// Appends one record and flushes it to the OS.
    pub fn write(&mut self, rec: &CellRecord) -> std::io::Result<()> {
        writeln!(self.file, "{}", rec.to_line())?;
        self.file.flush()
    }
}

/// Merges record sets into one canonical, key-sorted set: duplicates
/// with identical payloads collapse (shards overlap only via replayed
/// journals, which carry the same deterministic results); duplicates
/// with *conflicting* payloads are an error — that means two runs
/// disagreed on a deterministic simulation, which must never pass
/// silently.
pub fn merge_records(sets: &[Vec<CellRecord>]) -> Result<Vec<CellRecord>, String> {
    let mut by_key: std::collections::BTreeMap<&str, &CellRecord> =
        std::collections::BTreeMap::new();
    for set in sets {
        for rec in set {
            match by_key.get(rec.key.as_str()) {
                None => {
                    by_key.insert(&rec.key, rec);
                }
                Some(prev) if *prev == rec => {}
                Some(prev) => {
                    return Err(format!(
                        "conflicting records for '{}': {} vs {}",
                        rec.key,
                        prev.to_line(),
                        rec.to_line()
                    ));
                }
            }
        }
    }
    Ok(by_key.into_values().cloned().collect())
}

/// Renders records as canonical JSONL (one line per record, trailing
/// newline after each).
pub fn to_jsonl(records: &[CellRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&rec.to_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: &str, cycles: u64) -> CellRecord {
        CellRecord {
            key: key.into(),
            cycles,
            committed: 2000,
            mispredicts: 17,
            violations: 0,
        }
    }

    #[test]
    fn lines_round_trip() {
        let r = rec("OoO/8w/iqdflt/dram100/int_crunch/n2000/s42", 12345);
        assert_eq!(CellRecord::parse_line(&r.to_line()), Some(r));
    }

    #[test]
    fn line_shape_is_pinned() {
        // Byte-identity of merged outputs depends on this exact shape.
        assert_eq!(
            rec("k", 5).to_line(),
            r#"{"key":"k","cycles":5,"committed":2000,"mispredicts":17,"violations":0}"#
        );
    }

    #[test]
    fn torn_tail_lines_are_skipped() {
        let text = format!(
            "{}\n{}\n{}",
            rec("a", 1).to_line(),
            rec("b", 2).to_line(),
            r#"{"key":"c","cyc"#
        ); // torn mid-write
        let recs = parse_records(&text);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].key, "b");
    }

    #[test]
    fn merge_unions_sorts_and_dedups() {
        let a = vec![rec("b", 2), rec("a", 1)];
        let b = vec![rec("c", 3), rec("a", 1)];
        let merged = merge_records(&[a, b]).unwrap();
        assert_eq!(
            merged.iter().map(|r| r.key.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn merge_rejects_conflicting_duplicates() {
        let a = vec![rec("a", 1)];
        let b = vec![rec("a", 999)];
        assert!(merge_records(&[a, b]).is_err());
    }

    #[test]
    fn journal_file_round_trips_and_survives_a_torn_tail() {
        let dir =
            std::env::temp_dir().join(format!("ballerino-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut w = JournalWriter::append_to(&path).unwrap();
        w.write(&rec("a", 1)).unwrap();
        w.write(&rec("b", 2)).unwrap();
        drop(w);
        // Simulate a crash mid-append.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"key\":\"c\",\"cy").unwrap();
        }
        let recs = read_journal(&path).unwrap();
        assert_eq!(recs, vec![rec("a", 1), rec("b", 2)]);
        // Missing file = empty journal.
        assert_eq!(read_journal(&dir.join("nope.jsonl")).unwrap(), vec![]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
