//! # ballerino-serve
//!
//! The campaign service: a job engine that accepts simulation
//! *campaigns* — a design-space grid × workload suite, described by a
//! [`CampaignSpec`] JSON document — decomposes them into independent
//! cells (`ballerino_bench::SimCell`), and executes them on a
//! supervised worker pool with the machinery a long-running service
//! needs and a one-shot harness doesn't:
//!
//! * request **dedup** (identical cells coalesce; traces and DAGs come
//!   from the process-wide `TraceCache`),
//! * **bounded mailboxes** (the feeder blocks on a full dispatch queue
//!   — backpressure instead of unbounded buffering),
//! * per-cell **retry with exponential backoff** under `catch_unwind`
//!   (a poisoned cell fails alone; it cannot take down the campaign),
//! * incremental **result streaming** (canonical JSONL records as cells
//!   complete),
//! * **checkpoint/resume** (an append-only journal; restart replays it
//!   and runs only the missing cells),
//! * horizontal **sharding** (`BALLERINO_SHARD=i/n` partitions cells by
//!   stable FNV-1a key hash — processes coordinate through the spec
//!   alone).
//!
//! The determinism contract, pinned by `tests/determinism.rs` and the
//! CI serve-smoke job: the merged, key-sorted record set of a campaign
//! is **byte-identical** as canonical JSONL no matter the shard count,
//! worker count, arrival order, or crash/resume history.
//!
//! See ARCHITECTURE.md § "The campaign service" for the design and
//! README § "Serving campaigns" for a quickstart; the `serve_bench`
//! binary is the CLI front end.

#![warn(missing_docs)]

pub mod engine;
pub mod journal;
pub mod json;
pub mod spec;

pub use engine::{run_campaign, run_cell, CampaignReport, EngineConfig, Shard};
pub use journal::{
    merge_records, parse_records, read_journal, to_jsonl, CellRecord, JournalWriter,
};
pub use spec::{CampaignMode, CampaignSpec};
