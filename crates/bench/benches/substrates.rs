//! Criterion micro-benchmarks of the substrate structures: cache
//! hierarchy walks, DRAM accesses, TAGE prediction, renaming, and the
//! workload generator.

use ballerino_frontend::{Renamer, Tage};
use ballerino_isa::{ArchReg, MicroOp};
use ballerino_mem::{AccessKind, Hierarchy, MemConfig};
use ballerino_workloads::workload;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("sequential_loads", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(&MemConfig::default());
            let mut t = 0u64;
            for i in 0..10_000u64 {
                let (done, _) = h.access(0x1000_0000 + i * 64, 0x400, t, AccessKind::Load);
                t = done;
            }
            t
        })
    });
    g.bench_function("random_loads", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(&MemConfig::default());
            let mut x = 88172645463325252u64;
            let mut t = 0u64;
            for _ in 0..10_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let (done, _) =
                    h.access(0x1000_0000 + x % (8 << 20), 0x400, t, AccessKind::Load);
                t = done.min(t + 4);
            }
            t
        })
    });
    g.finish();
}

fn bench_tage(c: &mut Criterion) {
    let mut g = c.benchmark_group("tage");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("predict_update", |b| {
        b.iter(|| {
            let mut t = Tage::new();
            let mut wrong = 0u64;
            for i in 0..10_000u64 {
                let pc = 0x400 + (i % 32) * 4;
                let p = t.predict(pc);
                if !t.update(pc, p, i % 7 != 0) {
                    wrong += 1;
                }
            }
            wrong
        })
    });
    g.finish();
}

fn bench_rename(c: &mut Criterion) {
    let mut g = c.benchmark_group("rename");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("rename_release", |b| {
        b.iter(|| {
            let mut r = Renamer::new(180, 168);
            for i in 0..10_000u64 {
                let op = MicroOp::alu(
                    i * 4,
                    ArchReg::int((i % 24) as u16),
                    [Some(ArchReg::int(((i + 1) % 24) as u16)), None],
                );
                let ren = r.rename(&op).expect("regs available");
                r.release(ren.prev_dst.expect("alu has dst"));
            }
        })
    });
    g.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_gen");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("pointer_chase", |b| b.iter(|| workload("pointer_chase", 20_000, 42)));
    g.bench_function("gemm_blocked", |b| b.iter(|| workload("gemm_blocked", 20_000, 42)));
    g.finish();
}

criterion_group!(benches, bench_hierarchy, bench_tage, bench_rename, bench_workloads);
criterion_main!(benches);
