//! Std-only micro-benchmarks of the substrate structures: cache
//! hierarchy walks, DRAM accesses, TAGE prediction, renaming, and the
//! workload generator.
//!
//! Run with `cargo bench --bench substrates`.

use ballerino_frontend::{Renamer, Tage};
use ballerino_isa::{ArchReg, MicroOp};
use ballerino_mem::{AccessKind, Hierarchy, MemConfig};
use ballerino_workloads::workload;
use std::time::Instant;

const REPS: usize = 5;

/// Times `f` (best of [`REPS`] after one warmup) and prints a row with
/// throughput normalized to `elems` operations per run.
fn bench<F: FnMut() -> u64>(name: &str, elems: u64, mut f: F) {
    let _ = f();
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..REPS {
        let start = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    println!(
        "{:<24}{:>12.3}{:>14.2}   (sink {sink:#x})",
        name,
        best * 1e3,
        elems as f64 / best / 1e6,
    );
}

fn main() {
    println!("{:<24}{:>12}{:>14}", "benchmark", "ms/run", "Mops/s");

    bench("seq_loads", 10_000, || {
        let mut h = Hierarchy::new(&MemConfig::default());
        let mut t = 0u64;
        for i in 0..10_000u64 {
            let (done, _) = h.access(0x1000_0000 + i * 64, 0x400, t, AccessKind::Load);
            t = done;
        }
        t
    });

    bench("random_loads", 10_000, || {
        let mut h = Hierarchy::new(&MemConfig::default());
        let mut x = 88172645463325252u64;
        let mut t = 0u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let (done, _) = h.access(0x1000_0000 + x % (8 << 20), 0x400, t, AccessKind::Load);
            t = done.min(t + 4);
        }
        t
    });

    // The three regimes the memory fast path targets (see
    // ARCHITECTURE.md "The memory fast path"): hot-line re-touch served
    // by the line filter / MRU way, streaming evictions that constantly
    // invalidate it, and MSHR-merge storms on one L1 set.
    bench("hier_l1_retouch", 100_000, || {
        let mut h = Hierarchy::new(&MemConfig::default());
        let mut sink = 0u64;
        for i in 0..100_000u64 {
            // 8 hot lines, heavily biased toward re-touching the last one.
            let line = if i % 8 == 0 { i / 8 % 8 } else { i % 2 };
            let (done, _) = h.access(0x20_0000 + line * 64, 0x400, i, AccessKind::Load);
            sink = sink.wrapping_add(done);
        }
        sink
    });

    bench("hier_stream_evict", 100_000, || {
        let mut h = Hierarchy::new(&MemConfig::default());
        let mut t = 0u64;
        for i in 0..100_000u64 {
            let (done, _) = h.access(0x100_0000 + i * 64, 0x404, t, AccessKind::Load);
            t = done.min(t + 2);
        }
        t
    });

    bench("hier_mshr_merge_storm", 100_000, || {
        let mut h = Hierarchy::new(&MemConfig::default());
        let mut t = 0u64;
        let mut sink = 0u64;
        // Round-robin over 16 lines aliasing into one 64-set L1 set at
        // 1-cycle spacing: re-touches race in-flight fills, files run full.
        for i in 0..100_000u64 {
            t += 1;
            let line = (i % 16) * 64 * 257;
            let (done, _) = h.access(line * 64, 0x440, t, AccessKind::Load);
            sink = sink.wrapping_add(done);
        }
        sink.wrapping_add(h.l1d.mshrs.merges)
    });

    bench("tage_predict_update", 10_000, || {
        let mut t = Tage::new();
        let mut wrong = 0u64;
        for i in 0..10_000u64 {
            let pc = 0x400 + (i % 32) * 4;
            let p = t.predict(pc);
            if !t.update(pc, p, i % 7 != 0) {
                wrong += 1;
            }
        }
        wrong
    });

    bench("rename_release", 10_000, || {
        let mut r = Renamer::new(180, 168);
        for i in 0..10_000u64 {
            let op = MicroOp::alu(
                i * 4,
                ArchReg::int((i % 24) as u16),
                [Some(ArchReg::int(((i + 1) % 24) as u16)), None],
            );
            let ren = r.rename(&op).expect("regs available");
            r.release(ren.prev_dst.expect("alu has dst"));
        }
        0
    });

    bench("gen_pointer_chase", 20_000, || {
        workload("pointer_chase", 20_000, 42).len() as u64
    });
    bench("gen_gemm_blocked", 20_000, || {
        workload("gemm_blocked", 20_000, 42).len() as u64
    });
}
