//! The work-stealing matrix runner must be a pure parallelization: the
//! thread count can change wall-clock time, never results. These tests
//! pin that, plus the trace-sharing contract it leans on.

use ballerino_bench::run_cells;
use ballerino_sim::{MachineKind, Width};
use ballerino_workloads::cached_workload;
use std::sync::Arc;

const N: usize = 1500;
const SEED: u64 = 42;

/// A single worker and an oversubscribed pool must produce identical
/// matrices — same layout, same cycles, same committed counts.
#[test]
fn thread_count_does_not_change_results() {
    let kinds = [
        MachineKind::OutOfOrder,
        MachineKind::Ballerino,
        MachineKind::Casino,
    ];
    let serial = run_cells(&kinds, Width::Eight, N, SEED, 1);
    let pooled = run_cells(&kinds, Width::Eight, N, SEED, 8);

    assert_eq!(serial.len(), pooled.len());
    for (row_s, row_p) in serial.iter().zip(&pooled) {
        assert_eq!(row_s.len(), row_p.len());
        for (s, p) in row_s.iter().zip(row_p) {
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.committed, p.committed);
            assert_eq!(s.violations, p.violations);
            assert_eq!(s.mispredicts, p.mispredicts);
        }
    }
}

/// Every kind consuming a workload must see the *same* `Arc<Trace>`:
/// after a matrix run, a cache lookup is pointer-equal to a repeat
/// lookup, and the trace contents match a fresh generation.
#[test]
fn matrix_cells_share_cached_traces() {
    let kinds = [MachineKind::OutOfOrder, MachineKind::Ces];
    let _ = run_cells(&kinds, Width::Eight, N, SEED, 2);

    let a = cached_workload("hash_join", N, SEED);
    let b = cached_workload("hash_join", N, SEED);
    assert!(Arc::ptr_eq(&a, &b), "same key must share one generation");

    let fresh = ballerino_workloads::workload("hash_join", N, SEED);
    assert_eq!(a.ops.len(), fresh.ops.len());
}
