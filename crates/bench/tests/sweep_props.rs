//! Property tests for the sweep engine's Pareto machinery and an
//! end-to-end check of the tiered pipeline on the smoke grid.

use ballerino_bench::{
    anchored_survivors, pareto_indices, point_cost, promote_indices, run_sweep, simulate_points,
    SweepSpec,
};

/// Deterministic xorshift64* — the tests need arbitrary-but-reproducible
/// inputs, not real entropy.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The conservativeness guarantee, stated directly: if every estimate is
/// within ±margin% of the true value, promotion on the *estimates* never
/// drops a point of the *true* frontier.
#[test]
fn promotion_never_drops_true_frontier_points() {
    for seed in 1..=50u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let margin = [0u32, 5, 10, 25, 40][(seed % 5) as usize];
        let n = 20 + rng.below(60) as usize;
        let costs: Vec<u64> = (0..n).map(|_| 10 + rng.below(50)).collect();
        let truth: Vec<u64> = (0..n).map(|_| 1_000 + rng.below(9_000)).collect();
        // Perturb each true value by at most ±margin% (integer-rounded
        // strictly inside the band).
        let est: Vec<u64> = truth
            .iter()
            .map(|&t| {
                let amp = t * margin as u64 / 100;
                let delta = if amp == 0 {
                    0
                } else {
                    rng.below(2 * amp + 1) as i64 - amp as i64
                };
                (t as i64 + delta) as u64
            })
            .collect();

        let promoted = promote_indices(&costs, &est, margin);
        for f in pareto_indices(&costs, &truth) {
            assert!(
                promoted.contains(&f),
                "seed {seed} margin {margin}: promotion dropped true-frontier point {f} \
                 (cost {}, true {}, est {})",
                costs[f],
                truth[f],
                est[f]
            );
        }
    }
}

/// The sim-anchored pipeline's one-sided guarantee, simulated in
/// miniature: run the anchor-then-incremental-promotion loop with a
/// synthetic truth table as the "simulator". If no estimate *over*shoots
/// its true value by more than margin% (underestimation is unbounded —
/// here up to 40% below truth), the surviving simulated set contains the
/// entire true frontier. This is exactly the asymmetry that lets the
/// committed default margin sit far below the per-class error bounds.
#[test]
fn anchored_promotion_tolerates_unbounded_underestimation() {
    for seed in 1..=50u64 {
        let mut rng = Rng(seed * 0x0123_4567_89AB_CDEF + 1);
        let margin = [0u32, 3, 6, 10, 15][(seed % 5) as usize];
        let n = 20 + rng.below(60) as usize;
        let costs: Vec<u64> = (0..n).map(|_| 10 + rng.below(30)).collect();
        let truth: Vec<u64> = (0..n).map(|_| 1_000 + rng.below(9_000)).collect();
        // Overshoot strictly below margin%, undershoot up to 40%.
        let est: Vec<u64> = truth
            .iter()
            .map(|&t| {
                let over = t * margin as u64 / 100;
                let under = t * 2 / 5;
                let delta = rng.below(over + under + 1) as i64 - under as i64;
                (t as i64 + delta) as u64
            })
            .collect();

        // The pipeline: simulate the estimated frontier, then promote
        // survivors one at a time, cheapest (then lowest-estimate)
        // first, exactly as `run_sweep` does.
        let mut sim: Vec<Option<u64>> = vec![None; n];
        for i in pareto_indices(&costs, &est) {
            sim[i] = Some(truth[i]);
        }
        loop {
            let mut survivors = anchored_survivors(&costs, &est, &sim, margin);
            if survivors.is_empty() {
                break;
            }
            survivors.sort_by_key(|&i| (costs[i], est[i]));
            sim[survivors[0]] = Some(truth[survivors[0]]);
        }

        for f in pareto_indices(&costs, &truth) {
            assert!(
                sim[f].is_some(),
                "seed {seed} margin {margin}: anchored promotion dropped true-frontier \
                 point {f} (cost {}, true {}, est {})",
                costs[f],
                truth[f],
                est[f]
            );
        }
    }
}

/// Promotion is monotone in the margin: widening it never removes a
/// point from the promoted set.
#[test]
fn promotion_grows_with_margin() {
    let mut rng = Rng(0xDEAD_BEEF_CAFE_F00D);
    let n = 80;
    let costs: Vec<u64> = (0..n).map(|_| 10 + rng.below(40)).collect();
    let est: Vec<u64> = (0..n).map(|_| 1_000 + rng.below(5_000)).collect();
    let mut prev: Vec<usize> = Vec::new();
    for margin in [0u32, 2, 5, 10, 20, 40] {
        let cur = promote_indices(&costs, &est, margin);
        for i in &prev {
            assert!(
                cur.contains(i),
                "margin {margin} dropped previously promoted {i}"
            );
        }
        prev = cur;
    }
}

/// End to end on the smoke grid: the tiered sweep's frontier must equal
/// the frontier of exhaustively simulating every point, at the committed
/// default margin.
#[test]
fn tiered_smoke_sweep_matches_exhaustive_frontier() {
    let spec = SweepSpec::smoke();
    let points = spec.points();
    let outcome = run_sweep(&spec);

    let all_sim = simulate_points(&spec, &points);
    let costs: Vec<u64> = points.iter().map(point_cost).collect();
    let exhaustive = pareto_indices(&costs, &all_sim);

    assert_eq!(
        outcome.simulated_frontier(),
        exhaustive,
        "promoted frontier diverged from the exhaustive frontier at margin {}%",
        outcome.margin_pct
    );
    // The engine must actually triage: strictly fewer simulations than
    // the exhaustive pass (otherwise the tiering is vacuous).
    assert!(outcome.promoted.len() < points.len());
}
