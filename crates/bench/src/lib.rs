//! # ballerino-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (see DESIGN.md §3 for the index), plus Criterion
//! micro-benchmarks of the library itself.
//!
//! All binaries honor three environment variables:
//!
//! * `BALLERINO_N` — μops per workload (default 20 000; the paper runs
//!   300M-instruction SimPoints, so crank this up for smoother numbers),
//! * `BALLERINO_SEED` — workload generator seed (default 42),
//! * `BALLERINO_THREADS` — worker threads for the matrix runner
//!   (default: the host's available parallelism).
//!
//! ## Threading model
//!
//! [`run_matrix`] flattens the `kinds × workloads` matrix into a shared
//! list of independent cells and runs them on a fixed pool of
//! [`threads`] workers that *steal* work via an atomic cursor: each
//! worker repeatedly claims the next unclaimed cell index with a
//! `fetch_add` and simulates it. Traces come from the process-wide
//! [`ballerino_workloads::TraceCache`], so a workload trace is generated
//! once per `(name, n, seed)` no matter how many machine kinds consume
//! it, and workers share the same `Arc<Trace>` instead of cloning.
//! Results are written back by cell index, so the output layout — and,
//! because every simulation is single-threaded and deterministic, every
//! cycle count — is independent of the thread count.
//!
//! ## `BENCH_simthroughput.json` (written by the `perf_smoke` binary)
//!
//! ```json
//! {
//!   "bench": "simthroughput",
//!   "git_sha": "69f6e61",       // commit of the run ("unknown" outside git)
//!   "date": "2026-08-06",       // UTC date of the run
//!   "n": 20000,                 // μops per workload
//!   "seed": 42,
//!   "threads": 1,               // pool size used for the "new" side
//!   "cycles_skipped": 812345,   // event-horizon fast-forwards, new side
//!   "total_cycles": 2123456,    // simulated cycles, new side
//!   "baseline_wall_s": 5.317,   // legacy runner × frozen seed pipeline
//!   "new_wall_s": 2.656,        // work-stealing runner × slab pipeline
//!   "speedup": 2.0019,          // baseline_wall_s / new_wall_s
//!   "cycle_mismatches": 0,      // any non-zero ⇒ behavioral drift ⇒ exit 1
//!   "cells": [                  // one per (kind, workload), kind-major
//!     {"kind": "OoO", "workload": "stream_triad", "cycles": 9741,
//!      "committed": 20000, "cycles_skipped": 1234, "host_wall_s": 0.0123,
//!      "baseline_host_wall_s": 0.0217,
//!      "sim_uops_per_sec": 1626016.3, "sim_cycles_per_sec": 793495.9}
//!   ]
//! }
//! ```
//!
//! Both sides simulate every cell; per-cell cycle counts must agree
//! exactly (the refactor is behavior-preserving), so `speedup` is a
//! pure host-throughput ratio.

#![warn(missing_docs)]

pub mod cells;
pub mod provenance;
pub mod sweep;

pub use cells::{
    calib_kinds, enumerate_cells, fig11_kinds, fig12_kinds, fig15_kinds, fnv1a, grid_points,
    kind_from_name, sweep_kinds, width_from_str, KindInfo, SimCell, KIND_REGISTRY,
};
pub use provenance::Provenance;
pub use sweep::{
    anchored_survivors, pareto_indices, point_cost, promote_indices, run_sweep, simulate_points,
    tier0_scores, SweepOutcome, SweepSpec,
};

use ballerino_sim::stats::geomean;
use ballerino_sim::{MachineKind, SimResult, Width};
use ballerino_workloads::{workload, workload_names};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// μops per workload (env `BALLERINO_N`, default 20 000).
pub fn suite_len() -> usize {
    std::env::var("BALLERINO_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000)
}

/// Workload seed (env `BALLERINO_SEED`, default 42).
pub fn seed() -> u64 {
    std::env::var("BALLERINO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Worker threads for the matrix runner (env `BALLERINO_THREADS`,
/// default: the host's available parallelism; always at least 1).
pub fn threads() -> usize {
    std::env::var("BALLERINO_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

/// Runs several machine kinds over the suite on `threads` work-stealing
/// workers; returns `[kind][workload]`.
///
/// The result is bit-for-bit independent of `threads` — workers only
/// race for *which* cell to claim next, never over a cell's inputs or
/// outputs.
pub fn run_matrix_with_threads(
    kinds: &[MachineKind],
    width: Width,
    threads: usize,
) -> Vec<Vec<SimResult>> {
    run_cells(kinds, width, suite_len(), seed(), threads)
}

/// Runs `f` over `items` on a fixed pool of `threads` work-stealing
/// workers (the atomic-cursor scheme described in the module docs);
/// returns results in item order. Every pooled runner in this crate —
/// the kind×workload matrix, the sweep engine's two tiers, the fig
/// binaries' custom grids — funnels through here, so they all inherit
/// `BALLERINO_THREADS` semantics from one place.
pub fn run_pool<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    break;
                };
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("item not processed")
        })
        .collect()
}

/// [`run_matrix_with_threads`] with explicit workload length and seed
/// (instead of the `BALLERINO_N` / `BALLERINO_SEED` environment).
pub fn run_cells(
    kinds: &[MachineKind],
    width: Width,
    n: usize,
    s: u64,
    threads: usize,
) -> Vec<Vec<SimResult>> {
    let names = workload_names();
    let points = grid_points(kinds, &[width], &[None], &[100]);
    let cells = enumerate_cells(&points, &names, n, s);

    // SimCell::run shares the cached trace and DAG per (workload, n,
    // seed), so every machine kind consumes one generation/resolution.
    let mut out = run_pool(&cells, threads, SimCell::run);

    let mut rows = Vec::with_capacity(kinds.len());
    for _ in kinds {
        let rest = out.split_off(names.len());
        rows.push(out);
        out = rest;
    }
    rows
}

/// Runs several machine kinds over the suite (the [`threads`]-sized
/// work-stealing pool); returns `[kind][workload]`.
pub fn run_matrix(kinds: &[MachineKind], width: Width) -> Vec<Vec<SimResult>> {
    run_matrix_with_threads(kinds, width, threads())
}

/// Runs one machine kind over the whole suite at a width.
pub fn run_suite(kind: MachineKind, width: Width) -> Vec<SimResult> {
    run_matrix(&[kind], width).pop().expect("one row per kind")
}

/// The harness this crate shipped before the work-stealing runner: one
/// short-lived thread per workload *per kind*, each regenerating its
/// trace from scratch. Kept (generic over the per-cell run function) as
/// the baseline side of the `perf_smoke` throughput A/B.
pub fn run_matrix_legacy(
    kinds: &[MachineKind],
    width: Width,
    run: impl Fn(MachineKind, Width, &ballerino_isa::Trace) -> SimResult + Copy + Send + Sync,
) -> Vec<Vec<SimResult>> {
    let n = suite_len();
    let s = seed();
    let names = workload_names();
    kinds
        .iter()
        .map(|&kind| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = names
                    .iter()
                    .map(|wl| {
                        scope.spawn(move || {
                            let t = workload(wl, n, s);
                            run(kind, width, &t)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("simulation panicked"))
                    .collect()
            })
        })
        .collect()
}

/// Per-workload speedups of `results` over `base` (paired by index),
/// followed by the geometric mean as the final element.
pub fn speedups_with_geomean(results: &[SimResult], base: &[SimResult]) -> Vec<f64> {
    assert_eq!(results.len(), base.len());
    let mut v: Vec<f64> = results
        .iter()
        .zip(base)
        .map(|(r, b)| r.speedup_over(b))
        .collect();
    v.push(geomean(&v));
    v
}

/// Prints one markdown-style table row.
pub fn print_row(label: &str, vals: &[f64], width: usize, prec: usize) {
    print!("{label:<20}");
    for v in vals {
        print!("{v:>width$.prec$}");
    }
    println!();
}

/// Prints the table header: workload names plus `GEOMEAN`.
///
/// Labels wider than the column are truncated to `width - 1` *characters*
/// (not bytes, so multi-byte labels never split a UTF-8 sequence); at
/// `width <= 1` nothing of the label fits and only spacing is printed.
pub fn print_header(cols: &[&str], width: usize) {
    print!("{:<20}", "");
    for c in cols {
        let truncated = truncate_chars(c, width.saturating_sub(1));
        print!("{truncated:>width$}");
    }
    println!();
}

/// The first `max_chars` characters of `s` (all of `s` if it is short
/// enough), never splitting inside a multi-byte character.
fn truncate_chars(s: &str, max_chars: usize) -> &str {
    match s.char_indices().nth(max_chars) {
        Some((byte_idx, _)) => &s[..byte_idx],
        None => s,
    }
}

/// Short column labels for the suite plus a geomean column.
pub fn workload_cols() -> Vec<&'static str> {
    let mut v = workload_names();
    v.push("GEOMEAN");
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert!(suite_len() >= 1000);
        let _ = seed();
        assert!(threads() >= 1);
    }

    #[test]
    fn workload_cols_end_with_geomean() {
        let cols = workload_cols();
        assert_eq!(*cols.last().unwrap(), "GEOMEAN");
        assert_eq!(cols.len(), 16);
    }

    #[test]
    fn truncate_chars_is_char_safe() {
        assert_eq!(truncate_chars("hello", 3), "hel");
        assert_eq!(truncate_chars("hello", 10), "hello");
        assert_eq!(truncate_chars("héllo", 2), "hé");
        assert_eq!(truncate_chars("μop-μop", 4), "μop-");
        assert_eq!(truncate_chars("anything", 0), "");
    }

    #[test]
    fn print_header_handles_degenerate_widths() {
        // Must not panic for tiny widths or non-ASCII labels (the seed
        // version byte-sliced at `width - 1`, panicking on both).
        print_header(&["alpha", "β-workload", "x"], 1);
        print_header(&["alpha", "β-workload"], 2);
        print_header(&["日本語ラベル"], 4);
    }
}
