//! # ballerino-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (see DESIGN.md §3 for the index), plus Criterion
//! micro-benchmarks of the library itself.
//!
//! All binaries honor two environment variables:
//!
//! * `BALLERINO_N` — μops per workload (default 20 000; the paper runs
//!   300M-instruction SimPoints, so crank this up for smoother numbers),
//! * `BALLERINO_SEED` — workload generator seed (default 42).

#![warn(missing_docs)]

use ballerino_sim::stats::geomean;
use ballerino_sim::{run_machine, MachineKind, SimResult, Width};
use ballerino_workloads::{workload, workload_names};

/// μops per workload (env `BALLERINO_N`, default 20 000).
pub fn suite_len() -> usize {
    std::env::var("BALLERINO_N").ok().and_then(|s| s.parse().ok()).unwrap_or(20_000)
}

/// Workload seed (env `BALLERINO_SEED`, default 42).
pub fn seed() -> u64 {
    std::env::var("BALLERINO_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Runs one machine kind over the whole suite at a width, one thread
/// per workload (simulations are independent and deterministic).
pub fn run_suite(kind: MachineKind, width: Width) -> Vec<SimResult> {
    let n = suite_len();
    let s = seed();
    let names = workload_names();
    std::thread::scope(|scope| {
        let handles: Vec<_> = names
            .iter()
            .map(|wl| {
                scope.spawn(move || {
                    let t = workload(wl, n, s);
                    run_machine(kind, width, &t)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("simulation panicked")).collect()
    })
}

/// Runs several machine kinds over the suite; returns `[kind][workload]`.
pub fn run_matrix(kinds: &[MachineKind], width: Width) -> Vec<Vec<SimResult>> {
    kinds.iter().map(|&k| run_suite(k, width)).collect()
}

/// Per-workload speedups of `results` over `base` (paired by index),
/// followed by the geometric mean as the final element.
pub fn speedups_with_geomean(results: &[SimResult], base: &[SimResult]) -> Vec<f64> {
    assert_eq!(results.len(), base.len());
    let mut v: Vec<f64> =
        results.iter().zip(base).map(|(r, b)| r.speedup_over(b)).collect();
    v.push(geomean(&v));
    v
}

/// Prints one markdown-style table row.
pub fn print_row(label: &str, vals: &[f64], width: usize, prec: usize) {
    print!("{label:<20}");
    for v in vals {
        print!("{v:>width$.prec$}");
    }
    println!();
}

/// Prints the table header: workload names plus `GEOMEAN`.
pub fn print_header(cols: &[&str], width: usize) {
    print!("{:<20}", "");
    for c in cols {
        let c = if c.len() >= width { &c[..width - 1] } else { c };
        print!("{c:>width$}");
    }
    println!();
}

/// Short column labels for the suite plus a geomean column.
pub fn workload_cols() -> Vec<&'static str> {
    let mut v = workload_names();
    v.push("GEOMEAN");
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert!(suite_len() >= 1000);
        let _ = seed();
    }

    #[test]
    fn workload_cols_end_with_geomean() {
        let cols = workload_cols();
        assert_eq!(*cols.last().unwrap(), "GEOMEAN");
        assert_eq!(cols.len(), 16);
    }
}
