//! Figure 16: energy efficiency (performance per energy, 1/EDP)
//! normalized to the 8-wide out-of-order core.
//!
//! Paper shape: Ballerino (Ballerino-12) is 9% (7%) above CES, 42% (39%)
//! above CASINO, 5% (3%) above FXA and 22% (20%) above OoO.

use ballerino_bench::{seed, suite_len};
use ballerino_energy::{DvfsLevel, EnergyModel};
use ballerino_sim::stats::geomean;
use ballerino_sim::{run_machine, MachineKind, Width};
use ballerino_workloads::{cached_workload, workload_names};

fn main() {
    println!("Fig. 16 — energy efficiency (1/EDP) normalized to OoO\n");
    let n = suite_len();
    let kinds = [
        MachineKind::Ces,
        MachineKind::Casino,
        MachineKind::Fxa,
        MachineKind::Ballerino,
        MachineKind::Ballerino12,
        MachineKind::OutOfOrder,
    ];
    let mut per_kind: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for wl in workload_names() {
        let t = cached_workload(wl, n, seed());
        let ooo = run_machine(MachineKind::OutOfOrder, Width::Eight, &t);
        let edp_ooo = EnergyModel::new(ooo.sizes, DvfsLevel::L4).edp(&ooo.energy);
        for (i, k) in kinds.iter().enumerate() {
            let r = run_machine(*k, Width::Eight, &t);
            let edp = EnergyModel::new(r.sizes, DvfsLevel::L4).edp(&r.energy);
            per_kind[i].push(edp_ooo / edp);
        }
    }
    for (i, k) in kinds.iter().enumerate() {
        println!("{:<14}{:>8.3}", k.label(), geomean(&per_kind[i]));
    }
    println!("\npaper: Ballerino 1.22, Ballerino-12 1.20, CES ≈1.12, CASINO ≈0.86, FXA ≈1.16");
}
