//! Figure 16: energy efficiency (performance per energy, 1/EDP)
//! normalized to the 8-wide out-of-order core.
//!
//! Simulation goes through the work-stealing pool (`run_cells`), so
//! `BALLERINO_THREADS` controls parallelism.
//!
//! Paper shape: Ballerino (Ballerino-12) is 9% (7%) above CES, 42% (39%)
//! above CASINO, 5% (3%) above FXA and 22% (20%) above OoO.

use ballerino_bench::{run_cells, seed, suite_len, threads};
use ballerino_energy::{DvfsLevel, EnergyModel};
use ballerino_sim::stats::geomean;
use ballerino_sim::{MachineKind, Width};

fn main() {
    println!("Fig. 16 — energy efficiency (1/EDP) normalized to OoO\n");
    let kinds = [
        MachineKind::Ces,
        MachineKind::Casino,
        MachineKind::Fxa,
        MachineKind::Ballerino,
        MachineKind::Ballerino12,
        MachineKind::OutOfOrder,
    ];
    let rows = run_cells(&kinds, Width::Eight, suite_len(), seed(), threads());
    let ooo = rows.last().expect("OoO row");
    let edp_ooo: Vec<f64> = ooo
        .iter()
        .map(|r| EnergyModel::new(r.sizes, DvfsLevel::L4).edp(&r.energy))
        .collect();
    for (k, row) in kinds.iter().zip(&rows) {
        let eff: Vec<f64> = row
            .iter()
            .zip(&edp_ooo)
            .map(|(r, base)| base / EnergyModel::new(r.sizes, DvfsLevel::L4).edp(&r.energy))
            .collect();
        println!("{:<14}{:>8.3}", k.label(), geomean(&eff));
    }
    println!("\npaper: Ballerino 1.22, Ballerino-12 1.20, CES ≈1.12, CASINO ≈0.86, FXA ≈1.16");
}
