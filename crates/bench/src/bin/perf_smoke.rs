//! Simulator-throughput smoke benchmark: A/B of the pre-overhaul harness
//! against the current one on the Fig. 11 matrix, emitting
//! `BENCH_simthroughput.json`.
//!
//! * **Baseline** — the seed harness, end to end: the legacy per-kind
//!   `thread::scope` runner (one short-lived thread per workload, traces
//!   regenerated once per kind) driving the frozen seed-layout pipeline
//!   ([`run_machine_reference`]: `HashMap` inflight/taint/waiters core,
//!   rescan-loop OoO select, per-cycle-allocating Ballerino issue and
//!   port arbitration).
//! * **New** — the work-stealing [`run_matrix`] pool (`BALLERINO_THREADS`
//!   workers, shared `TraceCache`) driving the slab-based
//!   [`ballerino_sim::run_machine`] pipeline.
//!
//! Both sides must produce byte-identical per-cell cycle counts — the
//! binary asserts this — so the wall-clock ratio is a pure throughput
//! number. See the crate docs for the JSON schema.
//!
//! Usage: `perf_smoke` (honors `BALLERINO_N` / `BALLERINO_SEED` /
//! `BALLERINO_THREADS`, plus `BALLERINO_MEM_NAIVE` to pin both sides to
//! the seed-exact memory lookup path for fast-path A/Bs and
//! `BALLERINO_NO_MACRO` to disable the macro-step engine on the new
//! side; `BALLERINO_REPS` overrides the repetition count, default 3 —
//! the JSON reports the median wall per side plus the min/max spread).
//! Exits non-zero on any cycle mismatch.

use ballerino_bench::{run_matrix, run_matrix_legacy, seed, suite_len, threads, Provenance};
use ballerino_sim::{run_machine_reference, MachineKind, SimResult, Width};
use ballerino_workloads::workload_names;
use std::fmt::Write as _;
use std::time::Instant;

/// Median of a small wall-clock sample (sorts in place).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite walls"));
    xs[xs.len() / 2]
}

fn main() {
    let kinds = MachineKind::FIG11;
    let width = Width::Eight;
    let names = workload_names();
    let mem_naive = ballerino_isa::env_flag("BALLERINO_MEM_NAIVE");
    let no_macro = ballerino_isa::env_flag("BALLERINO_NO_MACRO");
    let reps: usize = std::env::var("BALLERINO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(3);
    println!(
        "perf_smoke: {} kinds x {} workloads, N={}, seed={}, threads={}, mem={}, macro={}, reps={reps}",
        kinds.len(),
        names.len(),
        suite_len(),
        seed(),
        threads(),
        if mem_naive { "naive" } else { "fast" },
        if no_macro { "off" } else { "on" },
    );

    println!("running baseline (legacy runner x reference pipeline)...");
    let mut base_walls = Vec::with_capacity(reps);
    let mut base = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        base = run_matrix_legacy(&kinds, width, run_machine_reference);
        base_walls.push(t0.elapsed().as_secs_f64());
    }

    println!("running new (work-stealing runner x slab pipeline)...");
    let mut new_walls = Vec::with_capacity(reps);
    let mut new = Vec::new();
    for _ in 0..reps {
        let t1 = Instant::now();
        new = run_matrix(&kinds, width);
        new_walls.push(t1.elapsed().as_secs_f64());
    }

    let base_wall = median(&mut base_walls);
    let new_wall = median(&mut new_walls);

    let mut mismatches = 0usize;
    for (ki, &kind) in kinds.iter().enumerate() {
        for (wi, wl) in names.iter().enumerate() {
            let (b, n) = (&base[ki][wi], &new[ki][wi]);
            if b.cycles != n.cycles || b.committed != n.committed {
                eprintln!(
                    "MISMATCH {} / {}: baseline {} cycles / {} committed, new {} / {}",
                    kind.label(),
                    wl,
                    b.cycles,
                    b.committed,
                    n.cycles,
                    n.committed
                );
                mismatches += 1;
            }
        }
    }

    let speedup = base_wall / new_wall;
    let total_uops: u64 = new.iter().flatten().map(|r| r.committed).sum();
    let total_cycles: u64 = new.iter().flatten().map(|r| r.cycles).sum();
    println!(
        "baseline {base_wall:.3}s [{:.3}..{:.3}], new {new_wall:.3}s [{:.3}..{:.3}] \
         -> {speedup:.2}x ({:.2} M uops/s, {:.2} M cycles/s aggregate; medians of {reps})",
        base_walls[0],
        base_walls[reps - 1],
        new_walls[0],
        new_walls[reps - 1],
        total_uops as f64 / new_wall / 1e6,
        total_cycles as f64 / new_wall / 1e6
    );

    // Per-workload event-horizon skip ratio (skipped / simulated cycles,
    // aggregated over kinds on the new side).
    println!("skip ratio by workload:");
    for (wi, wl) in names.iter().enumerate() {
        let skipped: u64 = new.iter().map(|row| row[wi].cycles_skipped).sum();
        let cycles: u64 = new.iter().map(|row| row[wi].cycles).sum();
        println!(
            "  {wl:<18} {:.1}%",
            100.0 * skipped as f64 / cycles.max(1) as f64
        );
    }

    let json = render_json(
        &kinds,
        &names,
        &base,
        &new,
        &base_walls,
        &new_walls,
        speedup,
        mismatches,
    );
    let path = "BENCH_simthroughput.json";
    std::fs::write(path, json).expect("write BENCH_simthroughput.json");
    println!("wrote {path}");

    if mismatches > 0 {
        eprintln!("{mismatches} cycle-count mismatches — behavioral drift!");
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    kinds: &[MachineKind],
    names: &[&str],
    base: &[Vec<SimResult>],
    new: &[Vec<SimResult>],
    base_walls: &[f64],
    new_walls: &[f64],
    speedup: f64,
    mismatches: usize,
) -> String {
    // Both slices arrive sorted (the median computation sorts in place).
    let (base_wall, new_wall) = (
        base_walls[base_walls.len() / 2],
        new_walls[new_walls.len() / 2],
    );
    let total_skipped: u64 = new.iter().flatten().map(|r| r.cycles_skipped).sum();
    let total_macro: u64 = new.iter().flatten().map(|r| r.cycles_macro).sum();
    let total_cycles: u64 = new.iter().flatten().map(|r| r.cycles).sum();
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"simthroughput\",");
    s.push_str(&Provenance::capture().json_fields());
    let _ = writeln!(s, "  \"n\": {},", suite_len());
    let _ = writeln!(s, "  \"seed\": {},", seed());
    let _ = writeln!(s, "  \"threads\": {},", threads());
    let _ = writeln!(
        s,
        "  \"mem_naive\": {},",
        ballerino_isa::env_flag("BALLERINO_MEM_NAIVE")
    );
    let _ = writeln!(
        s,
        "  \"use_macro\": {},",
        !ballerino_isa::env_flag("BALLERINO_NO_MACRO")
    );
    let _ = writeln!(s, "  \"reps\": {},", base_walls.len());
    let _ = writeln!(s, "  \"cycles_skipped\": {total_skipped},");
    let _ = writeln!(s, "  \"cycles_macro\": {total_macro},");
    let _ = writeln!(s, "  \"total_cycles\": {total_cycles},");
    let _ = writeln!(s, "  \"baseline_wall_s\": {base_wall:.6},");
    let _ = writeln!(s, "  \"baseline_wall_min_s\": {:.6},", base_walls[0]);
    let _ = writeln!(
        s,
        "  \"baseline_wall_max_s\": {:.6},",
        base_walls[base_walls.len() - 1]
    );
    let _ = writeln!(s, "  \"new_wall_s\": {new_wall:.6},");
    let _ = writeln!(s, "  \"new_wall_min_s\": {:.6},", new_walls[0]);
    let _ = writeln!(
        s,
        "  \"new_wall_max_s\": {:.6},",
        new_walls[new_walls.len() - 1]
    );
    let _ = writeln!(s, "  \"speedup\": {speedup:.4},");
    let _ = writeln!(s, "  \"cycle_mismatches\": {mismatches},");
    s.push_str("  \"cells\": [\n");
    let mut first = true;
    for (ki, kind) in kinds.iter().enumerate() {
        for (wi, wl) in names.iter().enumerate() {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let r = &new[ki][wi];
            let b = &base[ki][wi];
            let _ = write!(
                s,
                "    {{\"kind\": \"{}\", \"workload\": \"{}\", \"cycles\": {}, \
                 \"committed\": {}, \"cycles_skipped\": {}, \"cycles_macro\": {}, \
                 \"host_wall_s\": {:.6}, \
                 \"baseline_host_wall_s\": {:.6}, \"sim_uops_per_sec\": {:.1}, \
                 \"sim_cycles_per_sec\": {:.1}}}",
                kind.label(),
                wl,
                r.cycles,
                r.committed,
                r.cycles_skipped,
                r.cycles_macro,
                r.host_wall_s,
                b.host_wall_s,
                r.sim_uops_per_sec(),
                r.sim_cycles_per_sec()
            );
        }
    }
    s.push_str("\n  ]\n}\n");
    s
}
