//! Simulator-throughput smoke benchmark: A/B of the pre-overhaul harness
//! against the current one on the Fig. 11 matrix, emitting
//! `BENCH_simthroughput.json`.
//!
//! * **Baseline** — the seed harness, end to end: the legacy per-kind
//!   `thread::scope` runner (one short-lived thread per workload, traces
//!   regenerated once per kind) driving the frozen seed-layout pipeline
//!   ([`run_machine_reference`]: `HashMap` inflight/taint/waiters core,
//!   rescan-loop OoO select, per-cycle-allocating Ballerino issue and
//!   port arbitration).
//! * **New** — the work-stealing [`run_matrix`] pool (`BALLERINO_THREADS`
//!   workers, shared `TraceCache`) driving the slab-based
//!   [`ballerino_sim::run_machine`] pipeline.
//!
//! Both sides must produce byte-identical per-cell cycle counts — the
//! binary asserts this — so the wall-clock ratio is a pure throughput
//! number. See the crate docs for the JSON schema.
//!
//! The binary also runs a second, targeted A/B — block-grant serving on
//! vs off (`use_block`) inside the macro-step engine, on the dense
//! out-of-order cells at a fixed N=20000 — and reports the per-cell
//! ratio plus the served-block-length histogram, so an engagement or
//! throughput miss is diagnosable from the artifact alone.
//!
//! Usage: `perf_smoke` (honors `BALLERINO_N` / `BALLERINO_SEED` /
//! `BALLERINO_THREADS`, plus `BALLERINO_MEM_NAIVE` to pin both sides to
//! the seed-exact memory lookup path for fast-path A/Bs,
//! `BALLERINO_NO_MACRO` to disable the macro-step engine on the new
//! side and `BALLERINO_NO_BLOCK` to disable block-grant serving inside
//! it; `BALLERINO_REPS` overrides the repetition count, default 3 —
//! the JSON reports the median wall per side plus the min/max spread).
//! Exits non-zero on any cycle mismatch.

use ballerino_bench::{run_matrix, run_matrix_legacy, seed, suite_len, threads, Provenance};
use ballerino_isa::TraceDag;
use ballerino_sim::{build_scheduler, run_machine_reference, Core, MachineKind, SimResult, Width};
use ballerino_workloads::{cached_workload, workload_names};
use std::fmt::Write as _;
use std::time::Instant;

/// Dense cells for the block-grant A/B: compute-bound workloads where
/// the macro-step engine fuses most cycles, on the flagship wake-fabric
/// machine.
const BLOCK_AB_WORKLOADS: [&str; 4] = ["gemm_blocked", "int_crunch", "mixed_media", "compress_lz"];
const BLOCK_AB_KIND: MachineKind = MachineKind::OutOfOrder;
const BLOCK_AB_N: usize = 20_000;

/// One dense cell of the block-grant A/B.
struct BlockAbCell {
    workload: &'static str,
    off_wall_s: f64,
    on_wall_s: f64,
    ratio: f64,
    block_cycles_pct: f64,
    block_len_hist: [u64; 8],
    mismatch: bool,
}

/// Runs one side of the block A/B (macro engine always on; only
/// `use_block` differs).
fn run_block_side(wl: &str, use_block: bool) -> SimResult {
    let trace = cached_workload(wl, BLOCK_AB_N, seed());
    let dag = TraceDag::resolve(&trace);
    let (mut cfg, sched, sizes) = build_scheduler(BLOCK_AB_KIND, Width::Eight);
    cfg.use_block = use_block;
    Core::new(cfg, sched, sizes).run_with_dag(&trace, Some(&dag))
}

/// Debug rendering with the fields that legitimately differ zeroed.
fn normalized(r: &SimResult) -> String {
    let mut z = r.clone();
    z.host_wall_s = 0.0;
    z.cycles_skipped = 0;
    z.cycles_macro = 0;
    z.cycles_block = 0;
    z.blocks_built = 0;
    z.blocks_invalidated = 0;
    z.block_len_hist = [0; 8];
    format!("{z:?}")
}

/// Runs the dense-cell block-grant A/B and returns one row per cell.
fn run_block_ab(reps: usize) -> Vec<BlockAbCell> {
    BLOCK_AB_WORKLOADS
        .iter()
        .map(|&wl| {
            let mut off_walls = Vec::with_capacity(reps);
            let mut on_walls = Vec::with_capacity(reps);
            let mut last_off = None;
            let mut last_on = None;
            for _ in 0..reps {
                let r = run_block_side(wl, false);
                off_walls.push(r.host_wall_s);
                last_off = Some(r);
                let r = run_block_side(wl, true);
                on_walls.push(r.host_wall_s);
                last_on = Some(r);
            }
            let (off, on) = (last_off.expect("reps >= 1"), last_on.expect("reps >= 1"));
            let off_wall_s = median(&mut off_walls);
            let on_wall_s = median(&mut on_walls);
            BlockAbCell {
                workload: wl,
                off_wall_s,
                on_wall_s,
                ratio: off_wall_s / on_wall_s,
                block_cycles_pct: 100.0 * on.cycles_block as f64 / on.cycles_macro.max(1) as f64,
                block_len_hist: on.block_len_hist,
                mismatch: normalized(&off) != normalized(&on),
            }
        })
        .collect()
}

/// Median of a small wall-clock sample (sorts in place).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite walls"));
    xs[xs.len() / 2]
}

fn main() {
    let kinds = MachineKind::FIG11;
    let width = Width::Eight;
    let names = workload_names();
    let mem_naive = ballerino_isa::env_flag("BALLERINO_MEM_NAIVE");
    let no_macro = ballerino_isa::env_flag("BALLERINO_NO_MACRO");
    let reps: usize = std::env::var("BALLERINO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(3);
    println!(
        "perf_smoke: {} kinds x {} workloads, N={}, seed={}, threads={}, mem={}, macro={}, reps={reps}",
        kinds.len(),
        names.len(),
        suite_len(),
        seed(),
        threads(),
        if mem_naive { "naive" } else { "fast" },
        if no_macro { "off" } else { "on" },
    );

    println!("running baseline (legacy runner x reference pipeline)...");
    let mut base_walls = Vec::with_capacity(reps);
    let mut base = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        base = run_matrix_legacy(&kinds, width, run_machine_reference);
        base_walls.push(t0.elapsed().as_secs_f64());
    }

    println!("running new (work-stealing runner x slab pipeline)...");
    let mut new_walls = Vec::with_capacity(reps);
    let mut new = Vec::new();
    for _ in 0..reps {
        let t1 = Instant::now();
        new = run_matrix(&kinds, width);
        new_walls.push(t1.elapsed().as_secs_f64());
    }

    let base_wall = median(&mut base_walls);
    let new_wall = median(&mut new_walls);

    let mut mismatches = 0usize;
    for (ki, &kind) in kinds.iter().enumerate() {
        for (wi, wl) in names.iter().enumerate() {
            let (b, n) = (&base[ki][wi], &new[ki][wi]);
            if b.cycles != n.cycles || b.committed != n.committed {
                eprintln!(
                    "MISMATCH {} / {}: baseline {} cycles / {} committed, new {} / {}",
                    kind.label(),
                    wl,
                    b.cycles,
                    b.committed,
                    n.cycles,
                    n.committed
                );
                mismatches += 1;
            }
        }
    }

    let speedup = base_wall / new_wall;
    let total_uops: u64 = new.iter().flatten().map(|r| r.committed).sum();
    let total_cycles: u64 = new.iter().flatten().map(|r| r.cycles).sum();
    println!(
        "baseline {base_wall:.3}s [{:.3}..{:.3}], new {new_wall:.3}s [{:.3}..{:.3}] \
         -> {speedup:.2}x ({:.2} M uops/s, {:.2} M cycles/s aggregate; medians of {reps})",
        base_walls[0],
        base_walls[reps - 1],
        new_walls[0],
        new_walls[reps - 1],
        total_uops as f64 / new_wall / 1e6,
        total_cycles as f64 / new_wall / 1e6
    );

    // Per-workload event-horizon skip ratio (skipped / simulated cycles,
    // aggregated over kinds on the new side).
    println!("skip ratio by workload:");
    for (wi, wl) in names.iter().enumerate() {
        let skipped: u64 = new.iter().map(|row| row[wi].cycles_skipped).sum();
        let cycles: u64 = new.iter().map(|row| row[wi].cycles).sum();
        println!(
            "  {wl:<18} {:.1}%",
            100.0 * skipped as f64 / cycles.max(1) as f64
        );
    }

    // Block-grant A/B: same pipeline, macro engine on both sides, only
    // `use_block` differs. Cells must stay byte-identical; the ratio and
    // served-length histogram diagnose what block serving buys (or
    // doesn't — a streaming front-end bounds block length at the next
    // dispatch acceptance, see ARCHITECTURE.md).
    println!(
        "running block-grant A/B (dense cells, {} x N={BLOCK_AB_N})...",
        BLOCK_AB_KIND.label()
    );
    let block_ab = run_block_ab(reps);
    let mut block_ratios: Vec<f64> = block_ab.iter().map(|c| c.ratio).collect();
    let block_ab_median = median(&mut block_ratios);
    for c in &block_ab {
        println!(
            "  {:<14} off {:>7.2}ms on {:>7.2}ms -> {:>5.2}x  ({:.1}% block-served, hist {:?}){}",
            c.workload,
            c.off_wall_s * 1e3,
            c.on_wall_s * 1e3,
            c.ratio,
            c.block_cycles_pct,
            c.block_len_hist,
            if c.mismatch { "  MISMATCH" } else { "" },
        );
        mismatches += usize::from(c.mismatch);
    }
    println!("block A/B median ratio: {block_ab_median:.3}x");

    let json = render_json(
        &kinds,
        &names,
        &base,
        &new,
        &base_walls,
        &new_walls,
        speedup,
        mismatches,
        &block_ab,
        block_ab_median,
    );
    let path = "BENCH_simthroughput.json";
    Provenance::capture().warn_if_dirty(path);
    std::fs::write(path, json).expect("write BENCH_simthroughput.json");
    println!("wrote {path}");

    if mismatches > 0 {
        eprintln!("{mismatches} cycle-count mismatches — behavioral drift!");
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    kinds: &[MachineKind],
    names: &[&str],
    base: &[Vec<SimResult>],
    new: &[Vec<SimResult>],
    base_walls: &[f64],
    new_walls: &[f64],
    speedup: f64,
    mismatches: usize,
    block_ab: &[BlockAbCell],
    block_ab_median: f64,
) -> String {
    // Both slices arrive sorted (the median computation sorts in place).
    let (base_wall, new_wall) = (
        base_walls[base_walls.len() / 2],
        new_walls[new_walls.len() / 2],
    );
    let total_skipped: u64 = new.iter().flatten().map(|r| r.cycles_skipped).sum();
    let total_macro: u64 = new.iter().flatten().map(|r| r.cycles_macro).sum();
    let total_cycles: u64 = new.iter().flatten().map(|r| r.cycles).sum();
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"simthroughput\",");
    s.push_str(&Provenance::capture().json_fields());
    let _ = writeln!(s, "  \"n\": {},", suite_len());
    let _ = writeln!(s, "  \"seed\": {},", seed());
    let _ = writeln!(s, "  \"threads\": {},", threads());
    let _ = writeln!(
        s,
        "  \"mem_naive\": {},",
        ballerino_isa::env_flag("BALLERINO_MEM_NAIVE")
    );
    let _ = writeln!(
        s,
        "  \"use_macro\": {},",
        !ballerino_isa::env_flag("BALLERINO_NO_MACRO")
    );
    let _ = writeln!(
        s,
        "  \"use_block\": {},",
        !ballerino_isa::env_flag("BALLERINO_NO_BLOCK")
    );
    let _ = writeln!(s, "  \"reps\": {},", base_walls.len());
    let _ = writeln!(s, "  \"cycles_skipped\": {total_skipped},");
    let _ = writeln!(s, "  \"cycles_macro\": {total_macro},");
    let total_block: u64 = new.iter().flatten().map(|r| r.cycles_block).sum();
    let total_built: u64 = new.iter().flatten().map(|r| r.blocks_built).sum();
    let total_inval: u64 = new.iter().flatten().map(|r| r.blocks_invalidated).sum();
    let mut total_hist = [0u64; 8];
    for r in new.iter().flatten() {
        for (t, h) in total_hist.iter_mut().zip(r.block_len_hist) {
            *t += h;
        }
    }
    let _ = writeln!(s, "  \"cycles_block\": {total_block},");
    let _ = writeln!(s, "  \"blocks_built\": {total_built},");
    let _ = writeln!(s, "  \"blocks_invalidated\": {total_inval},");
    let _ = writeln!(s, "  \"block_len_hist\": {total_hist:?},");
    let _ = writeln!(s, "  \"total_cycles\": {total_cycles},");
    let _ = writeln!(s, "  \"baseline_wall_s\": {base_wall:.6},");
    let _ = writeln!(s, "  \"baseline_wall_min_s\": {:.6},", base_walls[0]);
    let _ = writeln!(
        s,
        "  \"baseline_wall_max_s\": {:.6},",
        base_walls[base_walls.len() - 1]
    );
    let _ = writeln!(s, "  \"new_wall_s\": {new_wall:.6},");
    let _ = writeln!(s, "  \"new_wall_min_s\": {:.6},", new_walls[0]);
    let _ = writeln!(
        s,
        "  \"new_wall_max_s\": {:.6},",
        new_walls[new_walls.len() - 1]
    );
    let _ = writeln!(s, "  \"speedup\": {speedup:.4},");
    let _ = writeln!(s, "  \"cycle_mismatches\": {mismatches},");
    s.push_str("  \"block_ab\": {\n");
    let _ = writeln!(s, "    \"kind\": \"{}\",", BLOCK_AB_KIND.label());
    let _ = writeln!(s, "    \"n\": {BLOCK_AB_N},");
    let _ = writeln!(s, "    \"median_ratio\": {block_ab_median:.4},");
    s.push_str("    \"cells\": [\n");
    for (i, c) in block_ab.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"workload\": \"{}\", \"off_wall_s\": {:.6}, \"on_wall_s\": {:.6}, \
             \"ratio\": {:.4}, \"block_cycles_pct\": {:.2}, \"block_len_hist\": {:?}}}{}",
            c.workload,
            c.off_wall_s,
            c.on_wall_s,
            c.ratio,
            c.block_cycles_pct,
            c.block_len_hist,
            if i + 1 == block_ab.len() { "\n" } else { ",\n" }
        );
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"cells\": [\n");
    let mut first = true;
    for (ki, kind) in kinds.iter().enumerate() {
        for (wi, wl) in names.iter().enumerate() {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let r = &new[ki][wi];
            let b = &base[ki][wi];
            let _ = write!(
                s,
                "    {{\"kind\": \"{}\", \"workload\": \"{}\", \"cycles\": {}, \
                 \"committed\": {}, \"cycles_skipped\": {}, \"cycles_macro\": {}, \
                 \"cycles_block\": {}, \"host_wall_s\": {:.6}, \
                 \"baseline_host_wall_s\": {:.6}, \"sim_uops_per_sec\": {:.1}, \
                 \"sim_cycles_per_sec\": {:.1}}}",
                kind.label(),
                wl,
                r.cycles,
                r.committed,
                r.cycles_skipped,
                r.cycles_macro,
                r.cycles_block,
                r.host_wall_s,
                b.host_wall_s,
                r.sim_uops_per_sec(),
                r.sim_cycles_per_sec()
            );
        }
    }
    s.push_str("\n  ]\n}\n");
    s
}
