//! Extension baselines beyond the paper's evaluation: the slice-out-of-
//! order (Load Slice Core) and hybrid (Delay-and-Bypass) families from
//! §VII related work, compared against the paper's designs on the same
//! suite. Expected shape: both land between CASINO and Ballerino — they
//! recover MLP (LSC) or criticality-aware scheduling (DNB) with partial
//! ILP, but neither tracks arbitrary dependence chains like the
//! clustered P-IQs do.

use ballerino_bench::{
    print_header, print_row, run_suite, speedups_with_geomean, suite_len, workload_cols,
};
use ballerino_sim::{MachineKind, Width};

fn main() {
    println!(
        "Extension baselines (speedup over InO, 8-wide, n = {} μops/workload)\n",
        suite_len()
    );
    let base = run_suite(MachineKind::InOrder, Width::Eight);
    let cols = workload_cols();
    print_header(&cols, 9);
    for kind in [
        MachineKind::Casino,
        MachineKind::LoadSliceCore,
        MachineKind::DelayAndBypass,
        MachineKind::Ces,
        MachineKind::Ballerino,
        MachineKind::OutOfOrder,
    ] {
        let runs = run_suite(kind, Width::Eight);
        let sp = speedups_with_geomean(&runs, &base);
        print_row(&kind.label(), &sp, 9, 2);
    }
    println!(
        "\nLSC bypasses load slices around a stalled main queue (MLP without\n\
         wakeup); DNB spends a small 32-entry CAM only on load-dependent\n\
         slices. Both are §VII families the paper positions Ballerino against."
    );
}
