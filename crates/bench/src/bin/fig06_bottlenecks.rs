//! Figure 6: architectural bottleneck analysis of the Step 2 design.
//!
//! * **6a** — breakdown of per-cycle P-IQ head states: issuing, stalled
//!   on an M-dependent load, stalled on register operands, port
//!   conflicts, or empty. Paper shape: issue only ~6% of the time; ~9%
//!   of stalls caused by M-dependent loads (on the Step-1 design before
//!   MDA steering).
//! * **6b** — IPC sensitivity of Step 2 to the number and size of the
//!   P-IQs. Paper shape: sensitive to the count, much less to the size.
//!
//! All simulation goes through the work-stealing pool (`run_cells` /
//! `run_pool`), so `BALLERINO_THREADS` controls parallelism.

use ballerino_bench::{run_cells, run_pool, seed, suite_len, threads};
use ballerino_sim::stats::geomean;
use ballerino_sim::{MachineKind, Width};
use ballerino_workloads::{cached_workload, workload_names};

fn main() {
    let n = suite_len();
    println!("Fig. 6a — P-IQ head states per cycle (fractions, suite mean)\n");
    let kinds = [MachineKind::BallerinoStep1, MachineKind::BallerinoStep2];
    let rows = run_cells(&kinds, Width::Eight, n, seed(), threads());
    for (kind, row) in kinds.iter().zip(&rows) {
        let mut agg = [0.0f64; 5];
        for r in row {
            let h = r.heads;
            let tot = h.total().max(1) as f64;
            for (a, v) in agg.iter_mut().zip([
                h.issuing,
                h.stall_mdep_load,
                h.stall_nonready,
                h.stall_port_conflict,
                h.empty,
            ]) {
                *a += v as f64 / tot;
            }
        }
        let m = row.len() as f64;
        println!(
            "{:<8} issuing {:.3}  stall-Mdep {:.3}  stall-regs {:.3}  port-conflict {:.3}  empty {:.3}",
            kind.label(),
            agg[0] / m,
            agg[1] / m,
            agg[2] / m,
            agg[3] / m,
            agg[4] / m
        );
    }

    println!("\nFig. 6b — Step 2 IPC sensitivity to P-IQ count × size (geomean IPC)\n");
    print!("{:<10}", "piqs\\size");
    let sizes = [6usize, 8, 12, 16, 24];
    for s in sizes {
        print!("{s:>8}");
    }
    println!();
    let piq_counts = [3usize, 5, 7, 9, 11, 15];
    // One flat cell list over (piqs, size, workload) so the pool keeps
    // every worker busy across the whole grid, not per-cell.
    let names = workload_names();
    let mut cells: Vec<(usize, usize, &str)> = Vec::new();
    for &p in &piq_counts {
        for &sz in &sizes {
            for &wl in &names {
                cells.push((p, sz, wl));
            }
        }
    }
    let ipcs = run_pool(&cells, threads(), |&(p, sz, wl)| {
        run_custom(p, sz, &cached_workload(wl, n, seed()))
    });
    let per_wl = names.len();
    for (pi, piqs) in piq_counts.iter().enumerate() {
        print!("{piqs:<10}");
        for (si, _) in sizes.iter().enumerate() {
            let base = (pi * sizes.len() + si) * per_wl;
            print!("{:>8.3}", geomean(&ipcs[base..base + per_wl]));
        }
        println!();
    }
}

/// Step-2 Ballerino with `piqs` P-IQs of `size` entries.
fn run_custom(piqs: usize, size: usize, t: &ballerino_isa::Trace) -> f64 {
    use ballerino_core::{Ballerino, BallerinoConfig};
    use ballerino_energy::StructureSizes;
    use ballerino_sim::{Core, CoreConfig};

    let cfg = CoreConfig::preset(Width::Eight);
    let bcfg = BallerinoConfig {
        num_piqs: piqs,
        piq_entries: size,
        piq_sharing: false,
        num_phys_regs: cfg.total_phys(),
        ..BallerinoConfig::eight_wide()
    };
    let sizes = StructureSizes {
        cam_entries: 0,
        fifo_entries: bcfg.siq_entries + piqs * size,
        has_steer: true,
        rob_entries: cfg.rob_entries,
        lsq_entries: cfg.lq_entries + cfg.sq_entries,
        prf_entries: cfg.total_phys(),
        has_mdp: true,
    };
    let core = Core::new(cfg, Box::new(Ballerino::new(bcfg)), sizes);
    core.run(t).ipc()
}
