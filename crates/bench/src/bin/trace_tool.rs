//! Trace utility: export synthetic workloads to the text trace format,
//! inspect traces, and simulate imported traces from external tools.
//!
//! ```sh
//! trace_tool export <workload> <file> [n] [seed]   # generate + save
//! trace_tool stats  <file>                         # class mix summary
//! trace_tool run    <file> <machine> [width]       # simulate a trace
//! ```

use ballerino_isa::{from_text, to_text, Trace};
use ballerino_sim::{run_machine, MachineKind, Width};
use ballerino_workloads::workload;

fn load_trace(path: &str) -> Trace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    from_text(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("export") => {
            let wl = args.get(2).expect("workload name");
            let file = args.get(3).expect("output file");
            let n: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(20_000);
            let seed: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(42);
            let t = workload(wl, n, seed);
            std::fs::write(file, to_text(&t)).expect("write trace");
            println!("wrote {} μops of {wl} to {file}", t.len());
        }
        Some("stats") => {
            let t = load_trace(args.get(2).expect("trace file"));
            let s = t.stats();
            println!("trace {}: {} μops", t.name, s.total);
            println!(
                "  loads {} ({:.1}%)  stores {}  branches {} ({:.1}% taken)",
                s.loads,
                100.0 * s.load_frac(),
                s.stores,
                s.branches,
                100.0 * s.taken_branches as f64 / s.branches.max(1) as f64
            );
            println!("  int ops {}  fp ops {}", s.int_ops, s.fp_ops);
        }
        Some("run") => {
            let t = load_trace(args.get(2).expect("trace file"));
            let kind = match args.get(3).map(String::as_str) {
                Some("ino") => MachineKind::InOrder,
                Some("ooo") => MachineKind::OutOfOrder,
                Some("ces") => MachineKind::Ces,
                Some("casino") => MachineKind::Casino,
                Some("fxa") => MachineKind::Fxa,
                Some("ballerino") | None => MachineKind::Ballerino,
                Some(other) => {
                    eprintln!("unknown machine {other}");
                    std::process::exit(2);
                }
            };
            let width = match args.get(4).map(String::as_str) {
                Some("2") => Width::Two,
                Some("4") => Width::Four,
                Some("10") => Width::Ten,
                _ => Width::Eight,
            };
            let r = run_machine(kind, width, &t);
            println!(
                "{} on {}: IPC {:.3}, {} cycles, {} mispredicts, {} violations",
                r.scheduler,
                r.workload,
                r.ipc(),
                r.cycles,
                r.mispredicts,
                r.violations
            );
        }
        _ => {
            eprintln!("usage: trace_tool export <workload> <file> [n] [seed]");
            eprintln!("       trace_tool stats  <file>");
            eprintln!("       trace_tool run    <file> [machine] [width]");
            std::process::exit(2);
        }
    }
}
