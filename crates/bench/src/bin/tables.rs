//! Tables I and II: the simulated machine configurations.
//!
//! Regenerates the configuration tables so reviewers can check the
//! modelled parameters against the paper.

use ballerino_sim::{build_scheduler, CoreConfig, MachineKind, Width};

fn main() {
    println!("=== Table I: Core and Memory System Configurations ===\n");
    for width in [Width::Eight, Width::Four, Width::Two] {
        let c = CoreConfig::preset(width);
        println!(
            "{:?}-wide @ {} GHz: front {}, issue {}, ROB {}, LQ {}, SQ {}, \
             PRF {}int/{}fp, recovery {} cy, ports {}",
            width,
            c.freq_ghz,
            c.front_width,
            c.issue_width,
            c.rob_entries,
            c.lq_entries,
            c.sq_entries,
            c.int_regs,
            c.fp_regs,
            c.recovery_penalty,
            c.port_map.num_ports(),
        );
        let i = CoreConfig::preset_inorder(width);
        println!(
            "  InO variant: scoreboard {}, SQ {}, recovery {} cy, MDP {}",
            i.rob_entries, i.sq_entries, i.recovery_penalty, i.use_mdp
        );
    }
    let m = CoreConfig::preset(Width::Eight).mem;
    println!(
        "\nMemory: L1 {}KiB/{}w/{}cy/{}MSHR, L2 {}KiB/{}w/{}cy/{}MSHR, \
         L3 {}KiB/{}w/{}cy/{}MSHR, stride prefetch x{}",
        m.l1d.size_bytes / 1024,
        m.l1d.ways,
        m.l1d.latency,
        m.l1d.mshrs,
        m.l2.size_bytes / 1024,
        m.l2.ways,
        m.l2.latency,
        m.l2.mshrs,
        m.l3.size_bytes / 1024,
        m.l3.ways,
        m.l3.latency,
        m.l3.mshrs,
        m.prefetch_degree,
    );
    println!(
        "DRAM: {} banks, {} B rows, CAS/RCD/RP {}/{}/{} cy, burst {} cy",
        m.dram.banks, m.dram.row_bytes, m.dram.cas, m.dram.rcd, m.dram.rp, m.dram.burst
    );

    println!("\n=== Table II: Scheduling Window Configurations (8-wide) ===\n");
    for kind in [
        MachineKind::InOrder,
        MachineKind::OutOfOrder,
        MachineKind::Ces,
        MachineKind::Casino,
        MachineKind::Fxa,
        MachineKind::Ballerino,
        MachineKind::Ballerino12,
    ] {
        let (_, sched, sizes) = build_scheduler(kind, Width::Eight);
        println!(
            "{:<14} window {:>3} entries ({})  [cam {}, fifo {}]",
            kind.label(),
            sched.capacity(),
            sched.name(),
            sizes.cam_entries,
            sizes.fifo_entries,
        );
    }
}
