//! Figure 4: breakdown of instruction steering results in CES with eight
//! P-IQs, with applications sorted by the `[Stall] Ready` fraction.
//!
//! Paper shape: ~27% of events steer along a DC; the remainder allocate
//! or stall, with ready-at-dispatch μops causing most allocations (72%)
//! and stalls (79%), and the CES speedup over InO degrading as the
//! ready-stall fraction grows.

use ballerino_bench::{seed, suite_len};
use ballerino_sim::{run_machine, MachineKind, Width};
use ballerino_workloads::{cached_workload, workload_names};

fn main() {
    println!("Fig. 4 — CES-8 steering outcome breakdown (fractions of steer events)");
    println!(
        "n = {} μops per workload, sorted by [Stall] Ready\n",
        suite_len()
    );

    let mut rows = Vec::new();
    for wl in workload_names() {
        let t = cached_workload(wl, suite_len(), seed());
        let ino = run_machine(MachineKind::InOrder, Width::Eight, &t);
        let ces = run_machine(MachineKind::Ces, Width::Eight, &t);
        let s = ces.steer;
        let total = s.total().max(1) as f64;
        rows.push((
            wl,
            s.steer_dc as f64 / total,
            s.alloc_ready as f64 / total,
            s.alloc_nonready as f64 / total,
            s.stall_ready as f64 / total,
            s.stall_nonready as f64 / total,
            ces.speedup_over(&ino),
        ));
    }
    rows.sort_by(|a, b| a.4.partial_cmp(&b.4).unwrap());

    println!(
        "{:<18}{:>9}{:>9}{:>10}{:>9}{:>10}{:>9}",
        "workload", "steerDC", "allocRdy", "allocNRdy", "stallRdy", "stallNRdy", "speedup"
    );
    let mut agg = [0.0f64; 5];
    for (wl, dc, ar, an, sr, sn, sp) in &rows {
        println!("{wl:<18}{dc:>9.2}{ar:>9.2}{an:>10.2}{sr:>9.2}{sn:>10.2}{sp:>9.2}");
        for (a, v) in agg.iter_mut().zip([dc, ar, an, sr, sn]) {
            *a += *v;
        }
    }
    let n = rows.len() as f64;
    println!(
        "{:<18}{:>9.2}{:>9.2}{:>10.2}{:>9.2}{:>10.2}",
        "MEAN",
        agg[0] / n,
        agg[1] / n,
        agg[2] / n,
        agg[3] / n,
        agg[4] / n
    );
    let alloc = agg[1] + agg[2];
    let stall = agg[3] + agg[4];
    if alloc > 0.0 && stall > 0.0 {
        println!(
            "\nready-at-dispatch share: {:.0}% of allocations, {:.0}% of stalls \
             (paper: 72% / 79%)",
            100.0 * agg[1] / alloc,
            100.0 * agg[3] / stall
        );
    }
}
