//! Figure 15: core-wide energy consumption by component, normalized to
//! OoO.
//!
//! Paper shape: CES and Ballerino save the most (Schedule energy shrinks
//! to FIFO-head examination); CASINO pays extra read ports and
//! inter-queue copies; FXA keeps a half-size CAM IQ and lands highest of
//! the alternatives; Ballerino-12 totals ≈0.81× OoO.

use ballerino_bench::{fig15_kinds, run_suite};
use ballerino_energy::{DvfsLevel, EnergyModel, COMPONENTS};
use ballerino_sim::{MachineKind, Width};

fn main() {
    println!("Fig. 15 — energy by component, normalized to OoO total (suite sum)\n");
    let ooo = run_suite(MachineKind::OutOfOrder, Width::Eight);
    let ooo_total: f64 = ooo
        .iter()
        .map(|r| {
            EnergyModel::new(r.sizes, DvfsLevel::L4)
                .breakdown(&r.energy)
                .total()
        })
        .sum();

    print!("{:<14}", "design");
    for c in COMPONENTS {
        print!("{:>10}", c.label().split_whitespace().next().unwrap());
    }
    println!("{:>10}", "TOTAL");

    for kind in fig15_kinds() {
        let runs = run_suite(kind, Width::Eight);
        let mut per_comp = [0.0f64; 9];
        for r in &runs {
            let b = EnergyModel::new(r.sizes, DvfsLevel::L4).breakdown(&r.energy);
            for (i, (_, v)) in b.iter().enumerate() {
                per_comp[i] += v;
            }
        }
        print!("{:<14}", kind.label());
        let mut total = 0.0;
        for v in per_comp {
            print!("{:>10.3}", v / ooo_total);
            total += v;
        }
        println!("{:>10.3}", total / ooo_total);
    }
    println!("\npaper totals vs OoO: CES lowest, Ballerino ≈ CES, Ballerino-12 ≈ 0.81");
}
