//! Calibrates the tier-0 analytic model against the cycle-accurate tier
//! and prints a ready-to-commit `CALIBRATION` table plus the measured
//! per-class error the committed bounds must cover.
//!
//! For every base machine kind the binary:
//!
//! 1. simulates the full 15-workload suite at **all four width presets**
//!    (the work-stealing pool, `BALLERINO_THREADS` workers),
//! 2. grid-searches the window efficiency `eta_pct` (20..=100, step 5);
//!    for each `eta` the per-(width, class) bias `alpha_milli[w][c]` is
//!    the closed-form geomean of `simulated / raw_prediction` over that
//!    width's workloads of that class — the multiplicative fit that
//!    minimizes geomean relative error. The model's residual bias is
//!    strongly width-dependent (a 2-wide machine hides far less of the
//!    unmodelled structural hazards than an 8-wide one) *and*
//!    class-dependent (the hazards weigh differently on dense kernels
//!    than on pointer chases), so a single scale per kind misranks
//!    exactly the comparisons the sweep's promotion makes,
//! 3. keeps the `(eta, [[alpha; 3]; 4])` with the lowest mean absolute
//!    relative error across every (width, workload) cell.
//!
//! Output: the winning constants per kind (paste into
//! `crates/analytic/src/calib.rs`), per-kind error, and mean absolute
//! error per workload class across all kinds and widths — the numbers
//! the committed [`class_error_bound_pct`] values must dominate.
//!
//! Usage: `tier0_calibrate` (honors `BALLERINO_N`, default 30 000 here,
//! `BALLERINO_SEED`, `BALLERINO_THREADS`).

use ballerino_analytic::{
    class_error_bound_pct, class_index, predict_cycles_with, width_index, workload_class,
    KindCalib, MachineParams, WorkloadClass,
};
use ballerino_bench::{calib_kinds, run_cells, seed, threads};
use ballerino_sim::{DesignPoint, SimResult, Width};
use ballerino_workloads::{cached_dag, cached_features, workload_names};

const WIDTHS: [Width; 4] = [Width::Two, Width::Four, Width::Eight, Width::Ten];

fn main() {
    let n: usize = std::env::var("BALLERINO_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let s = seed();
    let names = workload_names();
    let base_kinds = calib_kinds();
    println!(
        "tier0_calibrate: {} kinds x {} widths x {} workloads, N={n}, seed={s}, threads={}",
        base_kinds.len(),
        WIDTHS.len(),
        names.len(),
        threads()
    );

    // Per-class error accumulators across all kinds and widths, with the
    // final per-kind calibration applied.
    let mut class_err: Vec<(WorkloadClass, Vec<f64>)> = WorkloadClass::ALL
        .iter()
        .map(|&c| (c, Vec::new()))
        .collect();

    println!("\npub const CALIBRATION: &[(MachineKind, KindCalib)] = &[");
    for kind in base_kinds {
        // sim[w][j] = cycle-accurate result for width w, workload j.
        let sim: Vec<Vec<SimResult>> = WIDTHS
            .iter()
            .map(|&w| {
                run_cells(&[kind], w, n, s, threads())
                    .pop()
                    .expect("one row")
            })
            .collect();
        let params: Vec<MachineParams> = WIDTHS
            .iter()
            .map(|&w| MachineParams::from_point(&DesignPoint::new(kind, w)))
            .collect();

        let mut best: Option<(u32, [[u32; 3]; 4], f64)> = None; // (eta, alphas, err%)
        for eta in (20..=100).step_by(5) {
            let trial = KindCalib {
                eta_pct: eta,
                ..KindCalib::default()
            };
            let mut alphas = [[1000u32; 3]; 4];
            let mut errs: Vec<f64> = Vec::new();
            for (wi, w) in WIDTHS.iter().enumerate() {
                let raw: Vec<f64> = names
                    .iter()
                    .map(|name| {
                        let dag = cached_dag(name, n, s);
                        let feat = cached_features(name, n, s);
                        predict_cycles_with(&params[wi], &dag, &feat, &trial, name).cycles as f64
                    })
                    .collect();
                // Closed-form multiplicative fit per class: geomean of
                // sim/raw over the class's workloads at this width.
                for &class in &WorkloadClass::ALL {
                    let (mut ln_sum, mut count) = (0.0f64, 0usize);
                    for ((name, r), sr) in names.iter().zip(&raw).zip(&sim[wi]) {
                        if workload_class(name) == class {
                            ln_sum += (sr.cycles as f64 / r).ln();
                            count += 1;
                        }
                    }
                    let alpha = ((ln_sum / count.max(1) as f64).exp() * 1000.0).round() as u32;
                    alphas[width_index(*w)][class_index(class)] = alpha.clamp(200, 5000);
                }
                for ((name, r), sr) in names.iter().zip(&raw).zip(&sim[wi]) {
                    let a = alphas[width_index(*w)][class_index(workload_class(name))];
                    let pred = r * a as f64 / 1000.0;
                    errs.push(100.0 * (pred - sr.cycles as f64).abs() / sr.cycles as f64);
                }
            }
            let err = errs.iter().sum::<f64>() / errs.len() as f64;
            if best.is_none() || err < best.unwrap().2 {
                best = Some((eta, alphas, err));
            }
        }
        let (eta, alphas, err) = best.expect("non-empty grid");

        // With eta fixed, fit the per-workload reference alphas: the
        // exact sim/raw ratio at the reference configuration, zeroing
        // each suite workload's idiosyncratic bias there.
        let trial = KindCalib {
            eta_pct: eta,
            ..KindCalib::default()
        };
        let mut alphas_wl = [[1000u32; 15]; 4];
        for (wi, w) in WIDTHS.iter().enumerate() {
            for (j, (name, sr)) in names.iter().zip(&sim[wi]).enumerate() {
                let dag = cached_dag(name, n, s);
                let feat = cached_features(name, n, s);
                let raw = predict_cycles_with(&params[wi], &dag, &feat, &trial, name).cycles as f64;
                let a = ((sr.cycles as f64 / raw) * 1000.0).round() as u32;
                alphas_wl[width_index(*w)][j] = a.clamp(200, 5000);
            }
        }

        println!("    (");
        println!("        MachineKind::{kind:?},");
        println!("        KindCalib {{");
        println!("            eta_pct: {eta},");
        println!("            alpha_milli: [");
        for row in alphas {
            println!("                [{}, {}, {}],", row[0], row[1], row[2]);
        }
        println!("            ],");
        println!("            alpha_wl_milli: [");
        for row in alphas_wl {
            let cells: Vec<String> = row.iter().map(|a| a.to_string()).collect();
            println!("                [{}],", cells.join(", "));
        }
        println!("            ],");
        println!("        }},");
        println!("    ), // class-fallback mean abs err {err:.1}%");

        // Re-run with the winner and bucket errors per class.
        let calib = KindCalib {
            eta_pct: eta,
            alpha_milli: alphas,
            alpha_wl_milli: alphas_wl,
        };
        let verbose = ballerino_isa::env_flag("BALLERINO_CALIB_VERBOSE");
        for (wi, w) in WIDTHS.iter().enumerate() {
            for (name, sr) in names.iter().zip(&sim[wi]) {
                let dag = cached_dag(name, n, s);
                let feat = cached_features(name, n, s);
                let pred =
                    predict_cycles_with(&params[wi], &dag, &feat, &calib, name).cycles as f64;
                let e = 100.0 * (pred - sr.cycles as f64).abs() / sr.cycles as f64;
                if verbose {
                    eprintln!(
                        "    {:<14} {}w {:<18} pred {:>9.0} sim {:>9} ({:+6.1}%)",
                        kind.label(),
                        w.issue(),
                        name,
                        pred,
                        sr.cycles,
                        100.0 * (pred - sr.cycles as f64) / sr.cycles as f64
                    );
                }
                let class = workload_class(name);
                class_err
                    .iter_mut()
                    .find(|(c, _)| *c == class)
                    .expect("class bucket")
                    .1
                    .push(e);
            }
        }
    }
    println!("];");

    println!("\nper-class mean abs error across kinds and widths (committed bound in parens):");
    let mut any_over = false;
    for (class, errs) in &class_err {
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        let worst = errs.iter().cloned().fold(0.0, f64::max);
        let bound = class_error_bound_pct(*class);
        let ok = mean <= bound as f64;
        any_over |= !ok;
        println!(
            "  {:<10} mean {mean:5.1}%  worst {worst:5.1}%  (bound {bound}%) {}",
            class.label(),
            if ok { "OK" } else { "OVER" }
        );
    }
    if any_over {
        eprintln!("some class exceeds its committed bound — re-commit the table above");
        std::process::exit(1);
    }
}
