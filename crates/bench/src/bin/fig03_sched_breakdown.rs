//! Figure 3c: breakdown of average decode-to-issue cycles on InO, CES,
//! CASINO and OoO, split by instruction class (Ld / LdC / Rst).
//!
//! Paper shape: CES shows large decode→dispatch delays (steering stalls);
//! CASINO shows small decode→dispatch but large ready→issue for LdC
//! (load consumers stuck in the in-order last IQ); OoO shows near-zero
//! ready→issue everywhere except loads capped by MLP limits.

use ballerino_bench::{run_suite, suite_len};
use ballerino_sim::stats::{TimingClass, TIMING_CLASSES};
use ballerino_sim::{MachineKind, Width};

fn main() {
    println!("Fig. 3c — decode-to-issue breakdown (avg cycles/μop, suite-wide)");
    println!("n = {} μops per workload\n", suite_len());
    println!(
        "{:<10} {:<5} {:>14} {:>15} {:>13}",
        "design", "class", "decode→dispatch", "dispatch→ready", "ready→issue"
    );
    for kind in [
        MachineKind::InOrder,
        MachineKind::Ces,
        MachineKind::Casino,
        MachineKind::OutOfOrder,
    ] {
        let runs = run_suite(kind, Width::Eight);
        for class in TIMING_CLASSES {
            // Weighted average across workloads.
            let (mut s0, mut s1, mut s2, mut n) = (0.0, 0.0, 0.0, 0u64);
            for r in &runs {
                let c = r.timing.count(class);
                let (a, b, d) = r.timing.avg(class);
                s0 += a * c as f64;
                s1 += b * c as f64;
                s2 += d * c as f64;
                n += c;
            }
            let n = n.max(1) as f64;
            println!(
                "{:<10} {:<5} {:>14.1} {:>15.1} {:>13.1}",
                kind.label(),
                class.label(),
                s0 / n,
                s1 / n,
                s2 / n
            );
        }
        // Combined row.
        let (mut s0, mut s1, mut s2, mut n) = (0.0, 0.0, 0.0, 0u64);
        for r in &runs {
            for class in TIMING_CLASSES {
                let c = r.timing.count(class);
                let (a, b, d) = r.timing.avg(class);
                s0 += a * c as f64;
                s1 += b * c as f64;
                s2 += d * c as f64;
                n += c;
            }
        }
        let nf = n.max(1) as f64;
        println!(
            "{:<10} {:<5} {:>14.1} {:>15.1} {:>13.1}\n",
            kind.label(),
            "All",
            s0 / nf,
            s1 / nf,
            s2 / nf
        );
        let _ = TimingClass::Ld;
    }
}
