//! Dense-cell microbenchmark for the macro-step engine: A/B of
//! `use_macro` on vs off over the three dense workloads (`gemm_blocked`,
//! `int_crunch`, `stream_triad`) across the Fig. 11 machines.
//!
//! Both sides run the *same* pipeline binary — the only difference is
//! whether the fused steady-state loop may take over cycles — so the
//! wall ratio isolates exactly what the macro engine buys. Per-cell
//! results are asserted byte-identical (modulo the instrumentation
//! fields `host_wall_s` / `cycles_skipped` / `cycles_macro`).
//!
//! Usage: `dense_microbench` (honors `BALLERINO_N` / `BALLERINO_SEED`;
//! `BALLERINO_REPS` overrides the per-cell repetition count, default 3).
//! Exits non-zero on any statistic mismatch.

use ballerino_bench::{seed, suite_len};
use ballerino_isa::TraceDag;
use ballerino_sim::{build_scheduler, Core, MachineKind, SimResult, Width};
use ballerino_workloads::cached_workload;

const DENSE: [&str; 3] = ["gemm_blocked", "int_crunch", "stream_triad"];

fn run_cell(kind: MachineKind, wl: &str, n: usize, s: u64, use_macro: bool) -> SimResult {
    let trace = cached_workload(wl, n, s);
    let dag = use_macro.then(|| TraceDag::resolve(&trace));
    let (mut cfg, sched, sizes) = build_scheduler(kind, Width::Eight);
    cfg.use_macro = use_macro;
    Core::new(cfg, sched, sizes).run_with_dag(&trace, dag.as_ref())
}

/// Debug rendering with the fields that legitimately differ zeroed.
fn normalized(r: &SimResult) -> String {
    let mut z = r.clone();
    z.host_wall_s = 0.0;
    z.cycles_skipped = 0;
    z.cycles_macro = 0;
    z.cycles_block = 0;
    z.blocks_built = 0;
    z.blocks_invalidated = 0;
    z.block_len_hist = [0; 8];
    format!("{z:?}")
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite walls"));
    xs[xs.len() / 2]
}

fn main() {
    let n = suite_len();
    let s = seed();
    let reps: usize = std::env::var("BALLERINO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    println!(
        "dense_microbench: {} kinds x {} workloads, N={n}, seed={s}, reps={reps}",
        MachineKind::FIG11.len(),
        DENSE.len()
    );
    println!(
        "{:<14} {:<13} {:>9} {:>9} {:>7}  {:>10} {:>7}",
        "machine", "workload", "off(ms)", "on(ms)", "ratio", "macro%", "block%"
    );

    let mut mismatches = 0usize;
    let mut ratios = Vec::new();
    for kind in MachineKind::FIG11 {
        for wl in DENSE {
            let mut off_walls = Vec::new();
            let mut on_walls = Vec::new();
            let mut r_off = None;
            let mut r_on = None;
            for _ in 0..reps {
                let r = run_cell(kind, wl, n, s, false);
                off_walls.push(r.host_wall_s);
                r_off = Some(r);
                let r = run_cell(kind, wl, n, s, true);
                on_walls.push(r.host_wall_s);
                r_on = Some(r);
            }
            let (r_off, r_on) = (r_off.expect("reps >= 1"), r_on.expect("reps >= 1"));
            if normalized(&r_off) != normalized(&r_on) {
                eprintln!(
                    "MISMATCH {} {wl}: results diverge with macro on",
                    kind.label()
                );
                mismatches += 1;
            }
            let off = median(&mut off_walls) * 1e3;
            let on = median(&mut on_walls) * 1e3;
            let ratio = off / on;
            ratios.push(ratio);
            println!(
                "{:<14} {:<13} {:>9.2} {:>9.2} {:>6.2}x  {:>9.1}% {:>6.1}%",
                kind.label(),
                wl,
                off,
                on,
                ratio,
                100.0 * r_on.cycles_macro as f64 / r_on.cycles.max(1) as f64,
                100.0 * r_on.cycles_block as f64 / r_on.cycles_macro.max(1) as f64,
            );
        }
    }
    let med = median(&mut ratios);
    println!("median dense-cell speedup: {med:.3}x ({mismatches} mismatches)");
    if mismatches > 0 {
        std::process::exit(1);
    }
}
