//! Figure 12: scheduling performance — Ballerino's decode-to-issue
//! breakdown against CES and CASINO.
//!
//! Paper shape: Ballerino's decode→dispatch is slightly larger than
//! CASINO's and much smaller than CES's; LdC ready→issue is near zero
//! (like CES); Rst shows a small ready→issue delay from steering stalls
//! in the middle of the S-IQ.

use ballerino_bench::{fig12_kinds, run_suite, suite_len};
use ballerino_sim::stats::TIMING_CLASSES;
use ballerino_sim::Width;

fn main() {
    println!("Fig. 12 — decode-to-issue breakdown (avg cycles/μop, suite-wide)\n");
    println!("n = {} μops per workload\n", suite_len());
    println!(
        "{:<12} {:<5} {:>14} {:>15} {:>13}",
        "design", "class", "decode→dispatch", "dispatch→ready", "ready→issue"
    );
    for kind in fig12_kinds() {
        let runs = run_suite(kind, Width::Eight);
        for class in TIMING_CLASSES {
            let (mut s0, mut s1, mut s2, mut n) = (0.0, 0.0, 0.0, 0u64);
            for r in &runs {
                let c = r.timing.count(class);
                let (a, b, d) = r.timing.avg(class);
                s0 += a * c as f64;
                s1 += b * c as f64;
                s2 += d * c as f64;
                n += c;
            }
            let nf = n.max(1) as f64;
            println!(
                "{:<12} {:<5} {:>14.1} {:>15.1} {:>13.1}",
                kind.label(),
                class.label(),
                s0 / nf,
                s1 / nf,
                s2 / nf
            );
        }
        println!();
    }
}
