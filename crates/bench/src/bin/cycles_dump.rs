//! Dumps per-(machine, workload) cycle counts for the Fig. 11 matrix.
//!
//! Used to verify that performance refactors of the simulator core are
//! pure: the cycle counts printed here must be byte-identical before and
//! after any change that claims not to alter simulated behavior.
//!
//! Usage: `cycles_dump [N]` (default N = 4000, seed fixed at 42). Set
//! `BALLERINO_REFERENCE=1` to run the frozen seed-layout reference
//! pipeline instead — its output must match the default pipeline's.

use ballerino_sim::{run_machine, run_machine_reference, MachineKind, Width};
use ballerino_workloads::{cached_workload, workload_names};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    let reference = std::env::var("BALLERINO_REFERENCE")
        .map(|v| v == "1")
        .unwrap_or(false);
    for kind in MachineKind::FIG11 {
        for name in workload_names() {
            let t = cached_workload(name, n, 42);
            let r = if reference {
                run_machine_reference(kind, Width::Eight, &t)
            } else {
                run_machine(kind, Width::Eight, &t)
            };
            println!("{}\t{}\t{}\t{}", kind.label(), name, r.cycles, r.committed);
        }
    }
}
