//! Figure 11: performance of every 8-wide design, normalized to InO.
//!
//! Paper shape (geomean speedup over InO): CES 2.4×, CASINO 2.1×,
//! FXA 2.8×, Ballerino 2.7× (within 7% of OoO), Ballerino-12 2.8×
//! (within 2% of OoO), OoO ≈ 2.86×, OoO+oldest-first ≈ +2% over OoO.

use ballerino_bench::{
    fig11_kinds, print_header, print_row, run_suite, speedups_with_geomean, suite_len,
    workload_cols,
};
use ballerino_sim::{MachineKind, Width};

fn main() {
    println!(
        "Fig. 11 — speedup over InO, 8-wide (n = {} μops/workload)\n",
        suite_len()
    );
    let base = run_suite(MachineKind::InOrder, Width::Eight);
    let cols = workload_cols();
    print_header(&cols, 9);
    for kind in fig11_kinds() {
        let runs = run_suite(kind, Width::Eight);
        let sp = speedups_with_geomean(&runs, &base);
        print_row(&kind.label(), &sp, 9, 2);
    }
    println!(
        "\npaper geomeans: CES 2.4, CASINO 2.1, FXA 2.8, Ballerino 2.7, \
         Ballerino-12 2.8, OoO 2.86, OoO+of +2%"
    );
}
