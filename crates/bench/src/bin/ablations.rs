//! Ablation studies for the design choices DESIGN.md §5 calls out —
//! beyond the paper's own figures.
//!
//! 1. **spec_horizon** — how far ahead the S-IQ's intra-group enable
//!    logic looks before steering a consumer (Fig. 8 modelling knob),
//! 2. **S-IQ size** — the paper fixes it at 2× dispatch width; sweep it,
//! 3. **MDP on/off for Ballerino** — steering interacts with holds,
//! 4. **prefetcher on/off** — how much of the suite's MLP comes from the
//!    stride prefetcher vs. the scheduler,
//! 5. **sharing constraints** — same-half and single-active-head
//!    constraints individually (the paper only reports both-off).

use ballerino_bench::{seed, suite_len};
use ballerino_core::{Ballerino, BallerinoConfig};
use ballerino_energy::StructureSizes;
use ballerino_sim::stats::geomean;
use ballerino_sim::{run_machine, Core, CoreConfig, MachineKind, Width};
use ballerino_workloads::{cached_workload, workload_names};

fn run_cfg(bcfg: BallerinoConfig, mem_prefetch: bool) -> f64 {
    let mut ipcs = Vec::new();
    for wl in workload_names() {
        let t = cached_workload(wl, suite_len(), seed());
        let mut cfg = CoreConfig::preset(Width::Eight);
        cfg.mem.prefetch = mem_prefetch;
        let mut b = bcfg.clone();
        b.num_phys_regs = cfg.total_phys();
        let sizes = StructureSizes {
            cam_entries: 0,
            fifo_entries: b.siq_entries + b.num_piqs * b.piq_entries,
            has_steer: true,
            rob_entries: cfg.rob_entries,
            lsq_entries: cfg.lq_entries + cfg.sq_entries,
            prf_entries: cfg.total_phys(),
            has_mdp: cfg.use_mdp,
        };
        ipcs.push(
            Core::new(cfg, Box::new(Ballerino::new(b)), sizes)
                .run(&t)
                .ipc(),
        );
    }
    geomean(&ipcs)
}

fn main() {
    let base = BallerinoConfig::eight_wide();
    println!(
        "Ballerino ablations (geomean IPC over the suite, n = {})\n",
        suite_len()
    );

    println!("1. speculative-issue horizon (cycles a consumer may linger in the S-IQ):");
    for h in [0u64, 1, 2, 4] {
        let ipc = run_cfg(
            BallerinoConfig {
                spec_horizon: h,
                ..base.clone()
            },
            true,
        );
        println!("   horizon {h}: {ipc:.3}");
    }

    println!("\n2. S-IQ size (paper: 2x dispatch width = 8):");
    for s in [4usize, 8, 16, 32] {
        let ipc = run_cfg(
            BallerinoConfig {
                siq_entries: s,
                ..base.clone()
            },
            true,
        );
        println!("   {s:>2} entries: {ipc:.3}");
    }

    println!("\n3. S-IQ window (slots examined per cycle, paper: rename width = 4):");
    for w in [2usize, 4, 8] {
        let ipc = run_cfg(
            BallerinoConfig {
                siq_window: w,
                ..base.clone()
            },
            true,
        );
        println!("   window {w}: {ipc:.3}");
    }

    println!("\n4. stride prefetcher:");
    let with = run_cfg(base.clone(), true);
    let without = run_cfg(base.clone(), false);
    println!("   on  : {with:.3}");
    println!(
        "   off : {without:.3}  ({:+.1}% from prefetching)",
        100.0 * (with / without - 1.0)
    );

    println!("\n5. MDP interaction (baseline OoO for reference):");
    let mut w_ipc = Vec::new();
    let mut wo_ipc = Vec::new();
    for wl in workload_names() {
        let t = cached_workload(wl, suite_len(), seed());
        w_ipc.push(run_machine(MachineKind::OutOfOrder, Width::Eight, &t).ipc());
        wo_ipc.push(run_machine(MachineKind::OutOfOrderNoMdp, Width::Eight, &t).ipc());
    }
    println!("   OoO with MDP   : {:.3}", geomean(&w_ipc));
    println!("   OoO without MDP: {:.3}", geomean(&wo_ipc));

    println!("\n6. sharing constraints (paper reports only both-off = ideal):");
    for (label, sharing, ideal) in [
        ("no sharing (Step 2)  ", false, false),
        ("constrained (Step 3) ", true, false),
        ("unconstrained (ideal)", true, true),
    ] {
        let ipc = run_cfg(
            BallerinoConfig {
                piq_sharing: sharing,
                ideal_sharing: ideal,
                ..base.clone()
            },
            true,
        );
        println!("   {label}: {ipc:.3}");
    }
}
