//! Generic simulation driver: pick a machine, width and workload on the
//! command line and get a full report — the "run anything" tool.
//!
//! ```sh
//! simulate <machine> [workload] [width] [n] [seed]
//!   machine : ino | ooo | ooo-of | ooo-nomdp | ces | ces-mda | casino |
//!             fxa | step1 | step2 | ballerino | ideal | ballerino12 |
//!             ldt | ballerino-ldt | lsc | dnb | b<N>
//!             (ballerino_bench::kind_from_name / KIND_REGISTRY)
//!   workload: any name from ballerino-workloads (default hash_join),
//!             or "all" for the whole suite
//!   width   : 2 | 4 | 8 | 10          (default 8)
//!   n       : μops per workload        (default 20000)
//!   seed    : generator seed           (default 42)
//! ```

use ballerino_bench::{kind_from_name, width_from_str, KIND_REGISTRY};
use ballerino_energy::{DvfsLevel, EnergyModel};
use ballerino_sim::stats::TIMING_CLASSES;
use ballerino_sim::{run_machine, SimResult, Width};
use ballerino_workloads::{workload, workload_names};

fn report(r: &SimResult) {
    println!(
        "── {} on {} ─────────────────────────",
        r.scheduler, r.workload
    );
    println!(
        "  IPC {:.3}   cycles {}   committed {}   time {:.1} µs @ {} GHz",
        r.ipc(),
        r.cycles,
        r.committed,
        r.seconds() * 1e6,
        r.freq_ghz
    );
    println!(
        "  mispredicts {}   violations {}   dispatch-stalls {}   stalls[rob,lq,sq,regs,sched] {:?}",
        r.mispredicts, r.violations, r.dispatch_stalls, r.stall_reasons
    );
    println!(
        "  mem: L1 {}  L2 {}  L3 {}  DRAM {}  prefetches {}",
        r.mem.hits_l1, r.mem.hits_l2, r.mem.hits_l3, r.mem.hits_mem, r.mem.prefetches
    );
    for class in TIMING_CLASSES {
        let (a, b, c) = r.timing.avg(class);
        println!(
            "  {:>4}: decode→dispatch {:>7.1}  dispatch→ready {:>7.1}  ready→issue {:>6.1}  (n={})",
            class.label(),
            a,
            b,
            c,
            r.timing.count(class)
        );
    }
    let ib = r.issue_breakdown;
    println!(
        "  issues: S-IQ {}  P-IQ {}  in-order {}  OoO {}  IXU {}",
        ib.from_siq, ib.from_piq, ib.from_inorder, ib.from_ooo, ib.from_ixu
    );
    let model = EnergyModel::new(r.sizes, DvfsLevel::L4);
    let bd = model.breakdown(&r.energy);
    println!(
        "  energy {:.1} µJ   avg power {:.2} W   EDP {:.3e}",
        bd.total() * 1e-6,
        model.power_w(&r.energy),
        model.edp(&r.energy)
    );
    print!("  components:");
    for (c, v) in bd.iter() {
        print!(" {} {:.0}%", c.label(), 100.0 * v / bd.total());
    }
    println!("\n");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = || {
        eprintln!("usage: simulate <machine> [workload|all] [width] [n] [seed]");
        let names: Vec<&str> = KIND_REGISTRY.iter().map(|i| i.name).collect();
        eprintln!("machines: {} b<N>", names.join(" "));
        eprintln!("workloads: {}", workload_names().join(" "));
        std::process::exit(2);
    };
    let Some(kind) = args.get(1).and_then(|s| kind_from_name(s)) else {
        usage();
        return;
    };
    let wl = args.get(2).cloned().unwrap_or_else(|| "hash_join".into());
    let width = args
        .get(3)
        .map(|s| {
            width_from_str(s).unwrap_or_else(|| {
                eprintln!("bad width {s}");
                std::process::exit(2)
            })
        })
        .unwrap_or(Width::Eight);
    let n: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let seed: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(42);

    if wl == "all" {
        for name in workload_names() {
            let t = workload(name, n, seed);
            report(&run_machine(kind, width, &t));
        }
    } else {
        let t = workload(&wl, n, seed);
        report(&run_machine(kind, width, &t));
    }
}
