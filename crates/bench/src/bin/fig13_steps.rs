//! Figure 13: performance impact of the proposed techniques, applied
//! step by step on top of CES.
//!
//! Paper shape (percentage-point gains over InO-relative speedup):
//! CES → +4 (MDA steering) → Step 1 (+7: S-IQ replaces a P-IQ) →
//! Step 2 (+5: MDA) → Step 3 (+13: P-IQ sharing) → +5 more without
//! the implementation constraints (ideal).

use ballerino_bench::{
    print_header, print_row, run_suite, speedups_with_geomean, suite_len, workload_cols,
};
use ballerino_sim::{MachineKind, Width};

fn main() {
    println!(
        "Fig. 13 — step-by-step gains over InO (n = {} μops/workload)\n",
        suite_len()
    );
    let base = run_suite(MachineKind::InOrder, Width::Eight);
    let cols = workload_cols();
    print_header(&cols, 9);
    let mut geomeans = Vec::new();
    let kinds = [
        MachineKind::Ces,
        MachineKind::CesMda,
        MachineKind::BallerinoStep1,
        MachineKind::BallerinoStep2,
        MachineKind::Ballerino,
        MachineKind::BallerinoIdeal,
        MachineKind::OutOfOrder,
    ];
    for kind in kinds {
        let runs = run_suite(kind, Width::Eight);
        let sp = speedups_with_geomean(&runs, &base);
        geomeans.push((kind.label(), *sp.last().unwrap()));
        print_row(&kind.label(), &sp, 9, 2);
    }
    println!("\nstep deltas (percentage points of InO-relative speedup):");
    for w in geomeans.windows(2) {
        println!(
            "  {} → {}: {:+.0} pts",
            w[0].0,
            w[1].0,
            100.0 * (w[1].1 - w[0].1)
        );
    }
    println!("paper: CES→+MDA +4, →Step1 +7, →Step2 +5, →Step3 +13, →ideal +5");
}
