//! Design-space sweep benchmark: tiered-fidelity triage against
//! exhaustive simulation, emitting `BENCH_sweep.json`.
//!
//! Runs the [`SweepSpec`] twice over:
//!
//! * **Tiered** — tier-0 analytic triage of every point, conservative
//!   Pareto promotion, cycle-accurate simulation of the promoted set
//!   only ([`ballerino_bench::run_sweep`]).
//! * **Exhaustive** — cycle-accurate simulation of *every* point (the
//!   oracle), on the same work-stealing pool.
//!
//! The promoted frontier must be **identical** to the exhaustive
//! frontier — the binary exits non-zero otherwise — so the reported
//! speedup (exhaustive wall / tiered wall) is a pure efficiency number,
//! not an accuracy trade.
//!
//! Environment:
//!
//! * `BALLERINO_SWEEP_SMALL` — use the CI smoke spec (40 points) instead
//!   of the full 2556-point grid.
//! * `BALLERINO_SWEEP_N` — override μops per workload trace.
//! * `BALLERINO_SWEEP_MARGIN` — promotion margin in percent (default:
//!   the widest committed per-class calibration bound).
//! * `BALLERINO_TIER0_ONLY` — triage and promote but skip *all*
//!   simulation (both sides); reports the estimated frontier. No
//!   frontier gate in this mode.
//! * `BALLERINO_THREADS` — pool width for every stage.

use ballerino_bench::{
    point_cost, promote_indices, run_sweep, simulate_points, threads, tier0_scores, Provenance,
    SweepSpec,
};
use ballerino_sim::DesignPoint;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let mut spec = if ballerino_isa::env_flag("BALLERINO_SWEEP_SMALL") {
        SweepSpec::smoke()
    } else {
        SweepSpec::full()
    };
    if let Ok(v) = std::env::var("BALLERINO_SWEEP_N") {
        if let Ok(n) = v.parse() {
            spec.n = n;
        }
    }
    let tier0_only = ballerino_isa::env_flag("BALLERINO_TIER0_ONLY");
    let points = spec.points();
    println!(
        "sweep_bench: {} points ({} kinds x {} widths x {} iq x {} dram), \
         {} workloads, N={}, seed={}, threads={}, margin={}%{}",
        points.len(),
        spec.kinds.len(),
        spec.widths.len(),
        spec.iq_budgets.len(),
        spec.dram_scales.len(),
        spec.workloads.len(),
        spec.n,
        spec.seed,
        threads(),
        spec.margin_pct(),
        if tier0_only { ", tier0-only" } else { "" },
    );

    if tier0_only {
        let costs: Vec<u64> = points.iter().map(point_cost).collect();
        let t0 = Instant::now();
        let est = tier0_scores(&spec, &points);
        let wall = t0.elapsed().as_secs_f64();
        let promoted = promote_indices(&costs, &est, spec.margin_pct());
        let frontier = ballerino_bench::pareto_indices(&costs, &est);
        println!(
            "tier-0 triage: {:.3}s ({:.1} points/ms), {} promoted, estimated frontier:",
            wall,
            points.len() as f64 / wall / 1e3,
            promoted.len()
        );
        for &i in &frontier {
            println!(
                "  {:<26} cost {:>6}  est {:>9} cycles",
                points[i].label(),
                costs[i],
                est[i]
            );
        }
        return;
    }

    println!("tiered sweep (triage -> promote -> simulate promoted)...");
    let outcome = run_sweep(&spec);
    let tiered_wall = outcome.tier0_wall_s + outcome.sim_wall_s;
    println!(
        "  tier-0 {:.3}s, promoted {}/{} points, simulation {:.3}s",
        outcome.tier0_wall_s,
        outcome.promoted.len(),
        points.len(),
        outcome.sim_wall_s
    );

    println!("exhaustive sweep (simulate everything)...");
    let t0 = Instant::now();
    let all_sim = simulate_points(&spec, &points);
    let exhaustive_wall = t0.elapsed().as_secs_f64();
    println!("  {exhaustive_wall:.3}s");

    // Oracle check 1: promoted simulations must agree with the
    // exhaustive runs (both are the deterministic tier-1 simulator).
    for &i in &outcome.promoted {
        assert_eq!(
            outcome.sim_cycles[i],
            Some(all_sim[i]),
            "promoted simulation of {} diverged from the exhaustive run",
            outcome.points[i].label()
        );
    }

    // Oracle check 2: the frontier read off the promoted subset must be
    // the frontier of the full space.
    let promoted_frontier = outcome.simulated_frontier();
    let exhaustive_frontier = ballerino_bench::pareto_indices(&outcome.costs, &all_sim);
    let frontier_match = promoted_frontier == exhaustive_frontier;
    if !frontier_match {
        for &i in exhaustive_frontier
            .iter()
            .filter(|i| !promoted_frontier.contains(i))
        {
            eprintln!(
                "  LOST  {:<26} cost {:>6} sim {:>9} est {:>9} promoted={}",
                outcome.points[i].label(),
                outcome.costs[i],
                all_sim[i],
                outcome.est_cycles[i],
                outcome.promoted.contains(&i)
            );
        }
        for &i in promoted_frontier
            .iter()
            .filter(|i| !exhaustive_frontier.contains(i))
        {
            eprintln!(
                "  EXTRA {:<26} cost {:>6} sim {:>9} est {:>9}",
                outcome.points[i].label(),
                outcome.costs[i],
                all_sim[i],
                outcome.est_cycles[i]
            );
        }
    }

    let speedup = exhaustive_wall / tiered_wall.max(1e-9);
    println!(
        "tiered {tiered_wall:.3}s vs exhaustive {exhaustive_wall:.3}s -> {speedup:.1}x; \
         frontier {} ({} points)",
        if frontier_match { "MATCH" } else { "MISMATCH" },
        exhaustive_frontier.len()
    );

    println!("frontier (cost-ascending):");
    for &i in &exhaustive_frontier {
        let est = outcome.est_cycles[i];
        let sim = all_sim[i];
        println!(
            "  {:<26} cost {:>6}  sim {:>9}  tier0 {:>9} ({:+5.1}%)",
            outcome.points[i].label(),
            outcome.costs[i],
            sim,
            est,
            100.0 * (est as f64 - sim as f64) / sim as f64
        );
    }

    // Tier-0 accuracy over the promoted set (where truth is known).
    let errs: Vec<f64> = outcome
        .promoted
        .iter()
        .map(|&i| {
            100.0 * (outcome.est_cycles[i] as f64 - all_sim[i] as f64).abs() / all_sim[i] as f64
        })
        .collect();
    let mean_err = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
    let worst_err = errs.iter().cloned().fold(0.0, f64::max);
    println!("tier-0 error on promoted points: mean {mean_err:.1}%, worst {worst_err:.1}%");

    let json = render_json(
        &spec,
        &outcome.points,
        outcome.promoted.len(),
        &promoted_frontier,
        &exhaustive_frontier,
        outcome.margin_pct,
        outcome.tier0_wall_s,
        outcome.sim_wall_s,
        exhaustive_wall,
        speedup,
        mean_err,
        worst_err,
        frontier_match,
    );
    let path = "BENCH_sweep.json";
    Provenance::capture().warn_if_dirty(path);
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    println!("wrote {path}");

    if !frontier_match {
        eprintln!(
            "promoted frontier != exhaustive frontier — widen \
             BALLERINO_SWEEP_MARGIN or recalibrate (tier0_calibrate)"
        );
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    spec: &SweepSpec,
    points: &[DesignPoint],
    promoted: usize,
    promoted_frontier: &[usize],
    exhaustive_frontier: &[usize],
    margin_pct: u32,
    tier0_wall_s: f64,
    sim_wall_s: f64,
    exhaustive_wall_s: f64,
    speedup: f64,
    mean_err_pct: f64,
    worst_err_pct: f64,
    frontier_match: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"sweep\",");
    s.push_str(&Provenance::capture().json_fields());
    let _ = writeln!(s, "  \"n\": {},", spec.n);
    let _ = writeln!(s, "  \"seed\": {},", spec.seed);
    let _ = writeln!(s, "  \"threads\": {},", threads());
    let _ = writeln!(s, "  \"workloads\": {},", spec.workloads.len());
    let _ = writeln!(s, "  \"points_triaged\": {},", points.len());
    let _ = writeln!(s, "  \"points_promoted\": {promoted},");
    let _ = writeln!(s, "  \"margin_pct\": {margin_pct},");
    let _ = writeln!(s, "  \"tier0_wall_s\": {tier0_wall_s:.6},");
    let _ = writeln!(s, "  \"promoted_sim_wall_s\": {sim_wall_s:.6},");
    let _ = writeln!(s, "  \"tiered_wall_s\": {:.6},", tier0_wall_s + sim_wall_s);
    let _ = writeln!(s, "  \"exhaustive_wall_s\": {exhaustive_wall_s:.6},");
    let _ = writeln!(s, "  \"speedup\": {speedup:.4},");
    let _ = writeln!(s, "  \"tier0_mean_err_pct\": {mean_err_pct:.2},");
    let _ = writeln!(s, "  \"tier0_worst_err_pct\": {worst_err_pct:.2},");
    let _ = writeln!(s, "  \"frontier_match\": {frontier_match},");
    let _ = writeln!(s, "  \"frontier_size\": {},", exhaustive_frontier.len());
    s.push_str("  \"frontier\": [\n");
    for (k, &i) in promoted_frontier.iter().enumerate() {
        let _ = write!(s, "    \"{}\"", points[i].label());
        s.push_str(if k + 1 < promoted_frontier.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}
