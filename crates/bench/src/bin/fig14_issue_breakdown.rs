//! Figure 14: fraction of μops issued from each structure, per Ballerino
//! variant.
//!
//! Paper shape: in Step 1 the S-IQ speculatively issues ~41% of dynamic
//! μops; Step 3's cluster of P-IQs issues ~6 points more than Step 2's,
//! letting the S-IQ find ready μops more aggressively.

use ballerino_bench::run_suite;
use ballerino_sim::{MachineKind, Width};

fn main() {
    println!("Fig. 14 — issue-source breakdown (fraction of all issues)\n");
    println!(
        "{:<14}{:>8}{:>8}{:>10}{:>8}{:>8}",
        "design", "S-IQ", "P-IQ", "in-order", "OoO-IQ", "IXU"
    );
    for kind in [
        MachineKind::Ces,
        MachineKind::CesMda,
        MachineKind::BallerinoStep1,
        MachineKind::BallerinoStep2,
        MachineKind::Ballerino,
        MachineKind::Ballerino12,
        MachineKind::Casino,
        MachineKind::Fxa,
    ] {
        let runs = run_suite(kind, Width::Eight);
        let mut agg = [0.0f64; 5];
        for r in &runs {
            let b = r.issue_breakdown;
            let tot = b.total().max(1) as f64;
            for (a, v) in agg.iter_mut().zip([
                b.from_siq,
                b.from_piq,
                b.from_inorder,
                b.from_ooo,
                b.from_ixu,
            ]) {
                *a += v as f64 / tot;
            }
        }
        let n = runs.len() as f64;
        println!(
            "{:<14}{:>8.3}{:>8.3}{:>10.3}{:>8.3}{:>8.3}",
            kind.label(),
            agg[0] / n,
            agg[1] / n,
            agg[2] / n,
            agg[3] / n,
            agg[4] / n
        );
    }
    println!("\npaper: Step 1 S-IQ issues ≈41% of μops");
}
