//! Figure 17: sensitivity analysis.
//!
//! * `a` — issue-width scaling (2/4/8/10-wide) as speedup over 2-wide
//!   InO, with the tier-0 analytic estimate and its error next to every
//!   simulated cell. Paper shape: CES/Ballerino scale well; InO and
//!   CASINO flatten beyond 8-wide; FXA tracks OoO.
//! * `b` — DVFS levels L4..L1: speedup, power, energy and efficiency of
//!   Ballerino and OoO relative to CES at L4.
//! * `c` — Ballerino IPC versus the number of P-IQs. Paper shape: gains
//!   up to eleven P-IQs, then diminishing returns.
//!
//! All simulation goes through the work-stealing pool (`run_cells`), so
//! `BALLERINO_THREADS` controls parallelism.
//!
//! Pass `a`, `b` or `c` as the first argument (default: all).

use ballerino_analytic::{predict_cycles, MachineParams};
use ballerino_bench::{enumerate_cells, grid_points, run_pool, seed, suite_len, threads, SimCell};
use ballerino_energy::{DvfsLevel, EnergyModel};
use ballerino_sim::stats::geomean;
use ballerino_sim::{DesignPoint, MachineKind, SimResult, Width};
use ballerino_workloads::{cached_dag, cached_features, workload_names};

/// The whole suite at one grid point, via the shared cell enumerator
/// (the same path `run_cells`, the sweep engine and `ballerino-serve`
/// use), on the work-stealing pool.
fn suite_runs(kind: MachineKind, width: Width) -> Vec<SimResult> {
    let points = grid_points(&[kind], &[width], &[None], &[100]);
    let cells = enumerate_cells(&points, &workload_names(), suite_len(), seed());
    run_pool(&cells, threads(), SimCell::run)
}

/// Tier-0 predicted cycles for every suite workload on a design point.
fn suite_estimates(kind: MachineKind, width: Width) -> Vec<u64> {
    let params = MachineParams::from_point(&DesignPoint::new(kind, width));
    let (n, s) = (suite_len(), seed());
    workload_names()
        .into_iter()
        .map(|wl| {
            predict_cycles(
                &params,
                &cached_dag(wl, n, s),
                &cached_features(wl, n, s),
                wl,
            )
            .cycles
        })
        .collect()
}

const A_KINDS: [MachineKind; 6] = [
    MachineKind::InOrder,
    MachineKind::Casino,
    MachineKind::Ces,
    MachineKind::Ballerino,
    MachineKind::Fxa,
    MachineKind::OutOfOrder,
];
const A_WIDTHS: [Width; 4] = [Width::Two, Width::Four, Width::Eight, Width::Ten];

fn part_a() {
    println!("Fig. 17a — width scaling: geomean speedup over 2-wide InO");
    println!("(sim = cycle-accurate, est = tier-0 analytic, err = mean cycle error)\n");
    let base = suite_runs(MachineKind::InOrder, Width::Two);
    print!("{:<12}", "design");
    for w in ["2-wide", "4-wide", "8-wide", "10-wide"] {
        print!("{w:>24}");
    }
    println!();
    print!("{:<12}", "");
    for _ in A_WIDTHS {
        print!("{:>10}{:>8}{:>6}", "sim", "est", "err");
    }
    println!();
    for kind in A_KINDS {
        print!("{:<12}", kind.label());
        for width in A_WIDTHS {
            let runs = suite_runs(kind, width);
            let est = suite_estimates(kind, width);
            let sp: Vec<f64> = runs
                .iter()
                .zip(&base)
                .map(|(r, b)| r.speedup_over(b))
                .collect();
            let sp_est: Vec<f64> = est
                .iter()
                .zip(&base)
                .map(|(&e, b)| b.cycles as f64 / e as f64)
                .collect();
            let err: f64 = runs
                .iter()
                .zip(&est)
                .map(|(r, &e)| 100.0 * (e as f64 - r.cycles as f64).abs() / r.cycles as f64)
                .sum::<f64>()
                / runs.len() as f64;
            print!(
                "{:>10.2}{:>8.2}{:>5.0}%",
                geomean(&sp),
                geomean(&sp_est),
                err
            );
        }
        println!();
    }
}

fn part_b() {
    println!("\nFig. 17b — DVFS levels (suite sums, relative to CES @ L4)\n");
    let ces = suite_runs(MachineKind::Ces, Width::Eight);
    let ces_time: f64 = ces.iter().map(|r| r.seconds()).sum();
    let ces_energy: f64 = ces
        .iter()
        .map(|r| {
            EnergyModel::new(r.sizes, DvfsLevel::L4)
                .breakdown(&r.energy)
                .total()
        })
        .sum();

    println!(
        "{:<12}{:<5}{:>10}{:>10}{:>10}{:>12}",
        "design", "lvl", "speedup", "power", "energy", "efficiency"
    );
    for kind in [MachineKind::Ballerino, MachineKind::OutOfOrder] {
        let runs = suite_runs(kind, Width::Eight);
        for level in DvfsLevel::ALL {
            let time: f64 = runs.iter().map(|r| level.seconds(r.cycles)).sum();
            let energy: f64 = runs
                .iter()
                .map(|r| {
                    EnergyModel::new(r.sizes, level)
                        .breakdown(&r.energy)
                        .total()
                })
                .sum();
            let speedup = ces_time / time;
            let rel_e = energy / ces_energy;
            let power = rel_e / (time / ces_time);
            let eff = speedup / rel_e;
            println!(
                "{:<12}{:<5}{:>10.2}{:>10.2}{:>10.2}{:>12.2}",
                kind.label(),
                level.name,
                speedup,
                power,
                rel_e,
                eff
            );
        }
    }
    println!("\npaper: Ballerino@L3 within CES power, +5% perf, +9% eff; OoO@L1 −27% eff");
}

fn part_c() {
    println!("\nFig. 17c — Ballerino geomean IPC vs number of P-IQs (8-wide)\n");
    print!("{:<8}", "P-IQs");
    println!("{:>10}{:>12}", "IPC", "vs OoO");
    let ooo = suite_runs(MachineKind::OutOfOrder, Width::Eight);
    let ooo_ipc = geomean(&ooo.iter().map(|r| r.ipc()).collect::<Vec<_>>());
    for piqs in [3usize, 5, 7, 9, 11, 13, 15] {
        let runs = suite_runs(MachineKind::BallerinoN(piqs), Width::Eight);
        let ipc = geomean(&runs.iter().map(|r| r.ipc()).collect::<Vec<_>>());
        println!("{:<8}{:>10.3}{:>12.3}", piqs, ipc, ipc / ooo_ipc);
    }
    println!("\npaper: gains up to eleven P-IQs (Ballerino-12 ≈ OoO), then flat");
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "a" => part_a(),
        "b" => part_b(),
        "c" => part_c(),
        _ => {
            part_a();
            part_b();
            part_c();
        }
    }
}
