//! Figure 17: sensitivity analysis.
//!
//! * `a` — issue-width scaling (2/4/8/10-wide) as speedup over 2-wide
//!   InO. Paper shape: CES/Ballerino scale well; InO and CASINO flatten
//!   beyond 8-wide; FXA tracks OoO.
//! * `b` — DVFS levels L4..L1: speedup, power, energy and efficiency of
//!   Ballerino and OoO relative to CES at L4.
//! * `c` — Ballerino IPC versus the number of P-IQs. Paper shape: gains
//!   up to eleven P-IQs, then diminishing returns.
//!
//! Pass `a`, `b` or `c` as the first argument (default: all).

use ballerino_bench::{seed, suite_len};
use ballerino_energy::{DvfsLevel, EnergyModel};
use ballerino_sim::stats::geomean;
use ballerino_sim::{run_machine, MachineKind, SimResult, Width};
use ballerino_workloads::{cached_workload, workload_names};

fn suite_runs(kind: MachineKind, width: Width) -> Vec<SimResult> {
    workload_names()
        .into_iter()
        .map(|wl| run_machine(kind, width, &cached_workload(wl, suite_len(), seed())))
        .collect()
}

fn part_a() {
    println!("Fig. 17a — width scaling: geomean speedup over 2-wide InO\n");
    let base = suite_runs(MachineKind::InOrder, Width::Two);
    print!("{:<12}", "design");
    for w in ["2-wide", "4-wide", "8-wide", "10-wide"] {
        print!("{w:>9}");
    }
    println!();
    for kind in [
        MachineKind::InOrder,
        MachineKind::Casino,
        MachineKind::Ces,
        MachineKind::Ballerino,
        MachineKind::Fxa,
        MachineKind::OutOfOrder,
    ] {
        print!("{:<12}", kind.label());
        for width in [Width::Two, Width::Four, Width::Eight, Width::Ten] {
            let runs = suite_runs(kind, width);
            let sp: Vec<f64> = runs
                .iter()
                .zip(&base)
                .map(|(r, b)| r.speedup_over(b))
                .collect();
            print!("{:>9.2}", geomean(&sp));
        }
        println!();
    }
}

fn part_b() {
    println!("\nFig. 17b — DVFS levels (suite sums, relative to CES @ L4)\n");
    let ces = suite_runs(MachineKind::Ces, Width::Eight);
    let ces_time: f64 = ces.iter().map(|r| r.seconds()).sum();
    let ces_energy: f64 = ces
        .iter()
        .map(|r| {
            EnergyModel::new(r.sizes, DvfsLevel::L4)
                .breakdown(&r.energy)
                .total()
        })
        .sum();

    println!(
        "{:<12}{:<5}{:>10}{:>10}{:>10}{:>12}",
        "design", "lvl", "speedup", "power", "energy", "efficiency"
    );
    for kind in [MachineKind::Ballerino, MachineKind::OutOfOrder] {
        let runs = suite_runs(kind, Width::Eight);
        for level in DvfsLevel::ALL {
            let time: f64 = runs.iter().map(|r| level.seconds(r.cycles)).sum();
            let energy: f64 = runs
                .iter()
                .map(|r| {
                    EnergyModel::new(r.sizes, level)
                        .breakdown(&r.energy)
                        .total()
                })
                .sum();
            let speedup = ces_time / time;
            let rel_e = energy / ces_energy;
            let power = rel_e / (time / ces_time);
            let eff = speedup / rel_e;
            println!(
                "{:<12}{:<5}{:>10.2}{:>10.2}{:>10.2}{:>12.2}",
                kind.label(),
                level.name,
                speedup,
                power,
                rel_e,
                eff
            );
        }
    }
    println!("\npaper: Ballerino@L3 within CES power, +5% perf, +9% eff; OoO@L1 −27% eff");
}

fn part_c() {
    println!("\nFig. 17c — Ballerino geomean IPC vs number of P-IQs (8-wide)\n");
    print!("{:<8}", "P-IQs");
    println!("{:>10}{:>12}", "IPC", "vs OoO");
    let ooo = suite_runs(MachineKind::OutOfOrder, Width::Eight);
    let ooo_ipc = geomean(&ooo.iter().map(|r| r.ipc()).collect::<Vec<_>>());
    for piqs in [3usize, 5, 7, 9, 11, 13, 15] {
        let runs = suite_runs(MachineKind::BallerinoN(piqs), Width::Eight);
        let ipc = geomean(&runs.iter().map(|r| r.ipc()).collect::<Vec<_>>());
        println!("{:<8}{:>10.3}{:>12.3}", piqs, ipc, ipc / ooo_ipc);
    }
    println!("\npaper: gains up to eleven P-IQs (Ballerino-12 ≈ OoO), then flat");
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "a" => part_a(),
        "b" => part_b(),
        "c" => part_c(),
        _ => {
            part_a();
            part_b();
            part_c();
        }
    }
}
