//! Shared provenance stamping for every `BENCH_*.json` artifact.
//!
//! Every bench JSON carries the same three fields so results can be tied
//! back to the exact tree that produced them:
//!
//! * `git_sha` — short commit hash of `HEAD`, `"unknown"` outside a git
//!   checkout (e.g. a source tarball).
//! * `git_dirty` — whether the working tree had uncommitted changes
//!   (tracked or staged) when the bench ran. A dirty tree means the SHA
//!   alone does **not** reproduce the run.
//! * `date` — UTC date of the run, `YYYY-MM-DD`.
//!
//! ## The parent-SHA caveat
//!
//! Bench artifacts are usually generated *before* the commit that ships
//! them: you run the bench, then `git add BENCH_*.json && git commit`.
//! The committed file therefore records the **parent** commit's SHA (the
//! `HEAD` at bench time), not the SHA of the commit containing the file.
//! This is intentional — the recorded SHA identifies the *code that was
//! measured*, which is exactly the parent. Consumers diffing artifacts
//! across history should resolve `git_sha` as "the tree the numbers came
//! from", not "the commit the file first appeared in".

use std::time::{SystemTime, UNIX_EPOCH};

/// Provenance of one bench run (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Short commit hash of `HEAD`, or `"unknown"`.
    pub git_sha: String,
    /// Whether the working tree had uncommitted changes.
    pub git_dirty: bool,
    /// UTC date, `YYYY-MM-DD`.
    pub date: String,
}

impl Provenance {
    /// Captures the current provenance: one `git rev-parse`, one
    /// `git status --porcelain`, one clock read.
    pub fn capture() -> Provenance {
        Provenance {
            git_sha: git_sha(),
            git_dirty: git_dirty(),
            date: utc_date(),
        }
    }

    /// Prints a loud stderr warning when the working tree was dirty at
    /// capture time. A dirty-tree artifact records a `git_sha` that does
    /// **not** reproduce the numbers, so it must never be committed;
    /// every bench binary calls this right before writing its
    /// `BENCH_*.json`.
    pub fn warn_if_dirty(&self, artifact: &str) {
        if self.git_dirty {
            eprintln!("=======================================================================");
            eprintln!(
                "WARNING: {artifact} was produced by a DIRTY tree (HEAD {})",
                self.git_sha
            );
            eprintln!("WARNING: its git_sha does not reproduce these numbers — do NOT commit");
            eprintln!("WARNING: this artifact; re-run from a clean checkout to regenerate it.");
            eprintln!("=======================================================================");
        }
    }

    /// The three provenance lines of a JSON object body, each indented
    /// two spaces and newline-terminated, for splicing into hand-rolled
    /// JSON (every bench binary renders JSON by hand — no serde in the
    /// dependency-free container).
    pub fn json_fields(&self) -> String {
        format!(
            "  \"git_sha\": \"{}\",\n  \"git_dirty\": {},\n  \"date\": \"{}\",\n",
            self.git_sha, self.git_dirty, self.date
        )
    }
}

/// Short commit hash of the working tree, or `"unknown"` outside a git
/// checkout.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Whether the working tree differs from `HEAD` (untracked files do not
/// count — they cannot affect a build of tracked sources). `false`
/// outside a git checkout, matching `git_sha()`'s `"unknown"`.
fn git_dirty() -> bool {
    std::process::Command::new("git")
        .args(["status", "--porcelain", "--untracked-files=no"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| !o.stdout.is_empty())
        .unwrap_or(false)
}

/// Current UTC date (`YYYY-MM-DD`), computed from the system clock
/// without external crates (civil-from-days, Howard Hinnant's algorithm).
fn utc_date() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_yields_plausible_fields() {
        let p = Provenance::capture();
        assert!(!p.git_sha.is_empty());
        assert_eq!(p.date.len(), 10);
        assert_eq!(&p.date[4..5], "-");
    }

    #[test]
    fn json_fields_are_well_formed_lines() {
        let p = Provenance {
            git_sha: "abc1234".into(),
            git_dirty: true,
            date: "2026-08-08".into(),
        };
        let s = p.json_fields();
        assert!(s.contains("\"git_sha\": \"abc1234\","));
        assert!(s.contains("\"git_dirty\": true,"));
        assert!(s.contains("\"date\": \"2026-08-08\","));
        assert_eq!(s.lines().count(), 3);
    }
}
