//! The tiered-fidelity sweep engine: tier-0 triage of a design-point
//! grid, conservative Pareto promotion, cycle-accurate simulation of the
//! survivors.
//!
//! A [`SweepSpec`] enumerates a cross product of machine kinds, widths,
//! IQ-entry budgets and DRAM speed grades — thousands of
//! [`DesignPoint`]s. Simulating all of them is hours of work; almost all
//! of it is wasted on points that no one would build because a cheaper
//! point is also faster. The engine instead:
//!
//! 1. **Triage (tier 0)** — predicts every point's aggregate cycle count
//!    over the spec's workloads with the `ballerino-analytic` dataflow
//!    model: microseconds per point, embarrassingly parallel.
//! 2. **Anchor (round 1)** — simulates the *estimated* Pareto frontier:
//!    a few dozen points that pin the true cost/performance curve.
//! 3. **Promotion (incremental)** — every other point is tested against
//!    the simulated envelope: point `p` is promoted unless some
//!    simulated `q` with `cost[q] <= cost[p]` satisfies
//!    `sim[q] × 100 < est[p] × (100 − m)` — i.e. even after deflating
//!    `p`'s estimate by the **margin** `m`, a cheaper point is already
//!    *known* (not estimated) to be faster. Survivors are simulated
//!    cheapest-first in small batches, each batch folding back into the
//!    envelope before the next is chosen, so a just-simulated frontier
//!    point immediately prunes its whole equal-cost group. The frontier
//!    is read off the simulated numbers.
//!
//! Anchoring on simulated truth makes the test one-sided: a true
//! frontier point can only be lost if *its own* estimate is too high by
//! more than ~`m`% — underestimating other points never hurts, because
//! dominance is only ever claimed from cycle-accurate numbers. (The
//! est-vs-est single-round rule, [`promote_indices`], needs the margin
//! to absorb error on *both* sides of every comparison and therefore
//! promotes several times more points for the same safety; it remains
//! available for `BALLERINO_TIER0_ONLY` triage.) The default margin is
//! [`ballerino_analytic::default_promotion_margin_pct`], validated by
//! the frontier-equality gate in `sweep_bench` and the CI smoke sweep.
//!
//! Cost is a static area proxy ([`point_cost`]) — identical for both
//! tiers, so promotion error comes from the cycle axis alone.

use crate::cells::{enumerate_cells, grid_points, sweep_kinds, SimCell};
use crate::{run_pool, threads};
use ballerino_analytic::{default_promotion_margin_pct, MachineParams};
use ballerino_sim::{build_scheduler_point, DesignPoint, MachineKind, Width};
use ballerino_workloads::{cached_dag, cached_features};
use std::time::Instant;

/// A design-space sweep: the grid axes plus the workloads and trace
/// size every point is evaluated on.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Machine kinds to enumerate.
    pub kinds: Vec<MachineKind>,
    /// Width presets to enumerate.
    pub widths: Vec<Width>,
    /// IQ-entry budgets (`None` = the width's Table II default).
    pub iq_budgets: Vec<Option<usize>>,
    /// DRAM timing scales in percent (100 = default).
    pub dram_scales: Vec<u32>,
    /// Workloads each point is scored on (aggregate cycles).
    pub workloads: Vec<&'static str>,
    /// μops per workload trace.
    pub n: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl SweepSpec {
    /// The full design-space sweep: every [`sweep_kinds`] registry kind
    /// (10 windowed kinds × 4 widths × 7 IQ budgets × 9 DRAM grades,
    /// plus the windowless InOrder baseline on the width × DRAM axes
    /// only = 2556 points), scored on six workloads spanning all three
    /// calibration classes.
    ///
    /// Axis choices that keep the grid honest: every IQ budget is
    /// explicit (`None` would duplicate whichever explicit value matches
    /// the width's default — identical silicon enumerated twice), and the
    /// DRAM axis spans a 1.4×-faster premium part down to a 4×-slower
    /// budget part, with steps sized to what they measure. An ultra-fast
    /// grade is deliberately absent: with 2×-faster DRAM every wide core
    /// converges to the same compute-bound cycle count, which says
    /// nothing about the designs and only pads the grid with coincidental
    /// near-ties. The steps are coarse at the fast end, where a grade
    /// change shifts the bottleneck, and fine at the slow end, where
    /// cycles scale almost linearly with the timing grade and each part
    /// is a genuine cost/performance trade.
    pub fn full() -> SweepSpec {
        SweepSpec {
            kinds: sweep_kinds(),
            widths: vec![Width::Two, Width::Four, Width::Eight, Width::Ten],
            iq_budgets: vec![
                Some(16),
                Some(24),
                Some(32),
                Some(48),
                Some(64),
                Some(96),
                Some(160),
            ],
            dram_scales: vec![70, 100, 140, 170, 200, 240, 280, 320, 400],
            workloads: vec![
                "int_crunch",
                "gemm_blocked",
                "stream_triad",
                "pointer_chase",
                "branchy_sort",
                "compress_lz",
            ],
            n: 12_000,
            seed: 42,
        }
    }

    /// A CI-sized smoke sweep: 40 points, three workloads, small traces.
    pub fn smoke() -> SweepSpec {
        SweepSpec {
            kinds: vec![
                MachineKind::OutOfOrder,
                MachineKind::Ballerino,
                MachineKind::Ces,
                MachineKind::InOrder,
            ],
            widths: vec![Width::Two, Width::Eight],
            iq_budgets: vec![None, Some(32), Some(128)],
            dram_scales: vec![100, 200],
            workloads: vec!["int_crunch", "pointer_chase", "branchy_sort"],
            n: 4_000,
            seed: 42,
        }
    }

    /// Materializes the grid, kind-major, via the shared
    /// [`grid_points`] enumerator (which also owns the InOrder IQ-axis
    /// collapse — see its docs).
    pub fn points(&self) -> Vec<DesignPoint> {
        grid_points(
            &self.kinds,
            &self.widths,
            &self.iq_budgets,
            &self.dram_scales,
        )
    }

    /// The promotion margin for this spec: `BALLERINO_SWEEP_MARGIN`
    /// (percent) if set, else the committed default
    /// ([`ballerino_analytic::default_promotion_margin_pct`]).
    pub fn margin_pct(&self) -> u32 {
        if let Ok(v) = std::env::var("BALLERINO_SWEEP_MARGIN") {
            if let Ok(m) = v.parse() {
                return m;
            }
        }
        default_promotion_margin_pct()
    }
}

/// Static cost proxy of a design point (arbitrary area-ish units; bigger
/// = more silicon / faster memory part). CAM entries are weighted 4× a
/// FIFO entry (fully-associative wakeup), ports and ROB/PRF contribute
/// their share, and faster-than-default DRAM is billed as a more
/// expensive memory part. Identical for both fidelity tiers — the Pareto
/// cost axis carries no estimation error.
pub fn point_cost(point: &DesignPoint) -> u64 {
    let (cfg, _, sizes) = build_scheduler_point(point);
    let window = 4 * sizes.cam_entries as u64 + sizes.fifo_entries as u64;
    let core = 16 * cfg.issue_width as u64
        + cfg.rob_entries as u64 / 2
        + sizes.prf_entries as u64 / 4
        + if sizes.has_steer { 8 } else { 0 };
    // 100 → 200 units; 50 (2× faster part) → 400; 200 (half-speed) → 100.
    let mem = 20_000 / point.dram_scale_pct as u64;
    window + core + mem
}

/// Everything a sweep produces, dense over `spec.points()` order.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The enumerated grid.
    pub points: Vec<DesignPoint>,
    /// Static cost per point.
    pub costs: Vec<u64>,
    /// Tier-0 aggregate predicted cycles per point.
    pub est_cycles: Vec<u64>,
    /// Indices promoted to cycle-accurate simulation, ascending.
    pub promoted: Vec<usize>,
    /// Simulated aggregate cycles for promoted points (`None` elsewhere).
    pub sim_cycles: Vec<Option<u64>>,
    /// Margin (percent) promotion used.
    pub margin_pct: u32,
    /// Wall-clock seconds of the tier-0 triage (features cached).
    pub tier0_wall_s: f64,
    /// Wall-clock seconds of the promoted simulations.
    pub sim_wall_s: f64,
}

impl SweepOutcome {
    /// The frontier of the *simulated* promoted points (indices into
    /// `points`).
    pub fn simulated_frontier(&self) -> Vec<usize> {
        let idx: Vec<usize> = self
            .promoted
            .iter()
            .copied()
            .filter(|&i| self.sim_cycles[i].is_some())
            .collect();
        let costs: Vec<u64> = idx.iter().map(|&i| self.costs[i]).collect();
        let cyc: Vec<u64> = idx.iter().map(|&i| self.sim_cycles[i].unwrap()).collect();
        pareto_indices(&costs, &cyc)
            .into_iter()
            .map(|k| idx[k])
            .collect()
    }

    /// The frontier tier-0 alone would report (no simulation).
    pub fn estimated_frontier(&self) -> Vec<usize> {
        pareto_indices(&self.costs, &self.est_cycles)
    }
}

/// Pareto frontier of `(cost, value)` pairs, both minimized: indices of
/// all non-dominated points, ascending by cost. Duplicate points (equal
/// cost *and* value) are all kept — neither dominates the other.
pub fn pareto_indices(costs: &[u64], values: &[u64]) -> Vec<usize> {
    assert_eq!(costs.len(), values.len());
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (costs[i], values[i]));
    let mut out = Vec::new();
    let mut best = u64::MAX;
    let mut g = 0;
    while g < order.len() {
        let cost = costs[order[g]];
        let mut end = g;
        while end < order.len() && costs[order[end]] == cost {
            end += 1;
        }
        let group_min = values[order[g]]; // sorted, so the group head is minimal
        if group_min < best {
            out.extend(order[g..end].iter().filter(|&&i| values[i] == group_min));
            best = group_min;
        }
        g = end;
    }
    out.sort_unstable();
    out
}

/// Conservative promotion: the indices that survive margin-widened
/// dominance. Point `p` is dropped only when some `q` with
/// `cost[q] <= cost[p]` satisfies
/// `est[q] * (100 + margin) < est[p] * (100 - margin)` (u128 products —
/// no overflow). If every estimate is within ±`margin`% of its true
/// value, then for such a pair `true[q] < true[p]` with
/// `cost[q] <= cost[p]`, i.e. `p` is genuinely dominated — so the true
/// frontier is always a subset of the promoted set.
pub fn promote_indices(costs: &[u64], est: &[u64], margin_pct: u32) -> Vec<usize> {
    assert_eq!(costs.len(), est.len());
    let hi = 100 + margin_pct as u128;
    let lo = 100u128.saturating_sub(margin_pct as u128);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (costs[i], est[i]));
    let mut out = Vec::new();
    let mut best = u64::MAX; // min estimate among cost <= current group's
    let mut g = 0;
    while g < order.len() {
        let cost = costs[order[g]];
        let mut end = g;
        while end < order.len() && costs[order[end]] == cost {
            end += 1;
        }
        // `cost[q] <= cost[p]` admits same-cost dominators, so fold the
        // group's own minimum in before testing its members.
        best = best.min(est[order[g]]);
        for &i in &order[g..end] {
            if (best as u128) * hi >= (est[i] as u128) * lo {
                out.push(i);
            }
        }
        g = end;
    }
    out.sort_unstable();
    out
}

/// Sim-anchored survivors: the unsimulated indices that could still be
/// on the true frontier given the simulated anchors. Point `p` survives
/// unless some simulated `q` with `cost[q] <= cost[p]` satisfies
/// `sim[q] * 100 < est[p] * (100 - margin)` — a cheaper point already
/// *known* to be faster than `p`'s margin-deflated estimate. One-sided:
/// only overestimating `p` itself by more than ~`margin`% can wrongly
/// drop it; estimation error on `q` never enters (its value is
/// simulated). Equality survives, so exact duplicates are never split.
pub fn anchored_survivors(
    costs: &[u64],
    est: &[u64],
    sim: &[Option<u64>],
    margin_pct: u32,
) -> Vec<usize> {
    assert_eq!(costs.len(), est.len());
    assert_eq!(costs.len(), sim.len());
    let lo = 100u128.saturating_sub(margin_pct as u128);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| costs[i]);
    let mut out = Vec::new();
    let mut best = u64::MAX; // min simulated cycles at cost <= current group's
    let mut g = 0;
    while g < order.len() {
        let cost = costs[order[g]];
        let mut end = g;
        while end < order.len() && costs[order[end]] == cost {
            end += 1;
        }
        // `cost[q] <= cost[p]` admits same-cost anchors, so fold the
        // group's own sims in before testing its members.
        for &i in &order[g..end] {
            if let Some(s) = sim[i] {
                best = best.min(s);
            }
        }
        for &i in &order[g..end] {
            if sim[i].is_none() && ((best as u128) * 100 >= (est[i] as u128) * lo) {
                out.push(i);
            }
        }
        g = end;
    }
    out.sort_unstable();
    out
}

/// Tier-0 scores for every point of a spec: aggregate predicted cycles
/// across the spec's workloads, on the work-stealing pool. Trace
/// features come from the process-wide cache, so the `O(n log n)`
/// extraction is paid once per workload, not per point.
pub fn tier0_scores(spec: &SweepSpec, points: &[DesignPoint]) -> Vec<u64> {
    // Warm the caches serially so pool workers never duplicate work.
    let inputs: Vec<_> = spec
        .workloads
        .iter()
        .map(|&w| {
            (
                cached_dag(w, spec.n, spec.seed),
                cached_features(w, spec.n, spec.seed),
                w,
            )
        })
        .collect();
    run_pool(points, threads(), |p| {
        let params = MachineParams::from_point(p);
        inputs
            .iter()
            .map(|(dag, feat, w)| ballerino_analytic::predict_cycles(&params, dag, feat, w).cycles)
            .sum()
    })
}

/// Simulates a set of points over the spec's workloads on the
/// work-stealing pool; returns aggregate cycles per point, in the order
/// given.
pub fn simulate_points(spec: &SweepSpec, points: &[DesignPoint]) -> Vec<u64> {
    if spec.workloads.is_empty() {
        return vec![0; points.len()];
    }
    let cells = enumerate_cells(points, &spec.workloads, spec.n, spec.seed);
    let per_cell = run_pool(&cells, threads(), |c: &SimCell| c.run().cycles);
    // Cells are point-major, so each point owns one contiguous chunk.
    per_cell
        .chunks(spec.workloads.len())
        .map(|chunk| chunk.iter().sum())
        .collect()
}

/// Runs the full tiered sweep: triage every point, simulate the
/// estimated frontier (anchors), then promote incrementally: re-derive
/// the sim-anchored survivor set, simulate the cheapest few survivors,
/// fold their cycle counts back into the envelope, repeat until no
/// survivor remains. Simulations only ever *lower* the envelope, so a
/// pruned point stays pruned and each iteration simulates at least one
/// new point — the loop terminates with exactly the points no simulated
/// cheaper point could disprove. Simulating cheapest-first (and, within
/// a cost, lowest-estimate-first) matters: a just-simulated frontier
/// point immediately prunes the rest of its equal-cost group — e.g. the
/// DRAM-grade siblings that share one area cost — which a one-shot
/// batch round would have simulated wholesale.
pub fn run_sweep(spec: &SweepSpec) -> SweepOutcome {
    let points = spec.points();
    let costs: Vec<u64> = points.iter().map(point_cost).collect();
    let margin_pct = spec.margin_pct();

    let t0 = Instant::now();
    let est_cycles = tier0_scores(spec, &points);
    let tier0_wall_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut sim_cycles = vec![None; points.len()];

    // Round 1: the estimated frontier pins the true curve.
    let anchors = pareto_indices(&costs, &est_cycles);
    let anchor_points: Vec<DesignPoint> = anchors.iter().map(|&i| points[i]).collect();
    for (&i, cyc) in anchors.iter().zip(simulate_points(spec, &anchor_points)) {
        sim_cycles[i] = Some(cyc);
    }

    // Incremental promotion. Batch size trades prune efficiency (1 is
    // optimal — every sim lands before the next choice) against pool
    // utilization; `threads()` points × the workload fan-out keeps all
    // workers busy.
    let batch_size = threads().max(1);
    loop {
        let mut survivors = anchored_survivors(&costs, &est_cycles, &sim_cycles, margin_pct);
        if survivors.is_empty() {
            break;
        }
        survivors.sort_by_key(|&i| (costs[i], est_cycles[i]));
        survivors.truncate(batch_size);
        let batch_points: Vec<DesignPoint> = survivors.iter().map(|&i| points[i]).collect();
        for (&i, cyc) in survivors.iter().zip(simulate_points(spec, &batch_points)) {
            sim_cycles[i] = Some(cyc);
        }
    }
    let sim_wall_s = t1.elapsed().as_secs_f64();

    let promoted: Vec<usize> = (0..points.len())
        .filter(|&i| sim_cycles[i].is_some())
        .collect();

    SweepOutcome {
        points,
        costs,
        est_cycles,
        promoted,
        sim_cycles,
        margin_pct,
        tier0_wall_s,
        sim_wall_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_keeps_only_nondominated() {
        let costs = [10, 20, 20, 30, 40];
        let vals = [100, 80, 90, 80, 70];
        // 10/100 frontier; 20/80 frontier; 20/90 dominated by 20/80;
        // 30/80 dominated by 20/80 (equal value, higher cost);
        // 40/70 frontier.
        assert_eq!(pareto_indices(&costs, &vals), vec![0, 1, 4]);
    }

    #[test]
    fn pareto_keeps_duplicates() {
        let costs = [10, 10, 20];
        let vals = [50, 50, 40];
        assert_eq!(pareto_indices(&costs, &vals), vec![0, 1, 2]);
    }

    #[test]
    fn zero_margin_promotion_equals_weak_frontier() {
        let costs = [10, 20, 30];
        let est = [100, 90, 95];
        // margin 0: 30/95 is strictly beaten by 20/90 → dropped; the
        // others survive.
        assert_eq!(promote_indices(&costs, &est, 0), vec![0, 1]);
    }

    #[test]
    fn margin_widens_the_promoted_set() {
        let costs = [10, 20, 30];
        let est = [100, 90, 95];
        // 20% margin: 90 * 1.2 = 108 > 95 * 0.8 = 76 → 30/95 survives.
        let p = promote_indices(&costs, &est, 20);
        assert_eq!(p, vec![0, 1, 2]);
    }

    #[test]
    fn promoted_always_contains_the_estimated_frontier() {
        let costs = [5, 10, 10, 15, 20, 25];
        let est = [120, 100, 110, 95, 97, 60];
        for margin in [0, 10, 35, 60] {
            let promoted = promote_indices(&costs, &est, margin);
            for f in pareto_indices(&costs, &est) {
                assert!(promoted.contains(&f), "margin {margin} dropped {f}");
            }
        }
    }

    #[test]
    fn anchored_pruning_is_one_sided() {
        let costs = [10, 20, 20, 30];
        let est = [100, 120, 80, 95];
        // Only index 0 is simulated (the anchor), at 90 cycles.
        let sim = [Some(90u64), None, None, None];
        // margin 10: prune p iff 90 * 100 < est_p * 90, i.e. est_p > 100.
        // Index 1 (est 120) is pruned; 2 (80) and 3 (95) survive.
        assert_eq!(anchored_survivors(&costs, &est, &sim, 10), vec![2, 3]);
        // Underestimated anchors never appear: the anchor's *estimate*
        // is irrelevant, only its simulated value prunes.
    }

    #[test]
    fn anchored_pruning_uses_same_cost_anchors() {
        let costs = [10, 10];
        let est = [200, 90];
        let sim = [Some(80u64), None];
        // The cost-10 anchor (sim 80) prunes the other cost-10 point
        // only if 80 * 100 < est * (100 - m); at margin 0 est 90 > 80 →
        // pruned. Equality survives.
        assert_eq!(
            anchored_survivors(&costs, &est, &sim, 0),
            Vec::<usize>::new()
        );
        let est_eq = [200, 80];
        assert_eq!(anchored_survivors(&costs, &est_eq, &sim, 0), vec![1]);
    }

    #[test]
    fn full_spec_enumerates_at_least_1000_points() {
        assert!(SweepSpec::full().points().len() >= 1000);
    }

    #[test]
    fn smoke_spec_is_small_and_cheap() {
        let s = SweepSpec::smoke();
        assert!(s.points().len() <= 64);
        assert!(s.n <= 5_000);
    }

    #[test]
    fn cost_rises_with_iq_budget_and_faster_dram() {
        let base = DesignPoint::new(MachineKind::OutOfOrder, Width::Eight);
        let big_iq = DesignPoint {
            iq_entries: Some(256),
            ..base
        };
        let fast_mem = DesignPoint {
            dram_scale_pct: 50,
            ..base
        };
        assert!(point_cost(&big_iq) > point_cost(&base));
        assert!(point_cost(&fast_mem) > point_cost(&base));
    }
}
