//! The shared cell-enumeration layer: one grid enumerator and one
//! simulation-cell type for every harness that fans a design space out
//! over workloads.
//!
//! Before this module, `SweepSpec::points()`, the fig binaries and the
//! campaign service each re-derived "kinds × widths × IQ budgets × DRAM
//! grades, then × workloads" with their own loops — with their own
//! ideas about axis order and about degenerate axes (the windowless
//! `InOrder` kind has no IQ knob, so a naive cross product enumerates
//! identical silicon several times). Everything now funnels through
//! [`grid_points`] and [`enumerate_cells`]:
//!
//! * `ballerino_bench::run_cells` (the kind × workload matrix behind
//!   every fig binary),
//! * the tiered sweep engine (`SweepSpec::points`, `simulate_points`),
//! * `fig17_sensitivity`'s width-scaling grids,
//! * the `ballerino-serve` campaign service, which additionally keys
//!   sharding, dedup and its checkpoint journal off [`SimCell::key`] /
//!   [`SimCell::stable_hash`].
//!
//! A [`SimCell`] is the unit of independent work: one design point
//! evaluated on one `(workload, n, seed)` trace. Its canonical string
//! key is unique per distinct cell and stable across processes, so a
//! 64-bit FNV-1a hash of it partitions a campaign deterministically
//! across shards — the invariant `tests/determinism.rs` and the serve
//! crate's tests pin.

use ballerino_sim::{run_point, DesignPoint, MachineKind, SimResult, Width};
use ballerino_workloads::{cached_dag, cached_workload};

/// One row of the machine-kind registry: every per-kind registration
/// fact the harness tiers need, in one place.
///
/// Before this table, adding a `MachineKind` meant hand-editing the fig
/// binaries' row lists, `SweepSpec::full()`, `tier0_calibrate`'s base
/// kinds and the CLI name parser — and a forgotten layer surfaced as a
/// silently missing table row months later. Now each tier derives its
/// kind list from the registry ([`fig11_kinds`], [`fig12_kinds`],
/// [`fig15_kinds`], [`sweep_kinds`], [`calib_kinds`]) and tests
/// cross-check the registry against `MachineKind::FIG11`,
/// [`kind_from_name`] and `ballerino_analytic::CALIBRATION`, so the
/// next forgotten layer is a test failure, not a reviewer's catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindInfo {
    /// The machine kind this row registers.
    pub kind: MachineKind,
    /// Canonical CLI/campaign-spec name ([`kind_from_name`] parses it).
    pub name: &'static str,
    /// Enumerated by the full design-space sweep (`SweepSpec::full`).
    pub in_full_sweep: bool,
    /// Carries its own `ballerino_analytic::CALIBRATION` entry (variants
    /// that fold onto a base kind via `calib_for` leave this unset).
    pub calib_base: bool,
    /// Appears as a Fig. 11 speedup row.
    pub fig11: bool,
    /// Appears as a Fig. 12 decode-to-issue breakdown row.
    pub fig12: bool,
    /// Appears as a Fig. 15 energy-by-component row.
    pub fig15: bool,
}

/// The machine-kind registry, in figure display order (the Fig. 11 bar
/// order first, then the remaining kinds). `BallerinoN` is absent by
/// design: it is parametric, so it has no single registry row — the CLI
/// parses it via the `b<N>` fallback and sensitivity figs enumerate it
/// explicitly.
pub const KIND_REGISTRY: &[KindInfo] = &[
    KindInfo {
        kind: MachineKind::Ces,
        name: "ces",
        in_full_sweep: true,
        calib_base: true,
        fig11: true,
        fig12: true,
        fig15: true,
    },
    KindInfo {
        kind: MachineKind::Casino,
        name: "casino",
        in_full_sweep: true,
        calib_base: true,
        fig11: true,
        fig12: true,
        fig15: true,
    },
    KindInfo {
        kind: MachineKind::Fxa,
        name: "fxa",
        in_full_sweep: true,
        calib_base: true,
        fig11: true,
        fig12: false,
        fig15: true,
    },
    KindInfo {
        kind: MachineKind::Ballerino,
        name: "ballerino",
        in_full_sweep: true,
        calib_base: true,
        fig11: true,
        fig12: true,
        fig15: true,
    },
    KindInfo {
        kind: MachineKind::Ballerino12,
        name: "ballerino12",
        in_full_sweep: true,
        calib_base: false,
        fig11: true,
        fig12: true,
        fig15: true,
    },
    KindInfo {
        kind: MachineKind::Ldt,
        name: "ldt",
        in_full_sweep: true,
        calib_base: true,
        fig11: true,
        fig12: true,
        fig15: true,
    },
    KindInfo {
        kind: MachineKind::BallerinoLdt,
        name: "ballerino-ldt",
        in_full_sweep: true,
        calib_base: true,
        fig11: true,
        fig12: true,
        fig15: true,
    },
    KindInfo {
        kind: MachineKind::OutOfOrder,
        name: "ooo",
        in_full_sweep: true,
        calib_base: true,
        fig11: true,
        fig12: true,
        fig15: true,
    },
    KindInfo {
        kind: MachineKind::OutOfOrderOldestFirst,
        name: "ooo-of",
        in_full_sweep: false,
        calib_base: false,
        fig11: true,
        fig12: false,
        fig15: false,
    },
    KindInfo {
        kind: MachineKind::InOrder,
        name: "ino",
        in_full_sweep: true,
        calib_base: true,
        fig11: false,
        fig12: false,
        fig15: false,
    },
    KindInfo {
        kind: MachineKind::OutOfOrderNoMdp,
        name: "ooo-nomdp",
        in_full_sweep: false,
        calib_base: false,
        fig11: false,
        fig12: false,
        fig15: false,
    },
    KindInfo {
        kind: MachineKind::CesMda,
        name: "ces-mda",
        in_full_sweep: false,
        calib_base: false,
        fig11: false,
        fig12: false,
        fig15: false,
    },
    KindInfo {
        kind: MachineKind::BallerinoStep1,
        name: "step1",
        in_full_sweep: false,
        calib_base: false,
        fig11: false,
        fig12: false,
        fig15: false,
    },
    KindInfo {
        kind: MachineKind::BallerinoStep2,
        name: "step2",
        in_full_sweep: false,
        calib_base: false,
        fig11: false,
        fig12: false,
        fig15: false,
    },
    KindInfo {
        kind: MachineKind::BallerinoIdeal,
        name: "ideal",
        in_full_sweep: false,
        calib_base: false,
        fig11: false,
        fig12: false,
        fig15: false,
    },
    KindInfo {
        kind: MachineKind::LoadSliceCore,
        name: "lsc",
        in_full_sweep: true,
        calib_base: true,
        fig11: false,
        fig12: false,
        fig15: false,
    },
    KindInfo {
        kind: MachineKind::DelayAndBypass,
        name: "dnb",
        in_full_sweep: true,
        calib_base: true,
        fig11: false,
        fig12: false,
        fig15: false,
    },
];

fn registry_kinds(select: impl Fn(&KindInfo) -> bool) -> Vec<MachineKind> {
    KIND_REGISTRY
        .iter()
        .filter(|i| select(i))
        .map(|i| i.kind)
        .collect()
}

/// The Fig. 11 speedup rows, registry display order (a test pins this
/// equal to `MachineKind::FIG11`).
pub fn fig11_kinds() -> Vec<MachineKind> {
    registry_kinds(|i| i.fig11)
}

/// The Fig. 12 decode-to-issue breakdown rows, registry display order.
pub fn fig12_kinds() -> Vec<MachineKind> {
    registry_kinds(|i| i.fig12)
}

/// The Fig. 15 energy rows, registry display order.
pub fn fig15_kinds() -> Vec<MachineKind> {
    registry_kinds(|i| i.fig15)
}

/// The kinds `SweepSpec::full()` enumerates, registry display order.
pub fn sweep_kinds() -> Vec<MachineKind> {
    registry_kinds(|i| i.in_full_sweep)
}

/// The kinds `tier0_calibrate` fits — every kind that owns a
/// `ballerino_analytic::CALIBRATION` entry, registry display order.
pub fn calib_kinds() -> Vec<MachineKind> {
    registry_kinds(|i| i.calib_base)
}

/// One independent unit of simulation work: a [`DesignPoint`] evaluated
/// on one `(workload, n, seed)` trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimCell {
    /// The design point to build and run.
    pub point: DesignPoint,
    /// Workload name (a `ballerino_workloads` suite name).
    pub workload: &'static str,
    /// μops in the workload trace.
    pub n: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl SimCell {
    /// The canonical cell key, e.g.
    /// `OoO/8w/iqdflt/dram100/int_crunch/n12000/s42`. Distinct cells
    /// have distinct keys; the key is stable across processes and
    /// releases, so journals and shard assignments survive restarts.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/n{}/s{}",
            self.point.label(),
            self.workload,
            self.n,
            self.seed
        )
    }

    /// Stable 64-bit FNV-1a hash of [`SimCell::key`]. This — not
    /// `std::hash` — is what sharding and dedup key off: `DefaultHasher`
    /// is allowed to change between Rust releases, while a campaign's
    /// shard assignment must not.
    pub fn stable_hash(&self) -> u64 {
        fnv1a(self.key().as_bytes())
    }

    /// Runs the cell on the cycle-accurate tier: trace and pre-resolved
    /// DAG from the process-wide cache, simulation via
    /// [`ballerino_sim::run_point`].
    pub fn run(&self) -> SimResult {
        let trace = cached_workload(self.workload, self.n, self.seed);
        let dag = cached_dag(self.workload, self.n, self.seed);
        run_point(&self.point, &trace, Some(&dag))
    }
}

/// 64-bit FNV-1a over a byte string. Deliberately boring: the point is
/// a process- and release-stable hash for shard partitioning, not
/// collision resistance against an adversary.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The single grid enumerator: `kinds × widths × iq_budgets ×
/// dram_scales`, kind-major (then width, IQ, DRAM — the innermost axis
/// varies fastest). Kinds without a scheduling window (`InOrder`)
/// ignore `iq_entries`, so the IQ axis is enumerated once for them — a
/// naive cross product would emit identical design points that differ
/// only in a dead knob.
pub fn grid_points(
    kinds: &[MachineKind],
    widths: &[Width],
    iq_budgets: &[Option<usize>],
    dram_scales: &[u32],
) -> Vec<DesignPoint> {
    let mut v = Vec::new();
    for &kind in kinds {
        let iqs: &[Option<usize>] = if kind == MachineKind::InOrder {
            &[None]
        } else {
            iq_budgets
        };
        for &width in widths {
            for &iq in iqs {
                for &dram in dram_scales {
                    v.push(DesignPoint {
                        kind,
                        width,
                        iq_entries: iq,
                        dram_scale_pct: dram,
                    });
                }
            }
        }
    }
    v
}

/// Fans `points` out over `workloads`: point-major, so the cells of one
/// design point are contiguous (`simulate_points` and the campaign
/// service both rely on chunking by `workloads.len()`).
pub fn enumerate_cells(
    points: &[DesignPoint],
    workloads: &[&'static str],
    n: usize,
    seed: u64,
) -> Vec<SimCell> {
    points
        .iter()
        .flat_map(|&point| {
            workloads.iter().map(move |&workload| SimCell {
                point,
                workload,
                n,
                seed,
            })
        })
        .collect()
}

/// Parses a machine-kind name as used by the `simulate` CLI and
/// campaign specs. Accepts every [`KIND_REGISTRY`] row's canonical name
/// (`ino | ooo | ooo-of | ooo-nomdp | ces | ces-mda | casino | fxa |
/// step1 | step2 | ballerino | ideal | ballerino12 | ldt |
/// ballerino-ldt | lsc | dnb`), every [`MachineKind::label`] display
/// label (`OoO`, `Ballerino-12`, `LDT`, …), and the parametric
/// `b<N>` / `Ballerino-<N+1>` forms for [`MachineKind::BallerinoN`] —
/// so every enumerable kind's label round-trips (a test pins this).
pub fn kind_from_name(s: &str) -> Option<MachineKind> {
    if let Some(i) = KIND_REGISTRY.iter().find(|i| i.name == s) {
        return Some(i.kind);
    }
    // Registry labels take precedence over the parametric `Ballerino-N`
    // form, so `Ballerino-12` parses as the named Ballerino12 kind (the
    // same machine as BallerinoN(11), enumerated under its own name).
    if let Some(i) = KIND_REGISTRY.iter().find(|i| i.kind.label() == s) {
        return Some(i.kind);
    }
    if let Some(rest) = s.strip_prefix("Ballerino-") {
        // `BallerinoN(n)` displays as `Ballerino-{n+1}` (one S-IQ plus
        // n P-IQs).
        if let Ok(n) = rest.parse::<usize>() {
            if n >= 1 {
                return Some(MachineKind::BallerinoN(n - 1));
            }
        }
    }
    let n: usize = s.strip_prefix('b')?.parse().ok()?;
    Some(MachineKind::BallerinoN(n))
}

/// Parses a machine width: `2 | 4 | 8 | 10`.
pub fn width_from_str(s: &str) -> Option<Width> {
    Some(match s {
        "2" => Width::Two,
        "4" => Width::Four,
        "8" => Width::Eight,
        "10" => Width::Ten,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_kind_major_and_collapses_inorder_iq_axis() {
        let points = grid_points(
            &[MachineKind::InOrder, MachineKind::OutOfOrder],
            &[Width::Two, Width::Eight],
            &[Some(32), Some(96)],
            &[100, 200],
        );
        // InOrder: 2 widths × 1 (collapsed) × 2 dram = 4;
        // OoO: 2 × 2 × 2 = 8.
        assert_eq!(points.len(), 12);
        assert!(points[..4]
            .iter()
            .all(|p| p.kind == MachineKind::InOrder && p.iq_entries.is_none()));
        assert!(points[4..]
            .iter()
            .all(|p| p.kind == MachineKind::OutOfOrder));
        // Innermost axis (DRAM) varies fastest.
        assert_eq!(points[0].dram_scale_pct, 100);
        assert_eq!(points[1].dram_scale_pct, 200);
    }

    #[test]
    fn cells_are_point_major() {
        let points = grid_points(&[MachineKind::OutOfOrder], &[Width::Eight], &[None], &[100]);
        let cells = enumerate_cells(&points, &["int_crunch", "hash_join"], 1000, 42);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].workload, "int_crunch");
        assert_eq!(cells[1].workload, "hash_join");
        assert_eq!(cells[0].point, cells[1].point);
    }

    #[test]
    fn keys_are_distinct_and_stable() {
        let points = grid_points(
            &[MachineKind::OutOfOrder, MachineKind::Ballerino],
            &[Width::Eight],
            &[None, Some(32)],
            &[100, 200],
        );
        let cells = enumerate_cells(&points, &["int_crunch", "hash_join"], 1000, 42);
        let mut keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), cells.len(), "keys must be unique per cell");
        // Pin one key's exact shape: journals and shard assignments
        // depend on it never changing.
        let cell = SimCell {
            point: DesignPoint::new(MachineKind::OutOfOrder, Width::Eight),
            workload: "int_crunch",
            n: 12_000,
            seed: 42,
        };
        assert_eq!(cell.key(), "OoO/8w/iqdflt/dram100/int_crunch/n12000/s42");
    }

    #[test]
    fn fnv1a_is_the_reference_function() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn kind_names_round_trip_the_simulate_cli_set() {
        for (name, kind) in [
            ("ino", MachineKind::InOrder),
            ("ooo", MachineKind::OutOfOrder),
            ("ces", MachineKind::Ces),
            ("casino", MachineKind::Casino),
            ("fxa", MachineKind::Fxa),
            ("ballerino", MachineKind::Ballerino),
            ("ballerino12", MachineKind::Ballerino12),
            ("ldt", MachineKind::Ldt),
            ("ballerino-ldt", MachineKind::BallerinoLdt),
            ("lsc", MachineKind::LoadSliceCore),
            ("dnb", MachineKind::DelayAndBypass),
            ("b5", MachineKind::BallerinoN(5)),
        ] {
            assert_eq!(kind_from_name(name), Some(kind));
        }
        assert_eq!(kind_from_name("nope"), None);
        assert_eq!(width_from_str("8"), Some(Width::Eight));
        assert_eq!(width_from_str("3"), None);
    }

    #[test]
    fn registry_names_and_labels_invert_for_every_enumerable_kind() {
        // Canonical names and display labels both parse back to the
        // registered kind, so a new kind cannot silently miss the
        // campaign/sweep grid: forgetting its registry row fails the
        // registry tests, and the registry row *is* the name mapping.
        for info in KIND_REGISTRY {
            assert_eq!(
                kind_from_name(info.name),
                Some(info.kind),
                "name {:?} must parse to {:?}",
                info.name,
                info.kind
            );
            assert_eq!(
                kind_from_name(&info.kind.label()),
                Some(info.kind),
                "label {:?} must round-trip",
                info.kind.label()
            );
        }
        // The parametric family round-trips through its display label
        // (except BallerinoN(11), whose label is owned by the named
        // Ballerino12 registry row — the same machine).
        for n in [2, 4, 5, 9, 20] {
            let kind = MachineKind::BallerinoN(n);
            assert_eq!(kind_from_name(&kind.label()), Some(kind));
        }
        assert_eq!(
            kind_from_name(&MachineKind::BallerinoN(11).label()),
            Some(MachineKind::Ballerino12)
        );
    }

    #[test]
    fn registry_is_complete_and_unambiguous() {
        // Every non-parametric MachineKind has exactly one registry row
        // (FIG11 kinds are a subset; the build test in ballerino-sim
        // enumerates the full variant list, which this mirrors).
        let all = [
            MachineKind::InOrder,
            MachineKind::OutOfOrder,
            MachineKind::OutOfOrderOldestFirst,
            MachineKind::OutOfOrderNoMdp,
            MachineKind::Ces,
            MachineKind::CesMda,
            MachineKind::Casino,
            MachineKind::Fxa,
            MachineKind::BallerinoStep1,
            MachineKind::BallerinoStep2,
            MachineKind::Ballerino,
            MachineKind::BallerinoIdeal,
            MachineKind::Ballerino12,
            MachineKind::LoadSliceCore,
            MachineKind::DelayAndBypass,
            MachineKind::Ldt,
            MachineKind::BallerinoLdt,
        ];
        assert_eq!(KIND_REGISTRY.len(), all.len());
        for kind in all {
            assert_eq!(
                KIND_REGISTRY.iter().filter(|i| i.kind == kind).count(),
                1,
                "{kind:?} must have exactly one registry row"
            );
        }
        let mut names: Vec<&str> = KIND_REGISTRY.iter().map(|i| i.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KIND_REGISTRY.len(), "names must be unique");
    }

    #[test]
    fn registry_fig11_filter_matches_machine_kind_fig11() {
        assert_eq!(fig11_kinds(), MachineKind::FIG11.to_vec());
    }

    #[test]
    fn every_sweep_kind_has_a_calibration_entry() {
        // The tier-0 triage is only sound for kinds the committed
        // CALIBRATION covers (directly or by variant folding); a grid
        // kind without one would silently triage on default constants.
        for kind in sweep_kinds() {
            assert!(
                ballerino_analytic::has_calibration(kind),
                "{kind:?} is enumerated by SweepSpec::full() but has no \
                 CALIBRATION entry — run tier0_calibrate and commit it"
            );
        }
        // And every registered calibration base actually owns an entry.
        for kind in calib_kinds() {
            assert!(
                ballerino_analytic::has_calibration(kind),
                "{kind:?} is flagged calib_base but CALIBRATION lacks it"
            );
        }
    }
}
