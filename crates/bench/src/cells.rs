//! The shared cell-enumeration layer: one grid enumerator and one
//! simulation-cell type for every harness that fans a design space out
//! over workloads.
//!
//! Before this module, `SweepSpec::points()`, the fig binaries and the
//! campaign service each re-derived "kinds × widths × IQ budgets × DRAM
//! grades, then × workloads" with their own loops — with their own
//! ideas about axis order and about degenerate axes (the windowless
//! `InOrder` kind has no IQ knob, so a naive cross product enumerates
//! identical silicon several times). Everything now funnels through
//! [`grid_points`] and [`enumerate_cells`]:
//!
//! * `ballerino_bench::run_cells` (the kind × workload matrix behind
//!   every fig binary),
//! * the tiered sweep engine (`SweepSpec::points`, `simulate_points`),
//! * `fig17_sensitivity`'s width-scaling grids,
//! * the `ballerino-serve` campaign service, which additionally keys
//!   sharding, dedup and its checkpoint journal off [`SimCell::key`] /
//!   [`SimCell::stable_hash`].
//!
//! A [`SimCell`] is the unit of independent work: one design point
//! evaluated on one `(workload, n, seed)` trace. Its canonical string
//! key is unique per distinct cell and stable across processes, so a
//! 64-bit FNV-1a hash of it partitions a campaign deterministically
//! across shards — the invariant `tests/determinism.rs` and the serve
//! crate's tests pin.

use ballerino_sim::{run_point, DesignPoint, MachineKind, SimResult, Width};
use ballerino_workloads::{cached_dag, cached_workload};

/// One independent unit of simulation work: a [`DesignPoint`] evaluated
/// on one `(workload, n, seed)` trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimCell {
    /// The design point to build and run.
    pub point: DesignPoint,
    /// Workload name (a `ballerino_workloads` suite name).
    pub workload: &'static str,
    /// μops in the workload trace.
    pub n: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl SimCell {
    /// The canonical cell key, e.g.
    /// `OoO/8w/iqdflt/dram100/int_crunch/n12000/s42`. Distinct cells
    /// have distinct keys; the key is stable across processes and
    /// releases, so journals and shard assignments survive restarts.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/n{}/s{}",
            self.point.label(),
            self.workload,
            self.n,
            self.seed
        )
    }

    /// Stable 64-bit FNV-1a hash of [`SimCell::key`]. This — not
    /// `std::hash` — is what sharding and dedup key off: `DefaultHasher`
    /// is allowed to change between Rust releases, while a campaign's
    /// shard assignment must not.
    pub fn stable_hash(&self) -> u64 {
        fnv1a(self.key().as_bytes())
    }

    /// Runs the cell on the cycle-accurate tier: trace and pre-resolved
    /// DAG from the process-wide cache, simulation via
    /// [`ballerino_sim::run_point`].
    pub fn run(&self) -> SimResult {
        let trace = cached_workload(self.workload, self.n, self.seed);
        let dag = cached_dag(self.workload, self.n, self.seed);
        run_point(&self.point, &trace, Some(&dag))
    }
}

/// 64-bit FNV-1a over a byte string. Deliberately boring: the point is
/// a process- and release-stable hash for shard partitioning, not
/// collision resistance against an adversary.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The single grid enumerator: `kinds × widths × iq_budgets ×
/// dram_scales`, kind-major (then width, IQ, DRAM — the innermost axis
/// varies fastest). Kinds without a scheduling window (`InOrder`)
/// ignore `iq_entries`, so the IQ axis is enumerated once for them — a
/// naive cross product would emit identical design points that differ
/// only in a dead knob.
pub fn grid_points(
    kinds: &[MachineKind],
    widths: &[Width],
    iq_budgets: &[Option<usize>],
    dram_scales: &[u32],
) -> Vec<DesignPoint> {
    let mut v = Vec::new();
    for &kind in kinds {
        let iqs: &[Option<usize>] = if kind == MachineKind::InOrder {
            &[None]
        } else {
            iq_budgets
        };
        for &width in widths {
            for &iq in iqs {
                for &dram in dram_scales {
                    v.push(DesignPoint {
                        kind,
                        width,
                        iq_entries: iq,
                        dram_scale_pct: dram,
                    });
                }
            }
        }
    }
    v
}

/// Fans `points` out over `workloads`: point-major, so the cells of one
/// design point are contiguous (`simulate_points` and the campaign
/// service both rely on chunking by `workloads.len()`).
pub fn enumerate_cells(
    points: &[DesignPoint],
    workloads: &[&'static str],
    n: usize,
    seed: u64,
) -> Vec<SimCell> {
    points
        .iter()
        .flat_map(|&point| {
            workloads.iter().map(move |&workload| SimCell {
                point,
                workload,
                n,
                seed,
            })
        })
        .collect()
}

/// Parses a machine-kind name as used by the `simulate` CLI and
/// campaign specs: `ino | ooo | ooo-of | ooo-nomdp | ces | ces-mda |
/// casino | fxa | step1 | step2 | ballerino | ideal | ballerino12 |
/// lsc | dnb | b<N>`.
pub fn kind_from_name(s: &str) -> Option<MachineKind> {
    Some(match s {
        "ino" => MachineKind::InOrder,
        "ooo" => MachineKind::OutOfOrder,
        "ooo-of" => MachineKind::OutOfOrderOldestFirst,
        "ooo-nomdp" => MachineKind::OutOfOrderNoMdp,
        "ces" => MachineKind::Ces,
        "ces-mda" => MachineKind::CesMda,
        "casino" => MachineKind::Casino,
        "fxa" => MachineKind::Fxa,
        "step1" => MachineKind::BallerinoStep1,
        "step2" => MachineKind::BallerinoStep2,
        "ballerino" => MachineKind::Ballerino,
        "ideal" => MachineKind::BallerinoIdeal,
        "ballerino12" => MachineKind::Ballerino12,
        "lsc" => MachineKind::LoadSliceCore,
        "dnb" => MachineKind::DelayAndBypass,
        other => {
            let n: usize = other.strip_prefix('b')?.parse().ok()?;
            MachineKind::BallerinoN(n)
        }
    })
}

/// Parses a machine width: `2 | 4 | 8 | 10`.
pub fn width_from_str(s: &str) -> Option<Width> {
    Some(match s {
        "2" => Width::Two,
        "4" => Width::Four,
        "8" => Width::Eight,
        "10" => Width::Ten,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_kind_major_and_collapses_inorder_iq_axis() {
        let points = grid_points(
            &[MachineKind::InOrder, MachineKind::OutOfOrder],
            &[Width::Two, Width::Eight],
            &[Some(32), Some(96)],
            &[100, 200],
        );
        // InOrder: 2 widths × 1 (collapsed) × 2 dram = 4;
        // OoO: 2 × 2 × 2 = 8.
        assert_eq!(points.len(), 12);
        assert!(points[..4]
            .iter()
            .all(|p| p.kind == MachineKind::InOrder && p.iq_entries.is_none()));
        assert!(points[4..]
            .iter()
            .all(|p| p.kind == MachineKind::OutOfOrder));
        // Innermost axis (DRAM) varies fastest.
        assert_eq!(points[0].dram_scale_pct, 100);
        assert_eq!(points[1].dram_scale_pct, 200);
    }

    #[test]
    fn cells_are_point_major() {
        let points = grid_points(&[MachineKind::OutOfOrder], &[Width::Eight], &[None], &[100]);
        let cells = enumerate_cells(&points, &["int_crunch", "hash_join"], 1000, 42);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].workload, "int_crunch");
        assert_eq!(cells[1].workload, "hash_join");
        assert_eq!(cells[0].point, cells[1].point);
    }

    #[test]
    fn keys_are_distinct_and_stable() {
        let points = grid_points(
            &[MachineKind::OutOfOrder, MachineKind::Ballerino],
            &[Width::Eight],
            &[None, Some(32)],
            &[100, 200],
        );
        let cells = enumerate_cells(&points, &["int_crunch", "hash_join"], 1000, 42);
        let mut keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), cells.len(), "keys must be unique per cell");
        // Pin one key's exact shape: journals and shard assignments
        // depend on it never changing.
        let cell = SimCell {
            point: DesignPoint::new(MachineKind::OutOfOrder, Width::Eight),
            workload: "int_crunch",
            n: 12_000,
            seed: 42,
        };
        assert_eq!(cell.key(), "OoO/8w/iqdflt/dram100/int_crunch/n12000/s42");
    }

    #[test]
    fn fnv1a_is_the_reference_function() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn kind_names_round_trip_the_simulate_cli_set() {
        for (name, kind) in [
            ("ino", MachineKind::InOrder),
            ("ooo", MachineKind::OutOfOrder),
            ("ces", MachineKind::Ces),
            ("casino", MachineKind::Casino),
            ("fxa", MachineKind::Fxa),
            ("ballerino", MachineKind::Ballerino),
            ("ballerino12", MachineKind::Ballerino12),
            ("lsc", MachineKind::LoadSliceCore),
            ("dnb", MachineKind::DelayAndBypass),
            ("b5", MachineKind::BallerinoN(5)),
        ] {
            assert_eq!(kind_from_name(name), Some(kind));
        }
        assert_eq!(kind_from_name("nope"), None);
        assert_eq!(width_from_str("8"), Some(Width::Eight));
        assert_eq!(width_from_str("3"), None);
    }
}
