//! Architectural and physical register identifiers.
//!
//! The machine exposes 32 integer and 32 floating-point architectural
//! registers, renamed onto separate physical register files (Table I:
//! 180 int / 168 fp for the 8-wide configuration).

use std::fmt;

/// Number of architectural registers per class.
pub const ARCH_REGS_PER_CLASS: u16 = 32;

/// Total number of architectural registers (both classes).
pub const NUM_ARCH_REGS: u16 = 2 * ARCH_REGS_PER_CLASS;

/// Register class: integer or floating point.
///
/// The class selects which physical register file a destination is renamed
/// into and which functional units read the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// General-purpose integer register.
    Int,
    /// Floating-point / SIMD register.
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register name, as carried by trace μops.
///
/// Encoded as a flat index: `0..32` are integer registers, `32..64` are
/// floating-point registers.
///
/// # Examples
///
/// ```
/// use ballerino_isa::{ArchReg, RegClass};
/// let r = ArchReg::int(5);
/// assert_eq!(r.class(), RegClass::Int);
/// assert_eq!(r.index_in_class(), 5);
/// let f = ArchReg::fp(2);
/// assert_eq!(f.class(), RegClass::Fp);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg(u16);

impl ArchReg {
    /// Creates an integer architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn int(idx: u16) -> Self {
        assert!(
            idx < ARCH_REGS_PER_CLASS,
            "int reg index {idx} out of range"
        );
        ArchReg(idx)
    }

    /// Creates a floating-point architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn fp(idx: u16) -> Self {
        assert!(idx < ARCH_REGS_PER_CLASS, "fp reg index {idx} out of range");
        ArchReg(ARCH_REGS_PER_CLASS + idx)
    }

    /// Creates a register from its flat index (`0..64`).
    ///
    /// # Panics
    ///
    /// Panics if `flat >= NUM_ARCH_REGS`.
    pub fn from_flat(flat: u16) -> Self {
        assert!(flat < NUM_ARCH_REGS, "flat reg index {flat} out of range");
        ArchReg(flat)
    }

    /// Returns the flat index (`0..64`), usable to index RAT tables.
    pub fn flat(self) -> u16 {
        self.0
    }

    /// Returns the register class.
    pub fn class(self) -> RegClass {
        if self.0 < ARCH_REGS_PER_CLASS {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// Returns the index within the register's class (`0..32`).
    pub fn index_in_class(self) -> u16 {
        self.0 % ARCH_REGS_PER_CLASS
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.index_in_class()),
            RegClass::Fp => write!(f, "f{}", self.index_in_class()),
        }
    }
}

/// A physical register tag, produced by renaming.
///
/// Physical registers of both classes share one tag namespace (the renamer
/// partitions the space); the scoreboard and wakeup logic treat tags
/// uniformly, exactly as destination tags are broadcast in the baseline IQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysReg(pub u32);

impl PhysReg {
    /// Returns the raw tag value.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the tag as an index usable for scoreboard arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_regs_have_disjoint_flat_indices() {
        let a = ArchReg::int(0);
        let b = ArchReg::fp(0);
        assert_ne!(a, b);
        assert_eq!(a.flat(), 0);
        assert_eq!(b.flat(), 32);
    }

    #[test]
    fn class_round_trips_through_flat_encoding() {
        for i in 0..NUM_ARCH_REGS {
            let r = ArchReg::from_flat(i);
            let rebuilt = match r.class() {
                RegClass::Int => ArchReg::int(r.index_in_class()),
                RegClass::Fp => ArchReg::fp(r.index_in_class()),
            };
            assert_eq!(r, rebuilt);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_reg_index_out_of_range_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_reg_index_out_of_range_panics() {
        let _ = ArchReg::from_flat(64);
    }

    #[test]
    fn phys_reg_display_and_index() {
        let p = PhysReg(17);
        assert_eq!(p.index(), 17);
        assert_eq!(p.to_string(), "p17");
    }

    #[test]
    fn arch_reg_display() {
        assert_eq!(ArchReg::int(3).to_string(), "r3");
        assert_eq!(ArchReg::fp(7).to_string(), "f7");
    }
}
