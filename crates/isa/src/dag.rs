//! Pre-resolved dependence/latency DAG over a [`Trace`].
//!
//! The per-cycle pipeline discovers register dependences incrementally at
//! rename time: each μop looks up its architectural sources in the map
//! table, which points at the youngest older producer. That discovery is
//! pure — it depends only on program order and the μop stream — so a
//! [`TraceDag`] resolves it **once per trace**: for every trace index it
//! records the producing trace index of each register source, the consumer
//! list (CSR layout), the execution latency and functional-unit class, and
//! whether the μop starts a new instruction-cache line relative to its
//! predecessor. The macro-step engine uses these to reason about a run of
//! cycles in one pass without replaying the per-op scans, and harnesses
//! memoize the resolution through `ballerino_workloads::TraceCache`.
//!
//! The DAG is keyed by **trace index**, not by dynamic sequence number:
//! after a pipeline squash the same trace index is re-fetched under a new
//! seq, and the dependence structure is unchanged — so trace-index keys
//! survive squashes where seq keys would not.

use crate::op::OpClass;
use crate::ports::FuKind;
use crate::regs::NUM_ARCH_REGS;
use crate::trace::Trace;

/// Instruction-cache line size used for `line_cross` flags (bytes).
pub const ICACHE_LINE_BYTES: u64 = 64;

/// Pre-resolved static facts about one μop in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagOp {
    /// For each source slot, the trace index of the youngest older μop
    /// writing that architectural register, or `None` when the slot is
    /// unused or reads an unwritten (live-in) register.
    pub producers: [Option<u32>; 2],
    /// Opcode class.
    pub class: OpClass,
    /// Functional unit the class executes on (the μop's port class).
    pub fu: FuKind,
    /// Execution latency in cycles ([`OpClass::exec_latency`]).
    pub exec_latency: u32,
    /// Whether this μop's pc falls on a different i-cache line than the
    /// previous μop in the trace (`true` for the first μop). Only valid
    /// for sequential fetch — after a redirect the fetch unit must
    /// re-compare real lines.
    pub line_cross: bool,
    /// Number of used source slots.
    pub num_srcs: u8,
    /// Whether the μop writes a destination register.
    pub has_dst: bool,
}

/// A trace pre-resolved into a dependence/latency DAG.
///
/// Producer→consumer edges are stored twice: forward as
/// [`DagOp::producers`] (two slots per op) and inverted as a CSR
/// adjacency ([`TraceDag::consumers_of`]).
///
/// # Examples
///
/// ```
/// use ballerino_isa::{ArchReg, MicroOp, Trace, TraceDag};
/// let mut t = Trace::new("demo");
/// t.push(MicroOp::alu(0x0, ArchReg::int(1), [None, None]));
/// t.push(MicroOp::alu(0x4, ArchReg::int(2), [Some(ArchReg::int(1)), None]));
/// let dag = TraceDag::resolve(&t);
/// assert_eq!(dag.op(1).producers, [Some(0), None]);
/// assert_eq!(dag.consumers_of(0), &[1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceDag {
    ops: Vec<DagOp>,
    /// CSR row starts into `consumers`; length `ops.len() + 1`.
    consumer_start: Vec<u32>,
    /// Concatenated consumer trace indices, ascending within each row.
    consumers: Vec<u32>,
    /// Prefix sums of load counts: `load_prefix[i]` = loads among ops
    /// `[0, i)`. Length `ops.len() + 1`.
    load_prefix: Vec<u32>,
}

impl TraceDag {
    /// Resolves a trace into its DAG. O(n) time and memory.
    pub fn resolve(trace: &Trace) -> TraceDag {
        let n = trace.ops.len();
        assert!(n <= u32::MAX as usize, "trace too long for u32 DAG keys");
        let mut ops = Vec::with_capacity(n);
        // Youngest writer of each architectural register, by flat index.
        let mut last_writer = [u32::MAX; NUM_ARCH_REGS as usize];
        let mut prev_line = u64::MAX;
        // Out-degree per op, counted as edges are discovered.
        let mut degree = vec![0u32; n];

        for (idx, op) in trace.ops.iter().enumerate() {
            let mut producers = [None, None];
            for (slot, src) in op.srcs.iter().enumerate() {
                if let Some(r) = src {
                    let w = last_writer[r.flat() as usize];
                    if w != u32::MAX {
                        producers[slot] = Some(w);
                        degree[w as usize] += 1;
                    }
                }
            }
            let line = op.pc / ICACHE_LINE_BYTES;
            ops.push(DagOp {
                producers,
                class: op.class,
                fu: FuKind::for_class(op.class),
                exec_latency: op.class.exec_latency(),
                line_cross: line != prev_line,
                num_srcs: op.num_srcs() as u8,
                has_dst: op.dst.is_some(),
            });
            prev_line = line;
            if let Some(d) = op.dst {
                last_writer[d.flat() as usize] = idx as u32;
            }
        }

        // CSR fill: prefix-sum row starts, then scatter consumers. A
        // second forward pass appends consumers in ascending order.
        let mut consumer_start = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        consumer_start.push(0);
        for d in &degree {
            total += d;
            consumer_start.push(total);
        }
        let mut cursor: Vec<u32> = consumer_start[..n].to_vec();
        let mut consumers = vec![0u32; total as usize];
        for (idx, dop) in ops.iter().enumerate() {
            for p in dop.producers.iter().flatten() {
                let c = &mut cursor[*p as usize];
                consumers[*c as usize] = idx as u32;
                *c += 1;
            }
        }

        let mut load_prefix = Vec::with_capacity(n + 1);
        load_prefix.push(0u32);
        let mut loads = 0u32;
        for dop in &ops {
            loads += (dop.class == OpClass::Load) as u32;
            load_prefix.push(loads);
        }

        TraceDag {
            ops,
            consumer_start,
            consumers,
            load_prefix,
        }
    }

    /// Number of μops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The pre-resolved facts for trace index `idx`.
    #[inline]
    pub fn op(&self, idx: usize) -> &DagOp {
        &self.ops[idx]
    }

    /// All pre-resolved ops in trace order.
    pub fn ops(&self) -> &[DagOp] {
        &self.ops
    }

    /// Trace indices of the μops reading `idx`'s destination before it is
    /// overwritten, in ascending trace order. A consumer appears once per
    /// source slot it reads the value through.
    #[inline]
    pub fn consumers_of(&self, idx: usize) -> &[u32] {
        let lo = self.consumer_start[idx] as usize;
        let hi = self.consumer_start[idx + 1] as usize;
        &self.consumers[lo..hi]
    }

    /// Total number of producer→consumer edges.
    pub fn num_edges(&self) -> usize {
        self.consumers.len()
    }

    /// Number of loads among trace indices `[lo, hi)`, in O(1) via a
    /// prefix sum. Out-of-range bounds clamp to the trace; an inverted
    /// range counts as empty. The macro-step engine uses the load
    /// density of the upcoming fetch window to size grant-block
    /// horizons (load-dense regions wake off cache timing, so long
    /// blocks there mostly get invalidated).
    #[inline]
    pub fn loads_in(&self, lo: usize, hi: usize) -> u32 {
        let n = self.ops.len();
        let lo = lo.min(n);
        let hi = hi.min(n);
        if lo >= hi {
            return 0;
        }
        self.load_prefix[hi] - self.load_prefix[lo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MicroOp;
    use crate::regs::ArchReg;

    fn chain() -> Trace {
        let mut t = Trace::new("chain");
        t.push(MicroOp::alu(0x00, ArchReg::int(1), [None, None]));
        t.push(MicroOp::alu(
            0x04,
            ArchReg::int(2),
            [Some(ArchReg::int(1)), None],
        ));
        t.push(MicroOp::alu(
            0x40,
            ArchReg::int(1),
            [Some(ArchReg::int(1)), Some(ArchReg::int(2))],
        ));
        t.push(MicroOp::alu(
            0x44,
            ArchReg::int(3),
            [Some(ArchReg::int(1)), None],
        ));
        t
    }

    #[test]
    fn producers_track_youngest_writer() {
        let dag = TraceDag::resolve(&chain());
        assert_eq!(dag.op(0).producers, [None, None]);
        assert_eq!(dag.op(1).producers, [Some(0), None]);
        assert_eq!(dag.op(2).producers, [Some(0), Some(1)]);
        // Op 2 overwrote r1, so op 3 reads op 2, not op 0.
        assert_eq!(dag.op(3).producers, [Some(2), None]);
    }

    #[test]
    fn consumers_invert_producers() {
        let dag = TraceDag::resolve(&chain());
        assert_eq!(dag.consumers_of(0), &[1, 2]);
        assert_eq!(dag.consumers_of(1), &[2]);
        assert_eq!(dag.consumers_of(2), &[3]);
        assert_eq!(dag.consumers_of(3), &[] as &[u32]);
        assert_eq!(dag.num_edges(), 4);
    }

    #[test]
    fn line_cross_marks_line_boundaries() {
        let dag = TraceDag::resolve(&chain());
        assert!(dag.op(0).line_cross, "first op always crosses");
        assert!(!dag.op(1).line_cross);
        assert!(dag.op(2).line_cross, "0x40 starts a new 64B line");
        assert!(!dag.op(3).line_cross);
    }

    #[test]
    fn latency_and_fu_match_class() {
        let mut t = Trace::new("mix");
        t.push(MicroOp::compute(
            0x0,
            OpClass::FpMul,
            ArchReg::fp(0),
            [None, None],
        ));
        t.push(MicroOp::load(0x4, ArchReg::int(2), None, 0x1000));
        let dag = TraceDag::resolve(&t);
        assert_eq!(dag.op(0).exec_latency, OpClass::FpMul.exec_latency());
        assert_eq!(dag.op(0).fu, FuKind::FpMul);
        assert_eq!(dag.op(1).fu, FuKind::Agu);
        assert!(dag.op(1).has_dst);
        assert_eq!(dag.op(1).num_srcs, 0);
    }

    #[test]
    fn live_in_reads_have_no_producer() {
        let mut t = Trace::new("livein");
        t.push(MicroOp::alu(
            0x0,
            ArchReg::int(1),
            [Some(ArchReg::int(7)), None],
        ));
        let dag = TraceDag::resolve(&t);
        assert_eq!(dag.op(0).producers, [None, None]);
        assert_eq!(dag.num_edges(), 0);
    }

    #[test]
    fn empty_trace_resolves() {
        let dag = TraceDag::resolve(&Trace::new("empty"));
        assert!(dag.is_empty());
        assert_eq!(dag.num_edges(), 0);
        assert_eq!(dag.loads_in(0, 10), 0);
    }

    #[test]
    fn loads_in_counts_window_loads() {
        let mut t = Trace::new("loads");
        t.push(MicroOp::alu(0x0, ArchReg::int(1), [None, None]));
        t.push(MicroOp::load(0x4, ArchReg::int(2), None, 0x1000));
        t.push(MicroOp::load(0x8, ArchReg::int(3), None, 0x1040));
        t.push(MicroOp::alu(0xc, ArchReg::int(4), [None, None]));
        let dag = TraceDag::resolve(&t);
        assert_eq!(dag.loads_in(0, 4), 2);
        assert_eq!(dag.loads_in(1, 2), 1);
        assert_eq!(dag.loads_in(3, 4), 0);
        // Bounds clamp; inverted ranges are empty.
        assert_eq!(dag.loads_in(2, 100), 1);
        assert_eq!(dag.loads_in(3, 1), 0);
    }
}
