//! Dynamic μop traces.
//!
//! A [`Trace`] is the unit of work fed to the simulator: an ordered sequence
//! of μops with resolved memory addresses and branch outcomes (the paper
//! runs 300M-instruction SimPoint regions; we run seeded synthetic regions
//! with the same role).

use crate::op::{MicroOp, OpClass};

/// An ordered dynamic sequence of μops with a descriptive name.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Human-readable workload name (e.g. `"pointer_chase"`).
    pub name: String,
    /// The μop stream in program order.
    pub ops: Vec<MicroOp>,
}

impl Trace {
    /// Creates an empty trace with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Number of μops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends a μop.
    pub fn push(&mut self, op: MicroOp) {
        self.ops.push(op);
    }

    /// Computes summary statistics over the trace.
    ///
    /// ```
    /// use ballerino_isa::{Trace, MicroOp, ArchReg};
    /// let mut t = Trace::new("demo");
    /// t.push(MicroOp::alu(0, ArchReg::int(1), [None, None]));
    /// t.push(MicroOp::load(4, ArchReg::int(2), Some(ArchReg::int(1)), 0x80));
    /// let s = t.stats();
    /// assert_eq!(s.total, 2);
    /// assert_eq!(s.loads, 1);
    /// ```
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats {
            total: self.ops.len(),
            ..TraceStats::default()
        };
        for op in &self.ops {
            match op.class {
                OpClass::Load => s.loads += 1,
                OpClass::Store => s.stores += 1,
                OpClass::Branch => {
                    s.branches += 1;
                    if op.branch.map(|b| b.taken).unwrap_or(false) {
                        s.taken_branches += 1;
                    }
                }
                c if c.is_fp() => s.fp_ops += 1,
                _ => s.int_ops += 1,
            }
        }
        s
    }
}

/// Summary statistics of a trace (μop class mix).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total μops.
    pub total: usize,
    /// Load μops.
    pub loads: usize,
    /// Store μops.
    pub stores: usize,
    /// Branch μops.
    pub branches: usize,
    /// Taken branches.
    pub taken_branches: usize,
    /// Integer compute μops.
    pub int_ops: usize,
    /// Floating-point compute μops.
    pub fp_ops: usize,
}

impl TraceStats {
    /// Fraction of μops that are loads.
    pub fn load_frac(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.loads as f64 / self.total as f64
        }
    }

    /// Fraction of μops that are branches.
    pub fn branch_frac(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.branches as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::ArchReg;

    fn sample() -> Trace {
        let mut t = Trace::new("sample");
        t.push(MicroOp::alu(0x0, ArchReg::int(1), [None, None]));
        t.push(MicroOp::load(
            0x4,
            ArchReg::int(2),
            Some(ArchReg::int(1)),
            0x1000,
        ));
        t.push(MicroOp::store(0x8, Some(ArchReg::int(2)), None, 0x2000));
        t.push(MicroOp::branch(0xc, Some(ArchReg::int(2)), true, 0x0));
        t.push(MicroOp::compute(
            0x10,
            OpClass::FpMul,
            ArchReg::fp(0),
            [None, None],
        ));
        t
    }

    #[test]
    fn stats_count_class_mix() {
        let s = sample().stats();
        assert_eq!(s.total, 5);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.int_ops, 1);
        assert_eq!(s.fp_ops, 1);
    }

    #[test]
    fn fractions_handle_empty_trace() {
        let s = Trace::new("empty").stats();
        assert_eq!(s.load_frac(), 0.0);
        assert_eq!(s.branch_frac(), 0.0);
    }

    #[test]
    fn fractions_are_ratios() {
        let s = sample().stats();
        assert!((s.load_frac() - 0.2).abs() < 1e-12);
        assert!((s.branch_frac() - 0.2).abs() < 1e-12);
    }
}
