//! Issue ports and functional-unit bindings (Table I).
//!
//! The 8-wide baseline has eight issue ports P0–P7, each with dedicated
//! functional units:
//!
//! | Port | Units |
//! |------|-------|
//! | P0 | int ALU, int DIV, fp ADD, fp MUL, fp DIV, branch |
//! | P1 | int ALU, int MUL, fp ADD, fp MUL |
//! | P2 | AGU |
//! | P3 | AGU |
//! | P4 | AGU |
//! | P5 | int ALU |
//! | P6 | int ALU, branch |
//! | P7 | AGU |
//!
//! Narrower configurations (4-wide, 2-wide) use prefixes of this table with
//! the unit mix rebalanced so every opcode class remains executable.

use crate::op::OpClass;
use std::fmt;

/// Maximum number of issue ports in any configuration.
pub const MAX_PORTS: usize = 10;

/// An issue-port identifier (`P0`..).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u8);

impl PortId {
    /// Port index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Functional-unit kind attached to a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Integer ALU.
    IntAlu,
    /// Integer multiplier.
    IntMul,
    /// Integer divider (unpipelined).
    IntDiv,
    /// FP adder.
    FpAdd,
    /// FP multiplier.
    FpMul,
    /// FP divider (unpipelined).
    FpDiv,
    /// Address-generation unit (loads and stores).
    Agu,
    /// Branch unit.
    Branch,
}

impl FuKind {
    /// Number of distinct kinds (for kind-indexed tables).
    pub const COUNT: usize = 8;

    /// Dense index of this kind, `0..COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The functional unit an opcode class executes on.
    pub fn for_class(class: OpClass) -> FuKind {
        match class {
            OpClass::IntAlu => FuKind::IntAlu,
            OpClass::IntMul => FuKind::IntMul,
            OpClass::IntDiv => FuKind::IntDiv,
            OpClass::FpAdd => FuKind::FpAdd,
            OpClass::FpMul => FuKind::FpMul,
            OpClass::FpDiv => FuKind::FpDiv,
            OpClass::Load | OpClass::Store => FuKind::Agu,
            OpClass::Branch => FuKind::Branch,
        }
    }
}

/// A port map: which functional units live on each port.
///
/// # Examples
///
/// ```
/// use ballerino_isa::{PortMap, OpClass};
/// let pm = PortMap::skylake_8wide();
/// assert_eq!(pm.num_ports(), 8);
/// let agu_ports = pm.ports_for(OpClass::Load);
/// assert_eq!(agu_ports.len(), 4); // P2, P3, P4, P7
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortMap {
    units: Vec<Vec<FuKind>>,
}

impl PortMap {
    /// Builds a port map from explicit per-port unit lists.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_PORTS`] ports are given, or if some opcode
    /// class has no port that can execute it.
    pub fn new(units: Vec<Vec<FuKind>>) -> Self {
        assert!(units.len() <= MAX_PORTS, "too many ports");
        let pm = PortMap { units };
        for class in OpClass::ALL {
            assert!(
                !pm.ports_for(class).is_empty(),
                "no port can execute {class}"
            );
        }
        pm
    }

    /// The 8-wide Skylake-like port map of Table I.
    pub fn skylake_8wide() -> Self {
        use FuKind::*;
        PortMap::new(vec![
            vec![IntAlu, IntDiv, FpAdd, FpMul, FpDiv, Branch], // P0
            vec![IntAlu, IntMul, FpAdd, FpMul],                // P1
            vec![Agu],                                         // P2
            vec![Agu],                                         // P3
            vec![Agu],                                         // P4
            vec![IntAlu],                                      // P5
            vec![IntAlu, Branch],                              // P6
            vec![Agu],                                         // P7
        ])
    }

    /// A 10-wide port map (state-of-the-art Ice-Lake-like design, §VI-E1).
    pub fn wide_10() -> Self {
        use FuKind::*;
        PortMap::new(vec![
            vec![IntAlu, IntDiv, FpAdd, FpMul, FpDiv, Branch], // P0
            vec![IntAlu, IntMul, FpAdd, FpMul],                // P1
            vec![Agu],                                         // P2
            vec![Agu],                                         // P3
            vec![Agu],                                         // P4
            vec![IntAlu],                                      // P5
            vec![IntAlu, Branch],                              // P6
            vec![Agu],                                         // P7
            vec![IntAlu, FpAdd],                               // P8
            vec![Agu],                                         // P9
        ])
    }

    /// The 4-wide port map (Table I, 4-wide column).
    pub fn four_wide() -> Self {
        use FuKind::*;
        PortMap::new(vec![
            vec![IntAlu, IntDiv, FpAdd, FpMul, FpDiv, Branch], // P0
            vec![IntAlu, IntMul, FpAdd, FpMul],                // P1
            vec![Agu],                                         // P2
            vec![Agu],                                         // P3
        ])
    }

    /// The 2-wide port map (Table I, 2-wide column).
    pub fn two_wide() -> Self {
        use FuKind::*;
        PortMap::new(vec![
            vec![IntAlu, IntMul, IntDiv, FpAdd, FpMul, FpDiv, Branch], // P0
            vec![IntAlu, Agu],                                         // P1
        ])
    }

    /// Number of issue ports (equals the machine's issue width).
    pub fn num_ports(&self) -> usize {
        self.units.len()
    }

    /// Units on a given port.
    pub fn units(&self, port: PortId) -> &[FuKind] {
        &self.units[port.index()]
    }

    /// All ports able to execute a given opcode class, in port order.
    pub fn ports_for(&self, class: OpClass) -> Vec<PortId> {
        let fu = FuKind::for_class(class);
        self.units
            .iter()
            .enumerate()
            .filter(|(_, us)| us.contains(&fu))
            .map(|(i, _)| PortId(i as u8))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_map_matches_table_i() {
        let pm = PortMap::skylake_8wide();
        assert_eq!(pm.num_ports(), 8);
        // 4 int ALUs on P0, P1, P5, P6
        assert_eq!(
            pm.ports_for(OpClass::IntAlu),
            vec![PortId(0), PortId(1), PortId(5), PortId(6)]
        );
        // 4 AGUs on P2, P3, P4, P7
        assert_eq!(
            pm.ports_for(OpClass::Load),
            vec![PortId(2), PortId(3), PortId(4), PortId(7)]
        );
        // 2 branch units on P0, P6
        assert_eq!(pm.ports_for(OpClass::Branch), vec![PortId(0), PortId(6)]);
        // 1 int DIV on P0
        assert_eq!(pm.ports_for(OpClass::IntDiv), vec![PortId(0)]);
        // 2 fp MULs on P0, P1
        assert_eq!(pm.ports_for(OpClass::FpMul), vec![PortId(0), PortId(1)]);
    }

    #[test]
    fn every_class_executable_on_all_maps() {
        for pm in [
            PortMap::skylake_8wide(),
            PortMap::wide_10(),
            PortMap::four_wide(),
            PortMap::two_wide(),
        ] {
            for class in OpClass::ALL {
                assert!(!pm.ports_for(class).is_empty());
            }
        }
    }

    #[test]
    #[should_panic(expected = "no port can execute")]
    fn map_without_agu_panics() {
        let _ = PortMap::new(vec![vec![
            FuKind::IntAlu,
            FuKind::IntMul,
            FuKind::IntDiv,
            FuKind::FpAdd,
            FuKind::FpMul,
            FuKind::FpDiv,
            FuKind::Branch,
        ]]);
    }

    #[test]
    fn port_display() {
        assert_eq!(PortId(3).to_string(), "P3");
    }
}
