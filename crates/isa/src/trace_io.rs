//! Plain-text trace serialization.
//!
//! A simple line-oriented format so traces can be exported, diffed, and
//! imported from external tools (e.g. a pintool or an emulator):
//!
//! ```text
//! # ballerino-trace v1 <name>
//! C <pc> <class> <dst> <src0> <src1>     # compute
//! L <pc> <dst> <base> <addr> <size>      # load
//! S <pc> <data> <base> <addr> <size>     # store
//! B <pc> <src> <taken|not> <target>      # conditional branch
//! ```
//!
//! Registers are written as `r<n>`, `f<n>` or `-` when absent; numbers
//! are hex for addresses and decimal otherwise.

use crate::op::{BranchInfo, BranchKind, MemInfo, MicroOp, OpClass};
use crate::regs::ArchReg;
use crate::trace::Trace;
use std::fmt::Write as _;
use std::str::FromStr;

/// Error produced when parsing a text trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

fn reg_to_str(r: Option<ArchReg>) -> String {
    match r {
        Some(r) => r.to_string(),
        None => "-".to_string(),
    }
}

fn parse_reg(s: &str) -> Result<Option<ArchReg>, String> {
    if s == "-" {
        return Ok(None);
    }
    let (class, idx) = s.split_at(1);
    let n: u16 = idx.parse().map_err(|_| format!("bad register {s:?}"))?;
    match class {
        "r" => Ok(Some(ArchReg::int(n))),
        "f" => Ok(Some(ArchReg::fp(n))),
        _ => Err(format!("bad register class {s:?}")),
    }
}

fn class_to_str(c: OpClass) -> &'static str {
    match c {
        OpClass::IntAlu => "ialu",
        OpClass::IntMul => "imul",
        OpClass::IntDiv => "idiv",
        OpClass::FpAdd => "fadd",
        OpClass::FpMul => "fmul",
        OpClass::FpDiv => "fdiv",
        OpClass::Load => "load",
        OpClass::Store => "store",
        OpClass::Branch => "br",
    }
}

fn parse_class(s: &str) -> Result<OpClass, String> {
    Ok(match s {
        "ialu" => OpClass::IntAlu,
        "imul" => OpClass::IntMul,
        "idiv" => OpClass::IntDiv,
        "fadd" => OpClass::FpAdd,
        "fmul" => OpClass::FpMul,
        "fdiv" => OpClass::FpDiv,
        other => return Err(format!("unknown opcode class {other:?}")),
    })
}

/// Serializes a trace to the text format.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# ballerino-trace v1 {}", trace.name);
    for op in &trace.ops {
        match op.class {
            OpClass::Load => {
                let m = op.mem.expect("load has mem");
                let _ = writeln!(
                    out,
                    "L {:#x} {} {} {:#x} {}",
                    op.pc,
                    reg_to_str(op.dst),
                    reg_to_str(op.srcs[0]),
                    m.addr,
                    m.size
                );
            }
            OpClass::Store => {
                let m = op.mem.expect("store has mem");
                let _ = writeln!(
                    out,
                    "S {:#x} {} {} {:#x} {}",
                    op.pc,
                    reg_to_str(op.srcs[0]),
                    reg_to_str(op.srcs[1]),
                    m.addr,
                    m.size
                );
            }
            OpClass::Branch => {
                let b = op.branch.expect("branch has info");
                let _ = writeln!(
                    out,
                    "B {:#x} {} {} {:#x}",
                    op.pc,
                    reg_to_str(op.srcs[0]),
                    if b.taken { "taken" } else { "not" },
                    b.target
                );
            }
            c => {
                let _ = writeln!(
                    out,
                    "C {:#x} {} {} {} {}",
                    op.pc,
                    class_to_str(c),
                    reg_to_str(op.dst),
                    reg_to_str(op.srcs[0]),
                    reg_to_str(op.srcs[1])
                );
            }
        }
    }
    out
}

fn parse_u64(s: &str) -> Result<u64, String> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad hex number {s:?}"))
    } else {
        u64::from_str(s).map_err(|_| format!("bad number {s:?}"))
    }
}

/// Parses the text format back into a [`Trace`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] with the line number on malformed input.
pub fn from_text(text: &str) -> Result<Trace, ParseTraceError> {
    let mut trace = Trace::new("imported");
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let err = |message: String| ParseTraceError {
            line: lineno,
            message,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(name) = rest.trim().strip_prefix("ballerino-trace v1") {
                trace.name = name.trim().to_string();
            }
            continue;
        }
        let mut f = line.split_whitespace();
        let kind = f.next().ok_or_else(|| err("empty record".into()))?;
        let mut next = |what: &str| -> Result<&str, ParseTraceError> {
            f.next().ok_or_else(|| ParseTraceError {
                line: lineno,
                message: format!("missing field {what}"),
            })
        };
        match kind {
            "C" => {
                let pc = parse_u64(next("pc")?).map_err(&err)?;
                let class = parse_class(next("class")?).map_err(&err)?;
                let dst = parse_reg(next("dst")?).map_err(&err)?;
                let s0 = parse_reg(next("src0")?).map_err(&err)?;
                let s1 = parse_reg(next("src1")?).map_err(&err)?;
                let dst = dst.ok_or_else(|| err("compute needs a destination".into()))?;
                trace.push(MicroOp::compute(pc, class, dst, [s0, s1]));
            }
            "L" => {
                let pc = parse_u64(next("pc")?).map_err(&err)?;
                let dst = parse_reg(next("dst")?)
                    .map_err(&err)?
                    .ok_or_else(|| err("load needs a destination".into()))?;
                let base = parse_reg(next("base")?).map_err(&err)?;
                let addr = parse_u64(next("addr")?).map_err(&err)?;
                let size: u8 = next("size")?.parse().map_err(|_| err("bad size".into()))?;
                let mut op = MicroOp::load(pc, dst, base, addr);
                op.mem = Some(MemInfo { addr, size });
                trace.push(op);
            }
            "S" => {
                let pc = parse_u64(next("pc")?).map_err(&err)?;
                let data = parse_reg(next("data")?).map_err(&err)?;
                let base = parse_reg(next("base")?).map_err(&err)?;
                let addr = parse_u64(next("addr")?).map_err(&err)?;
                let size: u8 = next("size")?.parse().map_err(|_| err("bad size".into()))?;
                let mut op = MicroOp::store(pc, data, base, addr);
                op.mem = Some(MemInfo { addr, size });
                trace.push(op);
            }
            "B" => {
                let pc = parse_u64(next("pc")?).map_err(&err)?;
                let src = parse_reg(next("src")?).map_err(&err)?;
                let taken = match next("taken")? {
                    "taken" => true,
                    "not" => false,
                    other => return Err(err(format!("bad direction {other:?}"))),
                };
                let target = parse_u64(next("target")?).map_err(&err)?;
                let mut op = MicroOp::branch(pc, src, taken, target);
                op.branch = Some(BranchInfo {
                    kind: BranchKind::Conditional,
                    taken,
                    target,
                });
                trace.push(op);
            }
            other => return Err(err(format!("unknown record kind {other:?}"))),
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("roundtrip");
        t.push(MicroOp::alu(
            0x400,
            ArchReg::int(1),
            [Some(ArchReg::int(2)), None],
        ));
        t.push(MicroOp::compute(
            0x404,
            OpClass::FpMul,
            ArchReg::fp(3),
            [Some(ArchReg::fp(1)), Some(ArchReg::fp(2))],
        ));
        t.push(MicroOp::load(
            0x408,
            ArchReg::int(4),
            Some(ArchReg::int(1)),
            0x1000,
        ));
        t.push(MicroOp::store(0x40c, Some(ArchReg::int(4)), None, 0x1008));
        t.push(MicroOp::branch(0x410, Some(ArchReg::int(4)), true, 0x400));
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let text = to_text(&t);
        let back = from_text(&text).expect("parse");
        assert_eq!(back.name, t.name);
        assert_eq!(back.ops, t.ops);
    }

    #[test]
    fn header_carries_the_name() {
        let text = to_text(&sample());
        assert!(text.starts_with("# ballerino-trace v1 roundtrip\n"));
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "# ballerino-trace v1 x\nC 0x400 ialu r1 - -\nZ nonsense\n";
        let e = from_text(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown record"));
    }

    #[test]
    fn missing_fields_are_errors() {
        let e = from_text("L 0x400 r1 -\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("missing field"));
    }

    #[test]
    fn bad_registers_are_errors() {
        let e = from_text("C 0x400 ialu x9 - -\n").unwrap_err();
        assert!(e.message.contains("bad register"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# a comment\nC 0x400 ialu r1 - -\n\n";
        let t = from_text(text).expect("parse");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn generated_workload_traces_round_trip() {
        // Large-ish structural round-trip with every record kind.
        let mut t = Trace::new("mix");
        for i in 0..500u64 {
            match i % 4 {
                0 => t.push(MicroOp::alu(
                    0x400 + i,
                    ArchReg::int((i % 30) as u16),
                    [None, None],
                )),
                1 => t.push(MicroOp::load(0x400 + i, ArchReg::int(1), None, i * 8)),
                2 => t.push(MicroOp::store(
                    0x400 + i,
                    Some(ArchReg::int(1)),
                    None,
                    i * 8,
                )),
                _ => t.push(MicroOp::branch(0x400 + i, None, i % 3 == 0, 0x400)),
            }
        }
        let back = from_text(&to_text(&t)).expect("parse");
        assert_eq!(back.ops, t.ops);
    }
}
