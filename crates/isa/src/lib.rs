//! # ballerino-isa
//!
//! Core instruction-set types shared by every crate in the Ballerino
//! reproduction: architectural/physical registers, micro-op (μop) classes,
//! functional-unit kinds, issue ports, and dynamic traces.
//!
//! The simulated machine is a generic RISC-like μop stream modelled after the
//! paper's x86-μop baseline (Skylake-like, Table I): each μop has up to two
//! register sources, up to one register destination, an optional memory
//! access, and an optional branch outcome.
//!
//! # Examples
//!
//! ```
//! use ballerino_isa::{MicroOp, OpClass, ArchReg};
//!
//! let add = MicroOp::alu(0x400000, ArchReg::int(3), [Some(ArchReg::int(1)), Some(ArchReg::int(2))]);
//! assert_eq!(add.class, OpClass::IntAlu);
//! assert!(add.dst.is_some());
//! ```

#![warn(missing_docs)]

pub mod dag;
pub mod features;
pub mod op;
pub mod ports;
pub mod regs;
pub mod rng;
pub mod trace;
pub mod trace_io;

pub use dag::{DagOp, TraceDag, ICACHE_LINE_BYTES};
pub use features::{HitLevel, MemGeometry, TraceFeatures, NO_STORE_DEP, NUM_HIT_LEVELS};
pub use op::{BranchInfo, BranchKind, MemInfo, MicroOp, OpClass};
pub use ports::{FuKind, PortId, PortMap, MAX_PORTS};
pub use regs::{ArchReg, PhysReg, RegClass, NUM_ARCH_REGS};
pub use trace::{Trace, TraceStats};
pub use trace_io::{from_text, to_text, ParseTraceError};

/// Whether a boolean `BALLERINO_*` environment knob is enabled.
///
/// Set-but-empty counts as *unset*, so CI matrices (and shell one-liners
/// like `BALLERINO_NO_MACRO= cargo test`) can pass an empty value to mean
/// "leave the default"; any non-empty value enables the knob.
pub fn env_flag(name: &str) -> bool {
    std::env::var_os(name).is_some_and(|v| !v.is_empty())
}

/// Reads an environment knob's value. A set-but-empty variable counts
/// as unset, matching [`env_flag`] (so CI matrices can pass `VAR=` to
/// mean "default").
pub fn env_val(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.is_empty())
}
