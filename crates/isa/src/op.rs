//! Micro-op definition: opcode classes, memory info, branch info.

use crate::regs::ArchReg;
use std::fmt;

/// Opcode class of a μop, which determines the functional unit it needs
/// and its execution latency (Table I FU mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// Pipelined floating-point add.
    FpAdd,
    /// Pipelined floating-point multiply.
    FpMul,
    /// Unpipelined floating-point divide.
    FpDiv,
    /// Memory load (AGU + cache access).
    Load,
    /// Memory store (AGU; data written at commit).
    Store,
    /// Conditional or unconditional branch.
    Branch,
}

impl OpClass {
    /// All opcode classes, in a stable order (useful for stats tables).
    pub const ALL: [OpClass; 9] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// Execution latency in cycles, *excluding* memory hierarchy time for
    /// loads (a load's 1-cycle AGU is followed by the cache access).
    ///
    /// ```
    /// use ballerino_isa::OpClass;
    /// assert_eq!(OpClass::IntAlu.exec_latency(), 1);
    /// assert!(OpClass::FpDiv.exec_latency() > OpClass::FpMul.exec_latency());
    /// ```
    pub fn exec_latency(self) -> u32 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 20,
            OpClass::FpAdd => 3,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            OpClass::Load => 1,  // AGU; cache latency added by the memory model
            OpClass::Store => 1, // AGU; data commits from the store queue
            OpClass::Branch => 1,
        }
    }

    /// Whether the functional unit is unpipelined (occupies the FU for the
    /// whole latency, blocking back-to-back issue of same-class μops on the
    /// same port).
    pub fn unpipelined(self) -> bool {
        matches!(self, OpClass::IntDiv | OpClass::FpDiv)
    }

    /// Returns `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Returns `true` for floating-point compute classes.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "ialu",
            OpClass::IntMul => "imul",
            OpClass::IntDiv => "idiv",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "br",
        };
        write!(f, "{s}")
    }
}

/// Kind of branch, which affects prediction structures used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch (predicted by TAGE).
    Conditional,
    /// Unconditional direct jump (BTB only).
    Direct,
    /// Indirect jump / return (BTB target prediction).
    Indirect,
}

/// Branch outcome information attached to branch μops in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Branch kind.
    pub kind: BranchKind,
    /// Actual direction (always `true` for unconditional branches).
    pub taken: bool,
    /// Actual target address when taken.
    pub target: u64,
}

/// Memory access information attached to load/store μops in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemInfo {
    /// Effective virtual address (byte granular).
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
}

impl MemInfo {
    /// Returns the cache-line address for a given line size.
    ///
    /// ```
    /// use ballerino_isa::MemInfo;
    /// let m = MemInfo { addr: 0x1234, size: 8 };
    /// assert_eq!(m.line(64), 0x1200 / 64);
    /// ```
    pub fn line(&self, line_bytes: u64) -> u64 {
        self.addr / line_bytes
    }

    /// Whether this access overlaps another (byte ranges intersect).
    pub fn overlaps(&self, other: &MemInfo) -> bool {
        let a0 = self.addr;
        let a1 = self.addr + self.size as u64;
        let b0 = other.addr;
        let b1 = other.addr + other.size as u64;
        a0 < b1 && b0 < a1
    }
}

/// A single micro-operation in a dynamic trace.
///
/// μops carry *architectural* register names; renaming happens inside the
/// simulated pipeline so that WAR/WAW hazards are removed exactly as in
/// hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroOp {
    /// Program counter of the parent instruction.
    pub pc: u64,
    /// Opcode class.
    pub class: OpClass,
    /// Up to two register sources.
    pub srcs: [Option<ArchReg>; 2],
    /// Optional register destination.
    pub dst: Option<ArchReg>,
    /// Memory access info for loads/stores.
    pub mem: Option<MemInfo>,
    /// Branch outcome info for branches.
    pub branch: Option<BranchInfo>,
}

impl MicroOp {
    /// Builds an integer ALU μop.
    pub fn alu(pc: u64, dst: ArchReg, srcs: [Option<ArchReg>; 2]) -> Self {
        MicroOp {
            pc,
            class: OpClass::IntAlu,
            srcs,
            dst: Some(dst),
            mem: None,
            branch: None,
        }
    }

    /// Builds a compute μop of an arbitrary class.
    pub fn compute(pc: u64, class: OpClass, dst: ArchReg, srcs: [Option<ArchReg>; 2]) -> Self {
        debug_assert!(!class.is_mem() && class != OpClass::Branch);
        MicroOp {
            pc,
            class,
            srcs,
            dst: Some(dst),
            mem: None,
            branch: None,
        }
    }

    /// Builds a load μop: `dst = [base]` at `addr`.
    pub fn load(pc: u64, dst: ArchReg, base: Option<ArchReg>, addr: u64) -> Self {
        MicroOp {
            pc,
            class: OpClass::Load,
            srcs: [base, None],
            dst: Some(dst),
            mem: Some(MemInfo { addr, size: 8 }),
            branch: None,
        }
    }

    /// Builds a store μop: `[base] = data` at `addr`.
    pub fn store(pc: u64, data: Option<ArchReg>, base: Option<ArchReg>, addr: u64) -> Self {
        MicroOp {
            pc,
            class: OpClass::Store,
            srcs: [data, base],
            dst: None,
            mem: Some(MemInfo { addr, size: 8 }),
            branch: None,
        }
    }

    /// Builds a conditional branch μop.
    pub fn branch(pc: u64, cond_src: Option<ArchReg>, taken: bool, target: u64) -> Self {
        MicroOp {
            pc,
            class: OpClass::Branch,
            srcs: [cond_src, None],
            dst: None,
            mem: None,
            branch: Some(BranchInfo {
                kind: BranchKind::Conditional,
                taken,
                target,
            }),
        }
    }

    /// Number of register source operands actually present.
    pub fn num_srcs(&self) -> usize {
        self.srcs.iter().filter(|s| s.is_some()).count()
    }

    /// Whether this μop is a load.
    pub fn is_load(&self) -> bool {
        self.class == OpClass::Load
    }

    /// Whether this μop is a store.
    pub fn is_store(&self) -> bool {
        self.class == OpClass::Store
    }

    /// Whether this μop is a branch.
    pub fn is_branch(&self) -> bool {
        self.class == OpClass::Branch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_positive_and_alu_is_single_cycle() {
        for c in OpClass::ALL {
            assert!(c.exec_latency() >= 1, "{c} latency");
        }
        assert_eq!(OpClass::IntAlu.exec_latency(), 1);
    }

    #[test]
    fn only_divides_are_unpipelined() {
        for c in OpClass::ALL {
            assert_eq!(
                c.unpipelined(),
                matches!(c, OpClass::IntDiv | OpClass::FpDiv)
            );
        }
    }

    #[test]
    fn mem_overlap_detection() {
        let a = MemInfo { addr: 100, size: 8 };
        let b = MemInfo { addr: 104, size: 8 };
        let c = MemInfo { addr: 108, size: 4 };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn load_and_store_builders_set_mem_info() {
        let ld = MicroOp::load(0x10, ArchReg::int(1), Some(ArchReg::int(2)), 0x1000);
        assert!(ld.is_load());
        assert_eq!(ld.mem.unwrap().addr, 0x1000);
        assert_eq!(ld.num_srcs(), 1);

        let st = MicroOp::store(0x14, Some(ArchReg::int(1)), Some(ArchReg::int(2)), 0x1008);
        assert!(st.is_store());
        assert!(st.dst.is_none());
        assert_eq!(st.num_srcs(), 2);
    }

    #[test]
    fn branch_builder_records_outcome() {
        let b = MicroOp::branch(0x20, Some(ArchReg::int(1)), true, 0x40);
        assert!(b.is_branch());
        let info = b.branch.unwrap();
        assert!(info.taken);
        assert_eq!(info.target, 0x40);
    }

    #[test]
    fn op_class_display_is_stable() {
        assert_eq!(OpClass::Load.to_string(), "load");
        assert_eq!(OpClass::FpMul.to_string(), "fmul");
    }
}
