//! A tiny, dependency-free, deterministic PRNG.
//!
//! The workload generators and the property/fuzz tests need reproducible
//! pseudo-random streams, not cryptographic quality. This is SplitMix64
//! (Steele et al., "Fast splittable pseudorandom number generators"): a
//! single `u64` of state, excellent equidistribution for our purposes,
//! and the same sequence on every platform for a given seed.
//!
//! # Examples
//!
//! ```
//! use ballerino_isa::rng::Rng64;
//!
//! let mut a = Rng64::new(42);
//! let mut b = Rng64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.below(10) < 10);
//! ```

/// SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift (Lemire) avoids modulo bias well enough for
        // simulation workloads and is branch-free.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `0..bound` (convenience for indexing).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, exactly the double-precision grid.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(99);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = Rng64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Rng64::new(5);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng64::new(1);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng64::new(0).below(0);
    }
}
