//! Static trace features for the tier-0 analytic estimator.
//!
//! The cycle-accurate pipeline discovers everything dynamically; the
//! analytic tier needs the same facts *statically*, once per trace:
//!
//! * **Memory level classification** — for every load/store, the cache
//!   level it is expected to hit, from an exact LRU stack-distance pass
//!   over line addresses (Mattson's algorithm via a Fenwick tree) plus a
//!   stride-prefetcher model that reclassifies covered accesses as L1
//!   hits while still charging their DRAM bus transfers.
//! * **Branch misprediction estimate** — a gshare pass over the trace's
//!   recorded outcomes marks which branches a realistic predictor would
//!   miss, so the estimator can model pipeline redirects per-op instead
//!   of guessing a global rate.
//! * **Store→load memory dependences** — the youngest older store whose
//!   byte range overlaps each load, i.e. the edges a perfect memory
//!   dependence predictor would enforce (the register DAG alone would
//!   let memory-carried chains collapse to infinite MLP).
//! * **Functional-unit work** — μop and occupancy counts per [`FuKind`]
//!   for closed-form bandwidth bounds.
//!
//! Everything here is deterministic in the trace alone and independent
//! of the design point being estimated, so harnesses memoize a
//! [`TraceFeatures`] per `(workload, n, seed)` through
//! `ballerino_workloads::TraceCache` and re-use it across thousands of
//! design points.

use crate::dag::TraceDag;
use crate::op::{BranchKind, OpClass};
use crate::ports::FuKind;
use crate::trace::Trace;
use std::collections::HashMap;

/// Which level of the hierarchy a memory access is expected to hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum HitLevel {
    /// L1 data cache (or covered by the stride prefetcher).
    L1 = 0,
    /// L2 unified cache.
    L2 = 1,
    /// L3 last-level cache.
    L3 = 2,
    /// DRAM (including cold misses).
    Dram = 3,
}

/// Number of [`HitLevel`] variants (for level-indexed tables).
pub const NUM_HIT_LEVELS: usize = 4;

impl HitLevel {
    /// Dense index of this level, `0..NUM_HIT_LEVELS`.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Cache geometry the classifier assumes, in 64-byte lines per level.
///
/// The default mirrors `ballerino_mem::MemConfig::default()` (Table I:
/// 32 KiB L1, 256 KiB L2, 1 MiB L3). Only *capacities* matter here —
/// latencies belong to the design point, not the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemGeometry {
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// L1 capacity in lines.
    pub l1_lines: u64,
    /// L2 capacity in lines.
    pub l2_lines: u64,
    /// L3 capacity in lines.
    pub l3_lines: u64,
    /// DRAM row size in bytes (row-buffer locality granularity).
    pub row_bytes: u64,
    /// DRAM banks (each bank keeps one row open).
    pub banks: u64,
}

impl Default for MemGeometry {
    fn default() -> Self {
        MemGeometry {
            line_bytes: 64,
            l1_lines: 32 * 1024 / 64,
            l2_lines: 256 * 1024 / 64,
            l3_lines: 1024 * 1024 / 64,
            row_bytes: 8192,
            banks: 16,
        }
    }
}

/// Sentinel for "no store dependence" in [`TraceFeatures::store_dep`].
pub const NO_STORE_DEP: u32 = u32::MAX;

/// Pre-computed static features of one trace (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct TraceFeatures {
    /// Expected hit level per trace index ([`HitLevel::L1`] for non-memory
    /// μops, so the vector is uniformly indexable).
    pub level: Vec<HitLevel>,
    /// Whether a gshare predictor would mispredict this μop (always
    /// `false` for non-branches).
    pub mispredicted: Vec<bool>,
    /// For loads: trace index of the youngest older store whose byte
    /// range overlaps, else [`NO_STORE_DEP`].
    pub store_dep: Vec<u32>,
    /// μops per functional-unit kind.
    pub fu_uops: [u64; FuKind::COUNT],
    /// FU occupancy cycles per kind: 1 per μop for pipelined units, the
    /// full latency for unpipelined ones (divides).
    pub fu_occupancy: [u64; FuKind::COUNT],
    /// Memory accesses per expected hit level.
    pub level_counts: [u64; NUM_HIT_LEVELS],
    /// 64-byte lines expected to cross the DRAM bus (misses past L3 by
    /// stack distance, *including* prefetched ones — prefetching hides
    /// latency, not bandwidth).
    pub dram_line_transfers: u64,
    /// DRAM transfers landing on a *different row* than their bank's
    /// previously open row (row conflicts: precharge + activate on top
    /// of CAS). `dram_row_switches / dram_line_transfers` is the trace's
    /// row-buffer locality — ~0 for streaming, ~1 for pointer chasing.
    pub dram_row_switches: u64,
    /// μops starting a new i-cache line (from the [`TraceDag`]).
    pub line_crosses: u64,
    /// Estimated branch mispredictions (count of `mispredicted`).
    pub est_mispredicts: u64,
    /// Load μops.
    pub loads: u64,
    /// Store μops.
    pub stores: u64,
    /// Branch μops.
    pub branches: u64,
}

/// Fenwick tree over access ordinals, used to count distinct lines
/// touched between two positions (LRU stack distance).
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of marks in `[0, i]`.
    fn prefix(&self, mut i: usize) -> u32 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Per-PC stride-prefetcher state for the coverage heuristic.
#[derive(Clone, Copy)]
struct StrideEntry {
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

impl TraceFeatures {
    /// Extracts all features in one deterministic pass. `O(n log n)` in
    /// the trace length (the log factor is the stack-distance Fenwick
    /// tree); independent of any machine configuration.
    pub fn extract(trace: &Trace, dag: &TraceDag, geom: &MemGeometry) -> TraceFeatures {
        let n = trace.ops.len();
        assert_eq!(dag.len(), n, "dag must be resolved from the same trace");
        let mut f = TraceFeatures {
            level: vec![HitLevel::L1; n],
            mispredicted: vec![false; n],
            store_dep: vec![NO_STORE_DEP; n],
            ..TraceFeatures::default()
        };

        // --- LRU stack distance over line addresses -------------------
        // Mattson: reuse distance of an access = number of *distinct*
        // lines touched since the previous access to the same line. The
        // Fenwick tree keeps one mark per line at its most recent access
        // ordinal; a range count between the previous and current
        // ordinals is exactly the distinct-line count.
        let mut last_pos: HashMap<u64, usize> = HashMap::new();
        let mut fenwick = Fenwick::new(n);
        // --- stride prefetcher coverage -------------------------------
        let mut strides: HashMap<u64, StrideEntry> = HashMap::new();
        // --- store→load dependences (8-byte granules) -----------------
        let mut granule_writer: HashMap<u64, u32> = HashMap::new();
        // --- DRAM row-buffer locality ---------------------------------
        let mut open_row: HashMap<u64, u64> = HashMap::new(); // bank -> row
                                                              // --- tournament branch predictor ------------------------------
                                                              // A bimodal table, a gshare table and a per-PC chooser: close
                                                              // enough to the simulator's TAGE on biased and short-pattern
                                                              // branches that the mispredict *count* tracks it, at a fraction
                                                              // of the code. A lone gshare overestimates misses on loops with
                                                              // strong per-PC bias (the chooser falls back to bimodal there).
        const PRED_BITS: u32 = 12;
        const PRED_MASK: u64 = (1 << PRED_BITS) - 1;
        let mut bimodal = vec![2u8; 1 << PRED_BITS]; // weakly taken
        let mut gshare = vec![2u8; 1 << PRED_BITS];
        let mut chooser = vec![2u8; 1 << PRED_BITS]; // weakly prefer gshare
        let mut history: u64 = 0;

        for (i, op) in trace.ops.iter().enumerate() {
            let d = dag.op(i);
            f.fu_uops[d.fu.index()] += 1;
            f.fu_occupancy[d.fu.index()] += if op.class.unpipelined() {
                d.exec_latency as u64
            } else {
                1
            };
            if d.line_cross {
                f.line_crosses += 1;
            }

            if let Some(mem) = op.mem {
                if op.class == OpClass::Load {
                    f.loads += 1;
                } else {
                    f.stores += 1;
                }

                let line = mem.addr / geom.line_bytes;
                let raw_level = match last_pos.get(&line) {
                    Some(&p) => {
                        // Distinct lines in (p, i): total marks ≤ i minus
                        // marks ≤ p; the mark *at* p is this line itself.
                        let dist = (fenwick.prefix(i.saturating_sub(1)) - fenwick.prefix(p)) as u64;
                        if dist < geom.l1_lines {
                            HitLevel::L1
                        } else if dist < geom.l2_lines {
                            HitLevel::L2
                        } else if dist < geom.l3_lines {
                            HitLevel::L3
                        } else {
                            HitLevel::Dram
                        }
                    }
                    None => HitLevel::Dram, // cold miss
                };
                if let Some(&p) = last_pos.get(&line) {
                    fenwick.add(p, -1);
                }
                fenwick.add(i, 1);
                last_pos.insert(line, i);

                if raw_level == HitLevel::Dram {
                    f.dram_line_transfers += 1;
                    let row = mem.addr / geom.row_bytes;
                    let bank = row % geom.banks.max(1);
                    if open_row.insert(bank, row) != Some(row) {
                        f.dram_row_switches += 1;
                    }
                }

                // Stride prefetcher: after two confirmations of the same
                // non-zero stride at a PC, further accesses are covered.
                let covered = match strides.get_mut(&op.pc) {
                    Some(e) => {
                        let s = mem.addr as i64 - e.last_addr as i64;
                        let hit = s == e.stride && s != 0;
                        if hit {
                            e.confidence = e.confidence.saturating_add(1);
                        } else {
                            e.stride = s;
                            e.confidence = 0;
                        }
                        e.last_addr = mem.addr;
                        hit && e.confidence >= 2
                    }
                    None => {
                        strides.insert(
                            op.pc,
                            StrideEntry {
                                last_addr: mem.addr,
                                stride: 0,
                                confidence: 0,
                            },
                        );
                        false
                    }
                };
                let level = if covered { HitLevel::L1 } else { raw_level };
                f.level[i] = level;
                f.level_counts[level.index()] += 1;

                // Store→load dependences through 8-byte granules.
                let g0 = mem.addr / 8;
                let g1 = (mem.addr + mem.size as u64 - 1) / 8;
                if op.class == OpClass::Store {
                    for g in g0..=g1 {
                        granule_writer.insert(g, i as u32);
                    }
                } else {
                    let mut dep = NO_STORE_DEP;
                    for g in g0..=g1 {
                        if let Some(&w) = granule_writer.get(&g) {
                            if dep == NO_STORE_DEP || w > dep {
                                dep = w;
                            }
                        }
                    }
                    f.store_dep[i] = dep;
                }
            }

            if let Some(br) = op.branch {
                f.branches += 1;
                let miss = match br.kind {
                    BranchKind::Conditional => {
                        let pc_idx = ((op.pc >> 2) & PRED_MASK) as usize;
                        let gs_idx = (((op.pc >> 2) ^ history) & PRED_MASK) as usize;
                        let bi_taken = bimodal[pc_idx] >= 2;
                        let gs_taken = gshare[gs_idx] >= 2;
                        let predicted_taken = if chooser[pc_idx] >= 2 {
                            gs_taken
                        } else {
                            bi_taken
                        };
                        // Chooser trains toward whichever component was
                        // right when they disagree.
                        if gs_taken != bi_taken {
                            if gs_taken == br.taken {
                                chooser[pc_idx] = (chooser[pc_idx] + 1).min(3);
                            } else {
                                chooser[pc_idx] = chooser[pc_idx].saturating_sub(1);
                            }
                        }
                        for (tbl, idx) in [(&mut bimodal, pc_idx), (&mut gshare, gs_idx)] {
                            if br.taken {
                                tbl[idx] = (tbl[idx] + 1).min(3);
                            } else {
                                tbl[idx] = tbl[idx].saturating_sub(1);
                            }
                        }
                        history = ((history << 1) | br.taken as u64) & PRED_MASK;
                        predicted_taken != br.taken
                    }
                    // Direct jumps always predict; indirect targets are
                    // assumed BTB-resident (the suite's indirect branches
                    // are few — calibration absorbs the residue).
                    BranchKind::Direct | BranchKind::Indirect => false,
                };
                if miss {
                    f.mispredicted[i] = true;
                    f.est_mispredicts += 1;
                }
            }
        }
        f
    }

    /// Number of μops the features describe.
    pub fn len(&self) -> usize {
        self.level.len()
    }

    /// Whether the trace was empty.
    pub fn is_empty(&self) -> bool {
        self.level.is_empty()
    }

    /// Fraction of memory accesses expected to miss L1 (a quick
    /// memory-intensity scalar for reporting).
    pub fn l1_miss_fraction(&self) -> f64 {
        let mem = self.loads + self.stores;
        if mem == 0 {
            return 0.0;
        }
        (mem - self.level_counts[HitLevel::L1.index()]) as f64 / mem as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MicroOp;
    use crate::regs::ArchReg;

    fn features(t: &Trace) -> TraceFeatures {
        let dag = TraceDag::resolve(t);
        TraceFeatures::extract(t, &dag, &MemGeometry::default())
    }

    #[test]
    fn cold_misses_are_dram_and_reuse_is_l1() {
        let mut t = Trace::new("reuse");
        t.push(MicroOp::load(0x0, ArchReg::int(1), None, 0x1000));
        t.push(MicroOp::load(0x4, ArchReg::int(2), None, 0x1000));
        let f = features(&t);
        assert_eq!(f.level[0], HitLevel::Dram);
        assert_eq!(f.level[1], HitLevel::L1);
        assert_eq!(f.dram_line_transfers, 1);
        assert_eq!(f.loads, 2);
    }

    #[test]
    fn capacity_misses_classify_by_stack_distance() {
        // Touch more distinct lines than L1 holds, then re-touch the
        // first: its reuse distance lands in L2 territory.
        let geom = MemGeometry::default();
        let mut t = Trace::new("cap");
        let distinct = geom.l1_lines + 10;
        for i in 0..distinct {
            // Distinct PCs so the stride prefetcher never gains
            // confidence at one PC.
            t.push(MicroOp::load(
                0x1000 * i,
                ArchReg::int(1),
                None,
                i * geom.line_bytes,
            ));
        }
        t.push(MicroOp::load(0x999_0000, ArchReg::int(2), None, 0));
        let f = features(&t);
        assert_eq!(f.level[distinct as usize], HitLevel::L2);
    }

    #[test]
    fn stride_streams_are_prefetch_covered_but_still_pay_bus() {
        let mut t = Trace::new("stream");
        for i in 0..16u64 {
            t.push(MicroOp::load(0x40, ArchReg::int(1), None, 0x10000 + i * 64));
        }
        let f = features(&t);
        // First accesses train the predictor; the steady state is L1.
        assert_eq!(f.level[10], HitLevel::L1);
        // Every line still crosses the DRAM bus exactly once.
        assert_eq!(f.dram_line_transfers, 16);
    }

    #[test]
    fn store_load_dependences_use_byte_overlap() {
        let mut t = Trace::new("fwd");
        t.push(MicroOp::store(0x0, Some(ArchReg::int(1)), None, 0x2000));
        t.push(MicroOp::load(0x4, ArchReg::int(2), None, 0x2000));
        t.push(MicroOp::load(0x8, ArchReg::int(3), None, 0x3000));
        let f = features(&t);
        assert_eq!(f.store_dep[1], 0);
        assert_eq!(f.store_dep[2], NO_STORE_DEP);
        assert_eq!(f.store_dep[0], NO_STORE_DEP, "stores carry no dep");
    }

    #[test]
    fn biased_branches_train_and_flaky_ones_miss() {
        let mut t = Trace::new("br");
        for _ in 0..64 {
            t.push(MicroOp::branch(0x100, Some(ArchReg::int(1)), true, 0x40));
        }
        let f = features(&t);
        // An always-taken branch warms up within a few iterations.
        assert!(f.est_mispredicts <= 4, "got {}", f.est_mispredicts);

        let mut t2 = Trace::new("flaky");
        for i in 0..64u64 {
            // Period-3 pattern defeats a plain history predictor enough
            // to produce a nonzero miss estimate.
            t2.push(MicroOp::branch(
                0x100 + (i % 7) * 8,
                Some(ArchReg::int(1)),
                i % 3 == 0,
                0x40,
            ));
        }
        let f2 = features(&t2);
        assert!(f2.est_mispredicts > 0);
        assert_eq!(f2.branches, 64);
    }

    #[test]
    fn fu_work_counts_unpipelined_occupancy() {
        let mut t = Trace::new("fu");
        t.push(MicroOp::compute(
            0x0,
            OpClass::IntDiv,
            ArchReg::int(1),
            [None, None],
        ));
        t.push(MicroOp::alu(0x4, ArchReg::int(2), [None, None]));
        let f = features(&t);
        assert_eq!(f.fu_uops[FuKind::IntDiv.index()], 1);
        assert_eq!(
            f.fu_occupancy[FuKind::IntDiv.index()],
            OpClass::IntDiv.exec_latency() as u64
        );
        assert_eq!(f.fu_occupancy[FuKind::IntAlu.index()], 1);
    }

    #[test]
    fn empty_trace_has_empty_features() {
        let f = features(&Trace::new("empty"));
        assert!(f.is_empty());
        assert_eq!(f.est_mispredicts, 0);
        assert_eq!(f.l1_miss_fraction(), 0.0);
    }
}
