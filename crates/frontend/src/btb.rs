//! Branch target buffer: 512 sets, 4-way set associative (Table I).

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    target: u64,
    lru: u64,
}

/// Set-associative BTB storing branch targets.
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<[BtbEntry; 4]>,
    clock: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl Default for Btb {
    fn default() -> Self {
        Self::new(512)
    }
}

impl Btb {
    /// Builds a BTB with `sets` sets (4-way).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero.
    pub fn new(sets: usize) -> Self {
        assert!(sets > 0, "BTB needs at least one set");
        Btb {
            sets: vec![[BtbEntry::default(); 4]; sets],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, pc: u64) -> (usize, u64) {
        let set = ((pc >> 2) as usize) % self.sets.len();
        let tag = pc >> 2;
        (set, tag)
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.clock += 1;
        let (set, tag) = self.index(pc);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.lru = self.clock;
                self.hits += 1;
                return Some(way.target);
            }
        }
        self.misses += 1;
        None
    }

    /// Installs or updates the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.clock += 1;
        let (set, tag) = self.index(pc);
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.valid && w.tag == tag) {
            way.target = target;
            way.lru = self.clock;
            return;
        }
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("4 ways");
        *victim = BtbEntry {
            valid: true,
            tag,
            target,
            lru: self.clock,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_update_then_hit() {
        let mut b = Btb::default();
        assert_eq!(b.lookup(0x400), None);
        b.update(0x400, 0x800);
        assert_eq!(b.lookup(0x400), Some(0x800));
        assert_eq!(b.hits, 1);
        assert_eq!(b.misses, 1);
    }

    #[test]
    fn update_overwrites_target() {
        let mut b = Btb::default();
        b.update(0x400, 0x800);
        b.update(0x400, 0x900);
        assert_eq!(b.lookup(0x400), Some(0x900));
    }

    #[test]
    fn lru_within_set_evicts_oldest() {
        let mut b = Btb::new(1); // force all branches into one set
        for i in 0..4u64 {
            b.update(i * 4, 0x1000 + i);
        }
        let _ = b.lookup(0); // touch first entry
        b.update(16, 0x2000); // must evict one of the untouched ways
        assert_eq!(b.lookup(0), Some(0x1000));
        assert_eq!(b.lookup(16), Some(0x2000));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut b = Btb::new(512);
        b.update(0x400, 1);
        b.update(0x404, 2);
        assert_eq!(b.lookup(0x400), Some(1));
        assert_eq!(b.lookup(0x404), Some(2));
    }
}
