//! # ballerino-frontend
//!
//! Front-end substrates of the simulated cores (identical across every
//! evaluated microarchitecture, Table I):
//!
//! * [`tage`] — TAGE conditional branch predictor: 17-bit global history,
//!   one bimodal base table and four tagged components (≈32 KiB),
//! * [`btb`] — 512-set, 4-way branch target buffer,
//! * [`rename`] — register alias table + free lists + recovery log
//!   (two-stage pipelined renaming is a timing property applied by the
//!   pipeline model).

#![warn(missing_docs)]

pub mod btb;
pub mod rename;
pub mod tage;

pub use btb::Btb;
pub use rename::{RenameError, RenamedOp, Renamer};
pub use tage::Tage;
