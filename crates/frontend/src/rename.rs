//! Register renaming: RAT, per-class free lists, and rollback support.
//!
//! The paper assumes two-stage pipelined renaming \[30, 31\]; the *timing*
//! (two pipeline stages) is applied by `ballerino-sim`, while this module
//! provides the architectural machinery: architectural→physical mappings,
//! free-list allocation, and the per-μop recovery log entries used to
//! restore the RAT on squashes by walking the ROB tail-first.

use ballerino_isa::{ArchReg, MicroOp, PhysReg, RegClass, NUM_ARCH_REGS};

/// A renamed μop: physical sources/destination plus recovery info.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenamedOp {
    /// Physical registers of up to two sources.
    pub srcs: [Option<PhysReg>; 2],
    /// Newly allocated physical destination.
    pub dst: Option<PhysReg>,
    /// Previous mapping of the architectural destination (recovery log).
    pub prev_dst: Option<PhysReg>,
}

/// Why renaming could not proceed this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameError {
    /// The destination class's free list is empty.
    OutOfPhysRegs(RegClass),
}

impl std::fmt::Display for RenameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenameError::OutOfPhysRegs(c) => write!(f, "out of {c} physical registers"),
        }
    }
}

impl std::error::Error for RenameError {}

/// The register alias table plus free lists.
///
/// Physical tag space: `[0, int_total)` are integer registers,
/// `[int_total, int_total + fp_total)` are floating-point registers.
#[derive(Debug, Clone)]
pub struct Renamer {
    rat: Vec<PhysReg>,
    free_int: Vec<PhysReg>,
    free_fp: Vec<PhysReg>,
    int_total: usize,
    fp_total: usize,
}

impl Renamer {
    /// Builds a renamer with `int_regs` / `fp_regs` total physical
    /// registers per class (Table I: 180/168 at 8-wide). The first 32 tags
    /// of each class back the initial architectural state.
    ///
    /// # Panics
    ///
    /// Panics unless each class has more physical than architectural
    /// registers.
    pub fn new(int_regs: usize, fp_regs: usize) -> Self {
        let arch_per_class = (NUM_ARCH_REGS / 2) as usize;
        assert!(
            int_regs > arch_per_class,
            "need > {arch_per_class} int phys regs"
        );
        assert!(
            fp_regs > arch_per_class,
            "need > {arch_per_class} fp phys regs"
        );

        let mut rat = Vec::with_capacity(NUM_ARCH_REGS as usize);
        for i in 0..arch_per_class {
            rat.push(PhysReg(i as u32));
        }
        for i in 0..arch_per_class {
            rat.push(PhysReg((int_regs + i) as u32));
        }
        let free_int = (arch_per_class..int_regs)
            .map(|i| PhysReg(i as u32))
            .collect();
        let free_fp = ((int_regs + arch_per_class)..(int_regs + fp_regs))
            .map(|i| PhysReg(i as u32))
            .collect();
        Renamer {
            rat,
            free_int,
            free_fp,
            int_total: int_regs,
            fp_total: fp_regs,
        }
    }

    /// Total physical registers across both classes (scoreboard size).
    pub fn total_phys(&self) -> usize {
        self.int_total + self.fp_total
    }

    /// Free registers currently available for a class.
    pub fn free_count(&self, class: RegClass) -> usize {
        match class {
            RegClass::Int => self.free_int.len(),
            RegClass::Fp => self.free_fp.len(),
        }
    }

    /// Current mapping of an architectural register.
    pub fn mapping(&self, r: ArchReg) -> PhysReg {
        self.rat[r.flat() as usize]
    }

    /// Class of a physical tag (derived from the tag-space split).
    pub fn class_of(&self, p: PhysReg) -> RegClass {
        if (p.0 as usize) < self.int_total {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// Renames one μop in program order (intra-group dependences are
    /// honored by calling this sequentially).
    ///
    /// # Errors
    ///
    /// Returns [`RenameError::OutOfPhysRegs`] when the destination's free
    /// list is empty; the RAT is left unchanged so the caller can retry.
    pub fn rename(&mut self, op: &MicroOp) -> Result<RenamedOp, RenameError> {
        let srcs = [
            op.srcs[0].map(|r| self.mapping(r)),
            op.srcs[1].map(|r| self.mapping(r)),
        ];
        let (dst, prev_dst) = match op.dst {
            Some(d) => {
                let list = match d.class() {
                    RegClass::Int => &mut self.free_int,
                    RegClass::Fp => &mut self.free_fp,
                };
                let new = list.pop().ok_or(RenameError::OutOfPhysRegs(d.class()))?;
                let prev = self.rat[d.flat() as usize];
                self.rat[d.flat() as usize] = new;
                (Some(new), Some(prev))
            }
            None => (None, None),
        };
        Ok(RenamedOp {
            srcs,
            dst,
            prev_dst,
        })
    }

    /// Rolls back one renamed μop during a squash. **Must** be called in
    /// reverse program order (ROB tail first).
    pub fn rollback(&mut self, arch_dst: Option<ArchReg>, renamed: &RenamedOp) {
        if let (Some(d), Some(new), Some(prev)) = (arch_dst, renamed.dst, renamed.prev_dst) {
            debug_assert_eq!(self.rat[d.flat() as usize], new, "rollback out of order");
            self.rat[d.flat() as usize] = prev;
            self.release(new);
        }
    }

    /// Returns a physical register to its free list (called at commit for
    /// the *previous* mapping of a writer, or during rollback for the new
    /// mapping).
    pub fn release(&mut self, p: PhysReg) {
        match self.class_of(p) {
            RegClass::Int => self.free_int.push(p),
            RegClass::Fp => self.free_fp.push(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballerino_isa::MicroOp;

    fn renamer() -> Renamer {
        Renamer::new(48, 40)
    }

    #[test]
    fn initial_mappings_are_identity_like() {
        let r = renamer();
        assert_eq!(r.mapping(ArchReg::int(0)), PhysReg(0));
        assert_eq!(r.mapping(ArchReg::int(31)), PhysReg(31));
        assert_eq!(r.mapping(ArchReg::fp(0)), PhysReg(48));
        assert_eq!(r.free_count(RegClass::Int), 16);
        assert_eq!(r.free_count(RegClass::Fp), 8);
    }

    #[test]
    fn rename_eliminates_waw_and_war() {
        let mut r = renamer();
        let w1 = r
            .rename(&MicroOp::alu(0, ArchReg::int(1), [None, None]))
            .unwrap();
        let reader = r
            .rename(&MicroOp::alu(
                4,
                ArchReg::int(2),
                [Some(ArchReg::int(1)), None],
            ))
            .unwrap();
        let w2 = r
            .rename(&MicroOp::alu(8, ArchReg::int(1), [None, None]))
            .unwrap();
        // The reader sees the first writer's tag, not the second's.
        assert_eq!(reader.srcs[0], w1.dst);
        assert_ne!(w1.dst, w2.dst);
        // Recovery log records the shadowed mapping.
        assert_eq!(w2.prev_dst, w1.dst);
    }

    #[test]
    fn out_of_regs_is_reported_and_rat_unchanged() {
        let mut r = Renamer::new(33, 33);
        let op = MicroOp::alu(0, ArchReg::int(1), [None, None]);
        assert!(r.rename(&op).is_ok()); // consumes the only free int reg
        let before = r.mapping(ArchReg::int(1));
        let err = r.rename(&op).unwrap_err();
        assert_eq!(err, RenameError::OutOfPhysRegs(RegClass::Int));
        assert_eq!(r.mapping(ArchReg::int(1)), before);
    }

    #[test]
    fn rollback_restores_rat_and_free_list() {
        let mut r = renamer();
        let free_before = r.free_count(RegClass::Int);
        let before = r.mapping(ArchReg::int(5));
        let op = MicroOp::alu(0, ArchReg::int(5), [None, None]);
        let ren = r.rename(&op).unwrap();
        assert_ne!(r.mapping(ArchReg::int(5)), before);
        r.rollback(Some(ArchReg::int(5)), &ren);
        assert_eq!(r.mapping(ArchReg::int(5)), before);
        assert_eq!(r.free_count(RegClass::Int), free_before);
    }

    #[test]
    fn nested_rollback_in_reverse_order() {
        let mut r = renamer();
        let orig = r.mapping(ArchReg::int(7));
        let op = MicroOp::alu(0, ArchReg::int(7), [None, None]);
        let a = r.rename(&op).unwrap();
        let b = r.rename(&op).unwrap();
        // Reverse order: youngest first.
        r.rollback(Some(ArchReg::int(7)), &b);
        r.rollback(Some(ArchReg::int(7)), &a);
        assert_eq!(r.mapping(ArchReg::int(7)), orig);
    }

    #[test]
    fn commit_release_recycles_prev_mapping() {
        let mut r = renamer();
        let op = MicroOp::alu(0, ArchReg::int(3), [None, None]);
        let ren = r.rename(&op).unwrap();
        let free_after_rename = r.free_count(RegClass::Int);
        // At commit, the shadowed mapping is freed.
        r.release(ren.prev_dst.unwrap());
        assert_eq!(r.free_count(RegClass::Int), free_after_rename + 1);
    }

    #[test]
    fn class_of_respects_tag_split() {
        let r = renamer();
        assert_eq!(r.class_of(PhysReg(0)), RegClass::Int);
        assert_eq!(r.class_of(PhysReg(47)), RegClass::Int);
        assert_eq!(r.class_of(PhysReg(48)), RegClass::Fp);
    }

    #[test]
    fn fp_and_int_free_lists_are_independent() {
        let mut r = Renamer::new(33, 40);
        // Exhaust int.
        let _ = r
            .rename(&MicroOp::alu(0, ArchReg::int(0), [None, None]))
            .unwrap();
        assert!(r
            .rename(&MicroOp::alu(0, ArchReg::int(0), [None, None]))
            .is_err());
        // FP still renames.
        let fp = MicroOp::compute(
            0,
            ballerino_isa::OpClass::FpAdd,
            ArchReg::fp(0),
            [None, None],
        );
        assert!(r.rename(&fp).is_ok());
    }
}
