//! TAGE conditional branch predictor.
//!
//! Table I: "TAGE: 17-bit GHR with one bimodal and four tagged predictors
//! (overall 32 KiB)". This is a faithful, compact TAGE: a bimodal base
//! table plus four partially-tagged components indexed with
//! geometrically-increasing history lengths (3, 6, 11, 17), folded-history
//! indexing, `u`/`ctr` update rules and allocation on mispredictions.

/// Saturating n-bit signed counter helper.
fn ctr_update(ctr: &mut i8, taken: bool, bits: u32) {
    let max = (1 << (bits - 1)) - 1;
    let min = -(1 << (bits - 1));
    if taken {
        if (*ctr as i32) < max {
            *ctr += 1;
        }
    } else if (*ctr as i32) > min {
        *ctr -= 1;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: i8, // 3-bit signed
    useful: u8,
}

/// The TAGE predictor.
#[derive(Debug, Clone)]
pub struct Tage {
    bimodal: Vec<i8>, // 2-bit counters
    tables: Vec<Vec<TaggedEntry>>,
    hist_lens: [u32; 4],
    ghr: u32, // 17 bits used
    /// Predictions made.
    pub lookups: u64,
    /// Mispredictions observed at update time.
    pub mispredicts: u64,
    /// Deterministic LFSR for the allocation tie-break.
    rng: u32,
}

/// Prediction plus the provider info needed for the update.
#[derive(Debug, Clone, Copy)]
pub struct TagePrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Provider component (0 = bimodal, 1..=4 tagged), for update.
    provider: usize,
    /// Alternate prediction (used for the `u` update rule).
    alt_taken: bool,
    /// Snapshot of the GHR at prediction time (kept for checkpoint-style
    /// recovery experiments; unused by the base update path).
    #[allow(dead_code)]
    ghr: u32,
}

impl Default for Tage {
    fn default() -> Self {
        Self::new()
    }
}

impl Tage {
    /// Builds the Table I configuration: 8K-entry bimodal and 4×1K-entry
    /// tagged tables (≈32 KiB total).
    pub fn new() -> Self {
        Tage {
            bimodal: vec![0; 8192],
            tables: vec![vec![TaggedEntry::default(); 1024]; 4],
            hist_lens: [3, 6, 11, 17],
            ghr: 0,
            lookups: 0,
            mispredicts: 0,
            rng: 0x2545_F491,
        }
    }

    fn fold(ghr: u32, len: u32, bits: u32) -> u32 {
        let mask = if len >= 32 {
            u32::MAX
        } else {
            (1u32 << len) - 1
        };
        let mut h = ghr & mask;
        let mut folded = 0u32;
        while h != 0 {
            folded ^= h & ((1 << bits) - 1);
            h >>= bits;
        }
        folded
    }

    fn index(&self, pc: u64, table: usize) -> usize {
        let len = self.hist_lens[table];
        let folded = Self::fold(self.ghr, len, 10);
        ((pc as u32 >> 2) ^ folded ^ (table as u32).wrapping_mul(0x9E37)) as usize % 1024
    }

    fn tag(&self, pc: u64, table: usize) -> u16 {
        let len = self.hist_lens[table];
        let folded = Self::fold(self.ghr, len, 8);
        (((pc as u32 >> 2).wrapping_mul(0x9E3779B9) >> 8) ^ folded ^ (table as u32)) as u16 & 0xFF
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.bimodal.len()
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> TagePrediction {
        self.lookups += 1;
        let mut provider = 0usize;
        let mut pred = self.bimodal[self.bimodal_index(pc)] >= 0;
        let mut alt = pred;
        // Longest matching history wins.
        for t in 0..4 {
            let idx = self.index(pc, t);
            let e = &self.tables[t][idx];
            if e.tag == self.tag(pc, t) {
                alt = pred;
                pred = e.ctr >= 0;
                provider = t + 1;
            }
        }
        TagePrediction {
            taken: pred,
            provider,
            alt_taken: alt,
            ghr: self.ghr,
        }
    }

    /// Updates the predictor with the actual outcome; returns whether the
    /// prediction was correct.
    pub fn update(&mut self, pc: u64, pred: TagePrediction, taken: bool) -> bool {
        let correct = pred.taken == taken;
        if !correct {
            self.mispredicts += 1;
        }

        if pred.provider == 0 {
            let idx = self.bimodal_index(pc);
            ctr_update(&mut self.bimodal[idx], taken, 2);
        } else {
            let t = pred.provider - 1;
            let idx = self.index(pc, t);
            let e = &mut self.tables[t][idx];
            ctr_update(&mut e.ctr, taken, 3);
            if pred.taken != pred.alt_taken {
                if correct {
                    e.useful = (e.useful + 1).min(3);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }

        // Allocate a new entry in a longer-history table on misprediction.
        if !correct && pred.provider < 4 {
            self.rng = self.rng.wrapping_mul(1664525).wrapping_add(1013904223);
            let start = pred.provider; // first longer table
            let mut allocated = false;
            for t in start..4 {
                let idx = self.index(pc, t);
                if self.tables[t][idx].useful == 0 {
                    self.tables[t][idx] = TaggedEntry {
                        tag: self.tag(pc, t),
                        ctr: if taken { 0 } else { -1 },
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Decay usefulness so future allocations can succeed.
                for t in start..4 {
                    let idx = self.index(pc, t);
                    let e = &mut self.tables[t][idx];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }

        // Speculatively update global history (the pipeline model resolves
        // branches in order at fetch, so history is maintained here).
        self.ghr = ((self.ghr << 1) | taken as u32) & 0x1FFFF;
        correct
    }

    /// Misprediction rate so far.
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pattern<F: Fn(u64) -> bool>(tage: &mut Tage, pc: u64, n: u64, f: F) -> f64 {
        let mut wrong = 0;
        for i in 0..n {
            let p = tage.predict(pc);
            if !tage.update(pc, p, f(i)) {
                wrong += 1;
            }
        }
        wrong as f64 / n as f64
    }

    #[test]
    fn always_taken_branch_is_learned() {
        let mut t = Tage::new();
        let rate = run_pattern(&mut t, 0x400, 1000, |_| true);
        assert!(rate < 0.02, "always-taken rate {rate}");
    }

    #[test]
    fn short_loop_pattern_is_learned_by_tagged_tables() {
        let mut t = Tage::new();
        // taken 7 times, then not taken (8-iteration loop): bimodal alone
        // cannot capture the exit, TAGE should.
        let rate = run_pattern(&mut t, 0x400, 4000, |i| i % 8 != 7);
        assert!(rate < 0.10, "loop-exit rate {rate}");
    }

    #[test]
    fn alternating_pattern_is_learned() {
        let mut t = Tage::new();
        let rate = run_pattern(&mut t, 0x800, 2000, |i| i % 2 == 0);
        assert!(rate < 0.10, "alternating rate {rate}");
    }

    #[test]
    fn random_pattern_is_hard() {
        let mut t = Tage::new();
        // xorshift pseudo-random outcomes: should hover near 50%.
        let mut x = 12345u64;
        let mut wrong = 0;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let taken = x & 1 == 1;
            let p = t.predict(0xC00);
            if !t.update(0xC00, p, taken) {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / 2000.0;
        assert!(rate > 0.30, "random branches should be hard, got {rate}");
    }

    #[test]
    fn distinct_pcs_do_not_destructively_interfere() {
        let mut t = Tage::new();
        // Interleave two opposite-biased branches.
        let mut wrong = 0;
        for i in 0..2000u64 {
            let (pc, taken) = if i % 2 == 0 {
                (0x1000, true)
            } else {
                (0x2000, false)
            };
            let p = t.predict(pc);
            if !t.update(pc, p, taken) {
                wrong += 1;
            }
        }
        assert!((wrong as f64 / 2000.0) < 0.05);
    }

    #[test]
    fn mispredict_rate_accounts_lookups() {
        let mut t = Tage::new();
        let _ = run_pattern(&mut t, 0x400, 100, |_| true);
        assert_eq!(t.lookups, 100);
        assert!(t.mispredict_rate() <= 1.0);
    }

    #[test]
    fn fold_handles_full_width_history() {
        // Must not loop forever or panic with 17-bit lengths.
        let f = Tage::fold(0x1FFFF, 17, 10);
        assert!(f < 1024);
        assert_eq!(Tage::fold(0, 17, 10), 0);
    }
}
