//! Property tests for register renaming: physical registers are
//! conserved, and rollback exactly undoes rename.

use ballerino_frontend::Renamer;
use ballerino_isa::{ArchReg, MicroOp, RegClass};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = MicroOp> {
    (0u16..32, 0u16..32, 0u16..32).prop_map(|(d, s1, s2)| {
        MicroOp::alu(0x400, ArchReg::int(d), [Some(ArchReg::int(s1)), Some(ArchReg::int(s2))])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every renamed μop consumes exactly one free register, and each
    /// commit-release returns exactly one; totals are conserved.
    #[test]
    fn free_list_conservation(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut r = Renamer::new(100, 40);
        let initial = r.free_count(RegClass::Int);
        let mut renamed = Vec::new();
        for op in &ops {
            match r.rename(op) {
                Ok(ren) => renamed.push(ren),
                Err(_) => break,
            }
        }
        prop_assert_eq!(r.free_count(RegClass::Int), initial - renamed.len());
        // Commit them all: each frees its previous mapping.
        for ren in &renamed {
            r.release(ren.prev_dst.expect("alu writes"));
        }
        prop_assert_eq!(r.free_count(RegClass::Int), initial);
    }

    /// Renaming then rolling back in reverse order restores every
    /// architectural mapping and the free list.
    #[test]
    fn rollback_round_trips(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut r = Renamer::new(100, 40);
        let before: Vec<_> = (0..32).map(|i| r.mapping(ArchReg::int(i))).collect();
        let free_before = r.free_count(RegClass::Int);

        let mut done = Vec::new();
        for op in &ops {
            match r.rename(op) {
                Ok(ren) => done.push((op.dst, ren)),
                Err(_) => break,
            }
        }
        for (dst, ren) in done.iter().rev() {
            r.rollback(*dst, ren);
        }
        for (i, want) in before.iter().enumerate() {
            prop_assert_eq!(r.mapping(ArchReg::int(i as u16)), *want);
        }
        prop_assert_eq!(r.free_count(RegClass::Int), free_before);
    }

    /// Reads always see the most recent writer's tag (true dependences
    /// preserved through renaming).
    #[test]
    fn raw_dependences_preserved(writes in proptest::collection::vec(0u16..8, 2..40)) {
        let mut r = Renamer::new(100, 40);
        let mut last_tag = std::collections::HashMap::new();
        for (i, d) in writes.iter().enumerate() {
            let src = writes[i.saturating_sub(1)];
            let op = MicroOp::alu(0, ArchReg::int(*d), [Some(ArchReg::int(src)), None]);
            let ren = r.rename(&op).expect("enough regs");
            if let Some(&expected) = last_tag.get(&src) {
                prop_assert_eq!(ren.srcs[0], Some(expected));
            }
            last_tag.insert(*d, ren.dst.expect("alu writes"));
        }
    }
}
