//! Property tests for register renaming: physical registers are
//! conserved, and rollback exactly undoes rename. Randomized inputs are
//! driven by the in-repo deterministic [`Rng64`] (many seeded cases per
//! property, replacing the former proptest strategies).

use ballerino_frontend::Renamer;
use ballerino_isa::rng::Rng64;
use ballerino_isa::{ArchReg, MicroOp, RegClass};

fn arb_op(rng: &mut Rng64) -> MicroOp {
    let d = rng.below(32) as u16;
    let s1 = rng.below(32) as u16;
    let s2 = rng.below(32) as u16;
    MicroOp::alu(
        0x400,
        ArchReg::int(d),
        [Some(ArchReg::int(s1)), Some(ArchReg::int(s2))],
    )
}

fn arb_ops(rng: &mut Rng64, max: usize) -> Vec<MicroOp> {
    let n = rng.index(max) + 1;
    (0..n).map(|_| arb_op(rng)).collect()
}

/// Every renamed μop consumes exactly one free register, and each
/// commit-release returns exactly one; totals are conserved.
#[test]
fn free_list_conservation() {
    for case in 0..256u64 {
        let mut rng = Rng64::new(0x5EED_0001 + case);
        let ops = arb_ops(&mut rng, 60);
        let mut r = Renamer::new(100, 40);
        let initial = r.free_count(RegClass::Int);
        let mut renamed = Vec::new();
        for op in &ops {
            match r.rename(op) {
                Ok(ren) => renamed.push(ren),
                Err(_) => break,
            }
        }
        assert_eq!(r.free_count(RegClass::Int), initial - renamed.len());
        // Commit them all: each frees its previous mapping.
        for ren in &renamed {
            r.release(ren.prev_dst.expect("alu writes"));
        }
        assert_eq!(r.free_count(RegClass::Int), initial);
    }
}

/// Renaming then rolling back in reverse order restores every
/// architectural mapping and the free list.
#[test]
fn rollback_round_trips() {
    for case in 0..256u64 {
        let mut rng = Rng64::new(0x5EED_0002 + case);
        let ops = arb_ops(&mut rng, 60);
        let mut r = Renamer::new(100, 40);
        let before: Vec<_> = (0..32).map(|i| r.mapping(ArchReg::int(i))).collect();
        let free_before = r.free_count(RegClass::Int);

        let mut done = Vec::new();
        for op in &ops {
            match r.rename(op) {
                Ok(ren) => done.push((op.dst, ren)),
                Err(_) => break,
            }
        }
        for (dst, ren) in done.iter().rev() {
            r.rollback(*dst, ren);
        }
        for (i, want) in before.iter().enumerate() {
            assert_eq!(r.mapping(ArchReg::int(i as u16)), *want);
        }
        assert_eq!(r.free_count(RegClass::Int), free_before);
    }
}

/// Reads always see the most recent writer's tag (true dependences
/// preserved through renaming).
#[test]
fn raw_dependences_preserved() {
    for case in 0..256u64 {
        let mut rng = Rng64::new(0x5EED_0003 + case);
        let n = rng.index(38) + 2;
        let writes: Vec<u16> = (0..n).map(|_| rng.below(8) as u16).collect();
        let mut r = Renamer::new(100, 40);
        let mut last_tag = std::collections::HashMap::new();
        for (i, d) in writes.iter().enumerate() {
            let src = writes[i.saturating_sub(1)];
            let op = MicroOp::alu(0, ArchReg::int(*d), [Some(ArchReg::int(src)), None]);
            let ren = r.rename(&op).expect("enough regs");
            if let Some(&expected) = last_tag.get(&src) {
                assert_eq!(ren.srcs[0], Some(expected));
            }
            last_tag.insert(*d, ren.dst.expect("alu writes"));
        }
    }
}
