//! Property tests for `TraceCache` DAG pre-resolution.
//!
//! The macro-step engine trusts [`TraceDag`] to equal what the per-cycle
//! pipeline would discover incrementally at rename time. These tests
//! re-derive the dependence structure with an **independent oracle** — a
//! per-op backward scan over program order, the textbook definition of
//! "youngest older producer" — and check the pre-resolved edges,
//! inverted consumer lists, latencies, port classes, and line-cross
//! flags against it, over both real workload traces and fully
//! randomized μop streams.

use ballerino_isa::rng::Rng64;
use ballerino_isa::{ArchReg, MicroOp, OpClass, Trace, TraceDag, ICACHE_LINE_BYTES};
use ballerino_workloads::{workload, workload_names, TraceCache};

/// Oracle: the producer of `trace[idx]`'s source slot `slot`, found by
/// scanning backwards per op — O(n^2), structurally unlike the
/// last-writer map the resolver uses.
fn oracle_producer(trace: &Trace, idx: usize, slot: usize) -> Option<u32> {
    let src = trace.ops[idx].srcs[slot]?;
    for older in (0..idx).rev() {
        if trace.ops[older].dst == Some(src) {
            return Some(older as u32);
        }
    }
    None
}

fn check_dag_matches_oracle(trace: &Trace, dag: &TraceDag) {
    assert_eq!(dag.len(), trace.len());
    let mut oracle_edges = Vec::new();
    let mut prev_line = u64::MAX;
    for idx in 0..trace.len() {
        let op = &trace.ops[idx];
        let dop = dag.op(idx);
        for slot in 0..2 {
            let expect = oracle_producer(trace, idx, slot);
            assert_eq!(
                dop.producers[slot], expect,
                "{}: op {idx} slot {slot} producer",
                trace.name
            );
            if let Some(p) = expect {
                oracle_edges.push((p, idx as u32));
            }
        }
        assert_eq!(dop.class, op.class);
        assert_eq!(dop.exec_latency, op.class.exec_latency());
        assert_eq!(
            dop.fu,
            ballerino_isa::FuKind::for_class(op.class),
            "{}: op {idx} port class",
            trace.name
        );
        assert_eq!(dop.num_srcs as usize, op.num_srcs());
        assert_eq!(dop.has_dst, op.dst.is_some());
        let line = op.pc / ICACHE_LINE_BYTES;
        assert_eq!(
            dop.line_cross,
            line != prev_line,
            "{}: op {idx} line_cross",
            trace.name
        );
        prev_line = line;
    }
    // The CSR consumer lists must be exactly the oracle edge set,
    // ascending within each producer row.
    let mut dag_edges = Vec::new();
    for p in 0..dag.len() {
        let row = dag.consumers_of(p);
        for w in row.windows(2) {
            assert!(w[0] <= w[1], "consumer row {p} not ascending");
        }
        for &c in row {
            dag_edges.push((p as u32, c));
        }
    }
    oracle_edges.sort_unstable();
    dag_edges.sort_unstable();
    assert_eq!(dag_edges, oracle_edges, "{}: edge sets differ", trace.name);
    assert_eq!(dag.num_edges(), oracle_edges.len());
}

/// Fully random μop stream: random classes, register slots, pcs (so
/// line_cross exercises forward and backward pc jumps), including ops
/// with no sources and no destination.
fn random_trace(n: usize, seed: u64) -> Trace {
    let mut rng = Rng64::new(seed);
    let mut t = Trace::new(format!("random_{seed}"));
    let mut pc = 0x1000u64;
    for _ in 0..n {
        let r = |rng: &mut Rng64| -> Option<ArchReg> {
            match rng.below(3) {
                0 => None,
                1 => Some(ArchReg::int(rng.index(32) as u16)),
                _ => Some(ArchReg::fp(rng.index(32) as u16)),
            }
        };
        let dst_int = ArchReg::int(rng.index(32) as u16);
        let op = match rng.below(6) {
            0 => MicroOp::alu(pc, dst_int, [r(&mut rng), r(&mut rng)]),
            1 => {
                let class = [
                    OpClass::IntMul,
                    OpClass::IntDiv,
                    OpClass::FpAdd,
                    OpClass::FpMul,
                    OpClass::FpDiv,
                ][rng.index(5)];
                let dst = if class.is_fp() {
                    ArchReg::fp(rng.index(32) as u16)
                } else {
                    dst_int
                };
                MicroOp::compute(pc, class, dst, [r(&mut rng), r(&mut rng)])
            }
            2 => MicroOp::load(pc, dst_int, r(&mut rng), rng.below(1 << 20)),
            3 => MicroOp::store(pc, r(&mut rng), r(&mut rng), rng.below(1 << 20)),
            4 => MicroOp::branch(pc, r(&mut rng), rng.below(2) == 0, rng.below(1 << 20)),
            _ => MicroOp::alu(pc, dst_int, [None, None]),
        };
        t.push(op);
        // Mostly sequential pcs with occasional jumps across lines.
        pc = if rng.below(8) == 0 {
            rng.below(1 << 20)
        } else {
            pc + 4
        };
    }
    t
}

#[test]
fn random_streams_match_backward_scan_oracle() {
    for seed in 0..12u64 {
        let n = 50 + (seed as usize) * 37;
        let trace = random_trace(n, 0xDA6_0000 + seed);
        let dag = TraceDag::resolve(&trace);
        check_dag_matches_oracle(&trace, &dag);
    }
}

#[test]
fn workload_traces_match_backward_scan_oracle() {
    for name in workload_names() {
        let trace = workload(name, 400, 42);
        let dag = TraceDag::resolve(&trace);
        check_dag_matches_oracle(&trace, &dag);
    }
}

#[test]
fn cached_dag_equals_direct_resolution() {
    let cache = TraceCache::new();
    let cached = cache.dag("gemm_blocked", 600, 7);
    let direct = TraceDag::resolve(&cache.get("gemm_blocked", 600, 7));
    assert_eq!(cached.len(), direct.len());
    assert_eq!(cached.num_edges(), direct.num_edges());
    for idx in 0..direct.len() {
        assert_eq!(cached.op(idx), direct.op(idx));
        assert_eq!(cached.consumers_of(idx), direct.consumers_of(idx));
    }
}
