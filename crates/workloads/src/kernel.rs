//! The static-kernel trace generator.
//!
//! A [`Kernel`] is a loop body of [`StaticOp`]s. [`Kernel::generate`]
//! unrolls it into a dynamic [`Trace`], maintaining per-chain register
//! state, per-stream address cursors, loop counters and a seeded RNG so
//! the same parameters always produce the same trace.

use ballerino_isa::rng::Rng64;
use ballerino_isa::{ArchReg, MicroOp, OpClass, Trace};

/// Memory access pattern of a load/store stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Access {
    /// Sequential with a byte stride (prefetch-friendly).
    Seq {
        /// Stride in bytes between consecutive accesses.
        stride: i64,
    },
    /// Uniformly random within the working set (prefetch-hostile).
    Rand,
    /// Random, and the load's base register is the *previous load's
    /// destination* — a pointer chase: the next access cannot begin until
    /// the previous one completes.
    Chase,
}

/// Branch outcome behaviour of one static branch site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BranchBehavior {
    /// Loop-closing branch: taken `period-1` times, then not taken.
    Loop {
        /// Loop trip count.
        period: u32,
    },
    /// Taken with the given probability, i.i.d. per execution.
    Biased {
        /// Probability of being taken.
        taken_prob: f64,
    },
    /// 50/50 random (hard for any predictor).
    Random,
}

/// One static μop in the kernel body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StaticOp {
    /// A compute μop extending `chain`'s dependence chain.
    Compute {
        /// Opcode class ([`OpClass::IntAlu`], [`OpClass::FpMul`], ...).
        class: OpClass,
        /// Which chain it belongs to.
        chain: usize,
    },
    /// A compute μop joining two chains (reads both, extends `chain`).
    Merge {
        /// Opcode class.
        class: OpClass,
        /// Destination chain (also first source).
        chain: usize,
        /// Second source chain.
        other: usize,
    },
    /// A load feeding `chain` from the stream with pattern `access`.
    Load {
        /// Destination chain.
        chain: usize,
        /// Address stream pattern.
        access: Access,
    },
    /// A store of `chain`'s current value into its stream.
    Store {
        /// Source chain.
        chain: usize,
        /// Address stream pattern (Chase is not meaningful here).
        access: Access,
    },
    /// A store of `chain`'s value into spill slot `slot` (fixed address).
    SpillStore {
        /// Source chain.
        chain: usize,
        /// Spill slot index.
        slot: usize,
    },
    /// A load from spill slot `slot` into `chain` — together with the
    /// matching [`StaticOp::SpillStore`] this creates a recurring memory
    /// dependence that the store-set MDP learns.
    SpillLoad {
        /// Destination chain.
        chain: usize,
        /// Spill slot index.
        slot: usize,
    },
    /// A conditional branch testing `chain`'s value.
    Branch {
        /// Source chain.
        chain: usize,
        /// Outcome behaviour.
        behavior: BranchBehavior,
    },
    /// An independent constant-producing μop (breaks `chain`'s chain,
    /// starting a fresh one — chain *width* control).
    Reset {
        /// Chain to restart.
        chain: usize,
    },
}

/// Kernel parameters shared by all static ops.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelParams {
    /// Workload name.
    pub name: String,
    /// Working set in bytes (address streams wrap within it).
    pub ws_bytes: u64,
    /// Number of parallel dependence chains (register pressure is capped
    /// at 24 int + 24 fp chains).
    pub chains: usize,
    /// RNG seed; same seed → identical trace.
    pub seed: u64,
}

/// A static kernel: parameters plus the loop body.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Shared parameters.
    pub params: KernelParams,
    /// The loop body, in program order.
    pub body: Vec<StaticOp>,
}

const CODE_BASE: u64 = 0x40_0000;
const DATA_BASE: u64 = 0x1000_0000;
const SPILL_BASE: u64 = 0x7f00_0000;

impl Kernel {
    /// Creates a kernel.
    ///
    /// # Panics
    ///
    /// Panics if the body is empty, a chain index exceeds
    /// `params.chains`, or `params.chains` exceeds 24.
    pub fn new(params: KernelParams, body: Vec<StaticOp>) -> Self {
        assert!(!body.is_empty(), "kernel body must not be empty");
        assert!(params.chains <= 24, "at most 24 chains supported");
        for op in &body {
            let c = match op {
                StaticOp::Compute { chain, .. }
                | StaticOp::Load { chain, .. }
                | StaticOp::Store { chain, .. }
                | StaticOp::SpillStore { chain, .. }
                | StaticOp::SpillLoad { chain, .. }
                | StaticOp::Branch { chain, .. }
                | StaticOp::Reset { chain } => *chain,
                StaticOp::Merge { chain, other, .. } => (*chain).max(*other),
            };
            assert!(c < params.chains, "chain index {c} out of range");
        }
        Kernel { params, body }
    }

    fn int_reg(chain: usize) -> ArchReg {
        ArchReg::int((chain + 1) as u16)
    }

    fn fp_reg(chain: usize) -> ArchReg {
        ArchReg::fp((chain + 1) as u16)
    }

    fn chain_reg(chain: usize, class: OpClass) -> ArchReg {
        if class.is_fp() {
            Self::fp_reg(chain)
        } else {
            Self::int_reg(chain)
        }
    }

    /// Unrolls the kernel into `n` dynamic μops.
    pub fn generate(&self, n: usize) -> Trace {
        let mut rng = Rng64::new(self.params.seed);
        let mut trace = Trace::new(self.params.name.clone());
        let chains = self.params.chains;
        let ws = self.params.ws_bytes.max(64);

        // Per-(static-op) sequential cursors and per-chain last-load class
        // tracking for chase dependences.
        let mut seq_cursor: Vec<u64> = (0..self.body.len())
            .map(|i| (i as u64 * 8_191) % ws)
            .collect();
        let mut loop_count: Vec<u32> = vec![0; self.body.len()];
        // Whether each chain currently flows through fp registers.
        let mut chain_is_fp: Vec<bool> = vec![false; chains];

        while trace.len() < n {
            for (si, op) in self.body.iter().enumerate() {
                if trace.len() >= n {
                    break;
                }
                let pc = CODE_BASE + (si as u64) * 4;
                match *op {
                    StaticOp::Compute { class, chain } => {
                        let src = Self::chain_reg(
                            chain,
                            if chain_is_fp[chain] {
                                OpClass::FpAdd
                            } else {
                                OpClass::IntAlu
                            },
                        );
                        let dst = Self::chain_reg(chain, class);
                        chain_is_fp[chain] = class.is_fp();
                        trace.push(MicroOp::compute(pc, class, dst, [Some(src), None]));
                    }
                    StaticOp::Merge {
                        class,
                        chain,
                        other,
                    } => {
                        let a = Self::chain_reg(
                            chain,
                            if chain_is_fp[chain] {
                                OpClass::FpAdd
                            } else {
                                OpClass::IntAlu
                            },
                        );
                        let b = Self::chain_reg(
                            other,
                            if chain_is_fp[other] {
                                OpClass::FpAdd
                            } else {
                                OpClass::IntAlu
                            },
                        );
                        let dst = Self::chain_reg(chain, class);
                        chain_is_fp[chain] = class.is_fp();
                        trace.push(MicroOp::compute(pc, class, dst, [Some(a), Some(b)]));
                    }
                    StaticOp::Load { chain, access } => {
                        let region = (ws / chains as u64).max(64);
                        let base = DATA_BASE + chain as u64 * region;
                        let addr = match access {
                            Access::Seq { stride } => {
                                let cur = seq_cursor[si];
                                seq_cursor[si] =
                                    (cur as i64 + stride).rem_euclid(region as i64) as u64;
                                base + cur
                            }
                            Access::Rand | Access::Chase => {
                                base + rng.below((region / 8).max(1)) * 8
                            }
                        };
                        let dst = Self::int_reg(chain);
                        let base_reg = match access {
                            // The chase load's address comes from the
                            // chain's own register (the previous load).
                            Access::Chase => Some(Self::int_reg(chain)),
                            _ => Some(ArchReg::int(0)),
                        };
                        chain_is_fp[chain] = false;
                        trace.push(MicroOp::load(pc, dst, base_reg, addr));
                    }
                    StaticOp::Store { chain, access } => {
                        let region = (ws / chains as u64).max(64);
                        let base = DATA_BASE + chain as u64 * region;
                        let addr = match access {
                            Access::Seq { stride } => {
                                let cur = seq_cursor[si];
                                seq_cursor[si] =
                                    (cur as i64 + stride).rem_euclid(region as i64) as u64;
                                base + cur
                            }
                            _ => base + rng.below((region / 8).max(1)) * 8,
                        };
                        let data = Self::chain_reg(
                            chain,
                            if chain_is_fp[chain] {
                                OpClass::FpAdd
                            } else {
                                OpClass::IntAlu
                            },
                        );
                        trace.push(MicroOp::store(pc, Some(data), Some(ArchReg::int(0)), addr));
                    }
                    StaticOp::SpillStore { chain, slot } => {
                        let addr = SPILL_BASE + (slot as u64) * 8;
                        let data = Self::int_reg(chain);
                        trace.push(MicroOp::store(pc, Some(data), Some(ArchReg::int(0)), addr));
                    }
                    StaticOp::SpillLoad { chain, slot } => {
                        let addr = SPILL_BASE + (slot as u64) * 8;
                        let dst = Self::int_reg(chain);
                        chain_is_fp[chain] = false;
                        trace.push(MicroOp::load(pc, dst, Some(ArchReg::int(0)), addr));
                    }
                    StaticOp::Branch { chain, behavior } => {
                        let taken = match behavior {
                            BranchBehavior::Loop { period } => {
                                let c = loop_count[si];
                                loop_count[si] = (c + 1) % period.max(1);
                                c + 1 != period.max(1)
                            }
                            BranchBehavior::Biased { taken_prob } => rng.chance(taken_prob),
                            BranchBehavior::Random => rng.chance(0.5),
                        };
                        let src = Self::chain_reg(
                            chain,
                            if chain_is_fp[chain] {
                                OpClass::FpAdd
                            } else {
                                OpClass::IntAlu
                            },
                        );
                        trace.push(MicroOp::branch(pc, Some(src), taken, CODE_BASE));
                    }
                    StaticOp::Reset { chain } => {
                        let dst = Self::int_reg(chain);
                        chain_is_fp[chain] = false;
                        trace.push(MicroOp::alu(pc, dst, [None, None]));
                    }
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(chains: usize) -> KernelParams {
        KernelParams {
            name: "k".into(),
            ws_bytes: 1 << 20,
            chains,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let k = Kernel::new(
            params(2),
            vec![
                StaticOp::Load {
                    chain: 0,
                    access: Access::Rand,
                },
                StaticOp::Compute {
                    class: OpClass::IntAlu,
                    chain: 0,
                },
                StaticOp::Branch {
                    chain: 0,
                    behavior: BranchBehavior::Biased { taken_prob: 0.9 },
                },
            ],
        );
        let a = k.generate(1000);
        let b = k.generate(1000);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn pcs_recur_across_iterations() {
        let k = Kernel::new(
            params(1),
            vec![
                StaticOp::Load {
                    chain: 0,
                    access: Access::Seq { stride: 64 },
                },
                StaticOp::Compute {
                    class: OpClass::IntAlu,
                    chain: 0,
                },
            ],
        );
        let t = k.generate(10);
        assert_eq!(t.ops[0].pc, t.ops[2].pc);
        assert_eq!(t.ops[1].pc, t.ops[3].pc);
    }

    #[test]
    fn seq_loads_have_constant_stride() {
        let k = Kernel::new(
            params(1),
            vec![StaticOp::Load {
                chain: 0,
                access: Access::Seq { stride: 64 },
            }],
        );
        let t = k.generate(5);
        let addrs: Vec<u64> = t.ops.iter().map(|o| o.mem.unwrap().addr).collect();
        assert_eq!(addrs[1] - addrs[0], 64);
        assert_eq!(addrs[2] - addrs[1], 64);
    }

    #[test]
    fn chase_load_reads_own_chain_register() {
        let k = Kernel::new(
            params(1),
            vec![StaticOp::Load {
                chain: 0,
                access: Access::Chase,
            }],
        );
        let t = k.generate(2);
        let op = &t.ops[1];
        assert_eq!(
            op.srcs[0], op.dst,
            "chase load's base must be the prior load's dest"
        );
    }

    #[test]
    fn spill_pair_shares_address() {
        let k = Kernel::new(
            params(2),
            vec![
                StaticOp::SpillStore { chain: 0, slot: 3 },
                StaticOp::Compute {
                    class: OpClass::IntAlu,
                    chain: 1,
                },
                StaticOp::SpillLoad { chain: 0, slot: 3 },
            ],
        );
        let t = k.generate(3);
        assert_eq!(t.ops[0].mem.unwrap().addr, t.ops[2].mem.unwrap().addr);
        assert!(t.ops[0].is_store());
        assert!(t.ops[2].is_load());
    }

    #[test]
    fn loop_branch_is_periodic() {
        let k = Kernel::new(
            params(1),
            vec![StaticOp::Branch {
                chain: 0,
                behavior: BranchBehavior::Loop { period: 4 },
            }],
        );
        let t = k.generate(8);
        let outcomes: Vec<bool> = t.ops.iter().map(|o| o.branch.unwrap().taken).collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn chains_use_disjoint_registers() {
        let k = Kernel::new(
            params(3),
            vec![
                StaticOp::Compute {
                    class: OpClass::IntAlu,
                    chain: 0,
                },
                StaticOp::Compute {
                    class: OpClass::IntAlu,
                    chain: 1,
                },
                StaticOp::Compute {
                    class: OpClass::IntAlu,
                    chain: 2,
                },
            ],
        );
        let t = k.generate(3);
        let dsts: Vec<_> = t.ops.iter().map(|o| o.dst.unwrap()).collect();
        assert_ne!(dsts[0], dsts[1]);
        assert_ne!(dsts[1], dsts[2]);
    }

    #[test]
    fn working_set_bounds_addresses() {
        let p = KernelParams {
            ws_bytes: 4096,
            ..params(1)
        };
        let k = Kernel::new(
            p,
            vec![StaticOp::Load {
                chain: 0,
                access: Access::Rand,
            }],
        );
        let t = k.generate(500);
        for op in &t.ops {
            let a = op.mem.unwrap().addr;
            assert!(
                (DATA_BASE..DATA_BASE + 4096).contains(&a),
                "addr {a:#x} outside WS"
            );
        }
    }

    #[test]
    #[should_panic(expected = "chain index")]
    fn out_of_range_chain_panics() {
        let _ = Kernel::new(
            params(1),
            vec![StaticOp::Compute {
                class: OpClass::IntAlu,
                chain: 3,
            }],
        );
    }

    #[test]
    fn fp_compute_switches_chain_to_fp_registers() {
        let k = Kernel::new(
            params(1),
            vec![
                StaticOp::Compute {
                    class: OpClass::FpMul,
                    chain: 0,
                },
                StaticOp::Compute {
                    class: OpClass::FpAdd,
                    chain: 0,
                },
            ],
        );
        let t = k.generate(2);
        assert!(t.ops[1].srcs[0].unwrap().class() == ballerino_isa::RegClass::Fp);
    }
}
