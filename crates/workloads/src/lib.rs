//! # ballerino-workloads
//!
//! Deterministic synthetic workload generators standing in for the
//! paper's SPEC CPU2006/2017 SimPoint regions.
//!
//! Each workload is a **static kernel** — a loop body of static μops with
//! fixed PCs — unrolled dynamically with per-iteration memory addresses
//! and branch outcomes. Static PCs recur across iterations exactly as in
//! real loops, so the TAGE predictor, the stride prefetcher and the
//! store-set MDP all train the way they would on real code.
//!
//! The suite spans the behaviour space that differentiates the paper's
//! schedulers: dependence-chain width and depth (ILP), load-miss level
//! (MLP and cache-miss tolerance), branch predictability, memory
//! dependences through spill slots, and FU mix.
//!
//! # Examples
//!
//! ```
//! use ballerino_workloads::suite;
//! let traces = suite(10_000, 42);
//! assert_eq!(traces.len(), 15);
//! assert!(traces.iter().all(|t| t.len() >= 10_000));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod kernel;
pub mod suite;

pub use cache::{cached_dag, cached_features, cached_workload, TraceCache};
pub use kernel::{Access, BranchBehavior, Kernel, KernelParams, StaticOp};
pub use suite::{suite, workload, workload_names};
