//! [`TraceCache`]: a process-wide memoizing cache of generated traces.
//!
//! Workload generation is deterministic in `(name, n, seed)`, yet the
//! seed harness regenerated the same trace once per machine kind — the
//! Fig. 11 matrix (7 kinds × 15 workloads) paid for 105 generations of
//! 15 distinct traces, and `fig11_performance` (which also runs the
//! `InO` baseline) paid 8× per workload. The cache hands out `Arc<Trace>`
//! clones so every `(name, n, seed)` is generated exactly once per
//! process no matter how many runner threads ask for it.
//!
//! Generation happens *outside* the map lock: each key owns a
//! `OnceLock` slot, so two threads racing on the same workload block
//! only each other (one generates, the other waits on the slot), while
//! requests for different workloads proceed concurrently.

use crate::suite::workload;
use ballerino_isa::{MemGeometry, Trace, TraceDag, TraceFeatures};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

type Key = (String, usize, u64);
type Slot = Arc<OnceLock<Arc<Trace>>>;
type DagSlot = Arc<OnceLock<Arc<TraceDag>>>;
type FeatSlot = Arc<OnceLock<Arc<TraceFeatures>>>;

/// A memoizing trace cache keyed by `(workload name, n, seed)`.
///
/// Besides the traces themselves, the cache memoizes each trace's
/// pre-resolved dependence/latency [`TraceDag`] (see
/// [`TraceCache::dag`]) so the macro-step engine's one-time O(n)
/// resolution is also paid once per `(name, n, seed)` per process.
#[derive(Debug, Default)]
pub struct TraceCache {
    slots: Mutex<HashMap<Key, Slot>>,
    dag_slots: Mutex<HashMap<Key, DagSlot>>,
    feat_slots: Mutex<HashMap<Key, FeatSlot>>,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// Returns the trace for `(name, n, seed)`, generating it on first
    /// use. Repeated calls return clones of the same `Arc`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name, like
    /// [`workload`].
    pub fn get(&self, name: &str, n: usize, seed: u64) -> Arc<Trace> {
        let slot = {
            let mut slots = self.slots.lock().expect("trace cache poisoned");
            match slots.get(&(name.to_string(), n, seed)) {
                Some(s) => Arc::clone(s),
                None => {
                    let s = Slot::default();
                    slots.insert((name.to_string(), n, seed), Arc::clone(&s));
                    s
                }
            }
        };
        // The map lock is released; the winner generates while losers
        // block on this slot only.
        Arc::clone(slot.get_or_init(|| Arc::new(workload(name, n, seed))))
    }

    /// Returns the pre-resolved dependence/latency DAG for
    /// `(name, n, seed)`, resolving it on first use (generating the
    /// trace too if needed). Repeated calls return clones of the same
    /// `Arc`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name, like
    /// [`workload`].
    pub fn dag(&self, name: &str, n: usize, seed: u64) -> Arc<TraceDag> {
        let slot = {
            let mut slots = self.dag_slots.lock().expect("dag cache poisoned");
            match slots.get(&(name.to_string(), n, seed)) {
                Some(s) => Arc::clone(s),
                None => {
                    let s = DagSlot::default();
                    slots.insert((name.to_string(), n, seed), Arc::clone(&s));
                    s
                }
            }
        };
        // As with traces: the winner resolves outside the map lock.
        Arc::clone(slot.get_or_init(|| Arc::new(TraceDag::resolve(&self.get(name, n, seed)))))
    }

    /// Returns the static [`TraceFeatures`] for `(name, n, seed)` — the
    /// tier-0 estimator's per-trace inputs (memory-level classification,
    /// misprediction estimate, store→load deps, FU work) — extracting
    /// them on first use with the default Table I cache geometry.
    /// Repeated calls return clones of the same `Arc`, so a sweep over
    /// thousands of design points pays the `O(n log n)` extraction once
    /// per `(name, n, seed)` per process.
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name, like
    /// [`workload`].
    pub fn features(&self, name: &str, n: usize, seed: u64) -> Arc<TraceFeatures> {
        let slot = {
            let mut slots = self.feat_slots.lock().expect("feature cache poisoned");
            match slots.get(&(name.to_string(), n, seed)) {
                Some(s) => Arc::clone(s),
                None => {
                    let s = FeatSlot::default();
                    slots.insert((name.to_string(), n, seed), Arc::clone(&s));
                    s
                }
            }
        };
        // As with traces and DAGs: the winner extracts outside the map
        // lock, losers block on this slot only.
        Arc::clone(slot.get_or_init(|| {
            let trace = self.get(name, n, seed);
            let dag = self.dag(name, n, seed);
            Arc::new(TraceFeatures::extract(
                &trace,
                &dag,
                &MemGeometry::default(),
            ))
        }))
    }

    /// Number of traces generated so far.
    pub fn len(&self) -> usize {
        let slots = self.slots.lock().expect("trace cache poisoned");
        slots.values().filter(|s| s.get().is_some()).count()
    }

    /// Whether no trace has been generated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide cache used by the bench harness and fig binaries.
pub fn global() -> &'static TraceCache {
    static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
    GLOBAL.get_or_init(TraceCache::new)
}

/// Cached variant of [`workload`]: same trace, shared
/// through the process-wide [`TraceCache`].
pub fn cached_workload(name: &str, n: usize, seed: u64) -> Arc<Trace> {
    global().get(name, n, seed)
}

/// Cached pre-resolved DAG for a workload, shared through the
/// process-wide [`TraceCache`].
pub fn cached_dag(name: &str, n: usize, seed: u64) -> Arc<TraceDag> {
    global().dag(name, n, seed)
}

/// Cached static trace features for a workload, shared through the
/// process-wide [`TraceCache`].
pub fn cached_features(name: &str, n: usize, seed: u64) -> Arc<TraceFeatures> {
    global().features(name, n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_same_allocation() {
        let cache = TraceCache::new();
        let a = cache.get("int_crunch", 500, 42);
        let b = cache.get("int_crunch", 500, 42);
        assert!(Arc::ptr_eq(&a, &b), "cache must hand out the same Arc");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_traces() {
        let cache = TraceCache::new();
        let a = cache.get("int_crunch", 500, 42);
        let b = cache.get("int_crunch", 500, 43);
        let c = cache.get("hash_join", 500, 42);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn cached_trace_matches_direct_generation() {
        let cache = TraceCache::new();
        let cached = cache.get("pointer_chase", 400, 7);
        let direct = workload("pointer_chase", 400, 7);
        assert_eq!(cached.len(), direct.len());
        for (a, b) in cached.ops.iter().zip(direct.ops.iter()) {
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.class, b.class);
        }
    }

    #[test]
    fn features_are_memoized_and_sized_like_the_trace() {
        let cache = TraceCache::new();
        let fa = cache.features("hash_join", 400, 42);
        let fb = cache.features("hash_join", 400, 42);
        assert!(Arc::ptr_eq(&fa, &fb), "features must be extracted once");
        let trace = cache.get("hash_join", 400, 42);
        assert_eq!(fa.len(), trace.len());
        assert!(fa.loads > 0);
        assert_eq!(cache.len(), 1, "features() reuses the cached trace");
    }

    #[test]
    fn dag_is_memoized_and_matches_trace() {
        let cache = TraceCache::new();
        let dag_a = cache.dag("int_crunch", 500, 42);
        let dag_b = cache.dag("int_crunch", 500, 42);
        assert!(Arc::ptr_eq(&dag_a, &dag_b), "dag must be resolved once");
        let trace = cache.get("int_crunch", 500, 42);
        assert_eq!(dag_a.len(), trace.len());
        assert_eq!(cache.len(), 1, "dag() reuses the cached trace");
    }

    #[test]
    fn concurrent_requests_generate_once() {
        let cache = Arc::new(TraceCache::new());
        let traces: Vec<_> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    s.spawn(move || cache.get("gemm_blocked", 600, 42))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(cache.len(), 1);
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t));
        }
    }
}
