//! The 15-workload suite.
//!
//! Each workload targets a distinct region of the behaviour space that
//! separates the paper's schedulers (see DESIGN.md §1 for the
//! substitution rationale):
//!
//! | Workload | Flavor | Stresses |
//! |---|---|---|
//! | `stream_triad` | lbm/libquantum | MLP, prefetching, wide chains |
//! | `pointer_chase` | mcf | serialized misses, cache-miss tolerance |
//! | `gemm_blocked` | cactus/dealII | FP ILP, L1-resident |
//! | `int_crunch` | perlbench | int ILP, moderate chains |
//! | `branchy_sort` | leela | mispredictions, spill M-deps |
//! | `hash_join` | omnetpp-ish | random L3 hits, mixed chains |
//! | `stencil3d` | bwaves | strided FP streams, stores |
//! | `linked_list_sum` | xalancbmk-ish | chase + side compute |
//! | `sparse_spmv` | spmv kernels | indirect gathers, FP reduction |
//! | `compress_lz` | xz | dependent int ops, spills, branches |
//! | `fft_butterfly` | fft kernels | FP, power-of-two strides |
//! | `mixed_media` | x264 | mixed FU, divides |
//! | `graph_bfs` | bfs kernels | random DRAM, branches |
//! | `matrix_transpose` | transpose | conflict-prone strided stores |
//! | `object_update` | xalancbmk-ish | late producer stores, M-dep pressure |

use crate::kernel::{Access, BranchBehavior, Kernel, KernelParams, StaticOp};
use ballerino_isa::{OpClass, Trace};

use Access::{Chase, Rand, Seq};
use BranchBehavior::{Biased, Loop};
use OpClass::{FpAdd, FpMul, IntAlu, IntDiv, IntMul};

fn k(name: &str, ws: u64, chains: usize, seed: u64, body: Vec<StaticOp>) -> Kernel {
    Kernel::new(
        KernelParams {
            name: name.to_string(),
            ws_bytes: ws,
            chains,
            seed,
        },
        body,
    )
}

fn compute(chain: usize, class: OpClass) -> StaticOp {
    StaticOp::Compute { class, chain }
}

fn load(chain: usize, access: Access) -> StaticOp {
    StaticOp::Load { chain, access }
}

fn store(chain: usize, access: Access) -> StaticOp {
    StaticOp::Store { chain, access }
}

fn branch(chain: usize, behavior: BranchBehavior) -> StaticOp {
    StaticOp::Branch { chain, behavior }
}

/// A block of short, ready-at-dispatch chains (loop-induction and address
/// computation work): each restarts from an immediate and runs two ALU
/// ops. Real code is full of these — they are exactly the μops that make
/// CES allocate (and stall on) P-IQs uselessly (Fig. 4) and that the
/// S-IQ filters out.
fn induction_block(body: &mut Vec<StaticOp>, chains: std::ops::Range<usize>) {
    for c in chains {
        body.push(StaticOp::Reset { chain: c });
        body.push(compute(c, IntAlu));
        body.push(compute(c, IntAlu));
    }
}

/// Names of the suite's workloads, in canonical order.
pub fn workload_names() -> Vec<&'static str> {
    vec![
        "stream_triad",
        "pointer_chase",
        "gemm_blocked",
        "int_crunch",
        "branchy_sort",
        "hash_join",
        "stencil3d",
        "linked_list_sum",
        "sparse_spmv",
        "compress_lz",
        "fft_butterfly",
        "mixed_media",
        "graph_bfs",
        "matrix_transpose",
        "object_update",
    ]
}

/// Builds one named workload trace of `n` μops.
///
/// # Panics
///
/// Panics on an unknown workload name (see [`workload_names`]).
pub fn workload(name: &str, n: usize, seed: u64) -> Trace {
    let kernel = match name {
        // Streaming FP triad over a DRAM-sized set: wide independent
        // chains, sequential loads (prefetchable), regular loop branches.
        "stream_triad" => {
            let mut body = Vec::new();
            for c in 0..6 {
                body.push(load(c, Seq { stride: 64 }));
                body.push(compute(c, FpMul));
                body.push(compute(c, FpAdd));
                if c % 2 == 0 {
                    body.push(store(c, Seq { stride: 64 }));
                }
            }
            body.push(branch(0, Loop { period: 64 }));
            k("stream_triad", 24 << 20, 6, seed, body)
        }
        // Dependent loads over a DRAM-sized set: almost no ILP, MLP only
        // from two interleaved chase chains; classic mcf behaviour.
        "pointer_chase" => {
            let mut body = Vec::new();
            for c in 0..2 {
                body.push(load(c, Chase));
                body.push(compute(c, IntAlu));
                body.push(load(c, Chase));
                body.push(compute(c, IntAlu));
            }
            body.push(branch(0, Biased { taken_prob: 0.92 }));
            k("pointer_chase", 48 << 20, 2, seed, body)
        }
        // L1-resident blocked GEMM: abundant FP ILP, perfect branches.
        "gemm_blocked" => {
            let mut body = Vec::new();
            for c in 0..12 {
                body.push(load(c, Seq { stride: 8 }));
                body.push(compute(c, FpMul));
                body.push(compute(c, FpAdd));
                body.push(compute(c, FpAdd));
            }
            induction_block(&mut body, 0..3);
            body.push(branch(0, Loop { period: 32 }));
            k("gemm_blocked", 24 << 10, 12, seed, body)
        }
        // Integer-heavy, built from *short* dependence chains that
        // restart every iteration (the paper's "wide and shallow" DC
        // shape, §III-C): half start at a ready immediate, half at a
        // ready-address load.
        "int_crunch" => {
            let mut body = Vec::new();
            for c in 0..10 {
                if c % 2 == 0 {
                    body.push(load(c, Rand));
                } else {
                    body.push(StaticOp::Reset { chain: c });
                }
                body.push(compute(c, IntAlu));
                body.push(compute(c, IntAlu));
                if c % 3 == 0 {
                    body.push(compute(c, IntMul));
                }
                body.push(compute(c, IntAlu));
            }
            // Register-pressure spills: store a live value, reload it a
            // few ops later — a recurring M-dependence for the MDP/MDA.
            body.push(StaticOp::SpillStore { chain: 0, slot: 16 });
            body.push(compute(1, IntAlu));
            body.push(compute(2, IntAlu));
            body.push(StaticOp::SpillLoad { chain: 0, slot: 16 });
            body.push(StaticOp::SpillStore { chain: 3, slot: 17 });
            body.push(compute(4, IntAlu));
            body.push(StaticOp::SpillLoad { chain: 3, slot: 17 });
            induction_block(&mut body, 5..9);
            body.push(branch(1, Biased { taken_prob: 0.9 }));
            body.push(branch(2, Loop { period: 16 }));
            k("int_crunch", 16 << 10, 10, seed, body)
        }
        // Sorting-like: hard (but not random) branches, L2-resident
        // random access, spill pairs (swap) creating recurring memory
        // dependences that train the MDP.
        "branchy_sort" => {
            let mut body = Vec::new();
            for c in 0..3 {
                body.push(load(c, Chase));
                body.push(compute(c, IntAlu));
                body.push(compute(c, IntAlu));
                body.push(branch(c, Biased { taken_prob: 0.82 }));
                body.push(compute(c, IntAlu));
                body.push(branch(c, Loop { period: 12 }));
            }
            // Swap through memory: the spilled values come from short
            // ready chains (as register-pressure spills do), so the store
            // issues promptly; the reload is the recurring M-dependence.
            for (j, c) in [(0usize, 3usize), (1, 4)] {
                body.push(StaticOp::Reset { chain: c });
                body.push(compute(c, IntAlu));
                body.push(StaticOp::SpillStore { chain: c, slot: j });
                body.push(compute(c, IntAlu));
                body.push(StaticOp::SpillLoad { chain: c, slot: j });
                body.push(compute(c, IntAlu));
            }
            induction_block(&mut body, 0..2);
            k("branchy_sort", 96 << 10, 5, seed, body)
        }
        // Hash join probes: random accesses spanning L2/L3, with real
        // hashing work per probe — latency-bound, not bandwidth-bound.
        "hash_join" => {
            let mut body = Vec::new();
            for c in 0..6 {
                body.push(compute(c, IntAlu));
                body.push(compute(c, IntMul));
                body.push(compute(c, IntAlu));
                // The probe's address is the computed hash: an
                // AGI-dependent (indirect) load.
                body.push(load(c, Chase));
                body.push(compute(c, IntAlu));
                body.push(compute(c, IntAlu));
                body.push(branch(c, Biased { taken_prob: 0.9 }));
            }
            body.push(StaticOp::SpillStore { chain: 0, slot: 24 });
            body.push(compute(1, IntAlu));
            body.push(StaticOp::SpillLoad { chain: 0, slot: 24 });
            induction_block(&mut body, 2..5);
            k("hash_join", 640 << 10, 6, seed, body)
        }
        // 3D stencil: several strided FP streams, stores every iteration.
        "stencil3d" => {
            let mut body = Vec::new();
            let strides = [64i64, 512, 4096];
            for c in 0..6 {
                body.push(load(
                    c,
                    Seq {
                        stride: strides[c % 3],
                    },
                ));
                body.push(compute(c, FpAdd));
                body.push(compute(c, FpMul));
            }
            body.push(StaticOp::Merge {
                class: FpAdd,
                chain: 0,
                other: 1,
            });
            body.push(StaticOp::Merge {
                class: FpAdd,
                chain: 2,
                other: 3,
            });
            body.push(store(0, Seq { stride: 64 }));
            body.push(branch(0, Loop { period: 48 }));
            k("stencil3d", 1 << 20, 6, seed, body)
        }
        // One pointer chase in the L2 plus abundant independent ALU side
        // work: in-order cores block on the chase; dynamic schedulers run
        // the side chains underneath it.
        "linked_list_sum" => {
            let mut body = Vec::new();
            body.push(load(0, Chase));
            body.push(compute(0, IntAlu));
            for c in 1..6 {
                body.push(StaticOp::Reset { chain: c });
                body.push(compute(c, IntAlu));
                body.push(compute(c, IntAlu));
                body.push(compute(c, IntMul));
                body.push(compute(c, IntAlu));
            }
            body.push(StaticOp::Merge {
                class: IntAlu,
                chain: 1,
                other: 2,
            });
            body.push(StaticOp::Merge {
                class: IntAlu,
                chain: 3,
                other: 4,
            });
            body.push(branch(0, Loop { period: 128 }));
            k("linked_list_sum", 96 << 10, 6, seed, body)
        }
        // SpMV: sequential index loads + random value gathers + FP sum.
        "sparse_spmv" => {
            let mut body = Vec::new();
            for c in 0..6 {
                body.push(load(c, Seq { stride: 8 })); // column index
                body.push(load(c, Chase)); // value gathered at the index
                body.push(compute(c, FpMul));
                body.push(compute(c, FpAdd));
            }
            body.push(branch(0, Loop { period: 24 }));
            k("sparse_spmv", 1536 << 10, 6, seed, body)
        }
        // LZ-style compression: tightly dependent ints, frequent spills,
        // mispredicted match branches, small working set.
        "compress_lz" => {
            let mut body = Vec::new();
            for c in 0..2 {
                body.push(load(c, Rand));
                body.push(compute(c, IntAlu));
                body.push(compute(c, IntAlu));
                body.push(branch(c, Biased { taken_prob: 0.8 }));
                body.push(compute(c, IntAlu));
                body.push(branch(c, Biased { taken_prob: 0.85 }));
            }
            // Dictionary updates through memory from short ready chains.
            for (j, c) in [(8usize, 2usize), (9, 3)] {
                body.push(StaticOp::Reset { chain: c });
                body.push(compute(c, IntAlu));
                body.push(StaticOp::SpillStore { chain: c, slot: j });
                body.push(compute(c, IntAlu));
                body.push(StaticOp::SpillLoad { chain: c, slot: j });
                body.push(compute(c, IntAlu));
            }
            induction_block(&mut body, 0..2);
            k("compress_lz", 56 << 10, 4, seed, body)
        }
        // FFT butterflies: FP mul/add pairs over power-of-two strides.
        "fft_butterfly" => {
            let mut body = Vec::new();
            let strides = [64i64, 128, 256, 512];
            for (c, &stride) in strides.iter().enumerate() {
                body.push(load(c, Seq { stride }));
                body.push(compute(c, FpMul));
                body.push(compute(c, FpAdd));
                body.push(store(c, Seq { stride }));
            }
            body.push(branch(0, Loop { period: 16 }));
            k("fft_butterfly", 224 << 10, 4, seed, body)
        }
        // Media-ish mix: int and fp, occasional divides, biased branches.
        "mixed_media" => {
            let mut body = Vec::new();
            for c in 0..6 {
                body.push(load(c, Seq { stride: 16 }));
                body.push(compute(c, IntAlu));
                body.push(compute(c, if c == 0 { IntDiv } else { IntMul }));
                body.push(compute(c, FpAdd));
                body.push(branch(c, Biased { taken_prob: 0.88 }));
            }
            body.push(store(1, Seq { stride: 16 }));
            body.push(StaticOp::SpillStore { chain: 2, slot: 20 });
            body.push(compute(3, IntAlu));
            body.push(StaticOp::SpillLoad { chain: 2, slot: 20 });
            induction_block(&mut body, 4..6);
            k("mixed_media", 640 << 10, 6, seed, body)
        }
        // BFS frontier expansion: random DRAM loads with independent
        // per-vertex work — pure MLP differentiation.
        "graph_bfs" => {
            let mut body = Vec::new();
            for c in 0..10 {
                if c % 2 == 0 {
                    body.push(load(c, Rand)); // frontier array (index-ready)
                } else {
                    body.push(load(c, Chase)); // neighbor list (indirect)
                }
                body.push(compute(c, IntAlu));
                body.push(compute(c, IntAlu));
                body.push(branch(c, Biased { taken_prob: 0.92 }));
            }
            k("graph_bfs", 24 << 20, 10, seed, body)
        }
        // Transpose: unit-stride loads, large-stride stores.
        "matrix_transpose" => {
            let mut body = Vec::new();
            for c in 0..4 {
                body.push(load(c, Seq { stride: 64 }));
                body.push(compute(c, IntAlu));
                body.push(store(c, Seq { stride: 8192 }));
            }
            body.push(branch(0, Loop { period: 64 }));
            k("matrix_transpose", 768 << 10, 4, seed, body)
        }
        // Pointer-heavy object mutation (xalancbmk-flavored): each chain
        // follows a pointer, computes a field, and *stores it through the
        // pointer chain* — a late-issuing producer store — while an
        // independent reader reloads the field immediately. Exercises the
        // paper's M-dependence machinery hardest: without MDP the reload
        // violates expensively (late detection ⇒ deep flush); with MDP it
        // is held for a long time, and MDA steering keeps the held load
        // from wasting a P-IQ (§III-B).
        "object_update" => {
            let mut body = Vec::new();
            for c in 0..4 {
                body.push(load(c, Chase));
                body.push(compute(c, IntAlu));
                body.push(compute(c, IntAlu));
                body.push(StaticOp::SpillStore {
                    chain: c,
                    slot: 30 + c,
                });
                // Independent reader chain picks the field right back up.
                let rc = 4 + c;
                body.push(StaticOp::Reset { chain: rc });
                body.push(StaticOp::SpillLoad {
                    chain: rc,
                    slot: 30 + c,
                });
                body.push(compute(rc, IntAlu));
                body.push(compute(rc, IntAlu));
            }
            body.push(branch(0, Loop { period: 32 }));
            k("object_update", 384 << 10, 8, seed, body)
        }
        other => panic!("unknown workload {other:?}; see workload_names()"),
    };
    kernel.generate(n)
}

/// Builds the full suite, `n` μops per workload.
pub fn suite(n: usize, seed: u64) -> Vec<Trace> {
    workload_names()
        .into_iter()
        .map(|w| workload(w, n, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_generate() {
        for name in workload_names() {
            let t = workload(name, 2000, 1);
            assert!(t.len() >= 2000, "{name} too short");
            assert_eq!(t.name, name);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite(500, 3);
        let b = suite(500, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ops, y.ops);
        }
    }

    #[test]
    fn different_seeds_differ_for_random_workloads() {
        let a = workload("graph_bfs", 1000, 1);
        let b = workload("graph_bfs", 1000, 2);
        assert_ne!(a.ops, b.ops);
    }

    #[test]
    fn class_mixes_are_distinct() {
        let chase = workload("pointer_chase", 5000, 1).stats();
        let gemm = workload("gemm_blocked", 5000, 1).stats();
        assert!(chase.load_frac() > 0.35, "pointer_chase load-heavy");
        assert!(gemm.fp_ops > gemm.int_ops, "gemm fp-heavy");
    }

    #[test]
    fn branchy_workloads_have_more_branches() {
        let sortish = workload("branchy_sort", 5000, 1).stats();
        let stream = workload("stream_triad", 5000, 1).stats();
        assert!(sortish.branch_frac() > 2.0 * stream.branch_frac());
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_name_panics() {
        let _ = workload("nope", 100, 0);
    }
}
