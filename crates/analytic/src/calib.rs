//! Committed calibration for the tier-0 model.
//!
//! A window-efficiency scalar and two scale matrices per machine kind
//! absorb everything the dataflow pass abstracts away:
//!
//! * `eta_pct` — *window efficiency*: what fraction of the kind's raw
//!   window capacity acts like a monolithic out-of-order window.
//!   Restricted schedulers (FIFO P-IQs, cascades, slice queues) hold
//!   μops that cannot issue out of order past their queue head, so their
//!   effective lookahead is smaller than their entry count.
//! * `alpha_wl_milli` — the primary correction: a per-(width preset,
//!   suite workload) multiplicative scale (milli-units, 1000 =
//!   identity), fit as the exact `simulated / raw_prediction` ratio at
//!   the reference configuration. It zeroes each workload's
//!   idiosyncratic bias there, leaving only the model's *sensitivity*
//!   error on swept IQ/DRAM configurations — the part the dataflow pass
//!   actually captures. This matters operationally: the sweep's
//!   sim-anchored promotion must simulate every point whose estimate
//!   lands below the simulated envelope, so any systematic
//!   per-workload bias translates directly into extra promoted points.
//!   Class-level geomeans left 10–15% of such bias; the per-workload
//!   fit removes it.
//! * `alpha_milli` — the fallback for traces outside the calibration
//!   suite: the same correction coarsened to one scale per
//!   (width preset, workload class), the geomean of `sim / raw` over
//!   the class's suite workloads.
//!
//! The table below is **generated** by `cargo run --release --bin
//! tier0_calibrate -p ballerino-bench` against the 15-workload suite at
//! `n = 30_000, seed = 42` and committed; the
//! `calibration_bounds` test (and the CI `sweep-smoke` job) re-runs the
//! comparison and fails if drift pushes any workload class outside the
//! committed error bounds. Regenerate and re-commit when the simulator's
//! timing model changes materially.

use ballerino_sim::{MachineKind, Width};

/// Dense index of a width preset into [`KindCalib::alpha_milli`].
pub fn width_index(width: Width) -> usize {
    match width {
        Width::Two => 0,
        Width::Four => 1,
        Width::Eight => 2,
        Width::Ten => 3,
    }
}

/// Dense index of a workload class into a [`KindCalib::alpha_milli`]
/// row.
pub fn class_index(class: WorkloadClass) -> usize {
    match class {
        WorkloadClass::Dense => 0,
        WorkloadClass::MemBound => 1,
        WorkloadClass::Branchy => 2,
    }
}

/// The suite workloads the per-workload reference alphas are fit over,
/// in `ballerino_workloads::workload_names()` order (a test asserts the
/// two stay in sync).
pub const SUITE: [&str; 15] = [
    "stream_triad",
    "pointer_chase",
    "gemm_blocked",
    "int_crunch",
    "branchy_sort",
    "hash_join",
    "stencil3d",
    "linked_list_sum",
    "sparse_spmv",
    "compress_lz",
    "fft_butterfly",
    "mixed_media",
    "graph_bfs",
    "matrix_transpose",
    "object_update",
];

/// Index of a suite workload into a [`KindCalib::alpha_wl_milli`] row
/// (`None` for non-suite traces, which fall back to the class column).
pub fn suite_index(name: &str) -> Option<usize> {
    SUITE.iter().position(|&w| w == name)
}

/// Per-kind calibration constants (see the module docs).
///
/// `alpha_milli[width_index][class_index]` is per *width preset*
/// ([`width_index`] order: 2, 4, 8, 10-wide) and per *workload class*
/// ([`class_index`] order: dense, mem-bound, branchy). The model's
/// systematic bias differs between narrow and wide machines (a 2-wide
/// front end hides less of the residual error sources) and between
/// workload classes (unmodelled structural hazards barely touch a
/// pointer chase but dominate a cache-resident kernel); a single scale
/// fit at one width misranks exactly the cross-width, cross-class
/// comparisons the sweep's Pareto promotion does most.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindCalib {
    /// Window efficiency in percent (100 = every entry is a full
    /// out-of-order window entry).
    pub eta_pct: u32,
    /// Class-level multiplicative correction in milli-units (1000 =
    /// identity), `[width preset][workload class]` — the fallback for
    /// traces outside the calibration suite.
    pub alpha_milli: [[u32; 3]; 4],
    /// Per-suite-workload reference correction in milli-units,
    /// `[width preset][suite workload]` ([`SUITE`] order). Fit at the
    /// reference configuration (Table II defaults), it zeroes each
    /// workload's idiosyncratic bias there, so the estimator's residual
    /// on swept configurations is only its *sensitivity* error — the
    /// part the dataflow model actually captures well.
    pub alpha_wl_milli: [[u32; 15]; 4],
}

impl KindCalib {
    /// The correction for a width preset and workload: the fitted
    /// per-workload reference alpha for suite traces, the workload
    /// class's column otherwise.
    pub fn alpha_for(&self, width: Width, workload: &str) -> u32 {
        let wi = width_index(width);
        match suite_index(workload) {
            Some(j) => self.alpha_wl_milli[wi][j],
            None => self.alpha_milli[wi][class_index(workload_class(workload))],
        }
    }
}

impl Default for KindCalib {
    fn default() -> Self {
        KindCalib {
            eta_pct: 60,
            alpha_milli: [[1000; 3]; 4],
            alpha_wl_milli: [[1000; 15]; 4],
        }
    }
}

/// The calibration table — `tier0_calibrate` output, committed.
///
/// Kinds not listed (ablation variants) fall back to the nearest listed
/// kind via [`calib_for`].
pub const CALIBRATION: &[(MachineKind, KindCalib)] = &[
    (
        MachineKind::Ces,
        KindCalib {
            eta_pct: 25,
            alpha_milli: [
                [879, 724, 967],
                [1127, 823, 765],
                [1034, 885, 715],
                [904, 765, 670],
            ],
            alpha_wl_milli: [
                [
                    1052, 672, 659, 751, 979, 629, 1726, 790, 523, 976, 790, 777, 553, 1031, 947,
                ],
                [
                    1051, 1004, 1028, 654, 691, 379, 1755, 736, 740, 777, 1918, 804, 1153, 1018,
                    836,
                ],
                [
                    1057, 1007, 835, 507, 668, 507, 1673, 872, 786, 818, 1842, 907, 1142, 1009, 669,
                ],
                [
                    1065, 1006, 519, 574, 670, 529, 1656, 988, 410, 824, 1053, 1163, 661, 1009, 546,
                ],
            ],
        },
    ), // class-fallback mean abs err 27.3%
    (
        MachineKind::Casino,
        KindCalib {
            eta_pct: 25,
            alpha_milli: [
                [903, 785, 713],
                [1089, 872, 786],
                [1048, 1080, 904],
                [913, 939, 868],
            ],
            alpha_wl_milli: [
                [
                    1045, 1297, 753, 705, 878, 995, 1583, 828, 585, 874, 809, 884, 278, 1011, 472,
                ],
                [
                    1047, 1942, 867, 680, 762, 581, 1631, 786, 448, 763, 1777, 895, 918, 1008, 836,
                ],
                [
                    1121, 1945, 768, 569, 765, 827, 1617, 915, 761, 890, 1695, 1055, 1184, 1155,
                    1086,
                ],
                [
                    1121, 1944, 482, 630, 783, 867, 1617, 1033, 415, 905, 986, 1306, 690, 1155, 922,
                ],
            ],
        },
    ), // class-fallback mean abs err 30.8%
    (
        MachineKind::Fxa,
        KindCalib {
            eta_pct: 70,
            alpha_milli: [
                [627, 523, 641],
                [875, 787, 579],
                [963, 933, 736],
                [832, 784, 646],
            ],
            alpha_wl_milli: [
                [
                    1048, 671, 376, 580, 706, 517, 1560, 658, 200, 803, 476, 599, 276, 1009, 464,
                ],
                [
                    1085, 1004, 725, 409, 506, 307, 1638, 658, 741, 626, 1485, 711, 1126, 1015, 613,
                ],
                [
                    1112, 1006, 720, 507, 610, 490, 1616, 873, 759, 775, 1616, 869, 1438, 1183, 843,
                ],
                [
                    1112, 1006, 410, 565, 633, 523, 1616, 995, 408, 823, 953, 1120, 650, 1183, 517,
                ],
            ],
        },
    ), // class-fallback mean abs err 37.6%
    (
        MachineKind::Ballerino,
        KindCalib {
            eta_pct: 40,
            alpha_milli: [
                [792, 639, 700],
                [1065, 826, 613],
                [1031, 916, 763],
                [888, 771, 664],
            ],
            alpha_wl_milli: [
                [
                    1043, 671, 530, 752, 807, 533, 1630, 761, 356, 896, 670, 717, 419, 1023, 474,
                ],
                [
                    1057, 1006, 1002, 583, 557, 321, 1681, 735, 851, 684, 1815, 768, 1219, 1012,
                    606,
                ],
                [
                    1076, 1008, 792, 593, 634, 493, 1636, 896, 760, 820, 1698, 891, 1452, 1021, 855,
                ],
                [
                    1094, 1007, 430, 675, 655, 523, 1618, 1032, 409, 871, 966, 1218, 651, 1027, 512,
                ],
            ],
        },
    ), // class-fallback mean abs err 31.7%
    (
        MachineKind::Ldt,
        KindCalib {
            eta_pct: 35,
            alpha_milli: [
                [637, 531, 661],
                [951, 805, 579],
                [972, 923, 738],
                [841, 774, 647],
            ],
            alpha_wl_milli: [
                [
                    1046, 671, 342, 654, 728, 520, 1562, 719, 200, 845, 479, 628, 277, 1010, 471,
                ],
                [
                    1085, 1004, 805, 543, 517, 309, 1622, 767, 740, 646, 1520, 723, 1117, 1030, 580,
                ],
                [
                    1133, 1007, 726, 515, 622, 489, 1612, 911, 756, 792, 1636, 880, 1441, 1035, 818,
                ],
                [
                    1133, 1006, 413, 573, 644, 524, 1612, 1017, 407, 842, 969, 1135, 651, 1035, 500,
                ],
            ],
        },
    ), // class-fallback mean abs err 36.7%
    (
        MachineKind::BallerinoLdt,
        KindCalib {
            eta_pct: 25,
            alpha_milli: [
                [780, 645, 739],
                [946, 732, 604],
                [970, 891, 720],
                [867, 779, 703],
            ],
            alpha_wl_milli: [
                [
                    1043, 708, 530, 738, 798, 533, 1564, 761, 361, 884, 668, 704, 419, 1023, 573,
                ],
                [
                    1057, 1053, 702, 589, 558, 322, 1672, 741, 467, 683, 1425, 769, 902, 1009, 578,
                ],
                [
                    1074, 1073, 682, 533, 635, 496, 1625, 893, 757, 820, 1629, 894, 1124, 1023, 717,
                ],
                [
                    1094, 1055, 428, 649, 655, 526, 1615, 1032, 415, 840, 956, 1145, 651, 1027, 630,
                ],
            ],
        },
    ), // class-fallback mean abs err 31.1%
    (
        MachineKind::OutOfOrder,
        KindCalib {
            eta_pct: 35,
            alpha_milli: [
                [629, 529, 657],
                [955, 796, 581],
                [971, 918, 739],
                [840, 771, 647],
            ],
            alpha_wl_milli: [
                [
                    1046, 671, 343, 636, 726, 519, 1562, 705, 200, 833, 466, 620, 277, 1010, 470,
                ],
                [
                    1085, 1004, 803, 555, 520, 301, 1622, 723, 740, 648, 1505, 729, 1117, 1030, 582,
                ],
                [
                    1133, 1007, 715, 517, 623, 488, 1612, 877, 756, 793, 1648, 881, 1441, 1035, 816,
                ],
                [
                    1133, 1006, 411, 573, 645, 521, 1612, 993, 407, 841, 969, 1136, 652, 1035, 500,
                ],
            ],
        },
    ), // class-fallback mean abs err 36.8%
    (
        MachineKind::InOrder,
        KindCalib {
            eta_pct: 25,
            alpha_milli: [
                [1208, 1044, 1033],
                [1190, 1029, 997],
                [1177, 1024, 996],
                [1175, 1024, 993],
            ],
            alpha_wl_milli: [
                [
                    1187, 1004, 1012, 1111, 1029, 1009, 1831, 1052, 1011, 1068, 1161, 1077, 1006,
                    1052, 1003,
                ],
                [
                    1092, 1005, 1020, 1082, 996, 1008, 1840, 1038, 1012, 1004, 1105, 1062, 1006,
                    1045, 992,
                ],
                [
                    1067, 1004, 1011, 1042, 997, 1007, 1838, 1033, 1011, 1006, 1105, 1055, 1006,
                    1045, 984,
                ],
                [
                    1067, 1004, 1011, 1032, 993, 1006, 1837, 1030, 1011, 1001, 1105, 1055, 1006,
                    1045, 984,
                ],
            ],
        },
    ), // class-fallback mean abs err 6.9%
    (
        MachineKind::LoadSliceCore,
        KindCalib {
            eta_pct: 20,
            alpha_milli: [
                [1074, 701, 888],
                [1757, 959, 1062],
                [2087, 1179, 1289],
                [1921, 1087, 1257],
            ],
            alpha_wl_milli: [
                [
                    1068, 1330, 804, 823, 797, 616, 1795, 883, 200, 923, 1313, 914, 610, 1052, 951,
                ],
                [
                    1057, 1992, 1851, 985, 814, 545, 1986, 955, 398, 965, 3748, 1235, 1636, 1045,
                    1522,
                ],
                [
                    1053, 1997, 2556, 1109, 999, 890, 1964, 1168, 558, 1196, 4742, 1498, 2479,
                    1045, 1794,
                ],
                [
                    1053, 1995, 1941, 1208, 1035, 899, 1960, 1313, 424, 1220, 3166, 1798, 1629,
                    1045, 1574,
                ],
            ],
        },
    ), // class-fallback mean abs err 36.7%
    (
        MachineKind::DelayAndBypass,
        KindCalib {
            eta_pct: 35,
            alpha_milli: [
                [640, 558, 658],
                [1019, 822, 612],
                [1056, 941, 765],
                [899, 791, 669],
            ],
            alpha_wl_milli: [
                [
                    1048, 671, 356, 668, 728, 521, 1563, 846, 200, 834, 469, 615, 300, 1013, 469,
                ],
                [
                    1074, 1004, 860, 675, 534, 316, 1647, 847, 741, 658, 1540, 745, 1135, 1041, 650,
                ],
                [
                    1085, 1007, 775, 717, 633, 502, 1635, 1058, 759, 799, 1625, 891, 1462, 1015,
                    884,
                ],
                [
                    1085, 1006, 435, 758, 654, 536, 1635, 1206, 409, 846, 955, 1144, 661, 1015, 541,
                ],
            ],
        },
    ), // class-fallback mean abs err 34.6%
];

/// The calibration base a kind folds onto: ablation variants share
/// their base kind's constants; everything else is its own base.
/// `BallerinoLdt` deliberately does *not* fold onto `Ballerino` — its
/// delay-tracked steering redistributes μops across the P-IQs, so its
/// effective window efficiency is fit separately.
fn calib_base_kind(kind: MachineKind) -> MachineKind {
    match kind {
        MachineKind::OutOfOrderNoMdp | MachineKind::OutOfOrderOldestFirst => {
            MachineKind::OutOfOrder
        }
        MachineKind::CesMda => MachineKind::Ces,
        MachineKind::BallerinoStep1
        | MachineKind::BallerinoStep2
        | MachineKind::BallerinoIdeal
        | MachineKind::Ballerino12
        | MachineKind::BallerinoN(_) => MachineKind::Ballerino,
        k => k,
    }
}

/// Whether a kind resolves to a committed [`CALIBRATION`] entry
/// (directly or by variant folding) rather than the
/// [`KindCalib::default`] fallback. Coverage gates (the sweep grid's
/// completeness test in `ballerino-bench`) use this to catch kinds that
/// would silently triage on default constants.
pub fn has_calibration(kind: MachineKind) -> bool {
    let base = calib_base_kind(kind);
    CALIBRATION.iter().any(|(k, _)| *k == base)
}

/// Looks up the calibration for a kind, folding ablation variants onto
/// their base kind and falling back to [`KindCalib::default`] for
/// anything never calibrated.
pub fn calib_for(kind: MachineKind) -> KindCalib {
    let base = calib_base_kind(kind);
    CALIBRATION
        .iter()
        .find(|(k, _)| *k == base)
        .map(|(_, c)| *c)
        .unwrap_or_default()
}

/// Workload classes the calibration quality is tracked per.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Compute-dense, cache-resident, predictable control flow.
    Dense,
    /// Dominated by cache misses or pointer chasing.
    MemBound,
    /// Dominated by hard-to-predict control flow.
    Branchy,
}

impl WorkloadClass {
    /// All classes (for iteration/reporting).
    pub const ALL: [WorkloadClass; 3] = [
        WorkloadClass::Dense,
        WorkloadClass::MemBound,
        WorkloadClass::Branchy,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::Dense => "dense",
            WorkloadClass::MemBound => "mem-bound",
            WorkloadClass::Branchy => "branchy",
        }
    }
}

/// Classifies a suite workload by name (unknown names count as Dense —
/// the strictest bound).
pub fn workload_class(name: &str) -> WorkloadClass {
    match name {
        "stream_triad" | "pointer_chase" | "hash_join" | "linked_list_sum" | "sparse_spmv"
        | "graph_bfs" | "matrix_transpose" => WorkloadClass::MemBound,
        "branchy_sort" | "compress_lz" | "object_update" => WorkloadClass::Branchy,
        _ => WorkloadClass::Dense,
    }
}

/// Committed per-class error bound: the maximum mean absolute relative
/// error (percent, across all calibrated kinds and the class's
/// workloads) the tier-0 estimator is allowed. `tier0_calibrate` prints
/// the measured values; the `calibration_bounds` test and the CI
/// `sweep-smoke` job enforce these.
pub fn class_error_bound_pct(class: WorkloadClass) -> u32 {
    match class {
        WorkloadClass::Dense => 35,
        WorkloadClass::MemBound => 40,
        WorkloadClass::Branchy => 35,
    }
}

/// The margin (percent) for *est-vs-est* Pareto promotion over the
/// given classes: the widest class bound, so that when every estimate is
/// within its class bound of truth, no true-frontier point can be
/// shadowed by estimation error on either side of a comparison (see
/// `ballerino_bench::promote_indices`).
pub fn promotion_margin_pct(classes: &[WorkloadClass]) -> u32 {
    classes
        .iter()
        .map(|c| class_error_bound_pct(*c))
        .max()
        .unwrap_or(40)
}

/// The committed default margin (percent) for **sim-anchored**
/// promotion (`ballerino_bench::anchored_survivors`). Anchoring on
/// simulated cycles makes the dominance test one-sided: a true-frontier
/// point is lost only if *its own* estimate exceeds truth by more than
/// ~`m/(100-m)` — overestimation, not absolute error, is what the
/// margin must cover, which is why this is far tighter than the
/// absolute class bounds. Validated end to end by the frontier-equality
/// gates in `sweep_bench` and the CI smoke sweep; override per run with
/// `BALLERINO_SWEEP_MARGIN`.
///
/// With the per-workload reference alphas the estimator's worst
/// observed overshoot on promoted points of the full grid is ~6%; 8
/// covers it with headroom and promotes the same point set as 10 there
/// (the near-envelope survivors are genuine near-ties, not estimation
/// error).
pub fn default_promotion_margin_pct() -> u32 {
    8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_base_kind_is_calibrated() {
        for kind in [
            MachineKind::InOrder,
            MachineKind::OutOfOrder,
            MachineKind::Ces,
            MachineKind::Casino,
            MachineKind::Fxa,
            MachineKind::LoadSliceCore,
            MachineKind::DelayAndBypass,
            MachineKind::Ballerino,
            MachineKind::Ldt,
            MachineKind::BallerinoLdt,
        ] {
            assert!(
                CALIBRATION.iter().any(|(k, _)| *k == kind),
                "{kind:?} missing from the calibration table"
            );
            assert!(has_calibration(kind));
        }
    }

    #[test]
    fn variants_fold_onto_base_kinds() {
        assert_eq!(
            calib_for(MachineKind::Ballerino12),
            calib_for(MachineKind::Ballerino)
        );
        assert_eq!(
            calib_for(MachineKind::BallerinoN(4)),
            calib_for(MachineKind::Ballerino)
        );
        assert_eq!(
            calib_for(MachineKind::OutOfOrderNoMdp),
            calib_for(MachineKind::OutOfOrder)
        );
        assert_eq!(calib_for(MachineKind::CesMda), calib_for(MachineKind::Ces));
        // BallerinoLdt is its own calibration base, not a Ballerino
        // variant: delay-tracked steering changes the P-IQ population.
        assert_ne!(
            calib_for(MachineKind::BallerinoLdt),
            KindCalib::default(),
            "BallerinoLdt must own a committed entry"
        );
    }

    #[test]
    fn suite_classes_cover_all_three() {
        use ballerino_workloads::workload_names;
        let mut seen = std::collections::HashSet::new();
        for name in workload_names() {
            seen.insert(workload_class(name));
        }
        assert_eq!(seen.len(), 3, "suite must exercise every class");
    }

    #[test]
    fn promotion_margin_is_the_widest_bound() {
        assert_eq!(
            promotion_margin_pct(&WorkloadClass::ALL),
            WorkloadClass::ALL
                .iter()
                .map(|c| class_error_bound_pct(*c))
                .max()
                .unwrap()
        );
        assert!(promotion_margin_pct(&[]) >= 35);
    }
}
