//! # ballerino-analytic
//!
//! The **tier-0** estimator of the tiered-fidelity design-space engine:
//! a millisecond-scale queuing/dataflow model that predicts cycles and
//! IPC for a [`DesignPoint`](ballerino_sim::DesignPoint) without
//! stepping the cycle-accurate pipeline.
//!
//! The model consumes per-trace static features
//! ([`TraceFeatures`](ballerino_isa::TraceFeatures), memoized by
//! `ballerino_workloads::TraceCache`) and a handful of machine scalars
//! ([`MachineParams`]) and replays the dependence DAG through an
//! idealized machine in one `O(n)` integer pass. Predictions are
//! deterministic and — for a fixed kind and width — monotone in window
//! size by construction; across widths the committed calibration keeps
//! predictions monotone on dense workloads to within the simulator's
//! own sub-percent width anomalies (enforced by the `tier0_props`
//! tests). The sweep engine's promotion does not assume monotonicity —
//! it anchors dominance on simulated cycles — but sane orderings keep
//! the estimated frontier close to the true one, which is what makes
//! the anchor round effective.
//!
//! Accuracy is tracked per workload class against committed bounds
//! ([`class_error_bound_pct`]); `tier0_calibrate` regenerates the
//! [`CALIBRATION`] table when the simulator's timing model moves.
//!
//! # Examples
//!
//! ```
//! use ballerino_analytic::{predict_cycles, MachineParams};
//! use ballerino_sim::{DesignPoint, MachineKind, Width};
//! use ballerino_workloads::{cached_dag, cached_features};
//!
//! let point = DesignPoint::new(MachineKind::Ballerino, Width::Eight);
//! let params = MachineParams::from_point(&point);
//! let dag = cached_dag("int_crunch", 2_000, 42);
//! let feat = cached_features("int_crunch", 2_000, 42);
//! let est = predict_cycles(&params, &dag, &feat, "int_crunch");
//! assert!(est.cycles > 0 && est.ipc() > 0.1);
//! ```

#![warn(missing_docs)]

pub mod calib;
pub mod model;

pub use calib::{
    calib_for, class_error_bound_pct, class_index, default_promotion_margin_pct, has_calibration,
    promotion_margin_pct, suite_index, width_index, workload_class, KindCalib, WorkloadClass,
    CALIBRATION, SUITE,
};
pub use model::{predict_cycles, predict_cycles_with, predict_point, Estimate, MachineParams};
