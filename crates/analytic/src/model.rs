//! The tier-0 dataflow model: one `O(n)` integer pass per design point.
//!
//! The estimator replays the trace's dependence DAG through an idealized
//! machine described by a handful of scalars ([`MachineParams`]): issue
//! and front-end bandwidth, an effective scheduling window, per-FU port
//! counts, and cumulative hit latencies per cache level. Every quantity
//! is a `u64` cycle count — no floating point anywhere on the estimation
//! path — so predictions are bit-reproducible across hosts and runs.
//!
//! The pass computes, per μop, the earliest cycle it could *start*
//! executing given (a) when the front end can deliver it, (b) when its
//! register and memory producers finish, (c) how far the scheduling
//! window lets it run ahead of the oldest uncommitted μop, and (d) issue
//! bandwidth. Branch mispredictions restart the front-end stream after
//! the branch resolves plus the recovery penalty. The final prediction is
//! the maximum of the dataflow finish time and closed-form throughput
//! bounds (issue, fetch, FU ports, DRAM bus), scaled by the per-kind
//! calibration factor.

use crate::calib::{calib_for, KindCalib};
use ballerino_isa::{
    FuKind, HitLevel, OpClass, TraceDag, TraceFeatures, NO_STORE_DEP, NUM_HIT_LEVELS,
};
use ballerino_sim::{build_scheduler_point, DesignPoint, MachineKind, Width};

/// The machine scalars the tier-0 model consumes, derived from a
/// [`DesignPoint`] by building (but never running) its scheduler.
#[derive(Debug, Clone)]
pub struct MachineParams {
    /// Which microarchitecture (selects calibration and issue policy).
    pub kind: MachineKind,
    /// Width preset (selects the per-width calibration scale).
    pub width: Width,
    /// Issue/commit width.
    pub issue_width: u64,
    /// Fetch/decode/dispatch width.
    pub front_width: u64,
    /// Reorder-buffer entries.
    pub rob_entries: u64,
    /// Total scheduling-window capacity (sum over the kind's queues).
    pub window_capacity: u64,
    /// Decode-to-dispatch latency in cycles.
    pub rename_latency: u64,
    /// Pipeline redirect penalty after a mispredicted branch.
    pub recovery_penalty: u64,
    /// Issue ports serving each [`FuKind`].
    pub ports: [u64; FuKind::COUNT],
    /// Cumulative load-to-use latency per [`HitLevel`]
    /// (`[l1, l1+l2, l1+l2+l3, l1+l2+l3+row-hit dram]`).
    pub level_latency: [u64; NUM_HIT_LEVELS],
    /// DRAM burst cycles per line transfer (bus bandwidth bound).
    pub dram_burst: u64,
    /// DRAM CAS cycles (bank occupancy per access).
    pub dram_cas: u64,
    /// Extra cycles a row conflict costs (precharge + activate).
    pub dram_conflict_extra: u64,
    /// DRAM banks (bank-level parallelism for the occupancy bound).
    pub dram_banks: u64,
    /// Whether μops must start in program order (the InO baseline).
    pub in_order: bool,
    /// Core frequency in GHz (reporting only; timing is in cycles).
    pub freq_ghz: f64,
}

impl MachineParams {
    /// Derives the model scalars for a design point. Builds the point's
    /// scheduler to read its true window capacity — including IQ-budget
    /// overrides — but never steps it, so this stays microsecond-scale.
    pub fn from_point(point: &DesignPoint) -> MachineParams {
        let (cfg, sched, _) = build_scheduler_point(point);
        let mut ports = [0u64; FuKind::COUNT];
        for p in 0..cfg.port_map.num_ports() {
            for &fu in cfg.port_map.units(ballerino_isa::PortId(p as u8)) {
                ports[fu.index()] += 1;
            }
        }
        let l1 = cfg.mem.l1d.latency;
        let l2 = l1 + cfg.mem.l2.latency;
        let l3 = l2 + cfg.mem.l3.latency;
        // Row-buffer hit; conflicts add `dram_conflict_extra` weighted by
        // the trace's measured row-switch fraction (see predict).
        let dram = l3 + cfg.mem.dram.cas + cfg.mem.dram.burst;
        MachineParams {
            kind: point.kind,
            width: point.width,
            issue_width: cfg.issue_width as u64,
            front_width: cfg.front_width as u64,
            rob_entries: cfg.rob_entries as u64,
            window_capacity: sched.capacity() as u64,
            rename_latency: cfg.rename_latency,
            recovery_penalty: cfg.recovery_penalty,
            ports,
            level_latency: [l1, l2, l3, dram],
            dram_burst: cfg.mem.dram.burst,
            dram_cas: cfg.mem.dram.cas,
            dram_conflict_extra: cfg.mem.dram.rcd + cfg.mem.dram.rp,
            dram_banks: cfg.mem.dram.banks as u64,
            in_order: point.kind == MachineKind::InOrder,
            freq_ghz: cfg.freq_ghz,
        }
    }

    /// The effective lookahead window: how many μops ahead of the oldest
    /// uncommitted μop the machine can start work. Restricted schedulers
    /// extract less parallelism per entry than a monolithic CAM, which
    /// the per-kind `eta_pct` efficiency captures. Bounded below so even
    /// tiny windows make forward progress, and above by the ROB.
    pub fn effective_window(&self, calib: &KindCalib) -> u64 {
        let eff = (self.window_capacity * calib.eta_pct as u64) / 100;
        eff.max(4).min(self.rob_entries.max(4))
    }
}

/// One tier-0 prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Estimate {
    /// Predicted cycles for the trace on the design point.
    pub cycles: u64,
    /// μops the prediction covers (the trace length).
    pub uops: u64,
}

impl Estimate {
    /// Predicted IPC (μops per cycle).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.uops as f64 / self.cycles as f64
    }
}

/// Predicts the cycles a design point needs for a trace, given its
/// pre-resolved DAG and static features. `workload` selects the
/// calibration column: suite names get their fitted per-workload
/// reference alpha, anything else falls back to its workload class's
/// column ([`crate::workload_class`]). Deterministic, allocation-free
/// in steady state (three thread-local `u64` scratch vectors, grown
/// once per thread), `O(n)` in the trace length — microseconds per
/// call against seconds for the cycle-accurate tier.
pub fn predict_cycles(
    params: &MachineParams,
    dag: &TraceDag,
    feat: &TraceFeatures,
    workload: &str,
) -> Estimate {
    let calib = calib_for(params.kind);
    predict_cycles_with(params, dag, feat, &calib, workload)
}

/// [`predict_cycles`] with an explicit calibration (the calibration
/// search itself needs this to avoid chicken-and-egg).
pub fn predict_cycles_with(
    params: &MachineParams,
    dag: &TraceDag,
    feat: &TraceFeatures,
    calib: &KindCalib,
    workload: &str,
) -> Estimate {
    let n = dag.len();
    assert_eq!(feat.len(), n, "features must describe the same trace");
    if n == 0 {
        return Estimate { cycles: 0, uops: 0 };
    }
    SCRATCH.with(|s| predict_inner(params, dag, feat, calib, workload, &mut s.borrow_mut()))
}

std::thread_local! {
    /// Per-thread scratch for the dataflow pass — sweeps call the
    /// estimator thousands of times per thread, so the three O(n)
    /// vectors are grown once and reused, not reallocated per point.
    static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::default());
}

#[derive(Default)]
struct Scratch {
    start: Vec<u64>,
    finish: Vec<u64>,
    commit: Vec<u64>,
}

fn predict_inner(
    params: &MachineParams,
    dag: &TraceDag,
    feat: &TraceFeatures,
    calib: &KindCalib,
    workload: &str,
    scratch: &mut Scratch,
) -> Estimate {
    let n = dag.len();
    let window = params.effective_window(calib) as usize;
    // Per-trace average DRAM latency: row-hit base plus the conflict
    // surcharge weighted by the measured row-switch fraction.
    let mut level_latency = params.level_latency;
    if let Some(conflict) =
        (params.dram_conflict_extra * feat.dram_row_switches).checked_div(feat.dram_line_transfers)
    {
        level_latency[HitLevel::Dram.index()] += conflict;
    }
    scratch.start.clear();
    scratch.start.resize(n, 0);
    scratch.finish.clear();
    scratch.finish.resize(n, 0);
    scratch.commit.clear();
    scratch.commit.resize(n, 0);
    let (start, finish, commit) = (
        &mut scratch.start[..],
        &mut scratch.finish[..],
        // commit[i] = running max of finish[0..=i]: the cycle by which
        // μop i and all older μops have finished. Using it as the window
        // constraint makes predictions monotone in window size by
        // construction — a larger window looks further back at a value
        // that can only be smaller or equal (running maxes are
        // non-decreasing in the index).
        &mut scratch.commit[..],
    );

    // Front-end stream state: μops fetch `front_width` per cycle from
    // `stream_base`, restarting after each predicted-mispredicted branch.
    let mut stream_base = 0u64;
    let mut stream_start = 0usize;

    for i in 0..n {
        let d = dag.op(i);

        // (a) Front-end delivery.
        let fetched =
            stream_base + ((i - stream_start) as u64) / params.front_width + params.rename_latency;
        let mut t = fetched;

        // (b) Dataflow: register producers, plus the youngest aliasing
        // store for loads (the memory-carried edge a store-set MDP would
        // enforce).
        for p in d.producers.iter().flatten() {
            t = t.max(finish[*p as usize]);
        }
        if d.class == OpClass::Load {
            let dep = feat.store_dep[i];
            if dep != NO_STORE_DEP {
                t = t.max(finish[dep as usize]);
            }
        }

        // (c) Window: μop i cannot start before μop i-W (and everything
        // older) has finished — the scheduler holds at most W μops in
        // flight past the oldest unfinished one.
        if i >= window {
            t = t.max(commit[i - window]);
        }

        // (d) Bandwidth: at most `issue_width` starts per cycle; strict
        // program order for the in-order baseline.
        if params.in_order && i > 0 {
            t = t.max(start[i - 1]);
        }
        if i >= params.issue_width as usize {
            t = t.max(start[i - params.issue_width as usize] + 1);
        }

        start[i] = t;
        let lat = if d.class == OpClass::Load {
            d.exec_latency as u64 + level_latency[feat.level[i].index()]
        } else {
            d.exec_latency as u64
        };
        finish[i] = t + lat;
        commit[i] = if i == 0 {
            finish[0]
        } else {
            commit[i - 1].max(finish[i])
        };

        // Redirect: the stream restarts after the branch resolves.
        if feat.mispredicted[i] {
            stream_base = finish[i] + params.recovery_penalty;
            stream_start = i + 1;
        }
    }

    // Closed-form lower bounds the dataflow pass cannot see:
    // sustained issue/fetch bandwidth, FU port contention, DRAM bus.
    let nn = n as u64;
    let mut raw = commit[n - 1];
    raw = raw.max(nn.div_ceil(params.issue_width));
    raw = raw.max(nn.div_ceil(params.front_width));
    for k in 0..FuKind::COUNT {
        if feat.fu_uops[k] > 0 {
            let p = params.ports[k].max(1);
            raw = raw.max(feat.fu_occupancy[k].div_ceil(p));
        }
    }
    // DRAM: the shared data bus moves one line per `burst`, and the
    // banks collectively owe CAS per transfer plus precharge+activate
    // per row switch.
    raw = raw.max(feat.dram_line_transfers * params.dram_burst);
    let bank_work = feat.dram_line_transfers * (params.dram_cas + params.dram_burst)
        + feat.dram_row_switches * params.dram_conflict_extra;
    raw = raw.max(bank_work / params.dram_banks.max(1));

    // Per-(kind, width, workload) scale factor absorbing the model's
    // systematic bias (structural hazards, partial-window effects,
    // replay traffic) — narrow machines carry a different residual than
    // wide ones, and each workload its own idiosyncratic one.
    let alpha = calib.alpha_for(params.width, workload);
    let cycles = ((raw as u128 * alpha as u128) / 1000) as u64;
    Estimate {
        cycles: cycles.max(1),
        uops: nn,
    }
}

/// Convenience: derive [`MachineParams`] and predict in one call. Sweep
/// loops that amortize `MachineParams::from_point` should use
/// [`predict_cycles`] directly.
pub fn predict_point(
    point: &DesignPoint,
    dag: &TraceDag,
    feat: &TraceFeatures,
    workload: &str,
) -> Estimate {
    predict_cycles(&MachineParams::from_point(point), dag, feat, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballerino_sim::Width;

    #[test]
    fn params_read_the_table_i_presets() {
        let p = MachineParams::from_point(&DesignPoint::new(MachineKind::OutOfOrder, Width::Eight));
        assert_eq!(p.issue_width, 8);
        assert_eq!(p.front_width, 4);
        assert_eq!(p.rob_entries, 224);
        assert_eq!(p.window_capacity, 96);
        assert_eq!(p.level_latency[0], 4);
        assert!(p.level_latency[3] > p.level_latency[2]);
        assert!(p.ports[FuKind::IntAlu.index()] >= 4);
    }

    #[test]
    fn params_see_iq_and_dram_overrides() {
        let point = DesignPoint {
            iq_entries: Some(192),
            dram_scale_pct: 200,
            ..DesignPoint::new(MachineKind::OutOfOrder, Width::Eight)
        };
        let p = MachineParams::from_point(&point);
        assert_eq!(p.window_capacity, 192);
        let base =
            MachineParams::from_point(&DesignPoint::new(MachineKind::OutOfOrder, Width::Eight));
        assert!(p.level_latency[3] > base.level_latency[3]);
        assert_eq!(p.dram_burst, base.dram_burst * 2);
    }

    #[test]
    fn empty_trace_predicts_zero() {
        let dag = TraceDag::resolve(&ballerino_isa::Trace::new("empty"));
        let feat = TraceFeatures::default();
        let p = MachineParams::from_point(&DesignPoint::new(MachineKind::OutOfOrder, Width::Eight));
        let e = predict_cycles(&p, &dag, &feat, "empty");
        assert_eq!(e.cycles, 0);
        assert_eq!(e.ipc(), 0.0);
    }

    #[test]
    fn a_serial_chain_is_latency_bound_and_ilp_is_throughput_bound() {
        use ballerino_isa::{ArchReg, MicroOp, Trace};
        // 64 dependent ALU ops: ≥ ~64 cycles regardless of width.
        let mut chain = Trace::new("chain");
        for i in 0..64 {
            chain.push(MicroOp::alu(
                i * 4,
                ArchReg::int(1),
                [Some(ArchReg::int(1)), None],
            ));
        }
        // 64 independent ALU ops: bounded by fetch width instead.
        let mut flat = Trace::new("flat");
        for i in 0..64 {
            flat.push(MicroOp::alu(
                i * 4,
                ArchReg::int((1 + (i % 20)) as u16),
                [None, None],
            ));
        }
        let params =
            MachineParams::from_point(&DesignPoint::new(MachineKind::OutOfOrder, Width::Eight));
        let calib = KindCalib {
            eta_pct: 100,
            ..KindCalib::default()
        };
        let dag_c = TraceDag::resolve(&chain);
        let f_c = TraceFeatures::extract(&chain, &dag_c, &Default::default());
        let dag_f = TraceDag::resolve(&flat);
        let f_f = TraceFeatures::extract(&flat, &dag_f, &Default::default());
        let e_chain = predict_cycles_with(&params, &dag_c, &f_c, &calib, "chain");
        let e_flat = predict_cycles_with(&params, &dag_f, &f_f, &calib, "flat");
        assert!(e_chain.cycles >= 64);
        assert!(e_flat.cycles < e_chain.cycles / 2);
    }
}
