//! Gates the committed calibration table against the cycle-accurate
//! tier: the per-class mean absolute error of the tier-0 estimator must
//! stay within the committed [`class_error_bound_pct`] bounds.
//!
//! Runs a CI-affordable slice of the full calibration comparison —
//! every base kind at the 2- and 8-wide presets (the extremes the sweep
//! grid stresses) over the whole suite at `n = 8_000`. The committed
//! table is fit at `n = 30_000` over all four widths; `tier0_calibrate`
//! is the authoritative full check, this test catches drift cheaply.
//! Ignored by default (it simulates 300 cells); CI's `sweep-smoke` job
//! runs it with `--ignored`.

use ballerino_analytic::{
    class_error_bound_pct, predict_cycles, workload_class, MachineParams, WorkloadClass,
};
use ballerino_sim::{run_machine_with_dag, DesignPoint, MachineKind, Width};
use ballerino_workloads::{cached_dag, cached_features, cached_workload, workload_names};

const N: usize = 8_000;
const SEED: u64 = 42;

const BASE_KINDS: [MachineKind; 10] = [
    MachineKind::InOrder,
    MachineKind::OutOfOrder,
    MachineKind::Ces,
    MachineKind::Casino,
    MachineKind::Fxa,
    MachineKind::LoadSliceCore,
    MachineKind::DelayAndBypass,
    MachineKind::Ballerino,
    MachineKind::Ldt,
    MachineKind::BallerinoLdt,
];

#[test]
#[ignore = "simulates 300 kind x width x workload cells (~minutes); run in CI's sweep-smoke job"]
fn committed_calibration_stays_within_class_bounds() {
    let mut class_err: Vec<(WorkloadClass, Vec<f64>)> = WorkloadClass::ALL
        .iter()
        .map(|&c| (c, Vec::new()))
        .collect();

    for kind in BASE_KINDS {
        for width in [Width::Two, Width::Eight] {
            let params = MachineParams::from_point(&DesignPoint::new(kind, width));
            for wl in workload_names() {
                let trace = cached_workload(wl, N, SEED);
                let dag = cached_dag(wl, N, SEED);
                let feat = cached_features(wl, N, SEED);
                let sim = run_machine_with_dag(kind, width, &trace, Some(&dag)).cycles;
                let class = workload_class(wl);
                let est = predict_cycles(&params, &dag, &feat, wl).cycles;
                let err = 100.0 * (est as f64 - sim as f64).abs() / sim as f64;
                class_err
                    .iter_mut()
                    .find(|(c, _)| *c == class)
                    .expect("class bucket")
                    .1
                    .push(err);
            }
        }
    }

    let mut report = String::new();
    let mut any_over = false;
    for (class, errs) in &class_err {
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        let bound = class_error_bound_pct(*class);
        report.push_str(&format!(
            "{}: mean abs err {mean:.1}% (bound {bound}%)\n",
            class.label()
        ));
        any_over |= mean > bound as f64;
    }
    println!("{report}");
    assert!(
        !any_over,
        "calibration drifted outside committed bounds:\n{report}"
    );
}
