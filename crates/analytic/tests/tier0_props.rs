//! Property tests for the tier-0 analytic model: determinism and the
//! monotonicities the sweep engine's conservative promotion relies on.

use ballerino_analytic::{predict_cycles, MachineParams, SUITE};
use ballerino_sim::{DesignPoint, MachineKind, Width};
use ballerino_workloads::{cached_dag, cached_features, workload_names};

const N: usize = 8_000;
const SEED: u64 = 42;

const KINDS: [MachineKind; 5] = [
    MachineKind::InOrder,
    MachineKind::OutOfOrder,
    MachineKind::Ces,
    MachineKind::Ballerino,
    MachineKind::DelayAndBypass,
];

/// Compute-dense, cache-resident suite workloads — the class whose
/// behavior is dominated by the machine axes the grid sweeps, so the
/// model must order them correctly.
const DENSE: [&str; 3] = ["int_crunch", "gemm_blocked", "stencil3d"];

fn estimate(point: &DesignPoint, workload: &str) -> u64 {
    let params = MachineParams::from_point(point);
    let dag = cached_dag(workload, N, SEED);
    let feat = cached_features(workload, N, SEED);
    predict_cycles(&params, &dag, &feat, workload).cycles
}

/// The committed [`SUITE`] list (which indexes the per-workload
/// reference alphas in the calibration table) must match the workload
/// crate's suite exactly — a drifted index would silently apply one
/// workload's correction to another.
#[test]
fn suite_matches_workload_names() {
    assert_eq!(SUITE.to_vec(), workload_names());
}

/// The estimator is a pure function of (point, trace): repeated
/// evaluation — including after other points were scored in between —
/// returns bit-identical cycles.
#[test]
fn tier0_is_deterministic() {
    let points: Vec<DesignPoint> = KINDS
        .iter()
        .map(|&k| DesignPoint::new(k, Width::Eight))
        .collect();
    let first: Vec<u64> = points.iter().map(|p| estimate(p, "int_crunch")).collect();
    // Interleave other work, then re-evaluate.
    for p in &points {
        estimate(p, "branchy_sort");
    }
    let second: Vec<u64> = points.iter().map(|p| estimate(p, "int_crunch")).collect();
    assert_eq!(first, second);
}

/// More IQ entries can only help: predicted cycles are non-increasing in
/// the IQ budget (the window constraint looks back at a running max, so
/// a larger window relaxes it — monotone by construction).
#[test]
fn tier0_is_monotone_in_iq_budget() {
    let budgets = [16usize, 32, 64, 96, 160, 256];
    for kind in KINDS {
        if kind == MachineKind::InOrder {
            continue; // no issue queue to sweep
        }
        for wl in DENSE {
            let mut prev = u64::MAX;
            for b in budgets {
                let point = DesignPoint {
                    iq_entries: Some(b),
                    ..DesignPoint::new(kind, Width::Eight)
                };
                let est = estimate(&point, wl);
                assert!(
                    est <= prev,
                    "{kind:?}/{wl}: iq {b} predicted {est} > smaller budget's {prev}"
                );
                prev = est;
            }
        }
    }
}

/// A wider machine helps on dense workloads: at the calibration's fit
/// configuration (`n = 30_000`, the width presets) predicted cycles are
/// non-increasing across 2/4/8/10-wide, up to a 2% tolerance. Both
/// choices are deliberate. The fit configuration is where the
/// per-workload reference alphas pin the prediction to the simulator,
/// so reordering there means the committed table itself is broken (a
/// fitting bug misses by tens of percent, not a fraction of one); away
/// from the fit trace length the model's width sensitivity drifts by a
/// few percent and the chain ordering is only approximate. The
/// tolerance covers the cycle-accurate tier's own anomalies — it is not
/// strictly width-monotone either (4-wide InOrder runs `gemm_blocked`
/// ~0.2% *slower* than 2-wide, and 10-wide Ballerino runs `int_crunch`
/// ~1.2% slower than 8-wide: wider speculative issue shifts DRAM row
/// conflicts and P-IQ steering), and the calibration reproduces the
/// simulator exactly, anomalies included.
#[test]
fn tier0_is_monotone_in_width_for_dense_workloads() {
    const FIT_N: usize = 30_000;
    for kind in KINDS {
        for wl in DENSE {
            let mut prev = u64::MAX;
            for width in [Width::Two, Width::Four, Width::Eight, Width::Ten] {
                let point = DesignPoint::new(kind, width);
                let params = MachineParams::from_point(&point);
                let dag = cached_dag(wl, FIT_N, SEED);
                let feat = cached_features(wl, FIT_N, SEED);
                let est = predict_cycles(&params, &dag, &feat, wl).cycles;
                assert!(
                    est as u128 * 100 <= prev as u128 * 102,
                    "{kind:?}/{wl}: {width:?} predicted {est} > narrower width's {prev} by >2%"
                );
                prev = est.min(prev);
            }
        }
    }
}
