//! The unified out-of-order issue queue (`OoO` baseline, Fig. 2).
//!
//! CAM-style wakeup without compaction (a "random queue": freed slots are
//! reused in place, so entry position does not encode age) and per-port
//! prefix-sum select giving priority to the lowest-numbered slot. The
//! optional *oldest-first* policy (age matrices / compaction, §II-A and
//! Fig. 11's rightmost bars) grants the oldest ready requester instead.
//!
//! Wakeup and select run through the shared [`WakeFabric`]: completions
//! touch only the consumers of the completing register, and select walks
//! the fabric's ready set instead of every slot. The modelled hardware
//! events (CAM broadcast energy, per-entry head examinations) are charged
//! exactly as before — the *hardware* still broadcasts; only the
//! simulator stopped scanning. `BALLERINO_BROADCAST_WAKEUP=1` (or
//! [`OooIq::with_broadcast_wakeup`]) keeps the legacy O(window) scan
//! decision path for A/B debugging.

use crate::fabric::WakeFabric;
use crate::ports::PortAlloc;
use crate::stats::{IssueBreakdown, SchedEnergyEvents};
use crate::traits::{BlockHorizon, DispatchOutcome, GrantBlock, ReadyCtx, Scheduler, StallReason};
use crate::uop::SchedUop;
use ballerino_isa::{PhysReg, MAX_PORTS};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of the out-of-order IQ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OooIqConfig {
    /// IQ entries (Table II: 96/64/32 by width; 48 in FXA's backend).
    pub entries: usize,
    /// Grant the oldest ready requester per port instead of the
    /// lowest-numbered slot.
    pub oldest_first: bool,
}

impl Default for OooIqConfig {
    fn default() -> Self {
        OooIqConfig {
            entries: 96,
            oldest_first: false,
        }
    }
}

/// The unified out-of-order issue queue.
#[derive(Debug)]
pub struct OooIq {
    cfg: OooIqConfig,
    slots: Vec<Option<SchedUop>>,
    occupancy: usize,
    /// Min-heap of free slot indices: dispatch must fill the
    /// lowest-numbered free slot (position is the select priority), and
    /// popping a heap beats rescanning the whole slot array.
    free_slots: BinaryHeap<Reverse<usize>>,
    /// Producer-indexed wakeup state; the entry tag is the slot index
    /// (the select priority).
    fabric: WakeFabric,
    /// A/B knob: decide issue/quiesce from the legacy O(window) scan
    /// instead of the fabric (`BALLERINO_BROADCAST_WAKEUP=1`).
    broadcast_wakeup: bool,
    reference_select: bool,
    energy: SchedEnergyEvents,
    breakdown: IssueBreakdown,
}

impl OooIq {
    /// Builds an empty IQ. Honours the `BALLERINO_BROADCAST_WAKEUP=1`
    /// environment knob (see [`OooIq::with_broadcast_wakeup`]).
    pub fn new(cfg: OooIqConfig) -> Self {
        let broadcast_wakeup = ballerino_isa::env_flag("BALLERINO_BROADCAST_WAKEUP");
        let slots = vec![None; cfg.entries];
        let free_slots = (0..cfg.entries).map(Reverse).collect();
        OooIq {
            cfg,
            slots,
            occupancy: 0,
            free_slots,
            fabric: WakeFabric::new(),
            broadcast_wakeup,
            reference_select: false,
            energy: SchedEnergyEvents::default(),
            breakdown: IssueBreakdown::default(),
        }
    }

    /// Switches select to the seed's grant loop, which rescans every
    /// slot once per grant. Identical grant decisions, O(entries ×
    /// width) instead of O(entries) per cycle; kept for the `perf_smoke`
    /// reference baseline.
    pub fn with_reference_select(mut self) -> Self {
        self.reference_select = true;
        self
    }

    /// Keeps the legacy broadcast-scan decision path (the fabric is
    /// still maintained, just not consulted) for A/B debugging. The env
    /// knob `BALLERINO_BROADCAST_WAKEUP=1` sets the same flag; this
    /// builder exists so tests can flip it without mutating the
    /// process environment.
    pub fn with_broadcast_wakeup(mut self) -> Self {
        self.broadcast_wakeup = true;
        self
    }

    /// Single-pass select over all slots (the legacy A/B path): one scan
    /// computes the best requester per port, then grants flow in the
    /// same global priority order the seed's rescan loop produced
    /// (lowest slot, or oldest when configured), so the issued set is
    /// identical. Fills `grants` and returns `(any_request, count)`.
    fn select_single_pass(
        &self,
        ctx: &ReadyCtx<'_>,
        ports: &mut PortAlloc<'_>,
        grants: &mut [usize; MAX_PORTS],
    ) -> (bool, usize) {
        let mut any_request = false;
        let mut best_per_port: [Option<usize>; MAX_PORTS] = [None; MAX_PORTS];
        for (i, s) in self.slots.iter().enumerate() {
            let Some(u) = s else { continue };
            if !ctx.is_ready(u) {
                continue;
            }
            any_request = true;
            if !ports.can_claim(u.port, u.class) {
                continue;
            }
            let best = &mut best_per_port[u.port.index()];
            let better = match *best {
                None => true,
                Some(b) => {
                    let bu = self.slots[b].as_ref().expect("occupied");
                    if self.cfg.oldest_first {
                        u.seq < bu.seq
                    } else {
                        i < b
                    }
                }
            };
            if better {
                *best = Some(i);
            }
        }
        // Grant the per-port winners in global priority order until the
        // width budget runs out (ports are independent, so removing one
        // port's winner never changes another port's).
        let mut n = 0;
        while ports.remaining() > 0 {
            let mut best: Option<usize> = None;
            for cand in best_per_port.iter().flatten() {
                let better = match best {
                    None => true,
                    Some(b) => {
                        if self.cfg.oldest_first {
                            let cu = self.slots[*cand].as_ref().expect("occupied");
                            let bu = self.slots[b].as_ref().expect("occupied");
                            cu.seq < bu.seq
                        } else {
                            *cand < b
                        }
                    }
                };
                if better {
                    best = Some(*cand);
                }
            }
            let Some(i) = best else { break };
            let u = self.slots[i].as_ref().expect("occupied");
            let claimed = ports.try_claim(u.port, u.class);
            debug_assert!(claimed);
            best_per_port[u.port.index()] = None;
            grants[n] = i;
            n += 1;
        }
        (any_request, n)
    }

    /// The seed's select loop: rescan all slots once per grant. Fills
    /// `grants` and returns `(any_request, count)`.
    fn select_reference(
        &self,
        ctx: &ReadyCtx<'_>,
        ports: &mut PortAlloc<'_>,
        grants: &mut [usize; MAX_PORTS],
    ) -> (bool, usize) {
        let mut any_request = false;
        let mut n = 0;
        let mut claimed_ports = [false; MAX_PORTS];
        loop {
            let mut best: Option<usize> = None;
            for (i, s) in self.slots.iter().enumerate() {
                let Some(u) = s else { continue };
                if claimed_ports[u.port.index()] {
                    continue;
                }
                if !ctx.is_ready(u) {
                    continue;
                }
                any_request = true;
                if !ports.can_claim(u.port, u.class) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let bu = self.slots[b].as_ref().expect("occupied");
                        if self.cfg.oldest_first {
                            u.seq < bu.seq
                        } else {
                            i < b
                        }
                    }
                };
                if better {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            let u = self.slots[i].as_ref().expect("occupied");
            let claimed = ports.try_claim(u.port, u.class);
            debug_assert!(claimed);
            claimed_ports[u.port.index()] = true;
            grants[n] = i;
            n += 1;
            if ports.remaining() == 0 {
                break;
            }
        }
        (any_request, n)
    }
}

impl Scheduler for OooIq {
    fn name(&self) -> &str {
        if self.cfg.oldest_first {
            "ooo-oldest"
        } else {
            "ooo"
        }
    }

    fn try_dispatch(&mut self, uop: SchedUop, ctx: &ReadyCtx<'_>) -> DispatchOutcome {
        match self.free_slots.pop() {
            Some(Reverse(i)) => {
                debug_assert!(self.slots[i].is_none(), "free list out of sync");
                self.fabric.insert(&uop, i as u32, ctx);
                self.slots[i] = Some(uop);
                self.occupancy += 1;
                self.energy.queue_writes += 1;
                DispatchOutcome::Accepted
            }
            None => DispatchOutcome::Stall(StallReason::Full),
        }
    }

    fn issue(&mut self, ctx: &ReadyCtx<'_>, ports: &mut PortAlloc<'_>, out: &mut Vec<u64>) {
        if self.occupancy == 0 {
            return;
        }
        // The wakeup logic evaluates readiness for every occupied entry
        // every cycle — a modelled hardware event, charged whether or
        // not the simulator performs the scan.
        self.energy.head_examinations += self.occupancy as u64;

        if self.reference_select || self.broadcast_wakeup {
            // Legacy level-triggered scan paths (frozen reference and
            // the A/B knob). The fabric stays maintained so switching
            // paths mid-run is sound; only the decision source differs.
            let mut grants = [0usize; MAX_PORTS];
            let (any_request, n) = if self.reference_select {
                self.select_reference(ctx, ports, &mut grants)
            } else {
                self.select_single_pass(ctx, ports, &mut grants)
            };
            if any_request {
                // Every port's prefix-sum circuit spans all IQ entries
                // (Fig. 2).
                self.energy.select_inputs += (self.cfg.entries * MAX_PORTS.min(8)) as u64;
            }
            for &i in &grants[..n] {
                let u = self.slots[i].take().expect("granted slot");
                self.free_slots.push(Reverse(i));
                self.occupancy -= 1;
                self.energy.queue_reads += 1;
                self.breakdown.from_ooo += 1;
                self.fabric.remove(u.seq);
                out.push(u.seq);
            }
            return;
        }

        self.fabric.poll(ctx);
        let any_request = self.fabric.select(ports, self.cfg.oldest_first);
        if any_request {
            // Every port's prefix-sum circuit spans all IQ entries (Fig. 2).
            self.energy.select_inputs += (self.cfg.entries * MAX_PORTS.min(8)) as u64;
        }
        for k in 0..self.fabric.grant_count() {
            let seq = self.fabric.grant(k);
            let i = self.fabric.tag_of(seq) as usize;
            let u = self.slots[i].take().expect("granted slot");
            debug_assert_eq!(u.seq, seq);
            self.free_slots.push(Reverse(i));
            self.occupancy -= 1;
            self.energy.queue_reads += 1;
            self.breakdown.from_ooo += 1;
            out.push(seq);
            self.fabric.remove(seq);
        }
    }

    fn on_complete(&mut self, dst: PhysReg) {
        // Destination tag broadcast across the CAM wakeup array: the
        // modelled hardware searches every entry, so the energy charge
        // spans the whole window even though the fabric only touches the
        // consumers of `dst`.
        self.energy.cam_broadcasts += 1;
        self.energy.cam_entries_searched += self.cfg.entries as u64;
        self.fabric.on_complete(dst);
    }

    fn flush_after(&mut self, seq: u64, _flushed_dests: &[PhysReg]) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.as_ref().map(|u| u.seq > seq).unwrap_or(false) {
                *s = None;
                self.free_slots.push(Reverse(i));
                self.occupancy -= 1;
            }
        }
        self.fabric.flush_after(seq);
    }

    fn occupancy(&self) -> usize {
        self.occupancy
    }

    fn capacity(&self) -> usize {
        self.cfg.entries
    }

    fn energy_events(&self) -> SchedEnergyEvents {
        self.energy
    }

    fn issue_breakdown(&self) -> IssueBreakdown {
        self.breakdown
    }

    fn macro_grant(
        &mut self,
        ctx: &ReadyCtx<'_>,
        ports: &mut PortAlloc<'_>,
        out: &mut Vec<u64>,
    ) -> bool {
        if self.reference_select || self.broadcast_wakeup {
            return false; // legacy A/B paths go through `issue`
        }
        if self.occupancy == 0 {
            return true; // `issue` would return without side effects
        }
        // Mirror of `issue`'s fabric path, with the grant-identical fast
        // select. Every charge below matches `issue` line for line.
        self.energy.head_examinations += self.occupancy as u64;
        self.fabric.poll(ctx);
        let any_request = self.fabric.select_fast(ports, self.cfg.oldest_first);
        if any_request {
            self.energy.select_inputs += (self.cfg.entries * MAX_PORTS.min(8)) as u64;
        }
        for k in 0..self.fabric.grant_count() {
            let seq = self.fabric.grant(k);
            let i = self.fabric.tag_of(seq) as usize;
            let u = self.slots[i].take().expect("granted slot");
            debug_assert_eq!(u.seq, seq);
            self.free_slots.push(Reverse(i));
            self.occupancy -= 1;
            self.energy.queue_reads += 1;
            self.breakdown.from_ooo += 1;
            out.push(seq);
            self.fabric.remove(seq);
        }
        true
    }

    fn macro_grant_block(
        &mut self,
        ctx: &ReadyCtx<'_>,
        ports: &mut PortAlloc<'_>,
        horizon: BlockHorizon,
    ) -> Option<GrantBlock> {
        if self.reference_select || self.broadcast_wakeup {
            return None; // legacy A/B paths go through `issue`
        }
        if self.occupancy == 0 {
            return None; // `macro_grant` already handles empty for free
        }
        self.fabric
            .plan_block(ctx, ports, horizon, self.cfg.oldest_first)
    }

    fn block_advance(
        &mut self,
        ctx: &ReadyCtx<'_>,
        block: &mut GrantBlock,
        out: &mut Vec<u64>,
    ) -> bool {
        // Validation first, mutating nothing: a failed cycle falls back
        // to `macro_grant`/`issue`, which charges it exactly once.
        if !self.fabric.verify_block_cycle(block, ctx.cycle) {
            return false;
        }
        if self.occupancy == 0 {
            return true; // `issue` would return without side effects
        }
        // Serve the validated cycle with `macro_grant`'s exact
        // bookkeeping; `poll` is skipped because the held list was
        // verified empty, and select is replaced by the plan.
        self.energy.head_examinations += self.occupancy as u64;
        if self.fabric.ready_len() > 0 {
            self.energy.select_inputs += (self.cfg.entries * MAX_PORTS.min(8)) as u64;
        }
        while let Some(&(c, seq)) = block.grants.get(block.g_cursor) {
            debug_assert!(c >= ctx.cycle, "block cycles are served in order");
            if c != ctx.cycle {
                break;
            }
            block.g_cursor += 1;
            let i = self.fabric.tag_of(seq) as usize;
            let u = self.slots[i].take().expect("granted slot");
            debug_assert_eq!(u.seq, seq);
            self.free_slots.push(Reverse(i));
            self.occupancy -= 1;
            self.energy.queue_reads += 1;
            self.breakdown.from_ooo += 1;
            out.push(seq);
            self.fabric.remove(seq);
        }
        true
    }

    fn next_event_cycle(&self, ctx: &ReadyCtx<'_>, pending: Option<&SchedUop>) -> Option<u64> {
        if pending.is_some() && self.occupancy < self.cfg.entries {
            return None; // dispatch would be accepted this cycle
        }
        if self.reference_select || self.broadcast_wakeup {
            // Legacy O(window) quiesce scan (A/B knob path).
            let mut horizon = u64::MAX;
            for u in self.slots.iter().flatten() {
                let wake = ctx.wake_cycle(u);
                if wake <= ctx.cycle {
                    // A ready resident requests select this cycle (even a
                    // port-blocked one: FuBusy frees with time alone).
                    return None;
                }
                horizon = horizon.min(wake);
            }
            return Some(horizon);
        }
        self.fabric.min_wake(ctx)
    }

    fn note_idle_cycles(&mut self, _ctx: &ReadyCtx<'_>, _pending: Option<&SchedUop>, k: u64) {
        // Idle wakeup still evaluates every occupied entry each cycle; no
        // resident requests, so the select tree never lights up.
        self.energy.head_examinations += k * self.occupancy as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::held::HeldSet;
    use crate::ports::FuBusy;
    use crate::scoreboard::Scoreboard;
    use ballerino_isa::{OpClass, PortId};

    fn op(seq: u64, port: u8, src: Option<PhysReg>) -> SchedUop {
        SchedUop {
            port: PortId(port),
            srcs: [src, None],
            ..SchedUop::test_op(seq)
        }
    }

    fn issue_once(iq: &mut OooIq, scb: &Scoreboard, cycle: u64) -> Vec<u64> {
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle,
            scb,
            held: &held,
        };
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, cycle);
        let mut out = Vec::new();
        iq.issue(&ctx, &mut pa, &mut out);
        out
    }

    #[test]
    fn issues_ready_ops_out_of_order() {
        let mut iq = OooIq::new(OooIqConfig::default());
        let mut scb = Scoreboard::new(8);
        scb.allocate(PhysReg(1)); // op 0's source never ready
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        iq.try_dispatch(op(0, 0, Some(PhysReg(1))), &ctx);
        iq.try_dispatch(op(1, 1, None), &ctx);
        iq.try_dispatch(op(2, 2, None), &ctx);
        let out = issue_once(&mut iq, &scb, 0);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(iq.occupancy(), 1);
    }

    #[test]
    fn one_grant_per_port_per_cycle() {
        let mut iq = OooIq::new(OooIqConfig::default());
        let scb = Scoreboard::new(8);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        iq.try_dispatch(op(0, 3, None), &ctx);
        iq.try_dispatch(op(1, 3, None), &ctx);
        let out = issue_once(&mut iq, &scb, 0);
        assert_eq!(out, vec![0]);
        let out2 = issue_once(&mut iq, &scb, 1);
        assert_eq!(out2, vec![1]);
    }

    #[test]
    fn slot_priority_without_oldest_first() {
        let mut iq = OooIq::new(OooIqConfig {
            entries: 4,
            oldest_first: false,
        });
        let scb = Scoreboard::new(8);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        // Fill slots 0..3 with seqs 0..3, issue all, then refill slot 0
        // with a *younger* op: slot order, not age, decides priority.
        for i in 0..4 {
            iq.try_dispatch(op(i, i as u8, None), &ctx);
        }
        let _ = issue_once(&mut iq, &scb, 0);
        iq.try_dispatch(op(10, 0, None), &ctx); // goes to slot 0
        iq.try_dispatch(op(4, 0, None), &ctx); // older... wait, 4 < 10
                                               // Same port: slot 0 (seq 10) wins over slot 1 (seq 4).
        let out = issue_once(&mut iq, &scb, 1);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn oldest_first_grants_by_age() {
        let mut iq = OooIq::new(OooIqConfig {
            entries: 4,
            oldest_first: true,
        });
        let scb = Scoreboard::new(8);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        for i in 0..4 {
            iq.try_dispatch(op(i, i as u8, None), &ctx);
        }
        let _ = issue_once(&mut iq, &scb, 0);
        iq.try_dispatch(op(10, 0, None), &ctx);
        iq.try_dispatch(op(4, 0, None), &ctx);
        let out = issue_once(&mut iq, &scb, 1);
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn full_queue_stalls() {
        let mut iq = OooIq::new(OooIqConfig {
            entries: 1,
            oldest_first: false,
        });
        let scb = Scoreboard::new(8);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        let mut blocked = op(0, 0, Some(PhysReg(1)));
        blocked.srcs = [Some(PhysReg(1)), None];
        let mut scb2 = Scoreboard::new(8);
        scb2.allocate(PhysReg(1));
        let ctx2 = ReadyCtx {
            cycle: 0,
            scb: &scb2,
            held: &held,
        };
        assert_eq!(iq.try_dispatch(blocked, &ctx2), DispatchOutcome::Accepted);
        assert_eq!(
            iq.try_dispatch(op(1, 1, None), &ctx),
            DispatchOutcome::Stall(StallReason::Full)
        );
    }

    #[test]
    fn wakeup_charges_cam_energy() {
        let mut iq = OooIq::new(OooIqConfig::default());
        iq.on_complete(PhysReg(0));
        iq.on_complete(PhysReg(1));
        let e = iq.energy_events();
        assert_eq!(e.cam_broadcasts, 2);
        assert_eq!(e.cam_entries_searched, 2 * 96);
    }

    #[test]
    fn flush_clears_younger_slots() {
        let mut iq = OooIq::new(OooIqConfig::default());
        let mut scb = Scoreboard::new(8);
        scb.allocate(PhysReg(1));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        for i in 0..5 {
            iq.try_dispatch(op(i, i as u8, Some(PhysReg(1))), &ctx);
        }
        iq.flush_after(1, &[]);
        assert_eq!(iq.occupancy(), 2);
    }

    #[test]
    fn width_budget_bounds_total_issue() {
        let mut iq = OooIq::new(OooIqConfig::default());
        let scb = Scoreboard::new(8);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        for i in 0..8 {
            iq.try_dispatch(op(i, i as u8, None), &ctx);
        }
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 4, &busy, 0); // budget 4 < ports 8
        let mut out = Vec::new();
        iq.issue(&ctx, &mut pa, &mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn div_contention_defers_issue() {
        let mut iq = OooIq::new(OooIqConfig::default());
        let scb = Scoreboard::new(8);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        let div = SchedUop {
            class: OpClass::IntDiv,
            ..op(0, 0, None)
        };
        iq.try_dispatch(div, &ctx);
        let mut busy = FuBusy::new();
        busy.reserve(PortId(0), OpClass::IntDiv, 100);
        let mut pa = PortAlloc::new(8, 8, &busy, 0);
        let mut out = Vec::new();
        iq.issue(&ctx, &mut pa, &mut out);
        assert!(out.is_empty());
        assert_eq!(iq.occupancy(), 1);
    }
}
