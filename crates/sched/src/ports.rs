//! Per-cycle issue-port arbitration and unpipelined-FU occupancy.

use ballerino_isa::{FuKind, OpClass, PortId, PortMap, MAX_PORTS};
use std::collections::HashMap;

/// Busy-until tracking for unpipelined functional units (dividers).
#[derive(Debug, Clone, Default)]
pub struct FuBusy {
    busy_until: HashMap<(u8, FuKind), u64>,
}

impl FuBusy {
    /// Creates an all-idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the unit for `class` on `port` is free at `cycle`.
    pub fn is_free(&self, port: PortId, class: OpClass, cycle: u64) -> bool {
        if !class.unpipelined() {
            return true;
        }
        let fu = FuKind::for_class(class);
        self.busy_until
            .get(&(port.0, fu))
            .map(|&t| t <= cycle)
            .unwrap_or(true)
    }

    /// Reserves the unit for `class` on `port` until `until`.
    pub fn reserve(&mut self, port: PortId, class: OpClass, until: u64) {
        if class.unpipelined() {
            let fu = FuKind::for_class(class);
            self.busy_until.insert((port.0, fu), until);
        }
    }
}

/// One cycle's worth of issue-port grants.
///
/// Each port issues at most one μop per cycle; unpipelined units
/// additionally gate their port for the duration of the operation.
#[derive(Debug)]
pub struct PortAlloc<'a> {
    /// Bit `i` set ⟺ port `i` is still free this cycle.
    free_mask: u32,
    fu_busy: &'a FuBusy,
    cycle: u64,
    granted: usize,
    width: usize,
}

impl<'a> PortAlloc<'a> {
    /// Begins a cycle with all `num_ports` ports free and a total grant
    /// budget of `width` (equal to `num_ports` in every paper config).
    pub fn new(num_ports: usize, width: usize, fu_busy: &'a FuBusy, cycle: u64) -> Self {
        debug_assert!(num_ports <= MAX_PORTS && MAX_PORTS <= 32);
        let free_mask = ((1u64 << num_ports) - 1) as u32;
        PortAlloc {
            free_mask,
            fu_busy,
            cycle,
            granted: 0,
            width,
        }
    }

    /// Whether `port` could be claimed for `class` right now.
    pub fn can_claim(&self, port: PortId, class: OpClass) -> bool {
        self.granted < self.width
            && self.free_mask & (1 << port.index()) != 0
            && self.fu_busy.is_free(port, class, self.cycle)
    }

    /// Attempts to claim `port` for `class`; returns whether it succeeded.
    pub fn try_claim(&mut self, port: PortId, class: OpClass) -> bool {
        if self.can_claim(port, class) {
            self.free_mask &= !(1 << port.index());
            self.granted += 1;
            true
        } else {
            false
        }
    }

    /// Number of grants handed out so far this cycle.
    pub fn granted(&self) -> usize {
        self.granted
    }

    /// Remaining grant budget.
    pub fn remaining(&self) -> usize {
        self.width - self.granted
    }

    /// The unpipelined-FU occupancy tracker this cycle consults (block
    /// planning seeds its future-cycle FU model from it).
    pub fn fu_busy(&self) -> &FuBusy {
        self.fu_busy
    }

    /// Caps the remaining budget at `n` further grants (used by designs
    /// whose back-end issues narrower than the machine, e.g. FXA).
    pub fn cap_remaining(&mut self, n: usize) {
        self.width = self.width.min(self.granted + n);
    }
}

/// Assigns an issue port to a μop at dispatch: among the ports able to
/// execute `class`, picks the one with the fewest in-flight (dispatched
/// but un-issued) μops, exactly as §II-A describes.
#[derive(Debug, Clone)]
pub struct PortArbiter {
    map: PortMap,
    inflight: [u32; MAX_PORTS],
    /// Capable ports per FU kind, precomputed at build time: `assign`
    /// runs once per renamed μop, so it must not walk the port map (or
    /// allocate) on every call.
    by_fu: [([PortId; MAX_PORTS], u8); FuKind::COUNT],
}

impl PortArbiter {
    /// Builds an arbiter over a port map.
    pub fn new(map: PortMap) -> Self {
        let mut by_fu = [([PortId(0); MAX_PORTS], 0u8); FuKind::COUNT];
        // One representative class per FU kind (loads and stores share
        // the AGU entry).
        let classes = [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::IntDiv,
            OpClass::FpAdd,
            OpClass::FpMul,
            OpClass::FpDiv,
            OpClass::Load,
            OpClass::Branch,
        ];
        for class in classes {
            let fu = FuKind::for_class(class);
            let (ports, n) = &mut by_fu[fu.index()];
            for (k, p) in map.ports_for(class).into_iter().enumerate() {
                ports[k] = p;
                *n = (k + 1) as u8;
            }
        }
        PortArbiter {
            map,
            inflight: [0; MAX_PORTS],
            by_fu,
        }
    }

    /// The underlying port map.
    pub fn map(&self) -> &PortMap {
        &self.map
    }

    /// Picks the least-loaded capable port and records the in-flight μop.
    pub fn assign(&mut self, class: OpClass) -> PortId {
        let (ports, n) = &self.by_fu[FuKind::for_class(class).index()];
        let best = ports[..*n as usize]
            .iter()
            .copied()
            .min_by_key(|p| self.inflight[p.index()])
            .expect("PortMap::new guarantees every class has a port");
        self.inflight[best.index()] += 1;
        best
    }

    /// The seed's assignment path, frozen for the `perf_smoke` reference
    /// baseline: recomputes the capable-port list (a fresh `Vec`) on
    /// every call instead of using the precomputed `by_fu` table. Picks
    /// the same port as [`PortArbiter::assign`].
    pub fn assign_reference(&mut self, class: OpClass) -> PortId {
        let best = self
            .map
            .ports_for(class)
            .into_iter()
            .min_by_key(|p| self.inflight[p.index()])
            .expect("PortMap::new guarantees every class has a port");
        self.inflight[best.index()] += 1;
        best
    }

    /// Notes that a μop assigned to `port` has issued (or was squashed).
    pub fn release(&mut self, port: PortId) {
        let c = &mut self.inflight[port.index()];
        *c = c.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_alloc_grants_each_port_once() {
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, 0);
        assert!(pa.try_claim(PortId(0), OpClass::IntAlu));
        assert!(!pa.try_claim(PortId(0), OpClass::IntAlu));
        assert!(pa.try_claim(PortId(1), OpClass::IntAlu));
        assert_eq!(pa.granted(), 2);
    }

    #[test]
    fn width_budget_limits_total_grants() {
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 2, &busy, 0);
        assert!(pa.try_claim(PortId(0), OpClass::IntAlu));
        assert!(pa.try_claim(PortId(1), OpClass::IntAlu));
        assert!(!pa.try_claim(PortId(2), OpClass::Load));
        assert_eq!(pa.remaining(), 0);
    }

    #[test]
    fn unpipelined_div_blocks_port_until_done() {
        let mut busy = FuBusy::new();
        busy.reserve(PortId(0), OpClass::IntDiv, 25);
        let mut pa = PortAlloc::new(8, 8, &busy, 10);
        assert!(!pa.try_claim(PortId(0), OpClass::IntDiv));
        // Pipelined ops on the same port are unaffected.
        assert!(pa.try_claim(PortId(0), OpClass::IntAlu));
        let mut pa2 = PortAlloc::new(8, 8, &busy, 25);
        assert!(pa2.try_claim(PortId(0), OpClass::IntDiv));
    }

    #[test]
    fn arbiter_balances_load_across_agus() {
        let mut a = PortArbiter::new(PortMap::skylake_8wide());
        let p1 = a.assign(OpClass::Load);
        let p2 = a.assign(OpClass::Load);
        let p3 = a.assign(OpClass::Load);
        let p4 = a.assign(OpClass::Load);
        let mut got = vec![p1, p2, p3, p4];
        got.sort();
        assert_eq!(got, vec![PortId(2), PortId(3), PortId(4), PortId(7)]);
        // Releasing one makes it preferred again.
        a.release(p2);
        assert_eq!(a.assign(OpClass::Load), p2);
    }

    #[test]
    fn arbiter_respects_capability() {
        let mut a = PortArbiter::new(PortMap::skylake_8wide());
        for _ in 0..10 {
            let p = a.assign(OpClass::IntDiv);
            assert_eq!(p, PortId(0));
        }
    }
}
