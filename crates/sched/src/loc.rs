//! Producer-location tracking (the P-SCB extension of §IV-C).
//!
//! For dependence-based steering (CES and Ballerino), each physical
//! register carries — besides readiness — the index of the P-IQ where its
//! producer currently waits, and a `Reserved` flag set once a consumer has
//! been steered behind it (only tails are eligible steering targets, so a
//! second consumer constitutes a chain split and must allocate a new
//! P-IQ).

use ballerino_isa::PhysReg;

/// Location record for one physical register's producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LocEntry {
    /// Index of the P-IQ (and partition, encoded by the owner) holding the
    /// producer, if it is still waiting in a P-IQ.
    pub iq_index: Option<u16>,
    /// Set when a consumer has already been steered behind the producer.
    pub reserved: bool,
}

/// Producer-location table indexed by physical register.
#[derive(Debug, Clone)]
pub struct LocTable {
    entries: Vec<LocEntry>,
    /// Table reads performed (energy accounting).
    pub reads: u64,
    /// Table writes performed.
    pub writes: u64,
}

impl LocTable {
    /// Creates a table for `n` physical registers.
    pub fn new(n: usize) -> Self {
        LocTable {
            entries: vec![LocEntry::default(); n],
            reads: 0,
            writes: 0,
        }
    }

    /// Reads the entry for `p`.
    pub fn get(&mut self, p: PhysReg) -> LocEntry {
        self.reads += 1;
        self.entries[p.index()]
    }

    /// Reads without counting (internal checks, tests).
    pub fn peek(&self, p: PhysReg) -> LocEntry {
        self.entries[p.index()]
    }

    /// Records that `p`'s producer sits at the tail of P-IQ `iq`.
    pub fn set_location(&mut self, p: PhysReg, iq: u16) {
        self.writes += 1;
        self.entries[p.index()] = LocEntry {
            iq_index: Some(iq),
            reserved: false,
        };
    }

    /// Marks that a consumer was steered behind `p`'s producer.
    pub fn reserve(&mut self, p: PhysReg) {
        self.writes += 1;
        self.entries[p.index()].reserved = true;
    }

    /// Clears the entry (producer completed execution or was squashed).
    pub fn clear(&mut self, p: PhysReg) {
        self.writes += 1;
        self.entries[p.index()] = LocEntry::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_reserve_clear_cycle() {
        let mut t = LocTable::new(8);
        let p = PhysReg(2);
        assert_eq!(t.get(p), LocEntry::default());
        t.set_location(p, 3);
        assert_eq!(
            t.get(p),
            LocEntry {
                iq_index: Some(3),
                reserved: false
            }
        );
        t.reserve(p);
        assert!(t.get(p).reserved);
        t.clear(p);
        assert_eq!(t.get(p), LocEntry::default());
    }

    #[test]
    fn counters_track_accesses() {
        let mut t = LocTable::new(4);
        let p = PhysReg(0);
        t.set_location(p, 0);
        let _ = t.get(p);
        let _ = t.peek(p);
        assert_eq!(t.reads, 1);
        assert_eq!(t.writes, 1);
    }

    #[test]
    fn set_location_resets_reserved() {
        let mut t = LocTable::new(4);
        let p = PhysReg(1);
        t.set_location(p, 0);
        t.reserve(p);
        t.set_location(p, 2);
        assert!(!t.peek(p).reserved);
    }
}
