//! CASINO: cascaded speculative in-order scheduling windows \[2\].
//!
//! A chain of S-IQs in front of a conventional in-order IQ (Table II at
//! 8-wide: 8-entry S-IQ0 → 40-entry S-IQ1 → 40-entry S-IQ2 → 8-entry
//! in-order IQ). Each cycle every S-IQ examines a window at its head:
//! ready μops issue immediately (speculative issue); the preceding
//! non-ready μops are *passed* to the next queue (an explicit copy
//! operation, charged to the energy model exactly as §VI-D discusses).
//! The final IQ issues its contiguous ready prefix in program order.

use crate::fabric::{WakeFabric, WakeState};
use crate::ports::PortAlloc;
use crate::stats::{IssueBreakdown, SchedEnergyEvents};
use crate::traits::{DispatchOutcome, ReadyCtx, Scheduler, StallReason};
use crate::uop::SchedUop;
use ballerino_isa::PhysReg;
use std::collections::VecDeque;

/// Geometry of one cascade stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageConfig {
    /// Queue entries.
    pub entries: usize,
    /// Window examined / passed per cycle (read and write ports).
    pub ports: usize,
}

/// CASINO configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CasinoConfig {
    /// The speculative S-IQs, front to back.
    pub siqs: Vec<StageConfig>,
    /// The final in-order IQ.
    pub final_iq: StageConfig,
}

impl Default for CasinoConfig {
    fn default() -> Self {
        Self::eight_wide()
    }
}

impl CasinoConfig {
    /// Table II, 8-wide: 8-entry S-IQ0, 40-entry S-IQ1, 40-entry S-IQ2,
    /// 8-entry in-order IQ, all 4r4w.
    pub fn eight_wide() -> Self {
        CasinoConfig {
            siqs: vec![
                StageConfig {
                    entries: 8,
                    ports: 4,
                },
                StageConfig {
                    entries: 40,
                    ports: 4,
                },
                StageConfig {
                    entries: 40,
                    ports: 4,
                },
            ],
            final_iq: StageConfig {
                entries: 8,
                ports: 4,
            },
        }
    }

    /// Table II, 4-wide: 6-entry S-IQ0, 52-entry S-IQ1, 6-entry IQ (3r3w).
    pub fn four_wide() -> Self {
        CasinoConfig {
            siqs: vec![
                StageConfig {
                    entries: 6,
                    ports: 3,
                },
                StageConfig {
                    entries: 52,
                    ports: 3,
                },
            ],
            final_iq: StageConfig {
                entries: 6,
                ports: 3,
            },
        }
    }

    /// Table II, 2-wide: 4-entry S-IQ0, 28-entry IQ (2r2w).
    pub fn two_wide() -> Self {
        CasinoConfig {
            siqs: vec![StageConfig {
                entries: 4,
                ports: 2,
            }],
            final_iq: StageConfig {
                entries: 28,
                ports: 2,
            },
        }
    }

    /// Total scheduling-window entries.
    pub fn total_entries(&self) -> usize {
        self.siqs.iter().map(|s| s.entries).sum::<usize>() + self.final_iq.entries
    }
}

/// The CASINO scheduler.
#[derive(Debug)]
pub struct Casino {
    cfg: CasinoConfig,
    name: String,
    siqs: Vec<VecDeque<SchedUop>>,
    final_iq: VecDeque<SchedUop>,
    fabric: WakeFabric,
    energy: SchedEnergyEvents,
    breakdown: IssueBreakdown,
}

impl Casino {
    /// Builds an empty CASINO cascade.
    pub fn new(cfg: CasinoConfig) -> Self {
        let siqs: Vec<VecDeque<SchedUop>> = cfg.siqs.iter().map(|_| VecDeque::new()).collect();
        let name = format!("casino{}", siqs.len());
        Casino {
            cfg,
            name,
            siqs,
            final_iq: VecDeque::new(),
            fabric: WakeFabric::new(),
            energy: SchedEnergyEvents::default(),
            breakdown: IssueBreakdown::default(),
        }
    }

    /// Occupancy of S-IQ `i` (tests/diagnostics).
    pub fn siq_len(&self, i: usize) -> usize {
        self.siqs[i].len()
    }

    /// Occupancy of the final in-order IQ.
    pub fn final_len(&self) -> usize {
        self.final_iq.len()
    }

    /// Space left in the queue after stage `i` (the next S-IQ or final IQ).
    fn next_space(&self, i: usize) -> usize {
        if i + 1 < self.siqs.len() {
            self.cfg.siqs[i + 1].entries - self.siqs[i + 1].len()
        } else {
            self.cfg.final_iq.entries - self.final_iq.len()
        }
    }
}

impl Scheduler for Casino {
    fn name(&self) -> &str {
        &self.name
    }

    fn try_dispatch(&mut self, uop: SchedUop, ctx: &ReadyCtx<'_>) -> DispatchOutcome {
        if self.siqs[0].len() >= self.cfg.siqs[0].entries {
            return DispatchOutcome::Stall(StallReason::Full);
        }
        self.energy.queue_writes += 1;
        self.fabric.insert(&uop, 0, ctx);
        self.siqs[0].push_back(uop);
        DispatchOutcome::Accepted
    }

    fn issue(&mut self, ctx: &ReadyCtx<'_>, ports: &mut PortAlloc<'_>, out: &mut Vec<u64>) {
        self.fabric.poll(ctx);
        // 1. Final in-order IQ: contiguous ready prefix, oldest first.
        let final_window = self.cfg.final_iq.ports;
        for _ in 0..final_window {
            let Some(head) = self.final_iq.front() else {
                break;
            };
            self.energy.head_examinations += 1;
            if self.fabric.state(head.seq) != WakeState::Ready
                || !ports.try_claim(head.port, head.class)
            {
                break;
            }
            let u = self.final_iq.pop_front().expect("head");
            self.fabric.remove(u.seq);
            self.energy.queue_reads += 1;
            self.breakdown.from_inorder += 1;
            out.push(u.seq);
        }

        // 2. S-IQs from the back of the cascade to the front, so a μop
        //    moves at most one stage per cycle.
        for i in (0..self.siqs.len()).rev() {
            let window = self.cfg.siqs[i].ports.min(self.siqs[i].len());
            // Issued window indices as a bitmask (windows are the S-IQ
            // port count, well under 64).
            debug_assert!(window <= 64);
            let mut issued_mask: u64 = 0;
            for k in 0..window {
                let u = &self.siqs[i][k];
                self.energy.head_examinations += 1;
                if self.fabric.state(u.seq) == WakeState::Ready && ports.try_claim(u.port, u.class)
                {
                    issued_mask |= 1 << k;
                }
            }
            // Remove issued (back to front to keep indices valid).
            for k in (0..window).rev() {
                if issued_mask & (1 << k) == 0 {
                    continue;
                }
                let u = self.siqs[i].remove(k).expect("indexed");
                self.fabric.remove(u.seq);
                self.energy.queue_reads += 1;
                self.breakdown.from_siq += 1;
                out.push(u.seq);
            }
            // Pass the (formerly preceding) non-ready μops to the next
            // queue. Issues and passes share the S-IQ's read ports, so a
            // queue that issued k μops can pass at most ports-k more.
            let ports_left = self.cfg.siqs[i]
                .ports
                .saturating_sub(issued_mask.count_ones() as usize);
            let budget = ports_left.min(self.next_space(i));
            let passes = budget.min(self.siqs[i].len());
            for _ in 0..passes {
                // Only pass μops that were inside the examined window and
                // are still non-ready (they sit at the head now).
                let Some(front) = self.siqs[i].front() else {
                    break;
                };
                if self.fabric.state(front.seq) == WakeState::Ready {
                    break; // became issuable; keep it for next cycle
                }
                let u = self.siqs[i].pop_front().expect("head");
                self.energy.copies += 1;
                self.energy.queue_writes += 1;
                if i + 1 < self.siqs.len() {
                    self.siqs[i + 1].push_back(u);
                } else {
                    self.final_iq.push_back(u);
                }
            }
        }

        let active = self.occupancy() > 0;
        if active {
            let inputs: usize =
                self.cfg.siqs.iter().map(|s| s.ports).sum::<usize>() + self.cfg.final_iq.ports;
            self.energy.select_inputs += inputs as u64;
        }
    }

    fn on_complete(&mut self, dst: PhysReg) {
        self.fabric.on_complete(dst);
    }

    fn flush_after(&mut self, seq: u64, _flushed_dests: &[PhysReg]) {
        for q in self
            .siqs
            .iter_mut()
            .chain(std::iter::once(&mut self.final_iq))
        {
            q.retain(|u| u.seq <= seq);
        }
        self.fabric.flush_after(seq);
    }

    fn occupancy(&self) -> usize {
        self.siqs.iter().map(|q| q.len()).sum::<usize>() + self.final_iq.len()
    }

    fn capacity(&self) -> usize {
        self.cfg.total_entries()
    }

    fn energy_events(&self) -> SchedEnergyEvents {
        self.energy
    }

    fn issue_breakdown(&self) -> IssueBreakdown {
        self.breakdown
    }

    fn next_event_cycle(&self, ctx: &ReadyCtx<'_>, pending: Option<&SchedUop>) -> Option<u64> {
        if pending.is_some() && self.siqs[0].len() < self.cfg.siqs[0].entries {
            return None; // dispatch would be accepted this cycle
        }
        let mut horizon = u64::MAX;
        if let Some(head) = self.final_iq.front() {
            let wake = ctx.wake_cycle(head);
            if wake <= ctx.cycle {
                return None;
            }
            horizon = horizon.min(wake);
        }
        for (i, q) in self.siqs.iter().enumerate() {
            // Cascade-drain requirement: a non-empty stage with space
            // behind it passes μops downstream every cycle.
            if !q.is_empty() && self.next_space(i) > 0 {
                return None;
            }
            let window = self.cfg.siqs[i].ports.min(q.len());
            for u in q.iter().take(window) {
                let wake = ctx.wake_cycle(u);
                if wake <= ctx.cycle {
                    return None; // in-window entry issues speculatively now
                }
                horizon = horizon.min(wake);
            }
        }
        Some(horizon)
    }

    fn note_idle_cycles(&mut self, _ctx: &ReadyCtx<'_>, _pending: Option<&SchedUop>, k: u64) {
        // A stalled final head is examined once per cycle; each S-IQ
        // examines its full head window; an occupied cascade drives the
        // selector every cycle regardless of requests.
        if !self.final_iq.is_empty() {
            self.energy.head_examinations += k;
        }
        let window_sum: u64 = self
            .siqs
            .iter()
            .enumerate()
            .map(|(i, q)| self.cfg.siqs[i].ports.min(q.len()) as u64)
            .sum();
        self.energy.head_examinations += k * window_sum;
        if self.occupancy() > 0 {
            let inputs: usize =
                self.cfg.siqs.iter().map(|s| s.ports).sum::<usize>() + self.cfg.final_iq.ports;
            self.energy.select_inputs += k * inputs as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::held::HeldSet;
    use crate::ports::FuBusy;
    use crate::scoreboard::Scoreboard;
    use ballerino_isa::PortId;

    fn op(seq: u64, port: u8, src: Option<u32>) -> SchedUop {
        SchedUop {
            port: PortId(port),
            srcs: [src.map(PhysReg), None],
            ..SchedUop::test_op(seq)
        }
    }

    fn issue_once(c: &mut Casino, scb: &Scoreboard, cycle: u64) -> Vec<u64> {
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle,
            scb,
            held: &held,
        };
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, cycle);
        let mut out = Vec::new();
        c.issue(&ctx, &mut pa, &mut out);
        out
    }

    #[test]
    fn ready_ops_issue_speculatively_from_siq0() {
        let mut c = Casino::new(CasinoConfig::eight_wide());
        let scb = Scoreboard::new(16);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        for i in 0..4 {
            c.try_dispatch(op(i, i as u8, None), &ctx);
        }
        let out = issue_once(&mut c, &scb, 0);
        assert_eq!(out.len(), 4);
        assert_eq!(c.issue_breakdown().from_siq, 4);
    }

    #[test]
    fn non_ready_ops_cascade_toward_final_iq() {
        let mut c = Casino::new(CasinoConfig::eight_wide());
        let mut scb = Scoreboard::new(16);
        scb.allocate(PhysReg(1));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        for i in 0..4 {
            c.try_dispatch(op(i, i as u8, Some(1)), &ctx);
        }
        // Cycle 1: S-IQ0 passes up to 4 non-ready μops into S-IQ1.
        let out = issue_once(&mut c, &scb, 0);
        assert!(out.is_empty());
        assert_eq!(c.siq_len(0), 0);
        assert_eq!(c.siq_len(1), 4);
        // Next cycles they ripple into S-IQ2 and then the final IQ.
        let _ = issue_once(&mut c, &scb, 1);
        assert_eq!(c.siq_len(2), 4);
        let _ = issue_once(&mut c, &scb, 2);
        assert_eq!(c.final_len(), 4);
    }

    #[test]
    fn final_iq_issues_in_order_only() {
        let mut c = Casino::new(CasinoConfig::eight_wide());
        let mut scb = Scoreboard::new(16);
        scb.allocate(PhysReg(1));
        scb.allocate(PhysReg(2));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        c.try_dispatch(op(0, 0, Some(1)), &ctx);
        c.try_dispatch(op(1, 1, Some(2)), &ctx);
        // Ripple to final IQ.
        for t in 0..3 {
            let _ = issue_once(&mut c, &scb, t);
        }
        assert_eq!(c.final_len(), 2);
        // Make the *younger* one ready: in-order final IQ must not issue it.
        scb.set_ready_at(PhysReg(2), 3);
        c.on_complete(PhysReg(2));
        let out = issue_once(&mut c, &scb, 3);
        assert!(
            out.is_empty(),
            "younger op must wait behind stalled head, got {out:?}"
        );
        // Now the older becomes ready: both drain in order.
        scb.set_ready_at(PhysReg(1), 4);
        c.on_complete(PhysReg(1));
        let out = issue_once(&mut c, &scb, 4);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn becomes_ready_mid_cascade_and_issues_from_middle_siq() {
        let mut c = Casino::new(CasinoConfig::eight_wide());
        let mut scb = Scoreboard::new(16);
        scb.allocate(PhysReg(1));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        c.try_dispatch(op(0, 0, Some(1)), &ctx);
        let _ = issue_once(&mut c, &scb, 0); // moved to S-IQ1
        assert_eq!(c.siq_len(1), 1);
        scb.set_ready_at(PhysReg(1), 1);
        c.on_complete(PhysReg(1));
        let out = issue_once(&mut c, &scb, 1);
        assert_eq!(out, vec![0]);
        assert_eq!(c.issue_breakdown().from_siq, 1);
    }

    #[test]
    fn passes_are_charged_as_copies() {
        let mut c = Casino::new(CasinoConfig::eight_wide());
        let mut scb = Scoreboard::new(16);
        scb.allocate(PhysReg(1));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        c.try_dispatch(op(0, 0, Some(1)), &ctx);
        let _ = issue_once(&mut c, &scb, 0);
        assert_eq!(c.energy_events().copies, 1);
    }

    #[test]
    fn full_siq0_stalls_dispatch() {
        let mut c = Casino::new(CasinoConfig::eight_wide());
        let mut scb = Scoreboard::new(16);
        scb.allocate(PhysReg(1));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        for i in 0..8 {
            assert_eq!(
                c.try_dispatch(op(i, 0, Some(1)), &ctx),
                DispatchOutcome::Accepted
            );
        }
        assert_eq!(
            c.try_dispatch(op(8, 0, Some(1)), &ctx),
            DispatchOutcome::Stall(StallReason::Full)
        );
    }

    #[test]
    fn full_final_iq_backpressures_cascade() {
        let mut c = Casino::new(CasinoConfig {
            siqs: vec![StageConfig {
                entries: 8,
                ports: 4,
            }],
            final_iq: StageConfig {
                entries: 2,
                ports: 4,
            },
        });
        let mut scb = Scoreboard::new(16);
        scb.allocate(PhysReg(1));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        for i in 0..6 {
            c.try_dispatch(op(i, 0, Some(1)), &ctx);
        }
        let _ = issue_once(&mut c, &scb, 0);
        assert_eq!(c.final_len(), 2); // only 2 fit
        assert_eq!(c.siq_len(0), 4);
        let _ = issue_once(&mut c, &scb, 1);
        assert_eq!(c.final_len(), 2, "no space, no passes");
        assert_eq!(c.siq_len(0), 4);
    }

    #[test]
    fn flush_clears_younger_across_all_queues() {
        let mut c = Casino::new(CasinoConfig::eight_wide());
        let mut scb = Scoreboard::new(16);
        scb.allocate(PhysReg(1));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        for i in 0..4 {
            c.try_dispatch(op(i, 0, Some(1)), &ctx);
        }
        let _ = issue_once(&mut c, &scb, 0); // all in S-IQ1
        for i in 4..8 {
            c.try_dispatch(op(i, 0, Some(1)), &ctx);
        }
        c.flush_after(1, &[]);
        assert_eq!(c.occupancy(), 2);
    }
}
