//! The in-order issue queue (`InO` baseline).
//!
//! A single FIFO (Table II: 96 entries, 8r4w at 8-wide). Each cycle the
//! contiguous *ready prefix* at the head issues, up to the machine width:
//! classic stall-on-use in-order scheduling — the first non-ready μop
//! blocks everything behind it.

use crate::fabric::{WakeFabric, WakeState};
use crate::ports::PortAlloc;
use crate::stats::{IssueBreakdown, SchedEnergyEvents};
use crate::traits::{DispatchOutcome, ReadyCtx, Scheduler, StallReason};
use crate::uop::SchedUop;
use ballerino_isa::PhysReg;
use std::collections::VecDeque;

/// Configuration of the in-order IQ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InOrderIqConfig {
    /// Queue entries (Table II: 96/64/32 by width).
    pub entries: usize,
    /// Head slots examined per cycle (read ports).
    pub read_ports: usize,
}

impl Default for InOrderIqConfig {
    fn default() -> Self {
        InOrderIqConfig {
            entries: 96,
            read_ports: 8,
        }
    }
}

/// The in-order issue queue.
#[derive(Debug)]
pub struct InOrderIq {
    cfg: InOrderIqConfig,
    q: VecDeque<SchedUop>,
    fabric: WakeFabric,
    energy: SchedEnergyEvents,
    breakdown: IssueBreakdown,
}

impl InOrderIq {
    /// Builds an empty queue.
    pub fn new(cfg: InOrderIqConfig) -> Self {
        InOrderIq {
            cfg,
            q: VecDeque::new(),
            fabric: WakeFabric::new(),
            energy: SchedEnergyEvents::default(),
            breakdown: IssueBreakdown::default(),
        }
    }
}

impl Scheduler for InOrderIq {
    fn name(&self) -> &str {
        "ino"
    }

    fn try_dispatch(&mut self, uop: SchedUop, ctx: &ReadyCtx<'_>) -> DispatchOutcome {
        if self.q.len() >= self.cfg.entries {
            return DispatchOutcome::Stall(StallReason::Full);
        }
        self.energy.queue_writes += 1;
        self.fabric.insert(&uop, 0, ctx);
        self.q.push_back(uop);
        DispatchOutcome::Accepted
    }

    fn issue(&mut self, ctx: &ReadyCtx<'_>, ports: &mut PortAlloc<'_>, out: &mut Vec<u64>) {
        self.fabric.poll(ctx);
        let window = self.cfg.read_ports.min(self.q.len());
        let mut issued = 0;
        for _ in 0..window {
            let Some(head) = self.q.front() else { break };
            self.energy.head_examinations += 1;
            if self.fabric.state(head.seq) != WakeState::Ready {
                break; // stall-on-use: in-order issue only
            }
            if !ports.try_claim(head.port, head.class) {
                break; // port conflict also blocks, order must be kept
            }
            let u = self.q.pop_front().expect("nonempty");
            self.fabric.remove(u.seq);
            self.energy.queue_reads += 1;
            self.breakdown.from_inorder += 1;
            out.push(u.seq);
            issued += 1;
        }
        if issued > 0 || !self.q.is_empty() {
            self.energy.select_inputs += self.cfg.read_ports as u64;
        }
    }

    fn on_complete(&mut self, dst: PhysReg) {
        self.fabric.on_complete(dst);
    }

    fn flush_after(&mut self, seq: u64, _flushed_dests: &[PhysReg]) {
        while let Some(back) = self.q.back() {
            if back.seq > seq {
                self.q.pop_back();
            } else {
                break;
            }
        }
        self.fabric.flush_after(seq);
    }

    fn occupancy(&self) -> usize {
        self.q.len()
    }

    fn capacity(&self) -> usize {
        self.cfg.entries
    }

    fn energy_events(&self) -> SchedEnergyEvents {
        self.energy
    }

    fn issue_breakdown(&self) -> IssueBreakdown {
        self.breakdown
    }

    fn next_event_cycle(&self, ctx: &ReadyCtx<'_>, pending: Option<&SchedUop>) -> Option<u64> {
        if pending.is_some() && self.q.len() < self.cfg.entries {
            return None; // dispatch would be accepted this cycle
        }
        match self.q.front() {
            None => Some(u64::MAX),
            Some(head) => {
                let wake = ctx.wake_cycle(head);
                // A ready head issues (or fights for a port) right now.
                if wake <= ctx.cycle {
                    None
                } else {
                    Some(wake)
                }
            }
        }
    }

    fn note_idle_cycles(&mut self, _ctx: &ReadyCtx<'_>, _pending: Option<&SchedUop>, k: u64) {
        // Each idle `issue` examines the stalled head once and still
        // drives the selector; an empty queue touches nothing.
        if !self.q.is_empty() {
            self.energy.head_examinations += k;
            self.energy.select_inputs += k * self.cfg.read_ports as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::held::HeldSet;
    use crate::ports::FuBusy;
    use crate::scoreboard::Scoreboard;
    use ballerino_isa::{OpClass, PortId};

    fn ctx<'a>(scb: &'a Scoreboard, held: &'a HeldSet, cycle: u64) -> ReadyCtx<'a> {
        ReadyCtx { cycle, scb, held }
    }

    fn op(seq: u64, port: u8, src: Option<PhysReg>) -> SchedUop {
        SchedUop {
            port: PortId(port),
            srcs: [src, None],
            ..SchedUop::test_op(seq)
        }
    }

    #[test]
    fn issues_ready_prefix_in_order() {
        let mut iq = InOrderIq::new(InOrderIqConfig::default());
        let scb = Scoreboard::new(8);
        let held = HeldSet::new();
        let c = ctx(&scb, &held, 0);
        for i in 0..4 {
            assert_eq!(
                iq.try_dispatch(op(i, i as u8, None), &c),
                DispatchOutcome::Accepted
            );
        }
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, 0);
        let mut out = Vec::new();
        iq.issue(&c, &mut pa, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(iq.occupancy(), 0);
    }

    #[test]
    fn non_ready_head_blocks_younger_ready_ops() {
        let mut iq = InOrderIq::new(InOrderIqConfig::default());
        let mut scb = Scoreboard::new(8);
        scb.allocate(PhysReg(1));
        let held = HeldSet::new();
        let c = ctx(&scb, &held, 0);
        iq.try_dispatch(op(0, 0, Some(PhysReg(1))), &c); // not ready
        iq.try_dispatch(op(1, 1, None), &c); // ready but behind
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, 0);
        let mut out = Vec::new();
        iq.issue(&c, &mut pa, &mut out);
        assert!(out.is_empty());
        assert_eq!(iq.occupancy(), 2);
    }

    #[test]
    fn port_conflict_blocks_in_order() {
        let mut iq = InOrderIq::new(InOrderIqConfig::default());
        let scb = Scoreboard::new(8);
        let held = HeldSet::new();
        let c = ctx(&scb, &held, 0);
        iq.try_dispatch(op(0, 0, None), &c);
        iq.try_dispatch(op(1, 0, None), &c); // same port
        iq.try_dispatch(op(2, 1, None), &c);
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, 0);
        let mut out = Vec::new();
        iq.issue(&c, &mut pa, &mut out);
        // seq 1 loses port 0 → blocks seq 2 despite port 1 being free.
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn capacity_stalls_dispatch() {
        let mut iq = InOrderIq::new(InOrderIqConfig {
            entries: 2,
            read_ports: 2,
        });
        let scb = Scoreboard::new(8);
        let held = HeldSet::new();
        let c = ctx(&scb, &held, 0);
        assert_eq!(
            iq.try_dispatch(op(0, 0, None), &c),
            DispatchOutcome::Accepted
        );
        assert_eq!(
            iq.try_dispatch(op(1, 0, None), &c),
            DispatchOutcome::Accepted
        );
        assert_eq!(
            iq.try_dispatch(op(2, 0, None), &c),
            DispatchOutcome::Stall(StallReason::Full)
        );
    }

    #[test]
    fn flush_removes_younger_entries() {
        let mut iq = InOrderIq::new(InOrderIqConfig::default());
        let scb = Scoreboard::new(8);
        let held = HeldSet::new();
        let c = ctx(&scb, &held, 0);
        for i in 0..5 {
            iq.try_dispatch(op(i, 0, None), &c);
        }
        iq.flush_after(2, &[]);
        assert_eq!(iq.occupancy(), 3);
    }

    #[test]
    fn mdp_hold_blocks_head() {
        let mut iq = InOrderIq::new(InOrderIqConfig::default());
        let scb = Scoreboard::new(8);
        let mut held = HeldSet::new();
        held.insert(0u64);
        let c = ctx(&scb, &held, 0);
        iq.try_dispatch(op(0, 0, None), &c);
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, 0);
        let mut out = Vec::new();
        iq.issue(&c, &mut pa, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn issue_width_bounded_by_read_ports() {
        let mut iq = InOrderIq::new(InOrderIqConfig {
            entries: 96,
            read_ports: 2,
        });
        let scb = Scoreboard::new(8);
        let held = HeldSet::new();
        let c = ctx(&scb, &held, 0);
        for i in 0..6 {
            iq.try_dispatch(op(i, i as u8, None), &c);
        }
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, 0);
        let mut out = Vec::new();
        iq.issue(&c, &mut pa, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unpipelined_div_stalls_port() {
        let mut iq = InOrderIq::new(InOrderIqConfig::default());
        let scb = Scoreboard::new(8);
        let held = HeldSet::new();
        let c = ctx(&scb, &held, 10);
        let div = SchedUop {
            class: OpClass::IntDiv,
            ..op(0, 0, None)
        };
        iq.try_dispatch(div, &c);
        let mut busy = FuBusy::new();
        busy.reserve(PortId(0), OpClass::IntDiv, 30);
        let mut pa = PortAlloc::new(8, 8, &busy, 10);
        let mut out = Vec::new();
        iq.issue(&c, &mut pa, &mut out);
        assert!(out.is_empty());
    }
}
