//! FXA: the front-end execution architecture \[1\].
//!
//! An in-order execution unit (IXU: a 3-stage pipeline of FUs with a
//! bypass network) sits ahead of a conventional, *half-size* out-of-order
//! IQ. μops whose operands are available by the time they flow through
//! the IXU execute there — including ready-at-dispatch μops and their
//! consumers fed through the IXU bypass — and never occupy the OoO IQ.
//! Everything else dispatches to the back-end.

use crate::ooo::{OooIq, OooIqConfig};
use crate::ports::PortAlloc;
use crate::stats::{IssueBreakdown, SchedEnergyEvents};
use crate::traits::{BlockHorizon, DispatchOutcome, GrantBlock, ReadyCtx, Scheduler};
use crate::uop::SchedUop;
use ballerino_isa::{OpClass, PhysReg};

/// FXA configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FxaConfig {
    /// IXU pipeline depth (Table II: 3 stages).
    pub ixu_stages: u64,
    /// μops the IXU accepts per cycle (Table II: 4r4w).
    pub ixu_width: usize,
    /// Back-end OoO IQ entries (half the baseline: 48 at 8-wide).
    pub backend_entries: usize,
    /// Back-end issue width (Table II: 4).
    pub backend_width: usize,
}

impl Default for FxaConfig {
    fn default() -> Self {
        FxaConfig {
            ixu_stages: 3,
            ixu_width: 4,
            backend_entries: 48,
            backend_width: 4,
        }
    }
}

/// The FXA scheduler.
#[derive(Debug)]
pub struct Fxa {
    cfg: FxaConfig,
    backend: OooIq,
    ixu_cycle: u64,
    ixu_used: usize,
    ixu_issued: u64,
    energy: SchedEnergyEvents,
}

impl Fxa {
    /// Builds an FXA front-end + back-end pair.
    pub fn new(cfg: FxaConfig) -> Self {
        let backend = OooIq::new(OooIqConfig {
            entries: cfg.backend_entries,
            oldest_first: false,
        });
        Fxa {
            cfg,
            backend,
            ixu_cycle: 0,
            ixu_used: 0,
            ixu_issued: 0,
            energy: SchedEnergyEvents::default(),
        }
    }

    fn ixu_eligible_class(class: OpClass) -> bool {
        matches!(
            class,
            OpClass::IntAlu | OpClass::Branch | OpClass::Load | OpClass::Store
        )
    }

    /// Whether the μop can execute inside the IXU: operands available by
    /// the time it reaches the IXU's last stage (bypass window), class
    /// executable by the IXU's simple FUs, no MDP hold, and IXU slot free.
    fn ixu_accepts(&mut self, uop: &SchedUop, ctx: &ReadyCtx<'_>) -> bool {
        if !Self::ixu_eligible_class(uop.class) {
            return false;
        }
        if ctx.held.contains(uop.seq) {
            return false;
        }
        if self.ixu_cycle != ctx.cycle {
            self.ixu_cycle = ctx.cycle;
            self.ixu_used = 0;
        }
        if self.ixu_used >= self.cfg.ixu_width {
            return false;
        }
        let avail = ctx.scb.srcs_ready_cycle(&uop.srcs);
        if avail == u64::MAX || avail > ctx.cycle + (self.cfg.ixu_stages - 1) {
            return false;
        }
        self.ixu_used += 1;
        true
    }
}

impl Scheduler for Fxa {
    fn name(&self) -> &str {
        "fxa"
    }

    fn try_dispatch(&mut self, uop: SchedUop, ctx: &ReadyCtx<'_>) -> DispatchOutcome {
        // The IXU examines every μop's operand availability (energy).
        self.energy.head_examinations += 1;
        if self.ixu_accepts(&uop, ctx) {
            self.ixu_issued += 1;
            return DispatchOutcome::AcceptedIssued;
        }
        self.backend.try_dispatch(uop, ctx)
    }

    fn issue(&mut self, ctx: &ReadyCtx<'_>, ports: &mut PortAlloc<'_>, out: &mut Vec<u64>) {
        // The back-end issues at most `backend_width` per cycle; the IXU
        // does not arbitrate for back-end ports.
        ports.cap_remaining(self.cfg.backend_width);
        self.backend.issue(ctx, ports, out);
    }

    fn on_complete(&mut self, dst: PhysReg) {
        self.backend.on_complete(dst);
    }

    fn flush_after(&mut self, seq: u64, flushed_dests: &[PhysReg]) {
        self.backend.flush_after(seq, flushed_dests);
    }

    fn occupancy(&self) -> usize {
        self.backend.occupancy()
    }

    fn capacity(&self) -> usize {
        self.backend.capacity()
    }

    fn energy_events(&self) -> SchedEnergyEvents {
        let mut e = self.backend.energy_events();
        e.add(&self.energy);
        e
    }

    fn issue_breakdown(&self) -> IssueBreakdown {
        let mut b = self.backend.issue_breakdown();
        b.from_ixu = self.ixu_issued;
        b
    }

    fn macro_grant_block(
        &mut self,
        ctx: &ReadyCtx<'_>,
        ports: &mut PortAlloc<'_>,
        horizon: BlockHorizon,
    ) -> Option<GrantBlock> {
        // `issue` is the capped back-end verbatim, so the back-end's plan
        // (built against the capped width) is FXA's plan. IXU activity
        // stays on the live dispatch path: its front-end executions never
        // enter the back-end fabric, and any resulting early completions
        // that wake back-end residents off-plan fail block validation.
        ports.cap_remaining(self.cfg.backend_width);
        self.backend.macro_grant_block(ctx, ports, horizon)
    }

    fn block_advance(
        &mut self,
        ctx: &ReadyCtx<'_>,
        block: &mut GrantBlock,
        out: &mut Vec<u64>,
    ) -> bool {
        self.backend.block_advance(ctx, block, out)
    }

    fn next_event_cycle(&self, ctx: &ReadyCtx<'_>, pending: Option<&SchedUop>) -> Option<u64> {
        let mut horizon = self.backend.next_event_cycle(ctx, pending)?;
        if let Some(p) = pending {
            // Read-only replica of `ixu_accepts`: a fresh cycle always has
            // IXU slots free, because the lone pending retry is the only
            // dispatch happening while the frontend is stalled.
            if Self::ixu_eligible_class(p.class) && !ctx.held.contains(p.seq) {
                let avail = ctx.scb.srcs_ready_cycle(&p.srcs);
                if avail != u64::MAX {
                    if avail <= ctx.cycle + (self.cfg.ixu_stages - 1) {
                        return None; // IXU would execute it this cycle
                    }
                    // The IXU starts accepting once `avail` slides into
                    // the bypass window.
                    horizon = horizon.min(avail - (self.cfg.ixu_stages - 1));
                }
            }
        }
        Some(horizon)
    }

    fn note_idle_cycles(&mut self, ctx: &ReadyCtx<'_>, pending: Option<&SchedUop>, k: u64) {
        if pending.is_some() {
            // Each refused dispatch retry re-examines operand availability.
            self.energy.head_examinations += k;
        }
        self.backend.note_idle_cycles(ctx, pending, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::held::HeldSet;
    use crate::ports::FuBusy;
    use crate::scoreboard::Scoreboard;
    use ballerino_isa::PortId;

    fn op(seq: u64, class: OpClass, src: Option<u32>) -> SchedUop {
        SchedUop {
            class,
            port: PortId(0),
            srcs: [src.map(PhysReg), None],
            ..SchedUop::test_op(seq)
        }
    }

    #[test]
    fn ready_alu_executes_in_ixu() {
        let mut f = Fxa::new(FxaConfig::default());
        let scb = Scoreboard::new(16);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        assert_eq!(
            f.try_dispatch(op(0, OpClass::IntAlu, None), &ctx),
            DispatchOutcome::AcceptedIssued
        );
        assert_eq!(f.issue_breakdown().from_ixu, 1);
        assert_eq!(f.occupancy(), 0);
    }

    #[test]
    fn consumer_within_bypass_window_also_executes_in_ixu() {
        let mut f = Fxa::new(FxaConfig::default());
        let mut scb = Scoreboard::new(16);
        // Producer issued this cycle; result ready at cycle+1 (alu).
        scb.allocate(PhysReg(1));
        scb.set_ready_at(PhysReg(1), 1);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        assert_eq!(
            f.try_dispatch(op(1, OpClass::IntAlu, Some(1)), &ctx),
            DispatchOutcome::AcceptedIssued
        );
    }

    #[test]
    fn load_consumer_goes_to_backend() {
        let mut f = Fxa::new(FxaConfig::default());
        let mut scb = Scoreboard::new(16);
        // Load result ready far in the future (cache access).
        scb.allocate(PhysReg(1));
        scb.set_ready_at(PhysReg(1), 50);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        assert_eq!(
            f.try_dispatch(op(1, OpClass::IntAlu, Some(1)), &ctx),
            DispatchOutcome::Accepted
        );
        assert_eq!(f.occupancy(), 1);
    }

    #[test]
    fn fp_compute_always_goes_to_backend() {
        let mut f = Fxa::new(FxaConfig::default());
        let scb = Scoreboard::new(16);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        assert_eq!(
            f.try_dispatch(op(0, OpClass::FpMul, None), &ctx),
            DispatchOutcome::Accepted
        );
    }

    #[test]
    fn ixu_width_limits_per_cycle_executions() {
        let mut f = Fxa::new(FxaConfig::default());
        let scb = Scoreboard::new(16);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        for i in 0..4 {
            assert_eq!(
                f.try_dispatch(op(i, OpClass::IntAlu, None), &ctx),
                DispatchOutcome::AcceptedIssued
            );
        }
        // Fifth in the same cycle overflows the IXU.
        assert_eq!(
            f.try_dispatch(op(4, OpClass::IntAlu, None), &ctx),
            DispatchOutcome::Accepted
        );
        // New cycle: IXU slots recycle.
        let ctx1 = ReadyCtx {
            cycle: 1,
            scb: &scb,
            held: &held,
        };
        assert_eq!(
            f.try_dispatch(op(5, OpClass::IntAlu, None), &ctx1),
            DispatchOutcome::AcceptedIssued
        );
    }

    #[test]
    fn mdp_held_load_goes_to_backend() {
        let mut f = Fxa::new(FxaConfig::default());
        let scb = Scoreboard::new(16);
        let mut held = HeldSet::new();
        held.insert(0u64);
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        assert_eq!(
            f.try_dispatch(op(0, OpClass::Load, None), &ctx),
            DispatchOutcome::Accepted
        );
    }

    #[test]
    fn backend_issues_when_operands_arrive() {
        let mut f = Fxa::new(FxaConfig::default());
        let mut scb = Scoreboard::new(16);
        scb.allocate(PhysReg(1));
        scb.set_ready_at(PhysReg(1), 50);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        f.try_dispatch(op(1, OpClass::IntAlu, Some(1)), &ctx);
        f.on_complete(PhysReg(1)); // writeback edge the pipeline delivers at ready_at
        let busy = FuBusy::new();
        let ctx50 = ReadyCtx {
            cycle: 50,
            scb: &scb,
            held: &held,
        };
        let mut pa = PortAlloc::new(8, 8, &busy, 50);
        let mut out = Vec::new();
        f.issue(&ctx50, &mut pa, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(f.issue_breakdown().from_ooo, 1);
    }
}
