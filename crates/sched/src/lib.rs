//! # ballerino-sched
//!
//! The dynamic-scheduling abstraction and every baseline scheduler the
//! paper evaluates against:
//!
//! * [`ino`] — stall-on-use in-order issue queue (the `InO` baseline),
//! * [`ooo`] — the unified out-of-order IQ: CAM-style wakeup without
//!   compaction and per-port prefix-sum select, with an optional
//!   oldest-first select policy (Fig. 2 / §II-A),
//! * [`ces`] — Complexity-Effective Superscalar clustered P-IQs with
//!   dependence-based steering \[3\], plus the MDA-steering extension the
//!   paper evaluates in Fig. 13,
//! * [`casino`] — cascaded speculative in-order IQs \[2\],
//! * [`dnb`] — Delay-and-Bypass \[25\]: a criticality/readiness hybrid
//!   extension baseline from the paper's related work (§VII),
//! * [`lsc`] — Load Slice Core \[8\]: a slice-out-of-order extension
//!   baseline from the paper's related work (§VII),
//! * [`ldt`] — real-time load-delay tracking (Diavastos & Carlson, see
//!   PAPERS.md): delay-sorted select driven by a per-register predicted
//!   ready-cycle table, an extension kind beyond the paper's own set,
//! * [`fxa`] — front-end execution architecture: an in-order execution
//!   unit (IXU) filtering ready μops ahead of a half-size OoO IQ \[1\].
//!
//! The Ballerino scheduler itself (the paper's contribution) lives in the
//! `ballerino-core` crate and implements the same [`Scheduler`] trait.
//!
//! ## Contract
//!
//! The pipeline model drives a scheduler with three calls per cycle, in
//! this order: [`Scheduler::issue`], then any
//! number of [`Scheduler::try_dispatch`] calls; completions and flushes
//! arrive via [`Scheduler::on_complete`] / [`Scheduler::flush_after`].

#![warn(missing_docs)]

pub mod casino;
pub mod ces;
pub mod dnb;
pub mod fabric;
pub mod fxa;
pub mod held;
pub mod ino;
pub mod ldt;
pub mod loc;
pub mod lsc;
pub mod ooo;
pub mod ports;
pub mod scoreboard;
pub mod stats;
pub mod traits;
pub mod uop;

pub use casino::{Casino, CasinoConfig};
pub use ces::{Ces, CesConfig};
pub use dnb::{Dnb, DnbConfig};
pub use fabric::{WakeFabric, WakeState};
pub use fxa::{Fxa, FxaConfig};
pub use held::HeldSet;
pub use ino::{InOrderIq, InOrderIqConfig};
pub use ldt::{DelayTable, Ldt, LdtConfig};
pub use loc::{LocEntry, LocTable};
pub use lsc::{Lsc, LscConfig};
pub use ooo::{OooIq, OooIqConfig};
pub use ports::{FuBusy, PortAlloc};
pub use scoreboard::Scoreboard;
pub use stats::{
    HeadState, HeadStateStats, IssueBreakdown, SchedEnergyEvents, SteerEvent, SteerStats,
};
pub use traits::{BlockHorizon, DispatchOutcome, GrantBlock, ReadyCtx, Scheduler, StallReason};
pub use uop::SchedUop;
