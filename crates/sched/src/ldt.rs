//! Load-delay-tracking issue queue (`LDT`): the Diavastos & Carlson
//! real-time load-delay-tracking scheduler, an extension kind the source
//! paper never evaluated (see PAPERS.md, *Efficient Instruction
//! Scheduling using Real-time Load Delay Tracking*).
//!
//! Each dispatched μop is annotated with a *predicted ready cycle*
//! derived from a per-physical-register [`DelayTable`] (the delay
//! analogue of [`LocTable`](crate::loc::LocTable)): a μop's prediction is
//! the latest predicted ready cycle of its sources, and its destination
//! inherits that prediction plus the producer's latency — a tracked
//! running estimate for loads, a fixed short latency for everything
//! else. Select then grants *soonest-predicted-ready first* instead of
//! lowest-slot-first: the prediction is encoded in the high bits of the
//! [`WakeFabric`] entry tag, so the shared select/port-claim loop (and
//! its grant-identical [`WakeFabric::select_fast`] macro path) realises
//! the delay-sorted ready structure with no extra machinery.
//!
//! The load-delay estimate itself is updated *in real time*: every
//! issued load is watched, and once the scoreboard publishes its actual
//! completion cycle the observed delay folds into an exponential moving
//! average. No memory-level profiling, no static tables.
//!
//! `BALLERINO_BROADCAST_WAKEUP=1` (or [`Ldt::with_broadcast_wakeup`])
//! keeps a legacy O(window) scan decision path for A/B debugging,
//! exactly like the unified [`OooIq`](crate::ooo::OooIq).

use crate::fabric::WakeFabric;
use crate::ports::PortAlloc;
use crate::stats::{IssueBreakdown, SchedEnergyEvents};
use crate::traits::{BlockHorizon, DispatchOutcome, GrantBlock, ReadyCtx, Scheduler, StallReason};
use crate::uop::SchedUop;
use ballerino_isa::{PhysReg, MAX_PORTS};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Bits of the fabric tag reserved for the slot index; the predicted
/// delay occupies the bits above. Slot bits make every resident's tag
/// unique, which [`WakeFabric::select_fast`] requires.
const SLOT_BITS: u32 = 10;
/// Maximum window size the tag encoding supports.
const MAX_SLOTS: usize = 1 << SLOT_BITS;
/// Mask extracting the slot index from a tag.
const SLOT_MASK: u32 = (1 << SLOT_BITS) - 1;
/// Predicted delays saturate here so the tag stays within `u32`.
const DELAY_CLAMP: u64 = (1 << (32 - SLOT_BITS - 1)) - 1;

/// Per-physical-register predicted-ready-cycle table (the delay
/// analogue of [`LocTable`](crate::loc::LocTable)). A zero entry means
/// "no prediction": the value is treated as ready now.
#[derive(Debug, Clone)]
pub struct DelayTable {
    entries: Vec<u64>,
    /// Table reads performed (energy accounting).
    pub reads: u64,
    /// Table writes performed.
    pub writes: u64,
}

impl DelayTable {
    /// Creates a table for `n` physical registers, all unpredicted.
    pub fn new(n: usize) -> Self {
        DelayTable {
            entries: vec![0; n],
            reads: 0,
            writes: 0,
        }
    }

    /// Reads the predicted ready cycle for `p` (0 when unpredicted).
    pub fn predicted_ready(&mut self, p: PhysReg) -> u64 {
        self.reads += 1;
        self.entries[p.index()]
    }

    /// Reads without counting (read-only replicas, tests).
    pub fn peek(&self, p: PhysReg) -> u64 {
        self.entries[p.index()]
    }

    /// Records that `p`'s value is predicted ready at `cycle`.
    pub fn set_predicted(&mut self, p: PhysReg, cycle: u64) {
        self.writes += 1;
        self.entries[p.index()] = cycle;
    }

    /// Clears the prediction (value produced, or producer squashed).
    pub fn clear(&mut self, p: PhysReg) {
        self.writes += 1;
        self.entries[p.index()] = 0;
    }
}

/// Configuration of the load-delay-tracking IQ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdtConfig {
    /// IQ entries (Table II budgets; at most `MAX_SLOTS`).
    pub entries: usize,
    /// Physical registers the delay table covers.
    pub num_phys_regs: usize,
}

impl Default for LdtConfig {
    fn default() -> Self {
        LdtConfig {
            entries: 96,
            num_phys_regs: 512,
        }
    }
}

/// The load-delay-tracking issue queue.
#[derive(Debug)]
pub struct Ldt {
    cfg: LdtConfig,
    slots: Vec<Option<SchedUop>>,
    /// Fabric tag per occupied slot: `(predicted delay << SLOT_BITS) |
    /// slot`, so select order is soonest-predicted-ready first (slot
    /// index breaks ties and keeps tags unique).
    tags: Vec<u32>,
    occupancy: usize,
    /// Min-heap of free slot indices (lowest slot reused first, as in
    /// the unified OoO IQ).
    free_slots: BinaryHeap<Reverse<usize>>,
    fabric: WakeFabric,
    dt: DelayTable,
    /// Running load-delay estimate in cycles (EWMA of observed delays).
    tracked_delay: u64,
    /// Issued loads awaiting delay observation: `(dst, issue cycle)`.
    /// The scoreboard publishes the actual completion cycle the same
    /// cycle a load issues, so the queue fully drains at the next
    /// scheduler activity.
    inflight: VecDeque<(PhysReg, u64)>,
    /// A/B knob: decide issue/quiesce from the legacy O(window) scan
    /// instead of the fabric (`BALLERINO_BROADCAST_WAKEUP=1`).
    broadcast_wakeup: bool,
    energy: SchedEnergyEvents,
    breakdown: IssueBreakdown,
}

/// Initial load-delay estimate before any observation (roughly an L1
/// hit).
const INITIAL_TRACKED_DELAY: u64 = 4;

impl Ldt {
    /// Builds an empty IQ. Honours the `BALLERINO_BROADCAST_WAKEUP=1`
    /// environment knob (see [`Ldt::with_broadcast_wakeup`]).
    pub fn new(cfg: LdtConfig) -> Self {
        assert!(cfg.entries <= MAX_SLOTS, "LDT window exceeds tag encoding");
        let broadcast_wakeup = ballerino_isa::env_flag("BALLERINO_BROADCAST_WAKEUP");
        let slots = vec![None; cfg.entries];
        let tags = vec![0; cfg.entries];
        let free_slots = (0..cfg.entries).map(Reverse).collect();
        let dt = DelayTable::new(cfg.num_phys_regs);
        Ldt {
            cfg,
            slots,
            tags,
            occupancy: 0,
            free_slots,
            fabric: WakeFabric::new(),
            dt,
            tracked_delay: INITIAL_TRACKED_DELAY,
            inflight: VecDeque::new(),
            broadcast_wakeup,
            energy: SchedEnergyEvents::default(),
            breakdown: IssueBreakdown::default(),
        }
    }

    /// Keeps the legacy broadcast-scan decision path (the fabric is
    /// still maintained, just not consulted) for A/B debugging; the env
    /// knob `BALLERINO_BROADCAST_WAKEUP=1` sets the same flag.
    pub fn with_broadcast_wakeup(mut self) -> Self {
        self.broadcast_wakeup = true;
        self
    }

    /// Current load-delay estimate (tests/diagnostics).
    pub fn tracked_delay(&self) -> u64 {
        self.tracked_delay
    }

    /// Folds completed load observations into the running delay
    /// estimate. The scoreboard publishes a load's completion cycle the
    /// same cycle it issues, so every queued observation resolves here;
    /// entries whose register was reallocated in the meantime (only
    /// possible after a flush) are discarded.
    fn observe_loads(&mut self, ctx: &ReadyCtx<'_>) {
        while let Some(&(dst, issued_at)) = self.inflight.front() {
            self.inflight.pop_front();
            let rc = ctx.scb.ready_cycle(dst);
            if rc == u64::MAX {
                continue; // reallocated before observation; no sample
            }
            let observed = rc.saturating_sub(issued_at);
            self.tracked_delay = ((3 * self.tracked_delay + observed) / 4).max(1);
            self.energy.loc_writes += 1; // delay-estimate register update
        }
    }

    /// Bookkeeping for one granted slot: frees it, charges the read,
    /// queues the load-delay observation.
    fn grant_slot(&mut self, i: usize, cycle: u64, out: &mut Vec<u64>) {
        let u = self.slots[i].take().expect("granted slot");
        self.free_slots.push(Reverse(i));
        self.occupancy -= 1;
        self.energy.queue_reads += 1;
        self.breakdown.from_ooo += 1;
        if u.is_load() {
            if let Some(d) = u.dst {
                self.inflight.push_back((d, cycle));
            }
        }
        out.push(u.seq);
        self.fabric.remove(u.seq);
    }

    /// Single-pass select over all slots (the legacy A/B path):
    /// identical grant decisions to the fabric's delay-sorted select,
    /// derived from a full window scan. Priority is the stored tag —
    /// lowest predicted delay first, slot index breaking ties.
    fn select_single_pass(
        &self,
        ctx: &ReadyCtx<'_>,
        ports: &mut PortAlloc<'_>,
        grants: &mut [usize; MAX_PORTS],
    ) -> (bool, usize) {
        let mut any_request = false;
        let mut best_per_port: [Option<usize>; MAX_PORTS] = [None; MAX_PORTS];
        for (i, s) in self.slots.iter().enumerate() {
            let Some(u) = s else { continue };
            if !ctx.is_ready(u) {
                continue;
            }
            any_request = true;
            if !ports.can_claim(u.port, u.class) {
                continue;
            }
            let best = &mut best_per_port[u.port.index()];
            let better = match *best {
                None => true,
                Some(b) => self.tags[i] < self.tags[b],
            };
            if better {
                *best = Some(i);
            }
        }
        let mut n = 0;
        while ports.remaining() > 0 {
            let mut best: Option<usize> = None;
            for cand in best_per_port.iter().flatten() {
                let better = match best {
                    None => true,
                    Some(b) => self.tags[*cand] < self.tags[b],
                };
                if better {
                    best = Some(*cand);
                }
            }
            let Some(i) = best else { break };
            let u = self.slots[i].as_ref().expect("occupied");
            let claimed = ports.try_claim(u.port, u.class);
            debug_assert!(claimed);
            best_per_port[u.port.index()] = None;
            grants[n] = i;
            n += 1;
        }
        (any_request, n)
    }
}

impl Scheduler for Ldt {
    fn name(&self) -> &str {
        "ldt"
    }

    fn try_dispatch(&mut self, uop: SchedUop, ctx: &ReadyCtx<'_>) -> DispatchOutcome {
        match self.free_slots.pop() {
            Some(Reverse(i)) => {
                debug_assert!(self.slots[i].is_none(), "free list out of sync");
                // Predicted ready cycle: the latest source prediction,
                // floored at now (stale predictions never sort a ready
                // μop behind the present).
                let mut pred = ctx.cycle;
                for src in uop.srcs.iter().flatten() {
                    pred = pred.max(self.dt.predicted_ready(*src));
                }
                if let Some(d) = uop.dst {
                    let lat = if uop.is_load() {
                        self.tracked_delay
                    } else {
                        uop.class.exec_latency() as u64
                    };
                    self.dt.set_predicted(d, pred + lat);
                }
                let delay = pred.saturating_sub(ctx.cycle).min(DELAY_CLAMP) as u32;
                let tag = (delay << SLOT_BITS) | i as u32;
                self.tags[i] = tag;
                self.fabric.insert(&uop, tag, ctx);
                self.slots[i] = Some(uop);
                self.occupancy += 1;
                self.energy.queue_writes += 1;
                DispatchOutcome::Accepted
            }
            None => DispatchOutcome::Stall(StallReason::Full),
        }
    }

    fn issue(&mut self, ctx: &ReadyCtx<'_>, ports: &mut PortAlloc<'_>, out: &mut Vec<u64>) {
        if self.occupancy == 0 {
            return;
        }
        // Wakeup evaluates every occupied entry each cycle — a modelled
        // hardware event, charged whether or not the simulator scans.
        self.energy.head_examinations += self.occupancy as u64;
        self.observe_loads(ctx);

        if self.broadcast_wakeup {
            let mut grants = [0usize; MAX_PORTS];
            let (any_request, n) = self.select_single_pass(ctx, ports, &mut grants);
            if any_request {
                self.energy.select_inputs += (self.cfg.entries * MAX_PORTS.min(8)) as u64;
            }
            for &i in &grants[..n] {
                self.grant_slot(i, ctx.cycle, out);
            }
            return;
        }

        self.fabric.poll(ctx);
        let any_request = self.fabric.select(ports, false);
        if any_request {
            // The delay-sorted select circuit still spans all entries.
            self.energy.select_inputs += (self.cfg.entries * MAX_PORTS.min(8)) as u64;
        }
        for k in 0..self.fabric.grant_count() {
            let seq = self.fabric.grant(k);
            let i = (self.fabric.tag_of(seq) & SLOT_MASK) as usize;
            debug_assert_eq!(self.slots[i].as_ref().map(|u| u.seq), Some(seq));
            self.grant_slot(i, ctx.cycle, out);
        }
    }

    fn on_complete(&mut self, dst: PhysReg) {
        // Destination tag broadcast across the CAM wakeup array.
        self.energy.cam_broadcasts += 1;
        self.energy.cam_entries_searched += self.cfg.entries as u64;
        // The value exists: its delay prediction is spent.
        self.dt.clear(dst);
        self.fabric.on_complete(dst);
    }

    fn flush_after(&mut self, seq: u64, flushed_dests: &[PhysReg]) {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.as_ref().map(|u| u.seq > seq).unwrap_or(false) {
                *s = None;
                self.free_slots.push(Reverse(i));
                self.occupancy -= 1;
            }
        }
        self.fabric.flush_after(seq);
        for d in flushed_dests {
            self.dt.clear(*d);
        }
        // Squashed issued loads must not contribute delay samples: their
        // registers roll back to stale-but-ready architectural values.
        self.inflight.retain(|(d, _)| !flushed_dests.contains(d));
    }

    fn occupancy(&self) -> usize {
        self.occupancy
    }

    fn capacity(&self) -> usize {
        self.cfg.entries
    }

    fn energy_events(&self) -> SchedEnergyEvents {
        let mut e = self.energy;
        e.loc_reads += self.dt.reads;
        e.loc_writes += self.dt.writes;
        e
    }

    fn issue_breakdown(&self) -> IssueBreakdown {
        self.breakdown
    }

    fn macro_grant(
        &mut self,
        ctx: &ReadyCtx<'_>,
        ports: &mut PortAlloc<'_>,
        out: &mut Vec<u64>,
    ) -> bool {
        if self.broadcast_wakeup {
            return false; // legacy A/B path goes through `issue`
        }
        if self.occupancy == 0 {
            return true; // `issue` would return without side effects
        }
        // Mirror of `issue`'s fabric path with the grant-identical fast
        // select; every charge matches `issue` line for line.
        self.energy.head_examinations += self.occupancy as u64;
        self.observe_loads(ctx);
        self.fabric.poll(ctx);
        let any_request = self.fabric.select_fast(ports, false);
        if any_request {
            self.energy.select_inputs += (self.cfg.entries * MAX_PORTS.min(8)) as u64;
        }
        for k in 0..self.fabric.grant_count() {
            let seq = self.fabric.grant(k);
            let i = (self.fabric.tag_of(seq) & SLOT_MASK) as usize;
            debug_assert_eq!(self.slots[i].as_ref().map(|u| u.seq), Some(seq));
            self.grant_slot(i, ctx.cycle, out);
        }
        true
    }

    fn macro_grant_block(
        &mut self,
        ctx: &ReadyCtx<'_>,
        ports: &mut PortAlloc<'_>,
        horizon: BlockHorizon,
    ) -> Option<GrantBlock> {
        if self.broadcast_wakeup {
            return None; // legacy A/B path goes through `issue`
        }
        if self.occupancy == 0 {
            return None; // `macro_grant` already handles empty for free
        }
        // Tags are unique (slot index in the low bits), so the plan's
        // tag-keyed select is exact; delay-sorted priority carries over
        // because the tag *is* the priority.
        self.fabric.plan_block(ctx, ports, horizon, false)
    }

    fn block_advance(
        &mut self,
        ctx: &ReadyCtx<'_>,
        block: &mut GrantBlock,
        out: &mut Vec<u64>,
    ) -> bool {
        // Validation first, mutating nothing: a failed cycle falls back
        // to `macro_grant`/`issue`, which charges it exactly once.
        if !self.fabric.verify_block_cycle(block, ctx.cycle) {
            return false;
        }
        if self.occupancy == 0 {
            return true; // `issue` would return without side effects
        }
        // Serve the validated cycle with `macro_grant`'s exact
        // bookkeeping. The delay observation runs every served cycle at
        // the same point `issue` would run it: the tracked-delay EWMA
        // feeds future dispatch tags, so its update cadence is
        // behaviour, not just accounting.
        self.energy.head_examinations += self.occupancy as u64;
        self.observe_loads(ctx);
        if self.fabric.ready_len() > 0 {
            self.energy.select_inputs += (self.cfg.entries * MAX_PORTS.min(8)) as u64;
        }
        while let Some(&(c, seq)) = block.grants.get(block.g_cursor) {
            debug_assert!(c >= ctx.cycle, "block cycles are served in order");
            if c != ctx.cycle {
                break;
            }
            block.g_cursor += 1;
            let i = (self.fabric.tag_of(seq) & SLOT_MASK) as usize;
            debug_assert_eq!(self.slots[i].as_ref().map(|u| u.seq), Some(seq));
            self.grant_slot(i, ctx.cycle, out);
        }
        true
    }

    fn next_event_cycle(&self, ctx: &ReadyCtx<'_>, pending: Option<&SchedUop>) -> Option<u64> {
        if pending.is_some() && self.occupancy < self.cfg.entries {
            return None; // dispatch would be accepted this cycle
        }
        if self.broadcast_wakeup {
            // Legacy O(window) quiesce scan (A/B knob path).
            let mut horizon = u64::MAX;
            for u in self.slots.iter().flatten() {
                let wake = ctx.wake_cycle(u);
                if wake <= ctx.cycle {
                    return None;
                }
                horizon = horizon.min(wake);
            }
            return Some(horizon);
        }
        self.fabric.min_wake(ctx)
    }

    fn note_idle_cycles(&mut self, ctx: &ReadyCtx<'_>, _pending: Option<&SchedUop>, k: u64) {
        // Idle wakeup still evaluates every occupied entry each cycle.
        self.energy.head_examinations += k * self.occupancy as u64;
        // The first idle `issue` call would have drained the observation
        // queue (it only runs with residents present, matching `issue`'s
        // empty-window early return); the queue cannot refill during an
        // idle window, so one drain replicates all k.
        if self.occupancy > 0 {
            self.observe_loads(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::held::HeldSet;
    use crate::ports::FuBusy;
    use crate::scoreboard::Scoreboard;
    use ballerino_isa::{OpClass, PortId};

    fn op(seq: u64, port: u8, src: Option<u32>) -> SchedUop {
        SchedUop {
            port: PortId(port),
            srcs: [src.map(PhysReg), None],
            ..SchedUop::test_op(seq)
        }
    }

    fn load(seq: u64, port: u8, dst: u32) -> SchedUop {
        SchedUop {
            class: OpClass::Load,
            dst: Some(PhysReg(dst)),
            ..op(seq, port, None)
        }
    }

    fn issue_once(iq: &mut Ldt, scb: &Scoreboard, cycle: u64) -> Vec<u64> {
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle,
            scb,
            held: &held,
        };
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, cycle);
        let mut out = Vec::new();
        iq.issue(&ctx, &mut pa, &mut out);
        out
    }

    #[test]
    fn issues_ready_ops_out_of_order() {
        let mut iq = Ldt::new(LdtConfig::default());
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(1)); // op 0's source never ready
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        iq.try_dispatch(op(0, 0, Some(1)), &ctx);
        iq.try_dispatch(op(1, 1, None), &ctx);
        iq.try_dispatch(op(2, 2, None), &ctx);
        let out = issue_once(&mut iq, &scb, 0);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(iq.occupancy(), 1);
    }

    #[test]
    fn select_prefers_the_soonest_predicted_ready() {
        let mut iq = Ldt::new(LdtConfig::default());
        let scb = Scoreboard::new(64);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        // A load annotates its destination with the tracked delay; a
        // consumer dispatched before the wakeup clears the prediction
        // inherits it and sorts behind a zero-delay rival on the same
        // port — even though the consumer holds the lower slot *and*
        // the lower seq (an OoO IQ would grant it either way).
        iq.try_dispatch(load(0, 0, 10), &ctx);
        let _ = issue_once(&mut iq, &scb, 0); // load issues from slot 0
        iq.try_dispatch(op(1, 3, Some(10)), &ctx); // slot 0, predicted late
        iq.try_dispatch(op(2, 3, None), &ctx); // slot 1, predicted now
        let out = issue_once(&mut iq, &scb, 0);
        assert_eq!(out, vec![2]);
        assert_eq!(issue_once(&mut iq, &scb, 1), vec![1]);
    }

    #[test]
    fn tracked_delay_adapts_to_observed_load_latency() {
        let mut iq = Ldt::new(LdtConfig::default());
        let mut scb = Scoreboard::new(64);
        let held = HeldSet::new();
        assert_eq!(iq.tracked_delay(), INITIAL_TRACKED_DELAY);
        scb.allocate(PhysReg(11));
        {
            let ctx = ReadyCtx {
                cycle: 0,
                scb: &scb,
                held: &held,
            };
            iq.try_dispatch(load(0, 0, 10), &ctx);
            iq.try_dispatch(op(1, 1, Some(11)), &ctx); // keeps the window occupied
        }
        let out = issue_once(&mut iq, &scb, 0);
        assert_eq!(out, vec![0]);
        // The core would publish the load's completion at issue time.
        scb.set_ready_at(PhysReg(10), 20);
        let _ = issue_once(&mut iq, &scb, 1); // drains the observation
        assert_eq!(iq.tracked_delay(), (3 * INITIAL_TRACKED_DELAY + 20) / 4);
    }

    #[test]
    fn full_queue_stalls() {
        let mut iq = Ldt::new(LdtConfig {
            entries: 1,
            ..LdtConfig::default()
        });
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(1));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        assert_eq!(
            iq.try_dispatch(op(0, 0, Some(1)), &ctx),
            DispatchOutcome::Accepted
        );
        assert_eq!(
            iq.try_dispatch(op(1, 1, None), &ctx),
            DispatchOutcome::Stall(StallReason::Full)
        );
    }

    #[test]
    fn flush_clears_younger_slots_and_predictions() {
        let mut iq = Ldt::new(LdtConfig::default());
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(1));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        for i in 0..5 {
            let mut u = op(i, i as u8, Some(1));
            u.dst = Some(PhysReg(20 + i as u32));
            iq.try_dispatch(u, &ctx);
        }
        let dests: Vec<PhysReg> = (2..5).map(|i| PhysReg(20 + i)).collect();
        iq.flush_after(1, &dests);
        assert_eq!(iq.occupancy(), 2);
        for d in &dests {
            assert_eq!(iq.dt.peek(*d), 0);
        }
        assert_ne!(iq.dt.peek(PhysReg(20)), 0);
    }

    #[test]
    fn delay_table_charges_fold_into_energy() {
        let mut iq = Ldt::new(LdtConfig::default());
        let scb = Scoreboard::new(64);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        // One source read + one destination write.
        let mut u = op(0, 0, Some(1));
        u.dst = Some(PhysReg(2));
        let mut scb2 = Scoreboard::new(64);
        scb2.allocate(PhysReg(1));
        let ctx2 = ReadyCtx {
            cycle: 0,
            scb: &scb2,
            held: &held,
        };
        iq.try_dispatch(u, &ctx2);
        let e = iq.energy_events();
        assert_eq!(e.loc_reads, 1);
        assert_eq!(e.loc_writes, 1);
        // Wakeup clears the prediction: one more counted write.
        iq.on_complete(PhysReg(2));
        assert_eq!(iq.energy_events().loc_writes, 2);
        let _ = ctx;
    }

    #[test]
    fn wakeup_charges_cam_energy() {
        let mut iq = Ldt::new(LdtConfig::default());
        iq.on_complete(PhysReg(0));
        iq.on_complete(PhysReg(1));
        let e = iq.energy_events();
        assert_eq!(e.cam_broadcasts, 2);
        assert_eq!(e.cam_entries_searched, 2 * 96);
    }

    #[test]
    fn broadcast_path_matches_fabric_grants() {
        let mut f = Ldt::new(LdtConfig::default());
        let mut b = Ldt::new(LdtConfig::default()).with_broadcast_wakeup();
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(1));
        let held = HeldSet::new();
        {
            let ctx = ReadyCtx {
                cycle: 0,
                scb: &scb,
                held: &held,
            };
            for iq in [&mut f, &mut b] {
                iq.try_dispatch(load(0, 0, 10), &ctx);
                iq.try_dispatch(op(1, 3, Some(10)), &ctx);
                iq.try_dispatch(op(2, 3, None), &ctx);
                iq.try_dispatch(op(3, 1, Some(1)), &ctx);
            }
        }
        for cycle in 0..4 {
            if cycle == 2 {
                scb.set_ready_at(PhysReg(1), 2);
                f.on_complete(PhysReg(1));
                b.on_complete(PhysReg(1));
            }
            let of = issue_once(&mut f, &scb, cycle);
            let ob = issue_once(&mut b, &scb, cycle);
            assert_eq!(of, ob, "cycle {cycle}");
        }
        assert_eq!(f.occupancy(), b.occupancy());
    }
}
