//! Load Slice Core (LSC) — a slice-out-of-order design from the paper's
//! related work (§VII, \[8\]), included as an extension baseline.
//!
//! Two in-order queues: the **bypass queue** holds memory accesses and
//! the backward *address-generating slices* of loads; the **main queue**
//! holds everything else. The bypass queue may issue ahead of the main
//! queue, so address computation and cache misses start early (MLP)
//! while execution otherwise stays in order.
//!
//! Slices are learned iteratively with an **instruction slice table
//! (IST)**: when a load dispatches, the instruction that produced its
//! base register is marked; over loop iterations the transitive closure
//! of address producers migrates into the bypass queue.

use crate::ports::PortAlloc;
use crate::stats::{IssueBreakdown, SchedEnergyEvents};
use crate::traits::{DispatchOutcome, ReadyCtx, Scheduler, StallReason};
use crate::uop::SchedUop;
use ballerino_isa::PhysReg;
use std::collections::{HashMap, VecDeque};

/// LSC configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LscConfig {
    /// Bypass-queue entries.
    pub bypass_entries: usize,
    /// Main-queue entries.
    pub main_entries: usize,
    /// IST entries (PC-indexed, direct mapped).
    pub ist_entries: usize,
    /// Issue slots per queue per cycle.
    pub ports_per_queue: usize,
}

impl Default for LscConfig {
    fn default() -> Self {
        // Split the baseline 96-entry window between the two queues.
        LscConfig {
            bypass_entries: 32,
            main_entries: 64,
            ist_entries: 1024,
            ports_per_queue: 4,
        }
    }
}

/// The Load Slice Core scheduler.
#[derive(Debug)]
pub struct Lsc {
    cfg: LscConfig,
    bypass: VecDeque<SchedUop>,
    main: VecDeque<SchedUop>,
    ist: Vec<bool>,
    /// PC of the most recent writer of each physical register (for the
    /// iterative backward-slice walk).
    writer_pc: HashMap<u32, u64>,
    energy: SchedEnergyEvents,
    breakdown: IssueBreakdown,
    /// μops routed through the bypass queue.
    pub bypassed: u64,
}

impl Lsc {
    /// Builds an empty LSC scheduler.
    pub fn new(cfg: LscConfig) -> Self {
        let ist = vec![false; cfg.ist_entries];
        Lsc {
            cfg,
            bypass: VecDeque::new(),
            main: VecDeque::new(),
            ist,
            writer_pc: HashMap::new(),
            energy: SchedEnergyEvents::default(),
            breakdown: IssueBreakdown::default(),
            bypassed: 0,
        }
    }

    fn ist_index(&self, pc: u64) -> usize {
        (pc as usize / 4) % self.cfg.ist_entries
    }

    /// Whether the IST marks `pc` as part of a load's address slice.
    pub fn in_slice(&self, pc: u64) -> bool {
        self.ist[self.ist_index(pc)]
    }

    fn issue_from(
        q: &mut VecDeque<SchedUop>,
        window: usize,
        ctx: &ReadyCtx<'_>,
        ports: &mut PortAlloc<'_>,
        energy: &mut SchedEnergyEvents,
        out: &mut Vec<u64>,
    ) -> u64 {
        let mut issued = 0;
        for _ in 0..window {
            let Some(head) = q.front() else { break };
            energy.head_examinations += 1;
            if !ctx.is_ready(head) || !ports.try_claim(head.port, head.class) {
                break; // each queue is strictly in-order
            }
            let u = q.pop_front().expect("head");
            energy.queue_reads += 1;
            out.push(u.seq);
            issued += 1;
        }
        issued
    }
}

impl Scheduler for Lsc {
    fn name(&self) -> &str {
        "lsc"
    }

    fn try_dispatch(&mut self, uop: SchedUop, _ctx: &ReadyCtx<'_>) -> DispatchOutcome {
        // Iterative slice learning: a load's base-register producer joins
        // the slice (it will route to the bypass queue on its next
        // dynamic instance).
        if uop.is_load() {
            for src in uop.srcs.iter().flatten() {
                if let Some(&pc) = self.writer_pc.get(&src.raw()) {
                    let idx = self.ist_index(pc);
                    self.ist[idx] = true;
                    self.energy.loc_writes += 1;
                }
            }
        }
        let to_bypass = uop.is_load() || uop.is_store() || self.in_slice(uop.pc);
        self.energy.loc_reads += 1; // IST lookup at dispatch

        // A slice instruction's own producers are walked one level per
        // iteration: if this μop is in the slice, mark its producers too
        // (transitive closure over iterations, as in the LSC paper).
        if to_bypass && !uop.is_store() {
            for src in uop.srcs.iter().flatten() {
                if let Some(&pc) = self.writer_pc.get(&src.raw()) {
                    let idx = self.ist_index(pc);
                    self.ist[idx] = true;
                }
            }
        }
        if let Some(d) = uop.dst {
            self.writer_pc.insert(d.raw(), uop.pc);
        }

        let (q, cap) = if to_bypass {
            (&mut self.bypass, self.cfg.bypass_entries)
        } else {
            (&mut self.main, self.cfg.main_entries)
        };
        if q.len() >= cap {
            return DispatchOutcome::Stall(StallReason::Full);
        }
        if to_bypass {
            self.bypassed += 1;
        }
        self.energy.queue_writes += 1;
        q.push_back(uop);
        DispatchOutcome::Accepted
    }

    fn issue(&mut self, ctx: &ReadyCtx<'_>, ports: &mut PortAlloc<'_>, out: &mut Vec<u64>) {
        // Bypass queue first: that is the whole point of the design.
        let b = Self::issue_from(
            &mut self.bypass,
            self.cfg.ports_per_queue,
            ctx,
            ports,
            &mut self.energy,
            out,
        );
        let m = Self::issue_from(
            &mut self.main,
            self.cfg.ports_per_queue,
            ctx,
            ports,
            &mut self.energy,
            out,
        );
        self.breakdown.from_siq += b; // bypass issues reported as S-IQ-like
        self.breakdown.from_inorder += m;
        if b + m > 0 {
            self.energy.select_inputs += (2 * self.cfg.ports_per_queue) as u64;
        }
    }

    fn on_complete(&mut self, _dst: PhysReg) {}

    fn flush_after(&mut self, seq: u64, _flushed_dests: &[PhysReg]) {
        for q in [&mut self.bypass, &mut self.main] {
            while q.back().map(|u| u.seq > seq).unwrap_or(false) {
                q.pop_back();
            }
        }
    }

    fn occupancy(&self) -> usize {
        self.bypass.len() + self.main.len()
    }

    fn capacity(&self) -> usize {
        self.cfg.bypass_entries + self.cfg.main_entries
    }

    fn energy_events(&self) -> SchedEnergyEvents {
        self.energy
    }

    fn issue_breakdown(&self) -> IssueBreakdown {
        self.breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::held::HeldSet;
    use crate::ports::FuBusy;
    use crate::scoreboard::Scoreboard;
    use ballerino_isa::{OpClass, PortId};

    fn op(seq: u64, pc: u64, class: OpClass, dst: Option<u32>, src: Option<u32>) -> SchedUop {
        SchedUop {
            seq,
            pc,
            class,
            port: PortId(if class == OpClass::Load { 2 } else { 0 }),
            srcs: [src.map(PhysReg), None],
            dst: dst.map(PhysReg),
            ssid: None,
            mdp_wait: None,
            load_dep: false,
        }
    }

    fn issue_once(l: &mut Lsc, scb: &Scoreboard, cycle: u64) -> Vec<u64> {
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle,
            scb,
            held: &held,
        };
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, cycle);
        let mut out = Vec::new();
        l.issue(&ctx, &mut pa, &mut out);
        out
    }

    #[test]
    fn loads_always_take_the_bypass_queue() {
        let mut l = Lsc::new(LscConfig::default());
        let scb = Scoreboard::new(64);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        l.try_dispatch(op(1, 0x400, OpClass::Load, Some(10), None), &ctx);
        assert_eq!(l.bypassed, 1);
    }

    #[test]
    fn address_producers_join_the_slice_over_iterations() {
        let mut l = Lsc::new(LscConfig::default());
        let scb = Scoreboard::new(64);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        // Iteration 1: ALU at 0x400 produces p10; load at 0x404 uses it.
        l.try_dispatch(op(1, 0x400, OpClass::IntAlu, Some(10), None), &ctx);
        assert_eq!(l.bypassed, 0, "first instance not yet known to be a slice");
        l.try_dispatch(op(2, 0x404, OpClass::Load, Some(11), Some(10)), &ctx);
        assert!(l.in_slice(0x400), "producer PC must be marked in the IST");
        // Iteration 2: the same static ALU now routes to the bypass queue.
        l.try_dispatch(op(3, 0x400, OpClass::IntAlu, Some(12), None), &ctx);
        assert_eq!(l.bypassed, 2);
    }

    #[test]
    fn bypass_queue_issues_ahead_of_blocked_main_queue() {
        let mut l = Lsc::new(LscConfig::default());
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(20)); // main-queue head depends on this
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        l.try_dispatch(op(1, 0x500, OpClass::IntAlu, Some(21), Some(20)), &ctx); // main, blocked
        l.try_dispatch(op(2, 0x504, OpClass::Load, Some(22), None), &ctx); // bypass, ready
        let out = issue_once(&mut l, &scb, 0);
        assert_eq!(out, vec![2], "the load must bypass the stalled main queue");
    }

    #[test]
    fn each_queue_is_strictly_in_order() {
        let mut l = Lsc::new(LscConfig::default());
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(20));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        // Two bypass loads; the first blocked on its base register.
        l.try_dispatch(op(1, 0x500, OpClass::Load, Some(21), Some(20)), &ctx);
        l.try_dispatch(op(2, 0x504, OpClass::Load, Some(22), None), &ctx);
        let out = issue_once(&mut l, &scb, 0);
        assert!(
            out.is_empty(),
            "in-order bypass queue must stall behind its head"
        );
    }

    #[test]
    fn flush_trims_both_queues() {
        let mut l = Lsc::new(LscConfig::default());
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(20));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        l.try_dispatch(op(1, 0x500, OpClass::IntAlu, Some(21), Some(20)), &ctx);
        l.try_dispatch(op(2, 0x504, OpClass::Load, Some(22), Some(20)), &ctx);
        l.try_dispatch(op(3, 0x508, OpClass::Load, Some(23), Some(20)), &ctx);
        l.flush_after(1, &[]);
        assert_eq!(l.occupancy(), 1);
    }

    #[test]
    fn full_queues_stall_dispatch() {
        let mut l = Lsc::new(LscConfig {
            bypass_entries: 1,
            ..LscConfig::default()
        });
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(20));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        assert_eq!(
            l.try_dispatch(op(1, 0x500, OpClass::Load, Some(21), Some(20)), &ctx),
            DispatchOutcome::Accepted
        );
        assert_eq!(
            l.try_dispatch(op(2, 0x504, OpClass::Load, Some(22), Some(20)), &ctx),
            DispatchOutcome::Stall(StallReason::Full)
        );
    }
}
