//! The [`Scheduler`] trait: the contract between the pipeline model and
//! every IQ design (baselines here, Ballerino in `ballerino-core`).

use crate::held::HeldSet;
use crate::ports::PortAlloc;
use crate::scoreboard::Scoreboard;
use crate::stats::{HeadStateStats, IssueBreakdown, SchedEnergyEvents, SteerStats};
use crate::uop::SchedUop;
use ballerino_isa::PhysReg;

/// Per-cycle context handed to schedulers: the cycle number, register
/// readiness, and the set of μops currently serialized by the MDP.
#[derive(Debug)]
pub struct ReadyCtx<'a> {
    /// Current cycle.
    pub cycle: u64,
    /// Physical-register readiness.
    pub scb: &'a Scoreboard,
    /// Sequence numbers of loads/stores still waiting for a predicted
    /// producer store to issue.
    pub held: &'a HeldSet,
}

impl ReadyCtx<'_> {
    /// Whether `u` could issue this cycle: all register sources ready and
    /// no outstanding MDP hold.
    pub fn is_ready(&self, u: &SchedUop) -> bool {
        self.scb.srcs_ready(&u.srcs, self.cycle) && !self.held.contains(u.seq)
    }

    /// Whether `u`'s register sources are ready but an MDP hold blocks it
    /// (the `StallMdepLoad` head state of Fig. 6a).
    pub fn is_mdp_blocked(&self, u: &SchedUop) -> bool {
        self.scb.srcs_ready(&u.srcs, self.cycle) && self.held.contains(u.seq)
    }

    /// First cycle at which [`ReadyCtx::is_ready`] becomes true for `u`,
    /// assuming no pipeline activity until then: `u64::MAX` while an MDP
    /// hold is outstanding (holds release only when a store *issues*,
    /// which is scheduler activity by definition), otherwise the latest
    /// source ready cycle (which may be `<= cycle` for a ready μop).
    pub fn wake_cycle(&self, u: &SchedUop) -> u64 {
        if self.held.contains(u.seq) {
            u64::MAX
        } else {
            self.scb.srcs_ready_cycle(&u.srcs)
        }
    }
}

/// Planning parameters for [`Scheduler::macro_grant_block`].
#[derive(Debug, Clone, Copy)]
pub struct BlockHorizon {
    /// Maximum number of cycles the block may cover.
    pub cycles: u64,
    /// The core's optimistic load-to-use completion hint: a block-planned
    /// load's result is assumed available `load_latency` cycles after its
    /// grant (an L1 hit on the fast path). The plan is a prediction, not
    /// a promise — a slower actual completion makes the predicted wakeup
    /// miss its cycle, which the per-cycle validation in
    /// [`Scheduler::block_advance`] catches before any state diverges.
    pub load_latency: u64,
}

/// A pre-computed multi-cycle issue schedule over `[start, end)`.
///
/// Produced by [`Scheduler::macro_grant_block`] in one pass over the
/// scheduler's ready/waiting sets, consumed one cycle at a time by
/// [`Scheduler::block_advance`]. The block carries everything needed to
/// *verify* each cycle before serving it: the planned grants, the
/// predicted Waiting→Ready wakeups the plan depends on, and the exact
/// ready-set population expected at each cycle's issue point. The
/// scheduler itself holds no block state — a block can be dropped at any
/// cycle boundary and the per-cycle oracle path resumes bit-exactly.
#[derive(Debug, Clone, Default)]
pub struct GrantBlock {
    /// First cycle the block covers.
    pub start: u64,
    /// One past the last cycle the block covers.
    pub end: u64,
    /// Planned `(cycle, seq)` grants, sorted by cycle (ties in select
    /// priority order, which for the fabric designs is also the order
    /// `issue` would have pushed them).
    pub grants: Vec<(u64, u64)>,
    /// Cursor into `grants`: first not-yet-served entry.
    pub g_cursor: usize,
    /// Predicted Waiting→Ready transitions `(cycle, seq)` among resident
    /// μops, sorted by cycle. `block_advance` verifies each predicted
    /// wake actually happened (entry is Ready) before serving its cycle.
    pub wakes: Vec<(u64, u64)>,
    /// Cursor into `wakes`: first not-yet-verified entry.
    pub w_cursor: usize,
    /// Expected ready-set size at the issue point of each covered cycle
    /// (relative index `cycle - start`), *before* that cycle's grants are
    /// removed. Any divergence — an unplanned dispatch, an early or extra
    /// wakeup — shows up as a count mismatch and invalidates the block.
    pub expected_ready: Vec<u32>,
}

impl GrantBlock {
    /// Cycles the block covers.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the block covers no cycles.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Why a dispatch was refused this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The scheduler (or its front queue) is out of entries.
    Full,
    /// Steering found no free (or shareable) P-IQ.
    NoFreeQueue,
}

/// Result of offering a μop to a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchOutcome {
    /// Accepted into the scheduling window.
    Accepted,
    /// Accepted *and issued immediately* (FXA's IXU executes
    /// ready-at-dispatch μops in the front-end). The pipeline treats the
    /// μop as issued in the current cycle.
    AcceptedIssued,
    /// Refused; the pipeline must stall dispatch and retry next cycle.
    Stall(StallReason),
}

/// A dynamic instruction scheduler (issue queue design).
///
/// ## Per-cycle driving order
///
/// 1. completions for the cycle → [`Scheduler::on_complete`] per
///    destination register becoming available,
/// 2. [`Scheduler::issue`] once,
/// 3. [`Scheduler::try_dispatch`] up to the machine's dispatch width.
///
/// Squashes may happen at any point via [`Scheduler::flush_after`].
pub trait Scheduler {
    /// Short identifier (e.g. `"ooo"`, `"ces"`, `"ballerino-12"`).
    /// Borrowed (static or cached at construction): reporting paths call
    /// this per row, so it must not allocate.
    fn name(&self) -> &str;

    /// Offers one μop for dispatch.
    fn try_dispatch(&mut self, uop: SchedUop, ctx: &ReadyCtx<'_>) -> DispatchOutcome;

    /// Selects up to the machine width of ready μops, claiming issue
    /// ports; appends issued sequence numbers to `out`.
    fn issue(&mut self, ctx: &ReadyCtx<'_>, ports: &mut PortAlloc<'_>, out: &mut Vec<u64>);

    /// Notes that the value of `dst` has become available (wakeup).
    fn on_complete(&mut self, dst: PhysReg);

    /// Removes every μop younger than `seq` and clears producer-location
    /// state for `flushed_dests` (destinations of *all* squashed μops,
    /// including already-issued ones).
    fn flush_after(&mut self, seq: u64, flushed_dests: &[PhysReg]);

    /// μops currently resident in the scheduling window.
    fn occupancy(&self) -> usize;

    /// Total scheduling-window entries.
    fn capacity(&self) -> usize;

    /// Energy-relevant event counts accumulated so far.
    fn energy_events(&self) -> SchedEnergyEvents;

    /// Which structure issued each μop (Fig. 14).
    fn issue_breakdown(&self) -> IssueBreakdown;

    /// Steering outcome histogram (Fig. 4); zero for designs that do not
    /// steer.
    fn steer_stats(&self) -> SteerStats {
        SteerStats::default()
    }

    /// P-IQ head-state histogram (Fig. 6a); zero for designs without
    /// P-IQs.
    fn head_stats(&self) -> HeadStateStats {
        HeadStateStats::default()
    }

    /// Event-horizon query: if the scheduler is *quiesced* — its per-cycle
    /// evolution until the next wakeup is a pure function of already-known
    /// ready times (no issue, no inter-queue movement, no steering
    /// success, no dispatch acceptance of `pending`) — returns the first
    /// cycle at which that could change (`u64::MAX` when it never can).
    /// Returns `None` whenever the scheduler is, or might be, active this
    /// cycle; the core then simulates cycle by cycle as usual.
    ///
    /// The contract (see ARCHITECTURE.md "The quiesce contract"):
    ///
    /// * `None` is always safe — it is the mandatory answer whenever any
    ///   resident the next `issue` call would examine is ready now, when
    ///   `pending` would be accepted now, or when the design cannot cheaply
    ///   prove quiescence (the default for third-party schedulers).
    /// * `Some(t)` with `t > ctx.cycle` promises that every `issue` +
    ///   refused `try_dispatch(pending)` cycle strictly before `t` only
    ///   performs deterministic bookkeeping, which
    ///   [`Scheduler::note_idle_cycles`] must replicate exactly.
    /// * Cascaded designs (CASINO, Ballerino) must first drain their
    ///   bounded inter-queue movement before reporting quiescence.
    fn next_event_cycle(&self, _ctx: &ReadyCtx<'_>, _pending: Option<&SchedUop>) -> Option<u64> {
        None
    }

    /// Macro-step grant: a drop-in replacement for one [`Scheduler::issue`]
    /// call used by the core's macro-step engine (see ARCHITECTURE.md,
    /// "The macro-step engine").
    ///
    /// Returns `true` when the scheduler handled the cycle itself, in
    /// which case its grants **and** every observable side effect
    /// (energy micro-events, issue breakdown, head/steer histograms,
    /// internal queue state) must be byte-identical to what `issue` would
    /// have produced for the same arguments — the macro engine skips the
    /// `issue` call entirely. Designs on the [`WakeFabric`] path
    /// implement this with the fabric's fast select
    /// ([`WakeFabric::select_fast`]); the conservative default declines
    /// (`false`, mutating nothing), and the engine falls back to the
    /// per-cycle `issue` call.
    ///
    /// [`WakeFabric`]: crate::WakeFabric
    /// [`WakeFabric::select_fast`]: crate::WakeFabric::select_fast
    fn macro_grant(
        &mut self,
        _ctx: &ReadyCtx<'_>,
        _ports: &mut PortAlloc<'_>,
        _out: &mut Vec<u64>,
    ) -> bool {
        false
    }

    /// Block grant: plans up to `horizon.cycles` future cycles of issue in
    /// one pass, so the macro engine can serve issue from the plan instead
    /// of re-querying the scheduler every cycle (see ARCHITECTURE.md, "The
    /// macro-step engine").
    ///
    /// The returned [`GrantBlock`] must be a *verifiable* schedule: grants
    /// in dependence order, port/width/FU constraints applied in closed
    /// form, stopped at the first cycle whose outcome depends on anything
    /// the plan cannot see (an MDP hold release, a store-set hold, an
    /// unpredictable completion). Consuming it through
    /// [`Scheduler::block_advance`] must be byte-identical to calling
    /// `issue`/`macro_grant` per cycle — including every energy
    /// micro-event, breakdown counter, and histogram — for as long as each
    /// cycle validates. The conservative default declines (`None`,
    /// mutating nothing); designs whose per-cycle issue depends on state
    /// the block cannot pre-verify (cascade movement, steering tables,
    /// per-head histograms) keep the default and stay on the fused
    /// per-cycle path.
    fn macro_grant_block(
        &mut self,
        _ctx: &ReadyCtx<'_>,
        _ports: &mut PortAlloc<'_>,
        _horizon: BlockHorizon,
    ) -> Option<GrantBlock> {
        None
    }

    /// Serves one cycle (`ctx.cycle`) from a block previously returned by
    /// [`Scheduler::macro_grant_block`]: validates that the scheduler's
    /// actual state still matches the plan, and if so applies this cycle's
    /// grants and bookkeeping exactly as `issue` would have.
    ///
    /// Returns `false` — after mutating **nothing** — when the cycle fails
    /// validation (a predicted wakeup missed, the ready population
    /// diverged, a hold appeared): the core then drops the block and falls
    /// back to `macro_grant`/`issue` for the same cycle, which charges the
    /// cycle's bookkeeping exactly once. Validation must be complete: a
    /// `true` return asserts the served cycle is byte-identical to the
    /// per-cycle oracle.
    fn block_advance(
        &mut self,
        _ctx: &ReadyCtx<'_>,
        _block: &mut GrantBlock,
        _out: &mut Vec<u64>,
    ) -> bool {
        false
    }

    /// Replays the bookkeeping of `k` consecutive idle cycles in one call:
    /// exactly what `k` calls of `issue` (plus, when `pending` is some, `k`
    /// refused `try_dispatch` calls) starting at `ctx.cycle` would have
    /// accumulated — energy micro-events, head-state and steering
    /// histograms, and any per-cycle pointer rotation. Only called after
    /// [`Scheduler::next_event_cycle`] returned `Some(t)` with
    /// `ctx.cycle + k <= t`; never called otherwise.
    fn note_idle_cycles(&mut self, _ctx: &ReadyCtx<'_>, _pending: Option<&SchedUop>, _k: u64) {}

    /// Diagnostic rendering of where resident μop `seq` lives inside the
    /// scheduler (queue position, wake state). Only consulted by the
    /// simulator's no-forward-progress panic, where "which queue is the
    /// ROB head stuck in, and why" is the first debugging question.
    fn debug_locate(&self, _seq: u64) -> String {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballerino_isa::PhysReg;

    #[test]
    fn ready_ctx_checks_scoreboard_and_holds() {
        let mut scb = Scoreboard::new(4);
        scb.allocate(PhysReg(1));
        let mut held = HeldSet::new();
        held.insert(7u64);

        let ctx = ReadyCtx {
            cycle: 10,
            scb: &scb,
            held: &held,
        };

        let mut u = SchedUop::test_op(3);
        u.srcs = [Some(PhysReg(0)), None];
        assert!(ctx.is_ready(&u));

        u.srcs = [Some(PhysReg(1)), None];
        assert!(!ctx.is_ready(&u));
        assert!(!ctx.is_mdp_blocked(&u));

        let mut held_load = SchedUop::test_op(7);
        held_load.srcs = [Some(PhysReg(0)), None];
        assert!(!ctx.is_ready(&held_load));
        assert!(ctx.is_mdp_blocked(&held_load));
    }
}
