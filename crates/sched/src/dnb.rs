//! Delay and Bypass (DNB) — a criticality+readiness hybrid from the
//! paper's related work (§VII, \[25\]), included as an extension baseline.
//!
//! DNB keeps a *small* out-of-order IQ for instructions that actually
//! need dynamic scheduling and steers everything else to cheap in-order
//! structures:
//!
//! * **ready-at-dispatch** μops go to a plain in-order *bypass queue*
//!   (they need no wakeup at all),
//! * **non-ready, non-critical** μops go to a *delay queue* that simply
//!   holds them for a fixed number of cycles before offering them in
//!   order (their operands are short-latency and will be ready by then),
//! * **non-ready, critical** μops (dependent on in-flight loads) get the
//!   real out-of-order IQ.

use crate::fabric::{WakeFabric, WakeState};
use crate::ooo::{OooIq, OooIqConfig};
use crate::ports::PortAlloc;
use crate::stats::{IssueBreakdown, SchedEnergyEvents};
use crate::traits::{BlockHorizon, DispatchOutcome, GrantBlock, ReadyCtx, Scheduler, StallReason};
use crate::uop::SchedUop;
use ballerino_isa::PhysReg;
use std::collections::VecDeque;

/// DNB configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnbConfig {
    /// Out-of-order IQ entries (much smaller than the baseline 96).
    pub ooo_entries: usize,
    /// Bypass (ready) queue entries.
    pub bypass_entries: usize,
    /// Delay queue entries.
    pub delay_entries: usize,
    /// Cycles a delay-queue μop is held before becoming issue-eligible.
    pub delay_cycles: u64,
    /// Issue slots for the in-order structures per cycle.
    pub inorder_ports: usize,
}

impl Default for DnbConfig {
    fn default() -> Self {
        DnbConfig {
            ooo_entries: 32,
            bypass_entries: 32,
            delay_entries: 32,
            delay_cycles: 3,
            inorder_ports: 4,
        }
    }
}

/// The DNB scheduler.
#[derive(Debug)]
pub struct Dnb {
    cfg: DnbConfig,
    ooo: OooIq,
    bypass: VecDeque<SchedUop>,
    /// (release cycle, μop)
    delay: VecDeque<(u64, SchedUop)>,
    /// Wakeup state for the in-order structures (the embedded OoO IQ
    /// keeps its own fabric; its seqs leave gaps here, which the
    /// seq-indexed slab tolerates).
    fabric: WakeFabric,
    energy: SchedEnergyEvents,
    breakdown: IssueBreakdown,
}

impl Dnb {
    /// Builds an empty DNB scheduler.
    pub fn new(cfg: DnbConfig) -> Self {
        let ooo = OooIq::new(OooIqConfig {
            entries: cfg.ooo_entries,
            oldest_first: false,
        });
        Dnb {
            cfg,
            ooo,
            bypass: VecDeque::new(),
            delay: VecDeque::new(),
            fabric: WakeFabric::new(),
            energy: SchedEnergyEvents::default(),
            breakdown: IssueBreakdown::default(),
        }
    }

    /// Occupancy of the small out-of-order IQ (tests/diagnostics).
    pub fn ooo_len(&self) -> usize {
        self.ooo.occupancy()
    }
}

impl Scheduler for Dnb {
    fn name(&self) -> &str {
        "dnb"
    }

    fn try_dispatch(&mut self, uop: SchedUop, ctx: &ReadyCtx<'_>) -> DispatchOutcome {
        self.energy.head_examinations += 1; // classification logic
        if ctx.is_ready(&uop) {
            if self.bypass.len() >= self.cfg.bypass_entries {
                return DispatchOutcome::Stall(StallReason::Full);
            }
            self.energy.queue_writes += 1;
            self.fabric.insert(&uop, 0, ctx);
            self.bypass.push_back(uop);
            return DispatchOutcome::Accepted;
        }
        // Criticality: dependence on an in-flight load means the wait is
        // long/unpredictable — that is what the OoO IQ is for.
        if uop.load_dep || uop.is_load() {
            return self.ooo.try_dispatch(uop, ctx);
        }
        if self.delay.len() >= self.cfg.delay_entries {
            return DispatchOutcome::Stall(StallReason::Full);
        }
        self.energy.queue_writes += 1;
        self.fabric.insert(&uop, 0, ctx);
        self.delay
            .push_back((ctx.cycle + self.cfg.delay_cycles, uop));
        DispatchOutcome::Accepted
    }

    fn issue(&mut self, ctx: &ReadyCtx<'_>, ports: &mut PortAlloc<'_>, out: &mut Vec<u64>) {
        // Small OoO IQ has priority (it holds the critical slices).
        self.ooo.issue(ctx, ports, out);

        self.fabric.poll(ctx);
        // In-order structures share a port budget.
        let mut grants = self.cfg.inorder_ports;
        while grants > 0 {
            let Some(head) = self.bypass.front() else {
                break;
            };
            self.energy.head_examinations += 1;
            if self.fabric.state(head.seq) != WakeState::Ready
                || !ports.try_claim(head.port, head.class)
            {
                break;
            }
            let u = self.bypass.pop_front().expect("head");
            self.fabric.remove(u.seq);
            self.energy.queue_reads += 1;
            self.breakdown.from_inorder += 1;
            out.push(u.seq);
            grants -= 1;
        }
        while grants > 0 {
            let Some((release, head)) = self.delay.front() else {
                break;
            };
            self.energy.head_examinations += 1;
            if *release > ctx.cycle || self.fabric.state(head.seq) != WakeState::Ready {
                break;
            }
            if !ports.try_claim(head.port, head.class) {
                break;
            }
            let (_, u) = self.delay.pop_front().expect("head");
            self.fabric.remove(u.seq);
            self.energy.queue_reads += 1;
            self.breakdown.from_siq += 1; // delay-queue issues
            out.push(u.seq);
            grants -= 1;
        }
    }

    fn on_complete(&mut self, dst: PhysReg) {
        self.ooo.on_complete(dst);
        self.fabric.on_complete(dst);
    }

    fn flush_after(&mut self, seq: u64, flushed_dests: &[PhysReg]) {
        self.ooo.flush_after(seq, flushed_dests);
        while self.bypass.back().map(|u| u.seq > seq).unwrap_or(false) {
            self.bypass.pop_back();
        }
        while self.delay.back().map(|(_, u)| u.seq > seq).unwrap_or(false) {
            self.delay.pop_back();
        }
        self.fabric.flush_after(seq);
    }

    fn occupancy(&self) -> usize {
        self.ooo.occupancy() + self.bypass.len() + self.delay.len()
    }

    fn capacity(&self) -> usize {
        self.cfg.ooo_entries + self.cfg.bypass_entries + self.cfg.delay_entries
    }

    fn energy_events(&self) -> SchedEnergyEvents {
        let mut e = self.ooo.energy_events();
        e.add(&self.energy);
        e
    }

    fn issue_breakdown(&self) -> IssueBreakdown {
        let mut b = self.ooo.issue_breakdown();
        let own = self.breakdown;
        b.from_inorder += own.from_inorder;
        b.from_siq += own.from_siq;
        b
    }

    fn macro_grant_block(
        &mut self,
        ctx: &ReadyCtx<'_>,
        ports: &mut PortAlloc<'_>,
        horizon: BlockHorizon,
    ) -> Option<GrantBlock> {
        // With both in-order queues empty, `issue` is exactly the inner
        // OoO IQ's issue (the own-fabric poll and head walks are no-ops
        // with no residents and charge nothing), so the inner plan is
        // DNB's plan. Non-empty queues mean in-order head progress the
        // plan cannot pre-verify — stay on the per-cycle path.
        if !self.bypass.is_empty() || !self.delay.is_empty() {
            return None;
        }
        self.ooo.macro_grant_block(ctx, ports, horizon)
    }

    fn block_advance(
        &mut self,
        ctx: &ReadyCtx<'_>,
        block: &mut GrantBlock,
        out: &mut Vec<u64>,
    ) -> bool {
        // Dispatch may have routed μops into the in-order queues since
        // the block was built; their heads issue outside the plan, so
        // the block dies the cycle either queue becomes non-empty.
        if !self.bypass.is_empty() || !self.delay.is_empty() {
            return false;
        }
        self.ooo.block_advance(ctx, block, out)
    }

    fn next_event_cycle(&self, ctx: &ReadyCtx<'_>, pending: Option<&SchedUop>) -> Option<u64> {
        if !self.bypass.is_empty() {
            return None; // bypass heads are ready by construction
        }
        // Pending routing is DNB-specific, so the inner IQ only answers
        // for its residents.
        let mut horizon = self.ooo.next_event_cycle(ctx, None)?;
        if let Some((release, head)) = self.delay.front() {
            let eligible = (*release).max(ctx.wake_cycle(head));
            if eligible <= ctx.cycle {
                return None; // delay head is issue-eligible right now
            }
            horizon = horizon.min(eligible);
        }
        if let Some(p) = pending {
            let wake = ctx.wake_cycle(p);
            if wake <= ctx.cycle {
                return None; // would enter the (empty) bypass queue now
            }
            if p.load_dep || p.is_load() {
                if self.ooo.occupancy() < self.cfg.ooo_entries {
                    return None; // critical route accepts non-ready μops
                }
            } else if self.delay.len() < self.cfg.delay_entries {
                return None; // delay route accepts now
            }
            if wake != u64::MAX {
                // At `wake` the μop classifies as ready and re-routes to
                // the bypass queue, which has space (it is empty).
                horizon = horizon.min(wake);
            }
        }
        Some(horizon)
    }

    fn note_idle_cycles(&mut self, ctx: &ReadyCtx<'_>, pending: Option<&SchedUop>, k: u64) {
        if pending.is_some() {
            self.energy.head_examinations += k; // classification per retry
        }
        if !self.delay.is_empty() {
            self.energy.head_examinations += k; // stalled delay head examined
        }
        self.ooo.note_idle_cycles(ctx, None, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::held::HeldSet;
    use crate::ports::FuBusy;
    use crate::scoreboard::Scoreboard;
    use ballerino_isa::{OpClass, PortId};

    fn op(seq: u64, port: u8, src: Option<u32>) -> SchedUop {
        SchedUop {
            port: PortId(port),
            srcs: [src.map(PhysReg), None],
            ..SchedUop::test_op(seq)
        }
    }

    fn issue_once(d: &mut Dnb, scb: &Scoreboard, cycle: u64) -> Vec<u64> {
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle,
            scb,
            held: &held,
        };
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, cycle);
        let mut out = Vec::new();
        d.issue(&ctx, &mut pa, &mut out);
        out
    }

    #[test]
    fn ready_ops_take_the_bypass_queue() {
        let mut d = Dnb::new(DnbConfig::default());
        let scb = Scoreboard::new(64);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        d.try_dispatch(op(1, 0, None), &ctx);
        assert_eq!(d.ooo_len(), 0);
        let out = issue_once(&mut d, &scb, 0);
        assert_eq!(out, vec![1]);
        assert_eq!(d.issue_breakdown().from_inorder, 1);
    }

    #[test]
    fn load_dependents_take_the_small_ooo_iq() {
        let mut d = Dnb::new(DnbConfig::default());
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(10));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        let mut u = op(1, 0, Some(10));
        u.load_dep = true;
        d.try_dispatch(u, &ctx);
        assert_eq!(d.ooo_len(), 1);
        scb.set_ready_at(PhysReg(10), 30);
        d.on_complete(PhysReg(10));
        let out = issue_once(&mut d, &scb, 30);
        assert_eq!(out, vec![1]);
        assert_eq!(d.issue_breakdown().from_ooo, 1);
    }

    #[test]
    fn non_critical_non_ready_ops_wait_in_the_delay_queue() {
        let mut d = Dnb::new(DnbConfig::default());
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(10));
        scb.set_ready_at(PhysReg(10), 1); // short-latency producer
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        d.try_dispatch(op(1, 0, Some(10)), &ctx);
        d.on_complete(PhysReg(10)); // writeback edge at the producer's ready cycle
        assert_eq!(d.ooo_len(), 0);
        // Not issuable before the fixed delay expires.
        assert!(issue_once(&mut d, &scb, 1).is_empty());
        assert_eq!(issue_once(&mut d, &scb, 3), vec![1]);
    }

    #[test]
    fn delay_queue_is_in_order() {
        let mut d = Dnb::new(DnbConfig::default());
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(10)); // never ready
        scb.allocate(PhysReg(11));
        scb.set_ready_at(PhysReg(11), 1);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        d.try_dispatch(op(1, 0, Some(10)), &ctx);
        d.try_dispatch(op(2, 1, Some(11)), &ctx);
        assert!(
            issue_once(&mut d, &scb, 10).is_empty(),
            "head blocks the delay queue"
        );
    }

    #[test]
    fn loads_are_treated_as_critical() {
        let mut d = Dnb::new(DnbConfig::default());
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(10));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        let mut ld = op(1, 2, Some(10));
        ld.class = OpClass::Load;
        d.try_dispatch(ld, &ctx);
        assert_eq!(d.ooo_len(), 1);
    }

    #[test]
    fn flush_trims_all_three_structures() {
        let mut d = Dnb::new(DnbConfig::default());
        let mut scb = Scoreboard::new(64);
        scb.allocate(PhysReg(10));
        scb.allocate(PhysReg(11));
        scb.set_ready_at(PhysReg(11), 1);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        d.try_dispatch(op(1, 0, None), &ctx); // bypass
        let mut crit = op(2, 1, Some(10));
        crit.load_dep = true;
        d.try_dispatch(crit, &ctx); // ooo
        d.try_dispatch(op(3, 2, Some(11)), &ctx); // delay
        assert_eq!(d.occupancy(), 3);
        d.flush_after(1, &[]);
        assert_eq!(d.occupancy(), 1);
    }
}
