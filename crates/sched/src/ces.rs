//! Complexity-Effective Superscalar (CES) clustered P-IQs \[3\].
//!
//! Dependence-based steering: each dependence chain (DC) is steered into
//! one in-order P-IQ; only the heads of the P-IQs are examined for issue.
//! The steering heuristic (§II-B1) allocates a new P-IQ when
//!
//! 1. none of the μop's producers wait in a P-IQ (ready or executing),
//! 2. the μop is a chain split (its producer already has a steered
//!    consumer — the `Reserved` flag), or
//! 3. the target P-IQ is full,
//!
//! and stalls dispatch when no empty P-IQ exists. The optional
//! **M-dependence-aware (MDA) steering** extension (§III-B, evaluated on
//! CES in Fig. 13) steers a predicted M-dependent load behind its producer
//! store, overriding register-dependence steering.

use crate::fabric::{WakeFabric, WakeState};
use crate::loc::LocTable;
use crate::ports::PortAlloc;
use crate::stats::{
    HeadState, HeadStateStats, IssueBreakdown, SchedEnergyEvents, SteerEvent, SteerStats,
};
use crate::traits::{DispatchOutcome, ReadyCtx, Scheduler, StallReason};
use crate::uop::SchedUop;
use ballerino_isa::PhysReg;
use std::collections::VecDeque;

/// Configuration of the CES scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CesConfig {
    /// Number of parallel in-order queues (Table II: 8/4/2 by width).
    pub num_piqs: usize,
    /// Entries per P-IQ (Table II: 12/16/16).
    pub piq_entries: usize,
    /// Number of physical registers (producer-location table size).
    pub num_phys_regs: usize,
    /// Enable M-dependence-aware steering (the Fig. 13 "CES + MDA" bar).
    pub mda_steering: bool,
    /// Number of distinct store-set ids (LFST-steer table size).
    pub num_ssids: usize,
}

impl Default for CesConfig {
    fn default() -> Self {
        CesConfig {
            num_piqs: 8,
            piq_entries: 12,
            num_phys_regs: 348,
            mda_steering: false,
            num_ssids: 128,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct LfstSteer {
    piq: u16,
    reserved: bool,
    store_seq: u64,
}

/// The CES scheduler.
#[derive(Debug)]
pub struct Ces {
    cfg: CesConfig,
    name: String,
    piqs: Vec<VecDeque<SchedUop>>,
    loc: LocTable,
    lfst_steer: Vec<Option<LfstSteer>>,
    fabric: WakeFabric,
    energy: SchedEnergyEvents,
    steer: SteerStats,
    heads: HeadStateStats,
    breakdown: IssueBreakdown,
}

impl Ces {
    /// Builds an empty CES scheduler.
    pub fn new(cfg: CesConfig) -> Self {
        let piqs = (0..cfg.num_piqs).map(|_| VecDeque::new()).collect();
        let loc = LocTable::new(cfg.num_phys_regs);
        let lfst_steer = vec![None; cfg.num_ssids];
        let name = if cfg.mda_steering {
            format!("ces{}-mda", cfg.num_piqs)
        } else {
            format!("ces{}", cfg.num_piqs)
        };
        Ces {
            cfg,
            name,
            piqs,
            loc,
            lfst_steer,
            fabric: WakeFabric::new(),
            energy: SchedEnergyEvents::default(),
            steer: SteerStats::default(),
            heads: HeadStateStats::default(),
            breakdown: IssueBreakdown::default(),
        }
    }

    /// Occupancy of one P-IQ (tests and diagnostics).
    pub fn piq_len(&self, i: usize) -> usize {
        self.piqs[i].len()
    }

    fn push_and_track(&mut self, piq: usize, uop: SchedUop, ctx: &ReadyCtx<'_>) {
        if let Some(d) = uop.dst {
            self.loc.set_location(d, piq as u16);
        }
        self.energy.queue_writes += 1;
        self.fabric.insert(&uop, piq as u32, ctx);
        self.piqs[piq].push_back(uop);
    }

    /// MDA steering target, if applicable: the P-IQ whose tail is the
    /// μop's predicted producer store.
    fn mda_target(&mut self, uop: &SchedUop) -> Option<usize> {
        if !self.cfg.mda_steering {
            return None;
        }
        let ssid = uop.ssid?;
        if !(uop.is_load() || uop.is_store()) {
            return None;
        }
        let entry = self.lfst_steer[ssid.0 as usize]?;
        self.energy.loc_reads += 1;
        if entry.reserved {
            return None;
        }
        let k = entry.piq as usize;
        // The producer store must still sit at the tail of that P-IQ.
        if self.piqs[k]
            .back()
            .map(|b| b.seq == entry.store_seq)
            .unwrap_or(false)
            && self.piqs[k].len() < self.cfg.piq_entries
        {
            self.lfst_steer[ssid.0 as usize]
                .as_mut()
                .expect("checked")
                .reserved = true;
            self.energy.loc_writes += 1;
            Some(k)
        } else {
            None
        }
    }

    /// Register-dependence steering target: the P-IQ holding the producer
    /// of one of the μop's sources at its tail. With two candidates, the
    /// one holding the *younger* producer wins (relative order, §IV-C).
    fn rdep_target(&mut self, uop: &SchedUop) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for src in uop.srcs.iter().flatten() {
            let e = self.loc.get(*src);
            let Some(k) = e.iq_index else { continue };
            if e.reserved {
                continue; // chain split: producer already has a consumer
            }
            let k = k as usize;
            if self.piqs[k].len() >= self.cfg.piq_entries {
                continue; // case 3: full target
            }
            let tail_seq = self.piqs[k].back().map(|b| b.seq).unwrap_or(0);
            if best.map(|(_, s)| tail_seq > s).unwrap_or(true) {
                best = Some((k, tail_seq));
            }
        }
        best.map(|(k, _)| k)
    }

    fn reserve_src_of(&mut self, uop: &SchedUop, piq: usize) {
        // Mark the producer whose queue we joined as reserved.
        for src in uop.srcs.iter().flatten() {
            let e = self.loc.peek(*src);
            if e.iq_index == Some(piq as u16) && !e.reserved {
                self.loc.reserve(*src);
                break;
            }
        }
    }

    fn record_store_lfst(&mut self, uop: &SchedUop, piq: usize) {
        if self.cfg.mda_steering && uop.is_store() {
            if let Some(ssid) = uop.ssid {
                self.lfst_steer[ssid.0 as usize] = Some(LfstSteer {
                    piq: piq as u16,
                    reserved: false,
                    store_seq: uop.seq,
                });
                self.energy.loc_writes += 1;
            }
        }
    }

    /// Whether the LFST-steer table would be probed for `uop` (the probe
    /// charges a `loc_reads` whether or not the steer succeeds).
    fn mda_probes(&self, uop: &SchedUop) -> bool {
        self.cfg.mda_steering
            && (uop.is_load() || uop.is_store())
            && uop
                .ssid
                .map(|ssid| self.lfst_steer[ssid.0 as usize].is_some())
                .unwrap_or(false)
    }

    /// Side-effect-free replica of the [`Ces::try_dispatch`] decision:
    /// would `uop` be accepted this cycle?
    fn would_accept(&self, uop: &SchedUop) -> bool {
        // MDA steering target available?
        if self.cfg.mda_steering && (uop.is_load() || uop.is_store()) {
            if let Some(entry) = uop.ssid.and_then(|s| self.lfst_steer[s.0 as usize]) {
                if !entry.reserved {
                    let k = entry.piq as usize;
                    if self.piqs[k]
                        .back()
                        .map(|b| b.seq == entry.store_seq)
                        .unwrap_or(false)
                        && self.piqs[k].len() < self.cfg.piq_entries
                    {
                        return true;
                    }
                }
            }
        }
        // Register-dependence steering target available?
        for src in uop.srcs.iter().flatten() {
            let e = self.loc.peek(*src);
            if let Some(k) = e.iq_index {
                if !e.reserved && self.piqs[k as usize].len() < self.cfg.piq_entries {
                    return true;
                }
            }
        }
        // An empty P-IQ to allocate?
        self.piqs.iter().any(|q| q.is_empty())
    }
}

impl Scheduler for Ces {
    fn name(&self) -> &str {
        &self.name
    }

    fn try_dispatch(&mut self, uop: SchedUop, ctx: &ReadyCtx<'_>) -> DispatchOutcome {
        self.energy.steer_ops += 1;
        let ready = ctx.is_ready(&uop);

        // MDA steering overrides register dependences (§III-B).
        if let Some(k) = self.mda_target(&uop) {
            self.steer.record(SteerEvent::SteerDc);
            self.record_store_lfst(&uop, k);
            self.push_and_track(k, uop, ctx);
            return DispatchOutcome::Accepted;
        }

        // Register-dependence steering.
        if let Some(k) = self.rdep_target(&uop) {
            self.reserve_src_of(&uop, k);
            self.steer.record(SteerEvent::SteerDc);
            self.record_store_lfst(&uop, k);
            self.push_and_track(k, uop, ctx);
            return DispatchOutcome::Accepted;
        }

        // New dependence head: allocate an empty P-IQ.
        if let Some(k) = self.piqs.iter().position(|q| q.is_empty()) {
            self.steer.record(if ready {
                SteerEvent::AllocReady
            } else {
                SteerEvent::AllocNonReady
            });
            self.record_store_lfst(&uop, k);
            self.push_and_track(k, uop, ctx);
            return DispatchOutcome::Accepted;
        }

        self.steer.record(if ready {
            SteerEvent::StallReady
        } else {
            SteerEvent::StallNonReady
        });
        DispatchOutcome::Stall(StallReason::NoFreeQueue)
    }

    fn issue(&mut self, ctx: &ReadyCtx<'_>, ports: &mut PortAlloc<'_>, out: &mut Vec<u64>) {
        self.fabric.poll(ctx);
        let mut any_candidate = false;
        for i in 0..self.piqs.len() {
            let state = match self.piqs[i].front() {
                None => HeadState::Empty,
                Some(head) => {
                    self.energy.head_examinations += 1;
                    match self.fabric.state(head.seq) {
                        WakeState::Ready => {
                            any_candidate = true;
                            if ports.try_claim(head.port, head.class) {
                                HeadState::Issuing
                            } else {
                                HeadState::StallPortConflict
                            }
                        }
                        WakeState::Held => HeadState::StallMdepLoad,
                        WakeState::Waiting => HeadState::StallNonReady,
                    }
                }
            };
            self.heads.record(state);
            if state == HeadState::Issuing {
                let u = self.piqs[i].pop_front().expect("head present");
                self.fabric.remove(u.seq);
                self.energy.queue_reads += 1;
                self.breakdown.from_piq += 1;
                // A store's issue releases its LFST-steer entry.
                if self.cfg.mda_steering && u.is_store() {
                    if let Some(ssid) = u.ssid {
                        if let Some(e) = self.lfst_steer[ssid.0 as usize] {
                            if e.store_seq == u.seq {
                                self.lfst_steer[ssid.0 as usize] = None;
                            }
                        }
                    }
                }
                out.push(u.seq);
            }
        }
        if any_candidate {
            // Per-port prefix-sum over the P-IQ heads.
            self.energy.select_inputs += (self.cfg.num_piqs * 8.min(self.cfg.num_piqs)) as u64;
        }
    }

    fn on_complete(&mut self, dst: PhysReg) {
        self.loc.clear(dst);
        self.fabric.on_complete(dst);
    }

    fn flush_after(&mut self, seq: u64, flushed_dests: &[PhysReg]) {
        for q in &mut self.piqs {
            while let Some(back) = q.back() {
                if back.seq > seq {
                    q.pop_back();
                } else {
                    break;
                }
            }
        }
        self.fabric.flush_after(seq);
        for d in flushed_dests {
            self.loc.clear(*d);
        }
        for e in &mut self.lfst_steer {
            if e.map(|s| s.store_seq > seq).unwrap_or(false) {
                *e = None;
            }
        }
    }

    fn occupancy(&self) -> usize {
        self.piqs.iter().map(|q| q.len()).sum()
    }

    fn capacity(&self) -> usize {
        self.cfg.num_piqs * self.cfg.piq_entries
    }

    fn energy_events(&self) -> SchedEnergyEvents {
        let mut e = self.energy;
        e.loc_reads += self.loc.reads;
        e.loc_writes += self.loc.writes;
        e
    }

    fn issue_breakdown(&self) -> IssueBreakdown {
        self.breakdown
    }

    fn steer_stats(&self) -> SteerStats {
        self.steer
    }

    fn head_stats(&self) -> HeadStateStats {
        self.heads
    }

    fn next_event_cycle(&self, ctx: &ReadyCtx<'_>, pending: Option<&SchedUop>) -> Option<u64> {
        let mut horizon = u64::MAX;
        for q in &self.piqs {
            let Some(head) = q.front() else { continue };
            let rc = ctx.scb.srcs_ready_cycle(&head.srcs);
            if rc <= ctx.cycle {
                if !ctx.held.contains(head.seq) {
                    return None; // ready head: selects this cycle
                }
                // MDP-blocked head: stable StallMdepLoad until a store
                // issues, which cannot happen while we are quiesced.
            } else {
                // The recorded state flips (StallNonReady → issue/MdepLoad)
                // when the sources arrive, held or not.
                horizon = horizon.min(rc);
            }
        }
        if let Some(p) = pending {
            if self.would_accept(p) {
                return None;
            }
            // Refusal persists (steering state is frozen while idle), but
            // the recorded stall flavor flips when `p` becomes ready.
            let wake = ctx.wake_cycle(p);
            if wake > ctx.cycle {
                horizon = horizon.min(wake);
            }
        }
        Some(horizon)
    }

    fn note_idle_cycles(&mut self, ctx: &ReadyCtx<'_>, pending: Option<&SchedUop>, k: u64) {
        // `issue` side: every head is examined and records its (stable)
        // stall state; no candidate requests, so select stays dark.
        for i in 0..self.piqs.len() {
            let state = match self.piqs[i].front() {
                None => HeadState::Empty,
                Some(head) => {
                    self.energy.head_examinations += k;
                    if ctx.is_mdp_blocked(head) {
                        HeadState::StallMdepLoad
                    } else {
                        HeadState::StallNonReady
                    }
                }
            };
            self.heads.record_n(state, k);
        }
        // `try_dispatch` side: each refused retry walks the same steering
        // logic — LFST probe, one P-SCB read per source, stall record.
        if let Some(p) = pending {
            self.energy.steer_ops += k;
            if self.mda_probes(p) {
                self.energy.loc_reads += k;
            }
            self.loc.reads += k * p.srcs.iter().flatten().count() as u64;
            let stall = if ctx.is_ready(p) {
                SteerEvent::StallReady
            } else {
                SteerEvent::StallNonReady
            };
            self.steer.record_n(stall, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::held::HeldSet;
    use crate::ports::FuBusy;
    use crate::scoreboard::Scoreboard;
    use ballerino_isa::{OpClass, PortId};
    use ballerino_mem::SsId;

    fn op(seq: u64, dst: Option<u32>, srcs: [Option<u32>; 2]) -> SchedUop {
        SchedUop {
            port: PortId((seq % 4) as u8),
            srcs: [srcs[0].map(PhysReg), srcs[1].map(PhysReg)],
            dst: dst.map(PhysReg),
            ..SchedUop::test_op(seq)
        }
    }

    fn issue_once(ces: &mut Ces, scb: &Scoreboard, cycle: u64) -> Vec<u64> {
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle,
            scb,
            held: &held,
        };
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, cycle);
        let mut out = Vec::new();
        ces.issue(&ctx, &mut pa, &mut out);
        out
    }

    #[test]
    fn chain_is_steered_into_one_piq() {
        let mut ces = Ces::new(CesConfig::default());
        let mut scb = Scoreboard::new(348);
        for p in [10, 11, 12] {
            scb.allocate(PhysReg(p));
        }
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        // chain: 0 -> 1 -> 2 via regs 10, 11; all non-ready (src 9 missing? no:
        // op0 reads nothing but writes 10, and 10 is allocated → not ready for
        // consumers until complete).
        ces.try_dispatch(op(0, Some(10), [None, None]), &ctx);
        ces.try_dispatch(op(1, Some(11), [Some(10), None]), &ctx);
        ces.try_dispatch(op(2, Some(12), [Some(11), None]), &ctx);
        assert_eq!(ces.piq_len(0), 3);
        assert_eq!(ces.steer_stats().steer_dc, 2);
        assert_eq!(ces.steer_stats().alloc_ready, 1); // op0 is ready
    }

    #[test]
    fn chain_split_allocates_new_piq() {
        let mut ces = Ces::new(CesConfig::default());
        let mut scb = Scoreboard::new(348);
        scb.allocate(PhysReg(10));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        ces.try_dispatch(op(0, Some(10), [None, None]), &ctx);
        ces.try_dispatch(op(1, Some(11), [Some(10), None]), &ctx); // consumer 1
        ces.try_dispatch(op(2, Some(12), [Some(10), None]), &ctx); // split!
        assert_eq!(ces.piq_len(0), 2);
        assert_eq!(ces.piq_len(1), 1);
    }

    #[test]
    fn ready_ops_allocate_their_own_piqs_until_stall() {
        let mut ces = Ces::new(CesConfig {
            num_piqs: 2,
            ..CesConfig::default()
        });
        let scb = Scoreboard::new(348);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        assert_eq!(
            ces.try_dispatch(op(0, None, [None, None]), &ctx),
            DispatchOutcome::Accepted
        );
        assert_eq!(
            ces.try_dispatch(op(1, None, [None, None]), &ctx),
            DispatchOutcome::Accepted
        );
        assert_eq!(
            ces.try_dispatch(op(2, None, [None, None]), &ctx),
            DispatchOutcome::Stall(StallReason::NoFreeQueue)
        );
        assert_eq!(ces.steer_stats().alloc_ready, 2);
        assert_eq!(ces.steer_stats().stall_ready, 1);
    }

    #[test]
    fn heads_issue_out_of_order_across_piqs() {
        let mut ces = Ces::new(CesConfig::default());
        let mut scb = Scoreboard::new(348);
        scb.allocate(PhysReg(10)); // chain 0 blocked
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        ces.try_dispatch(op(0, Some(11), [Some(10), None]), &ctx); // blocked chain
        ces.try_dispatch(op(1, None, [None, None]), &ctx); // ready chain
        let out = issue_once(&mut ces, &scb, 0);
        assert_eq!(out, vec![1]);
        // Unblock chain 0 (writeback edge paired with the scoreboard write).
        scb.set_ready_at(PhysReg(10), 5);
        ces.on_complete(PhysReg(10));
        let out2 = issue_once(&mut ces, &scb, 5);
        assert_eq!(out2, vec![0]);
    }

    #[test]
    fn full_piq_redirects_consumer_to_new_queue() {
        let mut ces = Ces::new(CesConfig {
            piq_entries: 2,
            ..CesConfig::default()
        });
        let mut scb = Scoreboard::new(348);
        for p in 10..16 {
            scb.allocate(PhysReg(p));
        }
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        ces.try_dispatch(op(0, Some(10), [None, None]), &ctx);
        ces.try_dispatch(op(1, Some(11), [Some(10), None]), &ctx);
        // P-IQ 0 now full (2 entries); consumer of 11 must go elsewhere.
        ces.try_dispatch(op(2, Some(12), [Some(11), None]), &ctx);
        assert_eq!(ces.piq_len(0), 2);
        assert_eq!(ces.piq_len(1), 1);
    }

    #[test]
    fn completion_clears_location_so_consumers_allocate() {
        let mut ces = Ces::new(CesConfig::default());
        let mut scb = Scoreboard::new(348);
        scb.allocate(PhysReg(10));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        ces.try_dispatch(op(0, Some(10), [None, None]), &ctx);
        let _ = issue_once(&mut ces, &scb, 0);
        scb.set_ready_at(PhysReg(10), 1);
        ces.on_complete(PhysReg(10));
        // Consumer arrives after completion: producer not in any P-IQ.
        let ctx1 = ReadyCtx {
            cycle: 1,
            scb: &scb,
            held: &held,
        };
        ces.try_dispatch(op(1, Some(11), [Some(10), None]), &ctx1);
        assert_eq!(ces.steer_stats().alloc_ready, 2); // both allocations
    }

    #[test]
    fn mda_steers_load_behind_producer_store() {
        let mut ces = Ces::new(CesConfig {
            mda_steering: true,
            ..CesConfig::default()
        });
        let mut scb = Scoreboard::new(348);
        scb.allocate(PhysReg(20));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        // Store in a chain (non-ready), with ssid 5.
        let mut st = op(0, None, [Some(20), None]);
        st.class = OpClass::Store;
        st.ssid = Some(SsId(5));
        ces.try_dispatch(st, &ctx);
        // M-dependent load (register-ready!) with same ssid.
        let mut ld = op(1, Some(30), [None, None]);
        ld.class = OpClass::Load;
        ld.ssid = Some(SsId(5));
        ld.mdp_wait = Some(0);
        ces.try_dispatch(ld, &ctx);
        assert_eq!(ces.piq_len(0), 2, "load must share the store's P-IQ");
        // A second load of the set must NOT pile in (reserved).
        let mut ld2 = op(2, Some(31), [None, None]);
        ld2.class = OpClass::Load;
        ld2.ssid = Some(SsId(5));
        ces.try_dispatch(ld2, &ctx);
        assert_eq!(ces.piq_len(0), 2);
        assert_eq!(ces.piq_len(1), 1);
    }

    #[test]
    fn without_mda_load_takes_separate_piq() {
        let mut ces = Ces::new(CesConfig::default());
        let mut scb = Scoreboard::new(348);
        scb.allocate(PhysReg(20));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        let mut st = op(0, None, [Some(20), None]);
        st.class = OpClass::Store;
        st.ssid = Some(SsId(5));
        ces.try_dispatch(st, &ctx);
        let mut ld = op(1, Some(30), [None, None]);
        ld.class = OpClass::Load;
        ld.ssid = Some(SsId(5));
        ces.try_dispatch(ld, &ctx);
        assert_eq!(ces.piq_len(0), 1);
        assert_eq!(ces.piq_len(1), 1);
    }

    #[test]
    fn store_issue_releases_lfst_steer() {
        let mut ces = Ces::new(CesConfig {
            mda_steering: true,
            ..CesConfig::default()
        });
        let scb = Scoreboard::new(348);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        let mut st = op(0, None, [None, None]);
        st.class = OpClass::Store;
        st.ssid = Some(SsId(5));
        st.port = PortId(2);
        ces.try_dispatch(st, &ctx);
        let out = issue_once(&mut ces, &scb, 0);
        assert_eq!(out, vec![0]);
        // A later load of the set no longer finds steering info: it must
        // *allocate* (the now-empty P-IQ 0), not steer along a stale entry.
        let mut ld = op(1, Some(30), [None, None]);
        ld.class = OpClass::Load;
        ld.ssid = Some(SsId(5));
        ces.try_dispatch(ld, &ctx);
        assert_eq!(
            ces.steer_stats().steer_dc,
            0,
            "stale LFST info must not steer"
        );
        assert_eq!(
            ces.steer_stats().alloc_ready + ces.steer_stats().alloc_nonready,
            2
        );
    }

    #[test]
    fn head_stats_classify_mdp_blocked_loads() {
        let mut ces = Ces::new(CesConfig::default());
        let scb = Scoreboard::new(348);
        let mut held = HeldSet::new();
        held.insert(0u64);
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        let mut ld = op(0, Some(30), [None, None]);
        ld.class = OpClass::Load;
        ld.port = PortId(2);
        ces.try_dispatch(ld, &ctx);
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, 0);
        let mut out = Vec::new();
        ces.issue(&ctx, &mut pa, &mut out);
        assert!(out.is_empty());
        assert_eq!(ces.head_stats().stall_mdep_load, 1);
    }

    #[test]
    fn flush_restores_queues_and_locations() {
        let mut ces = Ces::new(CesConfig::default());
        let mut scb = Scoreboard::new(348);
        scb.allocate(PhysReg(10));
        scb.allocate(PhysReg(11));
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        ces.try_dispatch(op(0, Some(10), [None, None]), &ctx);
        ces.try_dispatch(op(1, Some(11), [Some(10), None]), &ctx);
        ces.flush_after(0, &[PhysReg(11)]);
        assert_eq!(ces.occupancy(), 1);
        // Per §IV-F the Reserved flag set by the squashed consumer is NOT
        // restored: a refetched consumer of 10 allocates a new P-IQ rather
        // than re-steering. Correctness is unaffected.
        ces.try_dispatch(op(2, Some(12), [Some(10), None]), &ctx);
        assert_eq!(ces.piq_len(0), 1);
        assert_eq!(ces.piq_len(1), 1);
    }

    #[test]
    fn issue_breakdown_counts_piq_issues() {
        let mut ces = Ces::new(CesConfig::default());
        let scb = Scoreboard::new(348);
        let held = HeldSet::new();
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        ces.try_dispatch(op(0, None, [None, None]), &ctx);
        let _ = issue_once(&mut ces, &scb, 0);
        assert_eq!(ces.issue_breakdown().from_piq, 1);
    }
}
