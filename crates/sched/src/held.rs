//! [`HeldSet`]: the set of sequence numbers serialized by the MDP.
//!
//! The pipeline consults this set for *every* μop examined by the
//! scheduler every cycle (via [`crate::ReadyCtx::is_ready`]), so it sits
//! on the hottest path of the simulator. Membership is tiny (only loads
//! and stores waiting behind a predicted producer store) and churns in
//! rough seq order, so a sorted `Vec` with binary search beats a
//! `HashSet`: lookups are a handful of cache-resident compares with no
//! hashing, and inserts are usually appends.

/// A small sorted set of μop sequence numbers held by the MDP.
#[derive(Debug, Default, Clone)]
pub struct HeldSet {
    seqs: Vec<u64>,
}

impl HeldSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        HeldSet::default()
    }

    /// Whether `seq` is held.
    #[inline]
    pub fn contains(&self, seq: u64) -> bool {
        // New holds are almost always younger than everything resident,
        // so check the tail before falling back to binary search.
        match self.seqs.last() {
            None => false,
            Some(&last) if seq > last => false,
            Some(&last) if seq == last => true,
            _ => self.seqs.binary_search(&seq).is_ok(),
        }
    }

    /// Adds `seq`; no-op if already present.
    pub fn insert(&mut self, seq: u64) {
        match self.seqs.last() {
            Some(&last) if seq > last => self.seqs.push(seq),
            None => self.seqs.push(seq),
            _ => {
                if let Err(pos) = self.seqs.binary_search(&seq) {
                    self.seqs.insert(pos, seq);
                }
            }
        }
    }

    /// Removes `seq` if present.
    pub fn remove(&mut self, seq: u64) {
        if let Ok(pos) = self.seqs.binary_search(&seq) {
            self.seqs.remove(pos);
        }
    }

    /// Number of held μops.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut h = HeldSet::new();
        assert!(!h.contains(5));
        h.insert(5);
        h.insert(9);
        h.insert(2); // out-of-order insert still lands sorted
        assert!(h.contains(2) && h.contains(5) && h.contains(9));
        assert!(!h.contains(7));
        assert_eq!(h.len(), 3);
        h.remove(5);
        assert!(!h.contains(5));
        h.remove(5); // double remove is a no-op
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut h = HeldSet::new();
        h.insert(4);
        h.insert(4);
        assert_eq!(h.len(), 1);
        h.remove(4);
        assert!(h.is_empty());
    }

    #[test]
    fn matches_reference_hashset_under_churn() {
        use ballerino_isa::rng::Rng64;
        use std::collections::HashSet;
        let mut rng = Rng64::new(11);
        let mut h = HeldSet::new();
        let mut model: HashSet<u64> = HashSet::new();
        for _ in 0..10_000 {
            let s = rng.below(64);
            match rng.index(3) {
                0 => {
                    h.insert(s);
                    model.insert(s);
                }
                1 => {
                    h.remove(s);
                    model.remove(&s);
                }
                _ => assert_eq!(h.contains(s), model.contains(&s)),
            }
            assert_eq!(h.len(), model.len());
        }
    }
}
