//! The shared producer-indexed wakeup fabric.
//!
//! Every live scheduler used to re-derive readiness by rescanning its
//! resident μops against the [`Scoreboard`](crate::Scoreboard) each
//! cycle — a software re-enactment of the CAM broadcast the paper's
//! whole point is to avoid. The fabric inverts the dependence: each
//! *producer* register keeps the list of resident consumers waiting on
//! it, so a completion ([`WakeFabric::on_complete`]) touches exactly
//! the consumers of that destination instead of the whole window.
//!
//! ## Invariants (see ARCHITECTURE.md, "The wakeup fabric")
//!
//! * **Insert-time snapshot.** At [`WakeFabric::insert`] every source
//!   that is not ready *now* registers one waiter node; `pending` is
//!   the count of registered nodes. A source that is ready never
//!   regresses (only `Scoreboard::allocate` resets a register, and the
//!   pipeline guarantees no resident consumer ever waits on a register
//!   being reallocated).
//! * **Edge alignment.** The pipeline calls `on_complete(dst)` in
//!   writeback at exactly the cycle `ready_at[dst]` was set to when the
//!   producer issued, and writeback runs before `issue`, so an entry's
//!   `pending == 0` transition coincides with the cycle its
//!   level-checked `ReadyCtx::is_ready` would first return true.
//! * **Exact lists.** Waiter nodes are scrubbed eagerly on issue
//!   ([`WakeFabric::remove`]) and squash ([`WakeFabric::flush_after`]),
//!   so a waiter list never holds a stale sequence number and a
//!   completion never wakes a flushed consumer.
//! * **Level-polled holds.** MDP holds release when a *store issues*
//!   (pipeline state the fabric cannot observe edge-wise), so entries
//!   whose sources are done but whose `mdp_wait` is set park in a held
//!   list that [`WakeFabric::poll`] re-checks against
//!   [`ReadyCtx::held`] once per issue call — O(held), not O(window).
//!
//! Entries are keyed by the μop sequence number in a dense slab
//! (`seq - base` indexing, the same discipline as the simulator's
//! `SeqSlab`): schedulers that shuffle μops between internal queues
//! (Ballerino, CASINO, CES) need no handle bookkeeping at all.

use crate::ports::PortAlloc;
use crate::traits::{BlockHorizon, GrantBlock, ReadyCtx};
use crate::uop::SchedUop;
use ballerino_isa::{OpClass, PhysReg, PortId, MAX_PORTS};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Readiness of a fabric-resident μop, maintained edge-triggered.
///
/// After [`WakeFabric::poll`] has run for the current cycle, the state
/// is exactly the level-checked classification of
/// [`ReadyCtx::is_ready`] / [`ReadyCtx::is_mdp_blocked`]:
/// `Ready` ⟺ `is_ready`, `Held` ⟺ `is_mdp_blocked`, `Waiting` ⟺
/// some register source still pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeState {
    /// At least one register source has not completed.
    Waiting,
    /// All register sources done, but an MDP hold blocks issue.
    Held,
    /// Issuable this cycle.
    Ready,
}

#[derive(Debug, Clone)]
struct WakeEntry {
    /// Scheduler-defined payload tag (the OoO IQ stores its slot index,
    /// which is its select priority; FIFO designs leave it 0).
    tag: u32,
    port: PortId,
    class: OpClass,
    srcs: [Option<PhysReg>; 2],
    /// Destination register (block planning chains a granted producer's
    /// completion into its resident consumers' wake cycles).
    dst: Option<PhysReg>,
    /// Per-source pending marker; `None` once the source completed (or
    /// was ready at insert).
    waiting_on: [Option<PhysReg>; 2],
    pending: u8,
    /// Whether the μop ever carried an MDP hold (`mdp_wait` present).
    mdp: bool,
    state: WakeState,
    /// Position in `ready` (when `Ready`) or `held` (when `Held`).
    pos: u32,
}

/// Producer-indexed wakeup lists plus per-entry ready state and the
/// shared select/port-claim loop. One instance per scheduler (FXA and
/// DNB embed one via their backend OoO IQ).
#[derive(Debug, Default)]
pub struct WakeFabric {
    /// Oldest resident sequence number (slab index 0).
    base: u64,
    /// Dense seq-indexed slab; `None` marks issued/squashed gaps.
    slab: VecDeque<Option<WakeEntry>>,
    /// Consumers waiting per physical register (lazily grown).
    waiters: Vec<Vec<u64>>,
    /// Entries with `state == Ready`.
    ready: Vec<u64>,
    /// Entries with `state == Held` (sources done, MDP hold assumed).
    held: Vec<u64>,
    /// Resident entry count.
    len: usize,
    /// Grants of the last [`WakeFabric::select`] call, in grant order.
    grant_buf: Vec<u64>,
}

impl WakeFabric {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no μop is resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries currently issuable (after the last [`WakeFabric::poll`]).
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Entries parked on an MDP hold (sources done, store not issued).
    pub fn held_len(&self) -> usize {
        self.held.len()
    }

    /// Panic-safe readiness lookup: `None` when `seq` is not resident
    /// (issued, squashed, or never inserted). Block validation uses this
    /// so a flushed μop fails the check instead of crashing it.
    pub fn state_of(&self, seq: u64) -> Option<WakeState> {
        if seq < self.base {
            return None;
        }
        let i = (seq - self.base) as usize;
        self.slab.get(i).and_then(|s| s.as_ref()).map(|e| e.state)
    }

    fn idx(&self, seq: u64) -> usize {
        debug_assert!(
            seq >= self.base,
            "seq {seq} older than fabric base {}",
            self.base
        );
        (seq - self.base) as usize
    }

    fn entry(&self, seq: u64) -> &WakeEntry {
        let i = self.idx(seq);
        self.slab[i].as_ref().expect("fabric entry present")
    }

    fn entry_mut(&mut self, seq: u64) -> &mut WakeEntry {
        let i = self.idx(seq);
        self.slab[i].as_mut().expect("fabric entry present")
    }

    /// The readiness state of resident μop `seq`. Exact against the
    /// level-checked `ReadyCtx` predicates once [`WakeFabric::poll`]
    /// has run for the current cycle.
    pub fn state(&self, seq: u64) -> WakeState {
        self.entry(seq).state
    }

    /// The scheduler-defined tag of resident μop `seq`.
    pub fn tag_of(&self, seq: u64) -> u32 {
        self.entry(seq).tag
    }

    fn waiter_list(&mut self, r: PhysReg) -> &mut Vec<u64> {
        let i = r.index();
        if i >= self.waiters.len() {
            self.waiters.resize_with(i + 1, Vec::new);
        }
        &mut self.waiters[i]
    }

    fn push_ready(&mut self, seq: u64) {
        let pos = self.ready.len() as u32;
        self.ready.push(seq);
        let e = self.entry_mut(seq);
        e.state = WakeState::Ready;
        e.pos = pos;
    }

    fn push_held(&mut self, seq: u64) {
        let pos = self.held.len() as u32;
        self.held.push(seq);
        let e = self.entry_mut(seq);
        e.state = WakeState::Held;
        e.pos = pos;
    }

    /// Unlinks `seq` from the ready/held list it sits in (no-op for
    /// `Waiting` entries).
    fn unlink(&mut self, seq: u64) {
        let (state, pos) = {
            let e = self.entry(seq);
            (e.state, e.pos as usize)
        };
        let list = match state {
            WakeState::Ready => &mut self.ready,
            WakeState::Held => &mut self.held,
            WakeState::Waiting => return,
        };
        debug_assert_eq!(list[pos], seq);
        list.swap_remove(pos);
        if let Some(&moved) = list.get(pos) {
            self.entry_mut(moved).pos = pos as u32;
        }
    }

    /// Registers a dispatched μop. `tag` is an opaque scheduler payload
    /// returned by [`WakeFabric::tag_of`] (the OoO IQ stores its slot
    /// index). Sources not ready at `ctx.cycle` register waiter nodes;
    /// their completions must arrive via [`WakeFabric::on_complete`].
    pub fn insert(&mut self, uop: &SchedUop, tag: u32, ctx: &ReadyCtx<'_>) {
        // Dispatch is program-ordered in the pipeline, so inserts are
        // normally appends (with `None` padding across squash gaps); the
        // slab still accepts an out-of-order insert into a vacant slot.
        if self.slab.is_empty() {
            self.base = uop.seq;
        } else if uop.seq < self.base {
            for _ in 0..(self.base - uop.seq) {
                self.slab.push_front(None);
            }
            self.base = uop.seq;
        }
        let idx = (uop.seq - self.base) as usize;
        while self.slab.len() <= idx {
            self.slab.push_back(None);
        }
        debug_assert!(
            self.slab[idx].is_none(),
            "duplicate fabric insert for seq {}",
            uop.seq
        );
        let mut pending = 0u8;
        let mut waiting_on = [None, None];
        for (k, s) in uop.srcs.iter().enumerate() {
            if let Some(r) = *s {
                if !ctx.scb.is_ready(r, ctx.cycle) {
                    pending += 1;
                    waiting_on[k] = Some(r);
                    let seq = uop.seq;
                    self.waiter_list(r).push(seq);
                }
            }
        }
        let held_now = ctx.held.contains(uop.seq);
        let mdp = uop.mdp_wait.is_some() || held_now;
        self.slab[idx] = Some(WakeEntry {
            tag,
            port: uop.port,
            class: uop.class,
            srcs: uop.srcs,
            dst: uop.dst,
            waiting_on,
            pending,
            mdp,
            state: WakeState::Waiting,
            pos: 0,
        });
        self.len += 1;
        if pending == 0 {
            if held_now {
                self.push_held(uop.seq);
            } else {
                self.push_ready(uop.seq);
            }
        }
    }

    /// Wakes the consumers of `dst`: O(waiters of `dst`), not
    /// O(window). Entries whose last pending source this was move to
    /// `Ready` (or `Held` when an MDP hold may still be outstanding —
    /// resolved by the next [`WakeFabric::poll`]).
    pub fn on_complete(&mut self, dst: PhysReg) {
        let di = dst.index();
        if di >= self.waiters.len() {
            return;
        }
        while let Some(seq) = self.waiters[di].pop() {
            let e = self.entry_mut(seq);
            let slot = e
                .waiting_on
                .iter_mut()
                .find(|w| **w == Some(dst))
                .expect("waiter node matches a pending source");
            *slot = None;
            e.pending -= 1;
            if e.pending == 0 {
                if e.mdp {
                    // The hold may already be released; `poll` decides.
                    self.push_held(seq);
                } else {
                    self.push_ready(seq);
                }
            }
        }
    }

    /// Releases held entries whose MDP hold is gone (their producer
    /// store issued). Call once at the start of each `issue` before
    /// consulting [`WakeFabric::state`] / [`WakeFabric::select`].
    pub fn poll(&mut self, ctx: &ReadyCtx<'_>) {
        let mut i = 0;
        while i < self.held.len() {
            let seq = self.held[i];
            if ctx.held.contains(seq) {
                i += 1;
                continue;
            }
            self.held.swap_remove(i);
            if let Some(&moved) = self.held.get(i) {
                self.entry_mut(moved).pos = i as u32;
            }
            self.push_ready(seq);
        }
    }

    /// Removes an issued μop, scrubbing any remaining waiter nodes.
    pub fn remove(&mut self, seq: u64) {
        self.unlink(seq);
        let i = self.idx(seq);
        let e = self.slab[i].take().expect("removing a resident entry");
        for r in e.waiting_on.iter().flatten() {
            let list = &mut self.waiters[r.index()];
            let p = list
                .iter()
                .position(|&s| s == seq)
                .expect("waiter node present");
            list.swap_remove(p);
        }
        self.len -= 1;
        while matches!(self.slab.front(), Some(None)) {
            self.slab.pop_front();
            self.base += 1;
        }
    }

    /// Removes every entry younger than `seq` (squash).
    pub fn flush_after(&mut self, seq: u64) {
        let keep = if seq < self.base {
            0
        } else {
            ((seq - self.base) as usize + 1).min(self.slab.len())
        };
        while self.slab.len() > keep {
            if let Some(e) = self.slab.pop_back().expect("len checked") {
                let gone = self.base + self.slab.len() as u64;
                // Unlink from ready/held by value: positions are cheap
                // to fix and flushes are rare.
                match e.state {
                    WakeState::Ready => {
                        let p = e.pos as usize;
                        debug_assert_eq!(self.ready[p], gone);
                        self.ready.swap_remove(p);
                        if let Some(&moved) = self.ready.get(p) {
                            self.entry_mut(moved).pos = p as u32;
                        }
                    }
                    WakeState::Held => {
                        let p = e.pos as usize;
                        debug_assert_eq!(self.held[p], gone);
                        self.held.swap_remove(p);
                        if let Some(&moved) = self.held.get(p) {
                            self.entry_mut(moved).pos = p as u32;
                        }
                    }
                    WakeState::Waiting => {}
                }
                for r in e.waiting_on.iter().flatten() {
                    let list = &mut self.waiters[r.index()];
                    let p = list
                        .iter()
                        .position(|&s| s == gone)
                        .expect("waiter node present");
                    list.swap_remove(p);
                }
                self.len -= 1;
            }
        }
        while matches!(self.slab.front(), Some(None)) {
            self.slab.pop_front();
            self.base += 1;
        }
    }

    /// Event-horizon helper: `None` when any resident μop requests
    /// select this cycle (so the scheduler is not quiesced), otherwise
    /// the earliest cycle a resident could become issuable
    /// (`u64::MAX` when every resident waits on an unscheduled producer
    /// or an MDP hold). Level-exact: held entries are re-checked
    /// against `ctx.held`, so a hold released this cycle reports
    /// `None` even before the next [`WakeFabric::poll`].
    pub fn min_wake(&self, ctx: &ReadyCtx<'_>) -> Option<u64> {
        let mut horizon = u64::MAX;
        for (i, slot) in self.slab.iter().enumerate() {
            let Some(e) = slot else { continue };
            let seq = self.base + i as u64;
            let wake = if e.mdp && ctx.held.contains(seq) {
                u64::MAX
            } else {
                ctx.scb.srcs_ready_cycle(&e.srcs)
            };
            if wake <= ctx.cycle {
                return None;
            }
            horizon = horizon.min(wake);
        }
        Some(horizon)
    }

    /// The shared single-pass select/port-claim loop: one pass over the
    /// ready set computes the best requester per port (lowest `tag`, or
    /// lowest seq with `oldest_first`), then grants flow in global
    /// priority order until the width budget runs out. Returns whether
    /// any resident requested select (ready entries exist, even
    /// port-blocked ones); the granted sequence numbers are available
    /// via [`WakeFabric::grants`] until the next call.
    pub fn select(&mut self, ports: &mut PortAlloc<'_>, oldest_first: bool) -> bool {
        self.grant_buf.clear();
        if self.ready.is_empty() {
            return false;
        }
        // (seq, tag) best requester per port.
        let mut best_per_port: [Option<(u64, u32)>; MAX_PORTS] = [None; MAX_PORTS];
        for &seq in &self.ready {
            let e = {
                let i = (seq - self.base) as usize;
                self.slab[i].as_ref().expect("ready entry resident")
            };
            if !ports.can_claim(e.port, e.class) {
                continue;
            }
            let best = &mut best_per_port[e.port.index()];
            let better = match *best {
                None => true,
                Some((bseq, btag)) => {
                    if oldest_first {
                        seq < bseq
                    } else {
                        e.tag < btag
                    }
                }
            };
            if better {
                *best = Some((seq, e.tag));
            }
        }
        // Grant the per-port winners in global priority order until the
        // width budget runs out (ports are independent, so removing one
        // port's winner never changes another port's).
        while ports.remaining() > 0 {
            let mut best: Option<(u64, u32, usize)> = None;
            for (pi, slot) in best_per_port.iter().enumerate() {
                let Some((seq, tag)) = *slot else { continue };
                let better = match best {
                    None => true,
                    Some((bseq, btag, _)) => {
                        if oldest_first {
                            seq < bseq
                        } else {
                            tag < btag
                        }
                    }
                };
                if better {
                    best = Some((seq, tag, pi));
                }
            }
            let Some((seq, _, pi)) = best else { break };
            let (port, class) = {
                let e = self.entry(seq);
                (e.port, e.class)
            };
            let claimed = ports.try_claim(port, class);
            debug_assert!(claimed);
            best_per_port[pi] = None;
            self.grant_buf.push(seq);
        }
        true
    }

    /// Grant-identical fast variant of [`WakeFabric::select`] for the
    /// macro-step path: same grant set, same grant order, same port
    /// claims — only the search is specialized for the common
    /// steady-state shapes (empty or singleton ready set; a small ready
    /// set on pairwise-distinct ports within the width budget). Any
    /// other shape falls through to the general loop.
    ///
    /// Without `oldest_first`, callers must keep entry tags unique
    /// across residents (the OoO IQ's slot indices are): `select`
    /// breaks priority ties by scan order, which the sorted fast path
    /// does not reproduce.
    pub fn select_fast(&mut self, ports: &mut PortAlloc<'_>, oldest_first: bool) -> bool {
        match self.ready.len() {
            0 => {
                self.grant_buf.clear();
                false
            }
            1 => {
                self.grant_buf.clear();
                let seq = self.ready[0];
                let (port, class) = {
                    let e = self.entry(seq);
                    (e.port, e.class)
                };
                if ports.remaining() > 0 && ports.try_claim(port, class) {
                    self.grant_buf.push(seq);
                }
                true
            }
            n if n <= ports.remaining() => {
                // With every claimable requester on a distinct port and
                // the whole set within the width budget, the general
                // loop grants exactly the claimable requesters, in
                // global priority order. Build that order directly;
                // bail to the general loop on a port collision.
                let mut cands: [(u64, u64); MAX_PORTS] = [(0, 0); MAX_PORTS];
                let mut seen_ports: u16 = 0;
                let mut k = 0;
                for &seq in &self.ready {
                    let e = {
                        let i = (seq - self.base) as usize;
                        self.slab[i].as_ref().expect("ready entry resident")
                    };
                    let bit = 1u16 << e.port.index();
                    if seen_ports & bit != 0 {
                        return self.select(ports, oldest_first);
                    }
                    seen_ports |= bit;
                    if !ports.can_claim(e.port, e.class) {
                        continue;
                    }
                    let key = if oldest_first { seq } else { e.tag as u64 };
                    cands[k] = (key, seq);
                    k += 1;
                }
                self.grant_buf.clear();
                let cands = &mut cands[..k];
                cands.sort_unstable();
                for &(_, seq) in cands.iter() {
                    let (port, class) = {
                        let e = self.entry(seq);
                        (e.port, e.class)
                    };
                    let claimed = ports.try_claim(port, class);
                    debug_assert!(claimed);
                    self.grant_buf.push(seq);
                }
                true
            }
            _ => self.select(ports, oldest_first),
        }
    }

    /// Plans a multi-cycle [`GrantBlock`] over the fabric in one pass:
    /// closed-form select per future cycle over the simulated ready set,
    /// chaining block-granted producers' completions into their resident
    /// consumers' wake cycles (fixed execution latencies from
    /// [`OpClass::exec_latency`]; loads optimistically at
    /// `horizon.load_latency`, the L1-hit path — a slower actual
    /// completion fails the wake validation and invalidates the block,
    /// never corrupts state).
    ///
    /// Declines (`None`) when any entry is parked on an MDP hold
    /// (store-set release timing is pipeline state the plan cannot see),
    /// and ends the block early at the first cycle a wake would land in
    /// the held list. Like [`WakeFabric::select_fast`], tags must be
    /// unique across residents unless `oldest_first` keys by age.
    ///
    /// The plan replicates [`WakeFabric::select`] exactly per simulated
    /// cycle — per-port best by key, then grants in global priority
    /// order within the width budget, honouring unpipelined-FU busy
    /// windows including the plan's own reservations — so consuming the
    /// block is grant-identical to per-cycle select for as long as each
    /// cycle's validation (`verify_block_cycle`) passes.
    pub fn plan_block(
        &self,
        ctx: &ReadyCtx<'_>,
        ports: &PortAlloc<'_>,
        horizon: BlockHorizon,
        oldest_first: bool,
    ) -> Option<GrantBlock> {
        if !self.held.is_empty() || horizon.cycles < 2 {
            return None;
        }
        let width = ports.remaining();
        if width == 0 {
            return None;
        }
        let start = ctx.cycle;
        let max_end = start.saturating_add(horizon.cycles);

        // Simulated ready pool, keyed by select priority.
        let key_of = |e: &WakeEntry, seq: u64| if oldest_first { seq } else { e.tag as u64 };
        let mut pool: Vec<(u64, u64, PortId, OpClass)> = Vec::with_capacity(self.ready.len() + 8);
        for &seq in &self.ready {
            let e = self.entry(seq);
            pool.push((key_of(e, seq), seq, e.port, e.class));
        }
        // Remaining pending-source count per slab slot.
        let mut pend: Vec<u8> = self
            .slab
            .iter()
            .map(|s| s.as_ref().map_or(0, |e| e.pending))
            .collect();
        // Register-availability events `(cycle, reg)`: already-issued
        // producers contribute their known completion cycles now;
        // block-planned grants push theirs as the plan discovers them.
        let mut events: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        for (ri, list) in self.waiters.iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            let rc = ctx.scb.ready_cycle(PhysReg(ri as u32));
            if rc == u64::MAX {
                continue; // unissued producer; chained below if planned
            }
            if rc <= start {
                return None; // missed wake edge: state is not settled
            }
            if rc < max_end {
                events.push(Reverse((rc, ri as u32)));
            }
        }

        let mut grants: Vec<(u64, u64)> = Vec::new();
        let mut wakes: Vec<(u64, u64)> = Vec::new();
        let mut expected_ready: Vec<u32> = Vec::with_capacity(horizon.cycles as usize);
        let mut fu = ports.fu_busy().clone();
        let mut end = start;

        'plan: for t in start..max_end {
            // Writeback edge for cycle t: deliver due register events
            // (writeback runs before issue, so wakes land before select).
            while let Some(&Reverse((c, ri))) = events.peek() {
                if c > t {
                    break;
                }
                events.pop();
                for &wseq in &self.waiters[ri as usize] {
                    let wi = (wseq - self.base) as usize;
                    pend[wi] -= 1;
                    if pend[wi] == 0 {
                        let e = self.slab[wi].as_ref().expect("waiter resident");
                        if e.mdp {
                            // Would park Held: an unresolved store-set
                            // event. End the block before this cycle.
                            break 'plan;
                        }
                        wakes.push((t, wseq));
                        pool.push((key_of(e, wseq), wseq, e.port, e.class));
                    }
                }
            }
            expected_ready.push(pool.len() as u32);
            end = t + 1;
            if pool.is_empty() {
                continue;
            }
            // Closed-form select for cycle t (mirrors `select`): best
            // requester per port among FU-free candidates, then grants in
            // global priority order until the width budget runs out.
            let mut best: [Option<(u64, usize)>; MAX_PORTS] = [None; MAX_PORTS];
            for (k, &(key, _, port, class)) in pool.iter().enumerate() {
                if !fu.is_free(port, class, t) {
                    continue;
                }
                let b = &mut best[port.index()];
                if b.is_none_or(|(bk, _)| key < bk) {
                    *b = Some((key, k));
                }
            }
            let mut winners: [(u64, usize); MAX_PORTS] = [(0, 0); MAX_PORTS];
            let mut n = 0;
            for w in best.iter().flatten() {
                winners[n] = *w;
                n += 1;
            }
            let winners = &mut winners[..n];
            winners.sort_unstable();
            let mut rm: [usize; MAX_PORTS] = [0; MAX_PORTS];
            let mut nrm = 0;
            for &(_, k) in winners.iter().take(width) {
                let (_, seq, port, class) = pool[k];
                grants.push((t, seq));
                if let Some(d) = self.entry(seq).dst {
                    let comp = if class == OpClass::Load {
                        t + horizon.load_latency
                    } else {
                        t + class.exec_latency() as u64
                    };
                    let has_waiters = self.waiters.get(d.index()).is_some_and(|l| !l.is_empty());
                    if comp < max_end && has_waiters {
                        events.push(Reverse((comp, d.index() as u32)));
                    }
                }
                // The plan's own unpipelined grants gate their FU for
                // future planned cycles, exactly as `process_issue` will.
                fu.reserve(port, class, t + class.exec_latency() as u64);
                rm[nrm] = k;
                nrm += 1;
            }
            let rm = &mut rm[..nrm];
            rm.sort_unstable_by(|a, b| b.cmp(a));
            for &k in rm.iter() {
                pool.swap_remove(k);
            }
            // When pool and events run dry, the remaining planned cycles
            // are a zero-grant tail: the ready set stays empty, which is
            // exactly what live select would see, so serving them costs
            // nothing and keeps the block alive until real work arrives
            // (a dispatch-driven wake then invalidates it, and the dead
            // block's run length licenses an immediate replan). Ending
            // the block here instead would force a fresh planning pass
            // every few cycles in bursty regimes.
        }
        if grants.is_empty() {
            return None; // nothing to serve: not worth a block
        }
        Some(GrantBlock {
            start,
            end,
            grants,
            g_cursor: 0,
            wakes,
            w_cursor: 0,
            expected_ready,
        })
    }

    /// Validates one cycle of a planned block against the fabric's actual
    /// state, advancing the block's wake cursor. Pure with respect to the
    /// fabric: a `false` return leaves the scheduler untouched, so the
    /// caller can fall back to the per-cycle path and charge the cycle's
    /// bookkeeping exactly once.
    ///
    /// The check triple is exact, not heuristic: (1) the held list is
    /// empty, so `poll` is a no-op and no hold release can reorder
    /// grants; (2) every predicted wake due by `cycle` actually left a
    /// `Ready` entry (late loads, flushed μops, and missed forwards all
    /// fail here); (3) the ready population equals the plan's. Removals
    /// since the block started are exactly the already-served grants, and
    /// inserts or unpredicted wakes can only grow the ready set, so
    /// predicted wakes present + equal count ⟹ the actual ready set *is*
    /// the planned one — same members, same tags, same ports.
    pub fn verify_block_cycle(&self, block: &mut GrantBlock, cycle: u64) -> bool {
        if !self.held.is_empty() {
            return false;
        }
        while let Some(&(c, seq)) = block.wakes.get(block.w_cursor) {
            if c > cycle {
                break;
            }
            if self.state_of(seq) != Some(WakeState::Ready) {
                return false;
            }
            block.w_cursor += 1;
        }
        debug_assert!(cycle >= block.start && cycle < block.end);
        let rel = (cycle - block.start) as usize;
        match block.expected_ready.get(rel) {
            Some(&n) => self.ready.len() == n as usize,
            None => false,
        }
    }

    /// Diagnostic rendering of the entry for `seq` (see
    /// [`Scheduler::debug_locate`](crate::Scheduler::debug_locate)).
    pub fn debug_entry(&self, seq: u64) -> String {
        let i = (seq.saturating_sub(self.base)) as usize;
        match self.slab.get(i) {
            Some(Some(e)) => format!("{e:?}"),
            Some(None) => "gone".into(),
            None => "out-of-slab".into(),
        }
    }

    /// Sequence numbers granted by the last [`WakeFabric::select`], in
    /// grant order.
    pub fn grants(&self) -> &[u64] {
        &self.grant_buf
    }

    /// Number of grants of the last [`WakeFabric::select`].
    pub fn grant_count(&self) -> usize {
        self.grant_buf.len()
    }

    /// Granted seq at position `k` of the last select.
    pub fn grant(&self, k: usize) -> u64 {
        self.grant_buf[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::held::HeldSet;
    use crate::ports::FuBusy;
    use crate::scoreboard::Scoreboard;

    fn op(seq: u64, port: u8, srcs: [Option<u32>; 2]) -> SchedUop {
        SchedUop {
            port: PortId(port),
            srcs: [srcs[0].map(PhysReg), srcs[1].map(PhysReg)],
            ..SchedUop::test_op(seq)
        }
    }

    struct Rig {
        f: WakeFabric,
        scb: Scoreboard,
        held: HeldSet,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                f: WakeFabric::new(),
                scb: Scoreboard::new(64),
                held: HeldSet::new(),
            }
        }

        fn insert(&mut self, u: &SchedUop, cycle: u64) {
            let ctx = ReadyCtx {
                cycle,
                scb: &self.scb,
                held: &self.held,
            };
            self.f.insert(u, 0, &ctx);
        }

        fn poll(&mut self, cycle: u64) {
            let ctx = ReadyCtx {
                cycle,
                scb: &self.scb,
                held: &self.held,
            };
            self.f.poll(&ctx);
        }
    }

    #[test]
    fn ready_at_insert_lands_in_ready_set() {
        let mut r = Rig::new();
        r.insert(&op(1, 0, [None, None]), 0);
        assert_eq!(r.f.state(1), WakeState::Ready);
        assert_eq!(r.f.ready_len(), 1);
    }

    #[test]
    fn producer_completion_wakes_only_its_consumers() {
        let mut r = Rig::new();
        r.scb.allocate(PhysReg(10));
        r.scb.allocate(PhysReg(11));
        r.insert(&op(1, 0, [Some(10), None]), 0);
        r.insert(&op(2, 1, [Some(11), None]), 0);
        assert_eq!(r.f.state(1), WakeState::Waiting);
        r.scb.set_ready_at(PhysReg(10), 5);
        r.f.on_complete(PhysReg(10));
        assert_eq!(r.f.state(1), WakeState::Ready);
        assert_eq!(r.f.state(2), WakeState::Waiting, "other consumer untouched");
    }

    #[test]
    fn two_sources_completing_same_cycle() {
        let mut r = Rig::new();
        r.scb.allocate(PhysReg(10));
        r.scb.allocate(PhysReg(11));
        r.insert(&op(1, 0, [Some(10), Some(11)]), 0);
        r.f.on_complete(PhysReg(10));
        assert_eq!(r.f.state(1), WakeState::Waiting, "one source still pending");
        r.f.on_complete(PhysReg(11));
        assert_eq!(r.f.state(1), WakeState::Ready);
    }

    #[test]
    fn duplicate_source_registers_two_nodes_and_wakes_once() {
        let mut r = Rig::new();
        r.scb.allocate(PhysReg(10));
        r.insert(&op(1, 0, [Some(10), Some(10)]), 0);
        // One broadcast drains both nodes of the duplicated source.
        r.f.on_complete(PhysReg(10));
        assert_eq!(r.f.state(1), WakeState::Ready);
    }

    #[test]
    fn consumer_flushed_between_completion_and_issue() {
        let mut r = Rig::new();
        r.scb.allocate(PhysReg(10));
        r.insert(&op(1, 0, [None, None]), 0);
        r.insert(&op(2, 1, [Some(10), None]), 0);
        r.f.on_complete(PhysReg(10)); // consumer becomes ready ...
        assert_eq!(r.f.state(2), WakeState::Ready);
        r.f.flush_after(1); // ... then is squashed before it can issue
        assert_eq!(r.f.len(), 1);
        assert_eq!(r.f.ready_len(), 1, "only the survivor remains ready");
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, 0);
        assert!(r.f.select(&mut pa, false));
        assert_eq!(r.f.grants(), &[1]);
    }

    #[test]
    fn flush_scrubs_waiter_nodes() {
        let mut r = Rig::new();
        r.scb.allocate(PhysReg(10));
        r.insert(&op(1, 0, [Some(10), None]), 0);
        r.insert(&op(2, 1, [Some(10), None]), 0);
        r.f.flush_after(1);
        // The flushed waiter's node must be gone: waking the register
        // now reaches only the survivor.
        r.f.on_complete(PhysReg(10));
        assert_eq!(r.f.state(1), WakeState::Ready);
        assert_eq!(r.f.len(), 1);
    }

    #[test]
    fn mdp_held_entry_parks_until_polled() {
        let mut r = Rig::new();
        r.scb.allocate(PhysReg(10));
        let mut ld = op(3, 0, [Some(10), None]);
        ld.mdp_wait = Some(1);
        r.held.insert(3);
        r.insert(&ld, 0);
        r.f.on_complete(PhysReg(10));
        assert_eq!(
            r.f.state(3),
            WakeState::Held,
            "sources done, hold outstanding"
        );
        r.poll(1);
        assert_eq!(r.f.state(3), WakeState::Held, "hold still set");
        r.held.remove(3); // producer store issued
        r.poll(2);
        assert_eq!(r.f.state(3), WakeState::Ready);
    }

    #[test]
    fn issue_steals_ready_entries_and_scrubs_state() {
        let mut r = Rig::new();
        r.insert(&op(1, 0, [None, None]), 0);
        r.insert(&op(2, 1, [None, None]), 0);
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 1, &busy, 0); // budget of one
        assert!(r.f.select(&mut pa, false));
        assert_eq!(r.f.grant_count(), 1);
        let granted = r.f.grant(0);
        r.f.remove(granted);
        assert_eq!(r.f.len(), 1);
        assert_eq!(r.f.ready_len(), 1, "loser stays ready for next cycle");
        let mut pa2 = PortAlloc::new(8, 8, &busy, 1);
        assert!(r.f.select(&mut pa2, false));
        assert_eq!(r.f.grant_count(), 1);
        assert_ne!(r.f.grant(0), granted);
    }

    #[test]
    fn select_prefers_lowest_tag_then_oldest_when_configured() {
        let mut r = Rig::new();
        let ctx_insert = |r: &mut Rig, u: &SchedUop, tag: u32| {
            let ctx = ReadyCtx {
                cycle: 0,
                scb: &r.scb,
                held: &r.held,
            };
            r.f.insert(u, tag, &ctx);
        };
        // Same port; seq 5 carries the *lower* tag (slot reuse).
        ctx_insert(&mut r, &op(4, 2, [None, None]), 7);
        ctx_insert(&mut r, &op(5, 2, [None, None]), 1);
        let busy = FuBusy::new();
        let mut pa = PortAlloc::new(8, 8, &busy, 0);
        r.f.select(&mut pa, false);
        assert_eq!(r.f.grants(), &[5], "tag order wins without oldest_first");
        let mut pa2 = PortAlloc::new(8, 8, &busy, 0);
        r.f.select(&mut pa2, true);
        assert_eq!(r.f.grants(), &[4], "age order wins with oldest_first");
    }

    #[test]
    fn waiting_entry_removed_midway_scrubs_nodes() {
        let mut r = Rig::new();
        r.scb.allocate(PhysReg(10));
        r.insert(&op(1, 0, [Some(10), None]), 0);
        r.f.remove(1); // e.g. a design that issues it another way
        assert!(r.f.is_empty());
        r.f.on_complete(PhysReg(10)); // must not touch the removed entry
    }

    #[test]
    fn min_wake_reports_horizon_and_activity() {
        let mut r = Rig::new();
        r.scb.allocate(PhysReg(10));
        r.insert(&op(1, 0, [Some(10), None]), 0);
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &r.scb,
            held: &r.held,
        };
        assert_eq!(r.f.min_wake(&ctx), Some(u64::MAX), "unscheduled producer");
        r.scb.set_ready_at(PhysReg(10), 12);
        let ctx = ReadyCtx {
            cycle: 3,
            scb: &r.scb,
            held: &r.held,
        };
        assert_eq!(r.f.min_wake(&ctx), Some(12));
        let ctx = ReadyCtx {
            cycle: 12,
            scb: &r.scb,
            held: &r.held,
        };
        assert_eq!(r.f.min_wake(&ctx), None, "ready resident requests select");
    }

    #[test]
    fn min_wake_sees_hold_release_before_poll() {
        let mut r = Rig::new();
        let mut ld = op(3, 0, [None, None]);
        ld.mdp_wait = Some(1);
        r.held.insert(3);
        r.insert(&ld, 0);
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &r.scb,
            held: &r.held,
        };
        assert_eq!(
            r.f.min_wake(&ctx),
            Some(u64::MAX),
            "held: external event only"
        );
        r.held.remove(3);
        let ctx = ReadyCtx {
            cycle: 1,
            scb: &r.scb,
            held: &r.held,
        };
        assert_eq!(r.f.min_wake(&ctx), None, "released hold is level-visible");
    }

    #[test]
    fn select_fast_matches_select_on_random_shapes() {
        use ballerino_isa::rng::Rng64;
        let mut rng = Rng64::new(0xFAB_5E1E);
        for case in 0..200u64 {
            let oldest_first = case % 2 == 0;
            let n = 1 + rng.index(10);
            let width = 1 + rng.index(8);
            // Build two identical fabrics entry by entry.
            let mut a = Rig::new();
            let mut b = Rig::new();
            for seq in 0..n as u64 {
                let u = op(seq, rng.index(8) as u8, [None, None]);
                let tag = rng.below(64) as u32;
                let ctx = ReadyCtx {
                    cycle: 0,
                    scb: &a.scb,
                    held: &a.held,
                };
                a.f.insert(&u, tag, &ctx);
                let ctx = ReadyCtx {
                    cycle: 0,
                    scb: &b.scb,
                    held: &b.held,
                };
                b.f.insert(&u, tag, &ctx);
            }
            let busy = FuBusy::new();
            let mut pa = PortAlloc::new(8, width, &busy, 0);
            let mut pb = PortAlloc::new(8, width, &busy, 0);
            let ra = a.f.select(&mut pa, oldest_first);
            let rb = b.f.select_fast(&mut pb, oldest_first);
            // Duplicate tags only tie-break identically under
            // oldest_first; slot-priority cases keep tags unique in
            // real use, so only compare when the invariant holds.
            let mut tags: Vec<u32> = (0..n as u64).map(|s| a.f.tag_of(s)).collect();
            tags.sort_unstable();
            tags.dedup();
            if oldest_first || tags.len() == n {
                assert_eq!(ra, rb, "case {case}: any_request");
                assert_eq!(a.f.grants(), b.f.grants(), "case {case}: grants");
                assert_eq!(pa.remaining(), pb.remaining(), "case {case}: budget");
            }
        }
    }

    #[test]
    fn squash_gap_backfill_keeps_seq_indexing() {
        let mut r = Rig::new();
        r.scb.allocate(PhysReg(10));
        r.insert(&op(1, 0, [Some(10), None]), 0);
        r.insert(&op(2, 1, [Some(10), None]), 0);
        r.f.flush_after(1);
        // Re-fetch after the squash dispatches fresh (never reused)
        // seqs, leaving a gap.
        r.insert(&op(7, 2, [Some(10), None]), 1);
        assert_eq!(r.f.len(), 2);
        r.f.on_complete(PhysReg(10));
        assert_eq!(r.f.state(1), WakeState::Ready);
        assert_eq!(r.f.state(7), WakeState::Ready);
        r.f.remove(1);
        r.f.remove(7);
        assert!(r.f.is_empty());
    }
}
