//! Scheduler statistics: energy-relevant event counts, steering outcomes
//! (Fig. 4), P-IQ head states (Fig. 6a), and per-IQ issue counts (Fig. 14).

/// Energy-relevant micro-events accumulated by a scheduler.
///
/// The energy model (`ballerino-energy`) converts these into joules; the
/// schedulers only count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedEnergyEvents {
    /// Destination-tag broadcasts into CAM wakeup logic (OoO IQ).
    pub cam_broadcasts: u64,
    /// Total CAM entries searched (sum of occupancy over broadcasts).
    pub cam_entries_searched: u64,
    /// Total prefix-sum inputs evaluated (sum over active select cycles).
    pub select_inputs: u64,
    /// Queue/payload-RAM writes (dispatch/enqueue).
    pub queue_writes: u64,
    /// Queue/payload-RAM reads (issue/dequeue).
    pub queue_reads: u64,
    /// FIFO-head readiness examinations (scoreboard reads by S/P-IQs).
    pub head_examinations: u64,
    /// Inter-queue copy operations (CASINO passes).
    pub copies: u64,
    /// Steering decisions taken (CES / Ballerino steer logic activations).
    pub steer_ops: u64,
    /// Producer-location (P-SCB / LFST-steer) table reads.
    pub loc_reads: u64,
    /// Producer-location table writes.
    pub loc_writes: u64,
}

impl SchedEnergyEvents {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: &SchedEnergyEvents) {
        self.cam_broadcasts += other.cam_broadcasts;
        self.cam_entries_searched += other.cam_entries_searched;
        self.select_inputs += other.select_inputs;
        self.queue_writes += other.queue_writes;
        self.queue_reads += other.queue_reads;
        self.head_examinations += other.head_examinations;
        self.copies += other.copies;
        self.steer_ops += other.steer_ops;
        self.loc_reads += other.loc_reads;
        self.loc_writes += other.loc_writes;
    }
}

/// Outcome of one steering decision (Fig. 4 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteerEvent {
    /// Steered into an existing P-IQ along its dependence chain.
    SteerDc,
    /// Allocated a new P-IQ for a ready-at-dispatch μop.
    AllocReady,
    /// Allocated a new P-IQ for a non-ready μop (chain head / split / full).
    AllocNonReady,
    /// Stalled (no free P-IQ) while the μop was ready at dispatch.
    StallReady,
    /// Stalled (no free P-IQ) while the μop was not ready.
    StallNonReady,
    /// Issued speculatively from the S-IQ without touching a P-IQ
    /// (Ballerino/CASINO filtering; not present in pure CES).
    SpeculativeIssue,
    /// Steered into a shared P-IQ partition (Ballerino Step 3).
    SteerShared,
}

/// Histogram of steering outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SteerStats {
    /// `[Steer] DC` events.
    pub steer_dc: u64,
    /// `[Allocate] Ready` events.
    pub alloc_ready: u64,
    /// `[Allocate] Non-ready` events.
    pub alloc_nonready: u64,
    /// `[Stall] Ready` cycles.
    pub stall_ready: u64,
    /// `[Stall] Non-ready` cycles.
    pub stall_nonready: u64,
    /// Speculative issues from the S-IQ.
    pub spec_issue: u64,
    /// Steers into a shared partition.
    pub steer_shared: u64,
}

impl SteerStats {
    /// Records one event.
    pub fn record(&mut self, e: SteerEvent) {
        match e {
            SteerEvent::SteerDc => self.steer_dc += 1,
            SteerEvent::AllocReady => self.alloc_ready += 1,
            SteerEvent::AllocNonReady => self.alloc_nonready += 1,
            SteerEvent::StallReady => self.stall_ready += 1,
            SteerEvent::StallNonReady => self.stall_nonready += 1,
            SteerEvent::SpeculativeIssue => self.spec_issue += 1,
            SteerEvent::SteerShared => self.steer_shared += 1,
        }
    }

    /// Records `n` identical events (idle-cycle replay).
    pub fn record_n(&mut self, e: SteerEvent, n: u64) {
        match e {
            SteerEvent::SteerDc => self.steer_dc += n,
            SteerEvent::AllocReady => self.alloc_ready += n,
            SteerEvent::AllocNonReady => self.alloc_nonready += n,
            SteerEvent::StallReady => self.stall_ready += n,
            SteerEvent::StallNonReady => self.stall_nonready += n,
            SteerEvent::SpeculativeIssue => self.spec_issue += n,
            SteerEvent::SteerShared => self.steer_shared += n,
        }
    }

    /// Total recorded events.
    pub fn total(&self) -> u64 {
        self.steer_dc
            + self.alloc_ready
            + self.alloc_nonready
            + self.stall_ready
            + self.stall_nonready
            + self.spec_issue
            + self.steer_shared
    }
}

/// Per-cycle state of a P-IQ head (Fig. 6a taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeadState {
    /// The head issued this cycle.
    Issuing,
    /// Head is an M-dependent load waiting for its producer store's issue.
    StallMdepLoad,
    /// Head waits for register operands (usually a long-latency load).
    StallNonReady,
    /// Head was ready but lost port arbitration.
    StallPortConflict,
    /// The queue is empty.
    Empty,
}

/// Histogram of P-IQ head states, accumulated per queue per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeadStateStats {
    /// Cycles a head issued.
    pub issuing: u64,
    /// Cycles a head was an MDP-held load.
    pub stall_mdep_load: u64,
    /// Cycles a head waited on register operands.
    pub stall_nonready: u64,
    /// Cycles a ready head lost port arbitration.
    pub stall_port_conflict: u64,
    /// Cycles the queue was empty.
    pub empty: u64,
}

impl HeadStateStats {
    /// Records one observation.
    pub fn record(&mut self, s: HeadState) {
        match s {
            HeadState::Issuing => self.issuing += 1,
            HeadState::StallMdepLoad => self.stall_mdep_load += 1,
            HeadState::StallNonReady => self.stall_nonready += 1,
            HeadState::StallPortConflict => self.stall_port_conflict += 1,
            HeadState::Empty => self.empty += 1,
        }
    }

    /// Records `n` identical observations (idle-cycle replay).
    pub fn record_n(&mut self, s: HeadState, n: u64) {
        match s {
            HeadState::Issuing => self.issuing += n,
            HeadState::StallMdepLoad => self.stall_mdep_load += n,
            HeadState::StallNonReady => self.stall_nonready += n,
            HeadState::StallPortConflict => self.stall_port_conflict += n,
            HeadState::Empty => self.empty += n,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.issuing
            + self.stall_mdep_load
            + self.stall_nonready
            + self.stall_port_conflict
            + self.empty
    }
}

/// Which structure issued each μop (Fig. 14).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IssueBreakdown {
    /// Issued speculatively from an S-IQ.
    pub from_siq: u64,
    /// Issued from a P-IQ head.
    pub from_piq: u64,
    /// Issued from a conventional in-order IQ.
    pub from_inorder: u64,
    /// Issued from an out-of-order IQ.
    pub from_ooo: u64,
    /// Executed in FXA's IXU.
    pub from_ixu: u64,
}

impl IssueBreakdown {
    /// Total issues recorded.
    pub fn total(&self) -> u64 {
        self.from_siq + self.from_piq + self.from_inorder + self.from_ooo + self.from_ixu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steer_stats_record_and_total() {
        let mut s = SteerStats::default();
        s.record(SteerEvent::SteerDc);
        s.record(SteerEvent::AllocReady);
        s.record(SteerEvent::AllocReady);
        s.record(SteerEvent::StallReady);
        assert_eq!(s.steer_dc, 1);
        assert_eq!(s.alloc_ready, 2);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn head_state_stats_record_and_total() {
        let mut h = HeadStateStats::default();
        h.record(HeadState::Issuing);
        h.record(HeadState::Empty);
        h.record(HeadState::StallMdepLoad);
        assert_eq!(h.total(), 3);
        assert_eq!(h.issuing, 1);
    }

    #[test]
    fn energy_events_accumulate() {
        let mut a = SchedEnergyEvents {
            cam_broadcasts: 1,
            ..Default::default()
        };
        let b = SchedEnergyEvents {
            cam_broadcasts: 2,
            queue_writes: 5,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.cam_broadcasts, 3);
        assert_eq!(a.queue_writes, 5);
    }

    #[test]
    fn issue_breakdown_total() {
        let ib = IssueBreakdown {
            from_siq: 2,
            from_piq: 3,
            ..Default::default()
        };
        assert_eq!(ib.total(), 5);
    }
}
