//! Physical-register readiness scoreboard.
//!
//! One entry per physical register holding the absolute cycle at which its
//! value is available through the bypass network. Producers set it at
//! issue (`issue_cycle + latency`), enabling back-to-back issue of
//! single-cycle dependents; registers holding architectural state are
//! ready from cycle zero.

use ballerino_isa::PhysReg;

/// Sentinel for "no producer scheduled yet".
const NOT_SCHEDULED: u64 = u64::MAX;

/// Readiness scoreboard over the physical register file.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    ready_at: Vec<u64>,
}

impl Scoreboard {
    /// Creates a scoreboard for `n` physical registers, all ready
    /// (architectural state).
    pub fn new(n: usize) -> Self {
        Scoreboard {
            ready_at: vec![0; n],
        }
    }

    /// Number of tracked registers.
    pub fn len(&self) -> usize {
        self.ready_at.len()
    }

    /// Whether the scoreboard tracks zero registers.
    pub fn is_empty(&self) -> bool {
        self.ready_at.is_empty()
    }

    /// Marks `p` as allocated to a new producer that has not issued.
    pub fn allocate(&mut self, p: PhysReg) {
        self.ready_at[p.index()] = NOT_SCHEDULED;
    }

    /// Sets the absolute cycle at which `p`'s value becomes available.
    pub fn set_ready_at(&mut self, p: PhysReg, cycle: u64) {
        self.ready_at[p.index()] = cycle;
    }

    /// Marks `p` ready immediately (rollback: freed registers go back to
    /// holding stale-but-ready architectural values).
    pub fn force_ready(&mut self, p: PhysReg) {
        self.ready_at[p.index()] = 0;
    }

    /// Whether `p` is ready at `cycle`.
    pub fn is_ready(&self, p: PhysReg, cycle: u64) -> bool {
        self.ready_at[p.index()] <= cycle
    }

    /// The cycle `p` becomes ready (`u64::MAX` when unscheduled).
    pub fn ready_cycle(&self, p: PhysReg) -> u64 {
        self.ready_at[p.index()]
    }

    /// Whether all present sources are ready at `cycle`.
    pub fn srcs_ready(&self, srcs: &[Option<PhysReg>; 2], cycle: u64) -> bool {
        srcs.iter().flatten().all(|p| self.is_ready(*p, cycle))
    }

    /// Latest ready cycle across present sources (0 when sourceless,
    /// `u64::MAX` if any is unscheduled).
    pub fn srcs_ready_cycle(&self, srcs: &[Option<PhysReg>; 2]) -> u64 {
        srcs.iter()
            .flatten()
            .map(|p| self.ready_cycle(*p))
            .max()
            .unwrap_or(0)
    }

    /// Earliest scheduled wakeup strictly after `cycle`: the minimum
    /// `ready_at` over registers that are neither ready at `cycle` nor
    /// allocated-but-unscheduled. `None` when no wakeup is scheduled.
    ///
    /// Every pending entry was written by `set_ready_at` when its producer
    /// issued, so this is a (coarse, whole-PRF) lower bound on the first
    /// cycle any waiting μop anywhere can become ready — the event-horizon
    /// skip loop uses it as a defensive floor alongside the per-scheduler
    /// [`next_event_cycle`](crate::Scheduler::next_event_cycle) answers.
    pub fn min_pending_ready_cycle(&self, cycle: u64) -> Option<u64> {
        self.ready_at
            .iter()
            .copied()
            .filter(|&t| t > cycle && t != NOT_SCHEDULED)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_scoreboard_is_all_ready() {
        let s = Scoreboard::new(8);
        for i in 0..8 {
            assert!(s.is_ready(PhysReg(i), 0));
        }
    }

    #[test]
    fn allocate_then_schedule_then_ready() {
        let mut s = Scoreboard::new(8);
        let p = PhysReg(3);
        s.allocate(p);
        assert!(!s.is_ready(p, 1_000_000));
        s.set_ready_at(p, 50);
        assert!(!s.is_ready(p, 49));
        assert!(s.is_ready(p, 50));
    }

    #[test]
    fn srcs_ready_combines_operands() {
        let mut s = Scoreboard::new(8);
        let a = PhysReg(1);
        let b = PhysReg(2);
        s.allocate(a);
        s.allocate(b);
        s.set_ready_at(a, 10);
        s.set_ready_at(b, 20);
        let srcs = [Some(a), Some(b)];
        assert!(!s.srcs_ready(&srcs, 15));
        assert!(s.srcs_ready(&srcs, 20));
        assert_eq!(s.srcs_ready_cycle(&srcs), 20);
    }

    #[test]
    fn sourceless_op_is_always_ready() {
        let s = Scoreboard::new(4);
        assert!(s.srcs_ready(&[None, None], 0));
        assert_eq!(s.srcs_ready_cycle(&[None, None]), 0);
    }

    #[test]
    fn force_ready_resets_after_rollback() {
        let mut s = Scoreboard::new(4);
        let p = PhysReg(0);
        s.allocate(p);
        s.force_ready(p);
        assert!(s.is_ready(p, 0));
    }
}
