//! The scheduler-facing view of an in-flight μop.

use ballerino_isa::{OpClass, PhysReg, PortId};
use ballerino_mem::SsId;

/// Everything a scheduler needs to know about a dispatched μop.
///
/// Identity is the global **sequence number** (`seq`), the dynamic age
/// assigned at rename; the pipeline keeps the full state and maps `seq`
/// back to it when the scheduler reports an issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedUop {
    /// Global dynamic age (monotonically increasing).
    pub seq: u64,
    /// Program counter (used for steering hints and stats).
    pub pc: u64,
    /// Opcode class.
    pub class: OpClass,
    /// Issue port assigned at dispatch (opcode + load balancing).
    pub port: PortId,
    /// Renamed sources.
    pub srcs: [Option<PhysReg>; 2],
    /// Renamed destination.
    pub dst: Option<PhysReg>,
    /// Store-set of this load/store, if the MDP predicted one.
    pub ssid: Option<SsId>,
    /// For loads/stores serialized by the MDP: the store (by seq) whose
    /// issue this μop must wait for. The pipeline tracks the hold; this
    /// field lets schedulers classify stalls and steer along M-dependences.
    pub mdp_wait: Option<u64>,
    /// Whether the μop directly or transitively depends on an older
    /// incomplete load at dispatch (the `LdC` class of Fig. 3c).
    pub load_dep: bool,
}

impl SchedUop {
    /// A minimal μop for tests: an ALU op with no sources.
    pub fn test_op(seq: u64) -> Self {
        SchedUop {
            seq,
            pc: seq * 4,
            class: OpClass::IntAlu,
            port: PortId(0),
            srcs: [None, None],
            dst: None,
            ssid: None,
            mdp_wait: None,
            load_dep: false,
        }
    }

    /// Whether this μop is a load.
    pub fn is_load(&self) -> bool {
        self.class == OpClass::Load
    }

    /// Whether this μop is a store.
    pub fn is_store(&self) -> bool {
        self.class == OpClass::Store
    }
}
