//! Property tests over every scheduler implementation: issue soundness
//! (never issue a non-ready μop), conservation (dispatched = issued +
//! resident), and flush correctness — under randomized dependence
//! graphs.

use ballerino_isa::{OpClass, PhysReg, PortId};
use ballerino_sched::{
    Casino, CasinoConfig, Ces, CesConfig, DispatchOutcome, FuBusy, InOrderIq, InOrderIqConfig,
    OooIq, OooIqConfig, PortAlloc, ReadyCtx, SchedUop, Scheduler, Scoreboard,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// One random μop: dst register i+1, source chosen among earlier dsts.
fn stream_strategy() -> impl Strategy<Value = Vec<(Option<usize>, u8)>> {
    // (source index into earlier ops or None, port 0..8)
    proptest::collection::vec((proptest::option::of(0usize..64), 0u8..8), 1..64)
}

fn mk_sched(which: usize) -> Box<dyn Scheduler> {
    match which {
        0 => Box::new(InOrderIq::new(InOrderIqConfig::default())),
        1 => Box::new(OooIq::new(OooIqConfig::default())),
        2 => Box::new(OooIq::new(OooIqConfig { oldest_first: true, ..Default::default() })),
        3 => Box::new(Ces::new(CesConfig::default())),
        4 => Box::new(Casino::new(CasinoConfig::default())),
        _ => Box::new(ballerino_core_stub()),
    }
}

// The Ballerino scheduler lives in a crate that depends on this one, so
// it has its own property tests; here we cover the baselines.
fn ballerino_core_stub() -> InOrderIq {
    InOrderIq::new(InOrderIqConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Drive each scheduler for up to 400 cycles on a random dependence
    /// stream: every μop issues exactly once, only when its sources are
    /// ready, and everything eventually drains.
    #[test]
    fn schedulers_issue_soundly_and_drain(
        stream in stream_strategy(),
        which in 0usize..5,
    ) {
        let mut sched = mk_sched(which);
        let mut scb = Scoreboard::new(512);
        let held = HashSet::new();
        let busy = FuBusy::new();

        // Build μops: op i writes preg 100+i, reads the dst of an earlier
        // op (if any).
        let uops: Vec<SchedUop> = stream
            .iter()
            .enumerate()
            .map(|(i, (src, port))| {
                let src_preg = src
                    .and_then(|s| if s < i { Some(PhysReg(100 + s as u32)) } else { None });
                SchedUop {
                    seq: i as u64 + 1,
                    pc: i as u64 * 4,
                    class: OpClass::IntAlu,
                    port: PortId(*port),
                    srcs: [src_preg, None],
                    dst: Some(PhysReg(100 + i as u32)),
                    ssid: None,
                    mdp_wait: None,
                    load_dep: false,
                }
            })
            .collect();
        for u in &uops {
            scb.allocate(u.dst.unwrap());
        }

        let mut issued = HashSet::new();
        let mut next = 0usize;
        for cycle in 0..400u64 {
            // Issue.
            let mut out = Vec::new();
            {
                let ctx = ReadyCtx { cycle, scb: &scb, held: &held };
                let mut pa = PortAlloc::new(8, 8, &busy, cycle);
                sched.issue(&ctx, &mut pa, &mut out);
            }
            for seq in out {
                prop_assert!(issued.insert(seq), "double issue of {}", seq);
                let u = &uops[(seq - 1) as usize];
                // Soundness: sources were ready.
                prop_assert!(
                    scb.srcs_ready(&u.srcs, cycle),
                    "issued {} with unready sources at {}",
                    seq,
                    cycle
                );
                scb.set_ready_at(u.dst.unwrap(), cycle + 1);
            }
            // Completions (1-cycle ops complete next cycle; notify now so
            // location tables clear).
            // Dispatch up to 4.
            for _ in 0..4 {
                if next >= uops.len() {
                    break;
                }
                let ctx = ReadyCtx { cycle, scb: &scb, held: &held };
                match sched.try_dispatch(uops[next], &ctx) {
                    DispatchOutcome::Accepted => next += 1,
                    DispatchOutcome::AcceptedIssued => {
                        prop_assert!(issued.insert(uops[next].seq));
                        scb.set_ready_at(uops[next].dst.unwrap(), cycle + 1);
                        next += 1;
                    }
                    DispatchOutcome::Stall(_) => break,
                }
            }
            // Wakeup notifications for anything that became ready.
            for u in &uops {
                if issued.contains(&u.seq) && scb.ready_cycle(u.dst.unwrap()) == cycle + 1 {
                    sched.on_complete(u.dst.unwrap());
                }
            }
            if issued.len() == uops.len() {
                break;
            }
        }
        prop_assert_eq!(issued.len(), uops.len(), "{} failed to drain", sched.name());
        prop_assert_eq!(sched.occupancy(), 0);
    }

    /// Flush removes exactly the younger μops from the window.
    #[test]
    fn flush_is_exact(
        n in 1usize..40,
        flush_at in 1u64..40,
        which in 0usize..5,
    ) {
        let mut sched = mk_sched(which);
        let mut scb = Scoreboard::new(512);
        let held = HashSet::new();
        // All blocked on one never-ready register so nothing issues.
        scb.allocate(PhysReg(0));
        let mut accepted = Vec::new();
        for i in 0..n {
            let u = SchedUop {
                seq: i as u64 + 1,
                srcs: [Some(PhysReg(0)), None],
                dst: Some(PhysReg(100 + i as u32)),
                port: PortId((i % 8) as u8),
                ..SchedUop::test_op(i as u64 + 1)
            };
            let ctx = ReadyCtx { cycle: 0, scb: &scb, held: &held };
            if sched.try_dispatch(u, &ctx) == DispatchOutcome::Accepted {
                accepted.push(u.seq);
            } else {
                break;
            }
        }
        let dests: Vec<PhysReg> = accepted
            .iter()
            .filter(|&&s| s > flush_at)
            .map(|&s| PhysReg(100 + (s - 1) as u32))
            .collect();
        sched.flush_after(flush_at, &dests);
        let expect = accepted.iter().filter(|&&s| s <= flush_at).count();
        prop_assert_eq!(sched.occupancy(), expect);
    }
}
