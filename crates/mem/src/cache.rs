//! Set-associative cache with LRU replacement and per-line fill timestamps.
//!
//! The `valid_at` timestamp per line lets late prefetches be modelled: a
//! demand access that finds a line still in flight completes when the fill
//! arrives rather than at the hit latency.
//!
//! # Storage layout and the MRU fast path
//!
//! Ways live in a single contiguous allocation with the per-way fields
//! split SoA-style (`tags` / `valid_at` / `lru`), indexed `set * ways +
//! way`, so a set probe is one short linear scan of adjacent tags instead
//! of chasing a per-set heap `Vec`. On top of that the default (fast)
//! mode keeps the most-recently-used way of every set and services
//! re-touches of it without scanning or re-stamping: the MRU way already
//! holds its set's maximum LRU stamp, so skipping the stamp preserves the
//! within-set recency *order* — the only thing victim selection ever
//! reads. The naive mode ([`Cache::new_naive`]) reproduces the seed
//! implementation's bookkeeping exactly (clock tick on every lookup,
//! re-stamp on every hit) and is kept as the A/B oracle for
//! `tests/hierarchy_equiv.rs`.

use crate::config::CacheConfig;
use crate::mshr::MshrFile;

/// Sentinel tag marking an empty way. Real tags are line addresses
/// (`addr / 64`), which can never reach `u64::MAX`.
const TAG_EMPTY: u64 = u64::MAX;

/// What a lookup found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Present with data available; completes at `ready`.
    Hit {
        /// Cycle the data is available to the requester.
        ready: u64,
    },
    /// Not present.
    Miss,
}

/// Internal lookup result carrying the hit way's flat slot index and raw
/// fill timestamp, so the hierarchy's line filter can memoize it.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SlotLookup {
    Hit {
        ready: u64,
        slot: u32,
        valid_at: u64,
    },
    Miss,
}

/// One level of set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    num_sets: usize,
    /// `num_sets - 1` when the set count is a power of two (every Table I
    /// geometry), letting [`Cache::set_index`] mask instead of divide;
    /// `u64::MAX` otherwise.
    set_mask: u64,
    ways: usize,
    /// Per-way tags (`set * ways + way`); [`TAG_EMPTY`] marks empty ways.
    tags: Box<[u64]>,
    /// Absolute cycle each way's data is present (fills in flight have
    /// `valid_at` in the future).
    valid_at: Box<[u64]>,
    /// LRU stamps (higher = more recently used; 0 = never filled).
    lru: Box<[u64]>,
    /// Most-recently-used way per set; the fast path probes it first.
    mru: Box<[u32]>,
    /// Seed-exact bookkeeping (full scan + re-stamp on every hit).
    naive: bool,
    lru_clock: u64,
    /// Bumped on every fill; generation-invalidates line-filter entries.
    generation: u64,
    /// MSHRs guarding this level's misses.
    pub mshrs: MshrFile,
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
}

impl Cache {
    /// Builds an empty cache for a configuration (fast lookup mode).
    pub fn new(cfg: CacheConfig) -> Self {
        Self::with_mode(cfg, false)
    }

    /// Builds an empty cache that scans and stamps exactly like the seed
    /// implementation (the A/B oracle for the fast lookup path).
    pub fn new_naive(cfg: CacheConfig) -> Self {
        Self::with_mode(cfg, true)
    }

    fn with_mode(cfg: CacheConfig, naive: bool) -> Self {
        let num_sets = cfg.num_sets();
        let ways = cfg.ways;
        let lines = num_sets * ways;
        let mshrs = MshrFile::new(cfg.mshrs);
        Cache {
            cfg,
            num_sets,
            set_mask: if num_sets.is_power_of_two() {
                num_sets as u64 - 1
            } else {
                u64::MAX
            },
            ways,
            tags: vec![TAG_EMPTY; lines].into_boxed_slice(),
            valid_at: vec![0; lines].into_boxed_slice(),
            lru: vec![0; lines].into_boxed_slice(),
            mru: vec![0; num_sets].into_boxed_slice(),
            naive,
            lru_clock: 0,
            generation: 0,
            mshrs,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit latency of this level.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    /// Fill/evict generation; any change invalidates memoized slot
    /// indices and fill timestamps held outside the cache.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        if self.set_mask != u64::MAX {
            (line & self.set_mask) as usize
        } else {
            (line % self.num_sets as u64) as usize
        }
    }

    /// Looks up `line` at `cycle`, updating LRU and hit/miss counters.
    ///
    /// On a hit the completion cycle accounts for both the hit latency and
    /// an in-flight fill (`valid_at`).
    pub fn lookup(&mut self, line: u64, cycle: u64) -> Lookup {
        match self.lookup_slot(line, cycle) {
            SlotLookup::Hit { ready, .. } => Lookup::Hit { ready },
            SlotLookup::Miss => Lookup::Miss,
        }
    }

    /// [`Cache::lookup`] plus the hit way's slot identity for memoization.
    #[inline]
    pub(crate) fn lookup_slot(&mut self, line: u64, cycle: u64) -> SlotLookup {
        let lat = self.cfg.latency;
        let set = self.set_index(line);
        let base = set * self.ways;
        if self.naive {
            // Seed-exact: the clock ticks on every lookup and every hit
            // re-stamps, reproducing the seed's absolute LRU stamps.
            self.lru_clock += 1;
            for w in 0..self.ways {
                let i = base + w;
                if self.tags[i] == line {
                    self.lru[i] = self.lru_clock;
                    self.hits += 1;
                    let va = self.valid_at[i];
                    return SlotLookup::Hit {
                        ready: (cycle + lat).max(va),
                        slot: i as u32,
                        valid_at: va,
                    };
                }
            }
            self.misses += 1;
            return SlotLookup::Miss;
        }
        // Fast path: a re-touch of the MRU way needs no bookkeeping at
        // all — it already holds the set's maximum stamp.
        let m = base + self.mru[set] as usize;
        if self.tags[m] == line {
            self.hits += 1;
            let va = self.valid_at[m];
            return SlotLookup::Hit {
                ready: (cycle + lat).max(va),
                slot: m as u32,
                valid_at: va,
            };
        }
        for w in 0..self.ways {
            let i = base + w;
            if self.tags[i] == line {
                self.lru_clock += 1;
                self.lru[i] = self.lru_clock;
                self.mru[set] = w as u32;
                self.hits += 1;
                let va = self.valid_at[i];
                return SlotLookup::Hit {
                    ready: (cycle + lat).max(va),
                    slot: i as u32,
                    valid_at: va,
                };
            }
        }
        self.misses += 1;
        SlotLookup::Miss
    }

    /// Re-touches a way found via the hierarchy's line filter: counts the
    /// hit and restores MRU recency without a tag scan.
    pub(crate) fn filter_touch(&mut self, slot: u32) {
        self.hits += 1;
        let slot = slot as usize;
        let set = slot / self.ways;
        let way = (slot % self.ways) as u32;
        if self.mru[set] != way {
            self.lru_clock += 1;
            self.lru[slot] = self.lru_clock;
            self.mru[set] = way;
        }
    }

    /// Checks presence without perturbing LRU or counters (for tests and
    /// prefetch-duplicate suppression).
    pub fn probe(&self, line: u64) -> bool {
        let base = self.set_index(line) * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }

    /// Installs `line`, arriving at absolute cycle `valid_at`; evicts LRU.
    pub fn fill(&mut self, line: u64, valid_at: u64) {
        self.generation += 1;
        self.lru_clock += 1;
        let set = self.set_index(line);
        let base = set * self.ways;
        // Refill of a present line (e.g. prefetch racing demand): refresh.
        for w in 0..self.ways {
            let i = base + w;
            if self.tags[i] == line {
                self.valid_at[i] = self.valid_at[i].min(valid_at);
                self.lru[i] = self.lru_clock;
                self.mru[set] = w as u32;
                return;
            }
        }
        // First way with the minimal stamp; empty ways keep stamp 0,
        // matching the seed's `if valid { lru } else { 0 }` victim key.
        let mut victim = 0usize;
        let mut victim_key = self.lru[base];
        for w in 1..self.ways {
            let k = self.lru[base + w];
            if k < victim_key {
                victim = w;
                victim_key = k;
            }
        }
        let i = base + victim;
        self.tags[i] = line;
        self.valid_at[i] = valid_at;
        self.lru[i] = self.lru_clock;
        self.mru[set] = victim as u32;
    }

    /// Demand miss ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways, latency 4, 4 mshrs
        Cache::new(CacheConfig {
            size_bytes: 4 * 64,
            ways: 2,
            latency: 4,
            mshrs: 4,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(100, 10), Lookup::Miss);
        c.fill(100, 50);
        match c.lookup(100, 60) {
            Lookup::Hit { ready } => assert_eq!(ready, 64),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn hit_on_inflight_fill_waits_for_valid_at() {
        let mut c = tiny();
        c.fill(100, 500); // prefetch in flight
        match c.lookup(100, 100) {
            Lookup::Hit { ready } => assert_eq!(ready, 500),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        let mut c = tiny();
        // lines 0 and 2 map to set 0 (2 sets); line 4 also maps to set 0.
        c.fill(0, 0);
        c.fill(2, 0);
        let _ = c.lookup(0, 10); // touch 0, so 2 is LRU
        c.fill(4, 20);
        assert!(c.probe(0));
        assert!(!c.probe(2));
        assert!(c.probe(4));
    }

    #[test]
    fn refill_of_present_line_does_not_duplicate() {
        let mut c = tiny();
        c.fill(100, 10);
        c.fill(100, 999);
        // The line remains valid and valid_at keeps the earlier arrival.
        match c.lookup(100, 20) {
            Lookup::Hit { ready } => assert_eq!(ready, 24),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn miss_ratio_tracks_counters() {
        let mut c = tiny();
        let _ = c.lookup(0, 0);
        c.fill(0, 0);
        let _ = c.lookup(0, 1);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mru_retouch_preserves_replacement_order() {
        // Touch the MRU way many times (fast path, no stamping), then
        // check the victim is still the other, least-recently-used way.
        let mut c = tiny();
        c.fill(0, 0); // set 0, becomes MRU
        c.fill(2, 0); // set 0, becomes MRU
        for t in 0..32 {
            // Alternate so both ways take MRU turns; end on line 0.
            let _ = c.lookup(2, t);
            let _ = c.lookup(0, t);
            let _ = c.lookup(0, t); // MRU re-touch, fast path
        }
        c.fill(4, 100); // must evict 2, the non-MRU way
        assert!(c.probe(0));
        assert!(!c.probe(2));
        assert!(c.probe(4));
        assert_eq!(c.hits, 96);
    }

    #[test]
    fn naive_mode_matches_fast_mode_decisions() {
        let mut fast = tiny();
        let mut naive = Cache::new_naive(fast.config().clone());
        let mut x = 0x9E37_79B9u64;
        for t in 0..2000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = x % 12;
            if x.is_multiple_of(5) {
                fast.fill(line, t + x % 50);
                naive.fill(line, t + x % 50);
            } else {
                assert_eq!(fast.lookup(line, t), naive.lookup(line, t), "cycle {t}");
            }
            assert_eq!(fast.probe(line), naive.probe(line));
        }
        assert_eq!(fast.hits, naive.hits);
        assert_eq!(fast.misses, naive.misses);
    }

    #[test]
    fn generation_bumps_on_every_fill() {
        let mut c = tiny();
        let g0 = c.generation();
        c.fill(7, 0);
        c.fill(7, 5); // refresh also invalidates memoized timestamps
        assert_eq!(c.generation(), g0 + 2);
        let _ = c.lookup(7, 10);
        assert_eq!(c.generation(), g0 + 2, "lookups must not bump");
    }
}
