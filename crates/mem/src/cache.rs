//! Set-associative cache with LRU replacement and per-line fill timestamps.
//!
//! The `valid_at` timestamp per line lets late prefetches be modelled: a
//! demand access that finds a line still in flight completes when the fill
//! arrives rather than at the hit latency.

use crate::config::CacheConfig;
use crate::mshr::MshrFile;

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    /// Absolute cycle at which the line's data is present (fills in flight
    /// have `valid_at` in the future).
    valid_at: u64,
    /// LRU stamp (higher = more recently used).
    lru: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    valid_at: 0,
    lru: 0,
};

/// What a lookup found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Present with data available; completes at `ready`.
    Hit {
        /// Cycle the data is available to the requester.
        ready: u64,
    },
    /// Not present.
    Miss,
}

/// One level of set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    lru_clock: u64,
    /// MSHRs guarding this level's misses.
    pub mshrs: MshrFile,
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
}

impl Cache {
    /// Builds an empty cache for a configuration.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = vec![vec![INVALID; cfg.ways]; cfg.num_sets()];
        let mshrs = MshrFile::new(cfg.mshrs);
        Cache {
            cfg,
            sets,
            lru_clock: 0,
            mshrs,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit latency of this level.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    fn set_index(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    /// Looks up `line` at `cycle`, updating LRU and hit/miss counters.
    ///
    /// On a hit the completion cycle accounts for both the hit latency and
    /// an in-flight fill (`valid_at`).
    pub fn lookup(&mut self, line: u64, cycle: u64) -> Lookup {
        self.lru_clock += 1;
        let lat = self.cfg.latency;
        let set = self.set_index(line);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == line {
                way.lru = self.lru_clock;
                self.hits += 1;
                let ready = (cycle + lat).max(way.valid_at);
                return Lookup::Hit { ready };
            }
        }
        self.misses += 1;
        Lookup::Miss
    }

    /// Checks presence without perturbing LRU or counters (for tests and
    /// prefetch-duplicate suppression).
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_index(line);
        self.sets[set].iter().any(|w| w.valid && w.tag == line)
    }

    /// Installs `line`, arriving at absolute cycle `valid_at`; evicts LRU.
    pub fn fill(&mut self, line: u64, valid_at: u64) {
        self.lru_clock += 1;
        let set = self.set_index(line);
        // Refill of a present line (e.g. prefetch racing demand): refresh.
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.valid && w.tag == line) {
            w.valid_at = w.valid_at.min(valid_at);
            w.lru = self.lru_clock;
            return;
        }
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("cache set has at least one way");
        *victim = Line {
            tag: line,
            valid: true,
            valid_at,
            lru: self.lru_clock,
        };
    }

    /// Demand miss ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways, latency 4, 4 mshrs
        Cache::new(CacheConfig {
            size_bytes: 4 * 64,
            ways: 2,
            latency: 4,
            mshrs: 4,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(100, 10), Lookup::Miss);
        c.fill(100, 50);
        match c.lookup(100, 60) {
            Lookup::Hit { ready } => assert_eq!(ready, 64),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn hit_on_inflight_fill_waits_for_valid_at() {
        let mut c = tiny();
        c.fill(100, 500); // prefetch in flight
        match c.lookup(100, 100) {
            Lookup::Hit { ready } => assert_eq!(ready, 500),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        let mut c = tiny();
        // lines 0 and 2 map to set 0 (2 sets); line 4 also maps to set 0.
        c.fill(0, 0);
        c.fill(2, 0);
        let _ = c.lookup(0, 10); // touch 0, so 2 is LRU
        c.fill(4, 20);
        assert!(c.probe(0));
        assert!(!c.probe(2));
        assert!(c.probe(4));
    }

    #[test]
    fn refill_of_present_line_does_not_duplicate() {
        let mut c = tiny();
        c.fill(100, 10);
        c.fill(100, 999);
        // The line remains valid and valid_at keeps the earlier arrival.
        match c.lookup(100, 20) {
            Lookup::Hit { ready } => assert_eq!(ready, 24),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn miss_ratio_tracks_counters() {
        let mut c = tiny();
        let _ = c.lookup(0, 0);
        c.fill(0, 0);
        let _ = c.lookup(0, 1);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
