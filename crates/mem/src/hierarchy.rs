//! The composed cache/DRAM hierarchy walk.
//!
//! [`Hierarchy::access`] resolves a demand load/store through
//! L1D → L2 → L3 → DRAM, honoring per-level MSHR limits, filling lines on
//! the way back up, and (for loads) training the stride prefetcher.

use crate::cache::{Cache, Lookup};
use crate::config::MemConfig;
use crate::dram::Dram;
use crate::mshr::MshrClaim;
use crate::prefetch::StridePrefetcher;
use crate::{line_of, LINE_BYTES};

/// Kind of hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand load (trains the prefetcher).
    Load,
    /// Store performed at commit (write-allocate).
    Store,
    /// Prefetch fill (does not recurse into further prefetches).
    Prefetch,
}

/// Deepest level that had to service an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    /// Serviced by the L1 data cache.
    L1,
    /// Serviced by the L2.
    L2,
    /// Serviced by the L3.
    L3,
    /// Went to DRAM.
    Memory,
}

/// Aggregate memory statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemStats {
    /// Demand accesses serviced per level.
    pub hits_l1: u64,
    /// Demand accesses serviced by L2.
    pub hits_l2: u64,
    /// Demand accesses serviced by L3.
    pub hits_l3: u64,
    /// Demand accesses serviced by DRAM.
    pub hits_mem: u64,
    /// Prefetches sent.
    pub prefetches: u64,
}

impl MemStats {
    /// Demand accesses observed in total.
    pub fn total(&self) -> u64 {
        self.hits_l1 + self.hits_l2 + self.hits_l3 + self.hits_mem
    }

    /// Fraction of demand accesses that left the L1.
    pub fn l1_miss_ratio(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (t - self.hits_l1) as f64 / t as f64
        }
    }
}

/// L1D → L2 → L3 → DRAM hierarchy with stride prefetching, plus a
/// parallel L1I front-end path that shares the unified L2.
#[derive(Debug)]
pub struct Hierarchy {
    /// L1 data cache.
    pub l1d: Cache,
    /// L1 instruction cache (Table I: same geometry as the L1D).
    pub l1i: Cache,
    /// L2 unified cache.
    pub l2: Cache,
    /// L3 last-level cache.
    pub l3: Cache,
    /// DRAM behind the LLC.
    pub dram: Dram,
    prefetcher: Option<StridePrefetcher>,
    /// Aggregate statistics.
    pub stats: MemStats,
}

impl Hierarchy {
    /// Builds an empty hierarchy from a configuration.
    pub fn new(cfg: &MemConfig) -> Self {
        let prefetcher = if cfg.prefetch {
            Some(StridePrefetcher::new(256, cfg.prefetch_degree))
        } else {
            None
        };
        Hierarchy {
            l1d: Cache::new(cfg.l1d.clone()),
            l1i: Cache::new(cfg.l1d.clone()),
            l2: Cache::new(cfg.l2.clone()),
            l3: Cache::new(cfg.l3.clone()),
            dram: Dram::new(cfg.dram.clone()),
            prefetcher,
            stats: MemStats::default(),
        }
    }

    /// Instruction fetch of the line holding `pc` at `cycle`: L1I →
    /// unified L2 → L3 → DRAM. Returns the cycle the line is available
    /// to the fetch unit. A next-line prefetch fills the following line
    /// on a miss (simple sequential instruction prefetch).
    pub fn ifetch(&mut self, pc: u64, cycle: u64) -> u64 {
        let line = line_of(pc);
        if let Lookup::Hit { ready } = self.l1i.lookup(line, cycle) {
            return ready;
        }
        let (fill, _) = self.below_l1(line, cycle + self.l1i.latency());
        self.l1i.fill(line, fill);
        // Sequential next-line prefetch into the L1I.
        if !self.l1i.probe(line + 1) {
            let (nfill, _) = self.below_l1(line + 1, cycle + self.l1i.latency());
            self.l1i.fill(line + 1, nfill);
        }
        fill
    }

    /// Performs an access to byte address `addr` from instruction `pc` at
    /// `cycle`. Returns `(completion_cycle, deepest_level)`.
    ///
    /// Demand loads hold an L1 MSHR for the full miss; stores (performed
    /// at commit from the store buffer) and prefetches go straight to the
    /// L2 path and fill the L1 without occupying its scarce MSHRs — as
    /// fill buffers drained by the L2 superqueue would.
    pub fn access(&mut self, addr: u64, pc: u64, cycle: u64, kind: AccessKind) -> (u64, HitLevel) {
        let line = line_of(addr);
        let (done, level) = self.access_line(line, cycle, kind == AccessKind::Load);
        match level {
            HitLevel::L1 => self.stats.hits_l1 += 1,
            HitLevel::L2 => self.stats.hits_l2 += 1,
            HitLevel::L3 => self.stats.hits_l3 += 1,
            HitLevel::Memory => self.stats.hits_mem += 1,
        }
        if kind == AccessKind::Load {
            if let Some(pf) = self.prefetcher.as_mut() {
                let candidates = pf.observe(pc, addr);
                for target in candidates {
                    let tline = line_of(target);
                    if !self.l1d.probe(tline) {
                        self.stats.prefetches += 1;
                        let _ = self.access_line(tline, cycle, false);
                    }
                }
            }
        }
        (done, level)
    }

    /// Walks the hierarchy for one line; fills caches on the way up.
    /// `hold_l1_mshr` gates whether the L1's miss registers bound the
    /// request (true for demand loads only).
    fn access_line(&mut self, line: u64, cycle: u64, hold_l1_mshr: bool) -> (u64, HitLevel) {
        // L1 lookup.
        if let Lookup::Hit { ready } = self.l1d.lookup(line, cycle) {
            return (ready, HitLevel::L1);
        }
        if !hold_l1_mshr {
            let (fill, level) = self.below_l1(line, cycle + self.l1d.latency());
            self.l1d.fill(line, fill);
            return (fill, level);
        }
        let l1_start = match self.l1d.mshrs.claim(line, cycle) {
            MshrClaim::Merged { fill } => return (fill, HitLevel::L2),
            MshrClaim::Allocated { start } => start + self.l1d.latency(),
        };

        let (fill_from_below, level) = self.below_l1(line, l1_start);
        self.l1d.mshrs.record_fill(line, fill_from_below);
        self.l1d.fill(line, fill_from_below);
        (fill_from_below, level)
    }

    fn below_l1(&mut self, line: u64, cycle: u64) -> (u64, HitLevel) {
        if let Lookup::Hit { ready } = self.l2.lookup(line, cycle) {
            return (ready, HitLevel::L2);
        }
        let l2_start = match self.l2.mshrs.claim(line, cycle) {
            MshrClaim::Merged { fill } => return (fill, HitLevel::L3),
            MshrClaim::Allocated { start } => start + self.l2.latency(),
        };

        let (fill, level) = self.below_l2(line, l2_start);
        self.l2.mshrs.record_fill(line, fill);
        self.l2.fill(line, fill);
        (fill, level)
    }

    fn below_l2(&mut self, line: u64, cycle: u64) -> (u64, HitLevel) {
        if let Lookup::Hit { ready } = self.l3.lookup(line, cycle) {
            return (ready, HitLevel::L3);
        }
        let l3_start = match self.l3.mshrs.claim(line, cycle) {
            MshrClaim::Merged { fill } => return (fill, HitLevel::Memory),
            MshrClaim::Allocated { start } => start + self.l3.latency(),
        };

        let fill = self.dram.access(line, l3_start);
        self.l3.mshrs.record_fill(line, fill);
        self.l3.fill(line, fill);
        (fill, HitLevel::Memory)
    }

    /// Approximate footprint helper: touches a line so that it is resident
    /// (used to warm caches in tests).
    pub fn warm(&mut self, addr: u64) {
        let line = line_of(addr);
        self.l1d.fill(line, 0);
        self.l2.fill(line, 0);
        self.l3.fill(line, 0);
    }

    /// Earliest MSHR fill completion strictly after `cycle` across every
    /// cache level, if any miss is outstanding. Used by the simulator's
    /// event-horizon engine as a defensive bound: all completion cycles
    /// are resolved at access time and queued by the core, so this can
    /// only tighten (never extend) a skip window.
    pub fn next_fill_cycle(&self, cycle: u64) -> Option<u64> {
        [&self.l1d, &self.l1i, &self.l2, &self.l3]
            .into_iter()
            .filter_map(|c| c.mshrs.next_fill_cycle(cycle))
            .min()
    }

    /// Line size in bytes (fixed).
    pub fn line_bytes(&self) -> u64 {
        LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MemConfig {
        MemConfig {
            prefetch: false,
            ..MemConfig::default()
        }
    }

    #[test]
    fn cold_miss_goes_to_memory_then_hits_l1() {
        let mut h = Hierarchy::new(&small_cfg());
        let (done, level) = h.access(0x10000, 0x400, 100, AccessKind::Load);
        assert_eq!(level, HitLevel::Memory);
        // at least L1+L2+L3 lookups plus DRAM activate+cas+burst
        assert!(done > 100 + 4 + 12 + 42);
        let (done2, level2) = h.access(0x10000, 0x400, done + 1, AccessKind::Load);
        assert_eq!(level2, HitLevel::L1);
        assert_eq!(done2, done + 1 + 4);
    }

    #[test]
    fn warm_line_hits_l1_immediately() {
        let mut h = Hierarchy::new(&small_cfg());
        h.warm(0x2000);
        let (done, level) = h.access(0x2000, 0, 10, AccessKind::Load);
        assert_eq!(level, HitLevel::L1);
        assert_eq!(done, 14);
    }

    #[test]
    fn l2_hit_after_l1_eviction_pattern() {
        let mut h = Hierarchy::new(&small_cfg());
        // Fill L2+L3 but not L1.
        h.l2.fill(crate::line_of(0x3000), 0);
        let (done, level) = h.access(0x3000, 0, 100, AccessKind::Load);
        assert_eq!(level, HitLevel::L2);
        // L1 latency (4) to detect miss, then L2 hit latency (12).
        assert_eq!(done, 100 + 4 + 12);
    }

    #[test]
    fn same_line_concurrent_misses_merge() {
        let mut h = Hierarchy::new(&small_cfg());
        let (d1, l1) = h.access(0x40000, 0, 100, AccessKind::Load);
        assert_eq!(l1, HitLevel::Memory);
        // Second access to the same line while the first is still in flight:
        // the L1 lookup hits the in-flight fill (valid_at in future).
        let (d2, _) = h.access(0x40000, 0, 101, AccessKind::Load);
        assert_eq!(d2, d1);
    }

    #[test]
    fn prefetcher_hides_latency_for_streaming() {
        let cfg = MemConfig {
            prefetch: true,
            prefetch_degree: 4,
            ..MemConfig::default()
        };
        let mut h = Hierarchy::new(&cfg);
        let mut t = 0;
        let mut total_lat = 0u64;
        // Sequential 64-byte stream; after warm-up, prefetches should
        // convert DRAM misses into L1/inflight hits.
        let mut late = 0;
        for i in 0..64u64 {
            let addr = 0x100000 + i * 64;
            let (done, level) = h.access(addr, 0x88, t, AccessKind::Load);
            total_lat += done - t;
            if i > 8 && level == HitLevel::Memory {
                late += 1;
            }
            t += 50;
        }
        assert!(h.stats.prefetches > 0, "prefetcher never fired");
        assert!(
            late < 16,
            "prefetcher failed to cover the stream: {late} memory-level misses"
        );
        let avg = total_lat / 64;
        assert!(avg < 120, "average latency too high: {avg}");
    }

    #[test]
    fn ifetch_misses_then_hits_and_prefetches_next_line() {
        let mut h = Hierarchy::new(&small_cfg());
        let t1 = h.ifetch(0x40_0000, 100);
        assert!(t1 > 104, "cold instruction miss must walk the hierarchy");
        // Same line now hits at the L1I latency.
        let t2 = h.ifetch(0x40_0010, t1);
        assert_eq!(t2, t1 + 4);
        // The sequential prefetch covered the next line.
        assert!(h.l1i.probe(crate::line_of(0x40_0040)));
    }

    #[test]
    fn ifetch_and_data_paths_share_the_l2() {
        let mut h = Hierarchy::new(&small_cfg());
        let t1 = h.ifetch(0x50_0000, 0);
        // A *data* access to the same line hits the L2 (unified), not DRAM.
        let (_, level) = h.access(0x50_0000, 0, t1 + 1, AccessKind::Load);
        assert_eq!(level, HitLevel::L2);
    }

    #[test]
    fn stats_accumulate_per_level() {
        let mut h = Hierarchy::new(&small_cfg());
        let (done, _) = h.access(0x5000, 0, 0, AccessKind::Load);
        let _ = h.access(0x5000, 0, done, AccessKind::Load);
        assert_eq!(h.stats.hits_mem, 1);
        assert_eq!(h.stats.hits_l1, 1);
        assert_eq!(h.stats.total(), 2);
        assert!((h.stats.l1_miss_ratio() - 0.5).abs() < 1e-12);
    }
}
