//! The composed cache/DRAM hierarchy walk.
//!
//! [`Hierarchy::access`] resolves a demand load/store through
//! L1D → L2 → L3 → DRAM, honoring per-level MSHR limits, filling lines on
//! the way back up, and (for loads) training the stride prefetcher.
//!
//! # The line filter
//!
//! In front of the L1D walk sits a small direct-mapped **line filter**
//! memoizing the last lines that resolved to L1 hits: the line address,
//! the hit way's flat slot, its fill timestamp, and the L1D's fill/evict
//! generation at memoization time. Tight loops that re-access hot lines
//! skip the L1 set scan entirely; any L1D fill bumps the generation and
//! thereby invalidates every memoized entry at once. A filter hit replays
//! the exact bookkeeping a normal L1 hit would have performed (hit
//! counter, MRU recency), so results are bit-identical with the filter on
//! or off — `tests/hierarchy_equiv.rs` pins this against the naive path
//! selected by [`Hierarchy::with_naive_lookup`] or `BALLERINO_MEM_NAIVE`.

use crate::cache::{Cache, Lookup, SlotLookup};
use crate::config::MemConfig;
use crate::dram::Dram;
use crate::mshr::MshrClaim;
use crate::prefetch::{StridePrefetcher, MAX_PF_DEGREE};
use crate::{line_of, LINE_BYTES};
use std::cell::Cell;

/// Kind of hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand load (trains the prefetcher).
    Load,
    /// Store performed at commit (write-allocate).
    Store,
    /// Prefetch fill (does not recurse into further prefetches).
    Prefetch,
}

/// Deepest level that had to service an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    /// Serviced by the L1 data cache.
    L1,
    /// Serviced by the L2.
    L2,
    /// Serviced by the L3.
    L3,
    /// Went to DRAM.
    Memory,
}

/// Aggregate memory statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand accesses serviced per level.
    pub hits_l1: u64,
    /// Demand accesses serviced by L2.
    pub hits_l2: u64,
    /// Demand accesses serviced by L3.
    pub hits_l3: u64,
    /// Demand accesses serviced by DRAM.
    pub hits_mem: u64,
    /// Prefetches sent.
    pub prefetches: u64,
}

impl MemStats {
    /// Demand accesses observed in total.
    pub fn total(&self) -> u64 {
        self.hits_l1 + self.hits_l2 + self.hits_l3 + self.hits_mem
    }

    /// Fraction of demand accesses that left the L1.
    pub fn l1_miss_ratio(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (t - self.hits_l1) as f64 / t as f64
        }
    }
}

/// Number of direct-mapped line-filter slots (power of two).
const FILTER_SLOTS: usize = 64;

/// Direct-mapped memo of recently resolved L1-hit lines; see the module
/// docs for the invalidation rule.
#[derive(Debug, Clone)]
struct LineFilter {
    /// Memoized line address per slot (`u64::MAX` = never filled, which
    /// no real line address can reach).
    lines: [u64; FILTER_SLOTS],
    /// Flat L1D slot (`set * ways + way`) the line was found in.
    slots: [u32; FILTER_SLOTS],
    /// The hit way's fill timestamp at memoization time.
    valid_at: [u64; FILTER_SLOTS],
    /// L1D generation the entry was memoized under.
    gens: [u64; FILTER_SLOTS],
}

impl LineFilter {
    fn new() -> Self {
        LineFilter {
            lines: [u64::MAX; FILTER_SLOTS],
            slots: [0; FILTER_SLOTS],
            valid_at: [0; FILTER_SLOTS],
            gens: [0; FILTER_SLOTS],
        }
    }

    #[inline]
    fn index(line: u64) -> usize {
        (line as usize) & (FILTER_SLOTS - 1)
    }
}

/// L1D → L2 → L3 → DRAM hierarchy with stride prefetching, plus a
/// parallel L1I front-end path that shares the unified L2.
#[derive(Debug)]
pub struct Hierarchy {
    /// L1 data cache.
    pub l1d: Cache,
    /// L1 instruction cache (Table I: same geometry as the L1D).
    pub l1i: Cache,
    /// L2 unified cache.
    pub l2: Cache,
    /// L3 last-level cache.
    pub l3: Cache,
    /// DRAM behind the LLC.
    pub dram: Dram,
    prefetcher: Option<StridePrefetcher>,
    filter: LineFilter,
    /// Seed-exact lookup mode: no line filter, full scans in every cache.
    naive: bool,
    /// Lower bound on the earliest outstanding recorded MSHR fill across
    /// all levels (`u64::MAX` = none known). Lowered eagerly whenever a
    /// walk records a fill, refreshed lazily by
    /// [`Hierarchy::next_fill_cycle`] once the query cycle passes it —
    /// so the per-cycle skip-engine query is one comparison instead of
    /// four MSHR-file scans.
    fill_horizon: Cell<u64>,
    /// Aggregate statistics.
    pub stats: MemStats,
}

impl Hierarchy {
    /// Builds an empty hierarchy from a configuration. The fast lookup
    /// path is used unless the `BALLERINO_MEM_NAIVE` environment variable
    /// is set (the A/B knob; results are identical either way).
    pub fn new(cfg: &MemConfig) -> Self {
        Self::with_mode(cfg, ballerino_isa::env_flag("BALLERINO_MEM_NAIVE"))
    }

    /// Builds a hierarchy on the frozen seed-exact lookup path (full set
    /// scans, per-touch LRU stamping, no line filter) regardless of the
    /// environment — the A/B oracle side of `tests/hierarchy_equiv.rs`.
    pub fn with_naive_lookup(cfg: &MemConfig) -> Self {
        Self::with_mode(cfg, true)
    }

    /// Builds a hierarchy on the fast lookup path (MRU hits, line filter)
    /// regardless of the environment.
    pub fn with_fast_lookup(cfg: &MemConfig) -> Self {
        Self::with_mode(cfg, false)
    }

    fn with_mode(cfg: &MemConfig, naive: bool) -> Self {
        let prefetcher = if cfg.prefetch {
            Some(StridePrefetcher::new(256, cfg.prefetch_degree))
        } else {
            None
        };
        let build = if naive { Cache::new_naive } else { Cache::new };
        Hierarchy {
            l1d: build(cfg.l1d.clone()),
            l1i: build(cfg.l1d.clone()),
            l2: build(cfg.l2.clone()),
            l3: build(cfg.l3.clone()),
            dram: Dram::new(cfg.dram.clone()),
            prefetcher,
            filter: LineFilter::new(),
            naive,
            fill_horizon: Cell::new(u64::MAX),
            stats: MemStats::default(),
        }
    }

    /// Lowers the fill-horizon bound when a walk records a new fill.
    #[inline]
    fn note_fill(&self, fill: u64) {
        if fill < self.fill_horizon.get() {
            self.fill_horizon.set(fill);
        }
    }

    /// Whether the seed-exact naive lookup path is active.
    pub fn is_naive(&self) -> bool {
        self.naive
    }

    /// Instruction fetch of the line holding `pc` at `cycle`: L1I →
    /// unified L2 → L3 → DRAM. Returns the cycle the line is available
    /// to the fetch unit. A next-line prefetch fills the following line
    /// on a miss (simple sequential instruction prefetch).
    pub fn ifetch(&mut self, pc: u64, cycle: u64) -> u64 {
        let line = line_of(pc);
        if let Lookup::Hit { ready } = self.l1i.lookup(line, cycle) {
            return ready;
        }
        let (fill, _) = self.below_l1(line, cycle + self.l1i.latency());
        self.l1i.fill(line, fill);
        // Sequential next-line prefetch into the L1I.
        if !self.l1i.probe(line + 1) {
            let (nfill, _) = self.below_l1(line + 1, cycle + self.l1i.latency());
            self.l1i.fill(line + 1, nfill);
        }
        fill
    }

    /// Performs an access to byte address `addr` from instruction `pc` at
    /// `cycle`. Returns `(completion_cycle, deepest_level)`.
    ///
    /// Demand loads hold an L1 MSHR for the full miss; stores (performed
    /// at commit from the store buffer) and prefetches go straight to the
    /// L2 path and fill the L1 without occupying its scarce MSHRs — as
    /// fill buffers drained by the L2 superqueue would.
    pub fn access(&mut self, addr: u64, pc: u64, cycle: u64, kind: AccessKind) -> (u64, HitLevel) {
        let line = line_of(addr);
        let (done, level) = self.access_line(line, cycle, kind == AccessKind::Load);
        match level {
            HitLevel::L1 => self.stats.hits_l1 += 1,
            HitLevel::L2 => self.stats.hits_l2 += 1,
            HitLevel::L3 => self.stats.hits_l3 += 1,
            HitLevel::Memory => self.stats.hits_mem += 1,
        }
        if kind == AccessKind::Load {
            if let Some(pf) = self.prefetcher.as_mut() {
                let mut candidates = [0u64; MAX_PF_DEGREE];
                let n = pf.observe(pc, addr, &mut candidates);
                for &target in &candidates[..n] {
                    let tline = line_of(target);
                    if !self.l1d.probe(tline) {
                        self.stats.prefetches += 1;
                        let _ = self.access_line(tline, cycle, false);
                    }
                }
            }
        }
        (done, level)
    }

    /// Walks the hierarchy for one line; fills caches on the way up.
    /// `hold_l1_mshr` gates whether the L1's miss registers bound the
    /// request (true for demand loads only).
    fn access_line(&mut self, line: u64, cycle: u64, hold_l1_mshr: bool) -> (u64, HitLevel) {
        if !self.naive {
            // Line-filter fast path: a valid entry proves the line was an
            // L1 hit under the current fill generation, so no fill has
            // moved or refreshed any L1D way since — slot and timestamp
            // are still exact.
            let f = LineFilter::index(line);
            if self.filter.lines[f] == line && self.filter.gens[f] == self.l1d.generation() {
                self.l1d.filter_touch(self.filter.slots[f]);
                let ready = (cycle + self.l1d.latency()).max(self.filter.valid_at[f]);
                return (ready, HitLevel::L1);
            }
        }
        // L1 lookup.
        match self.l1d.lookup_slot(line, cycle) {
            SlotLookup::Hit {
                ready,
                slot,
                valid_at,
            } => {
                if !self.naive {
                    let f = LineFilter::index(line);
                    self.filter.lines[f] = line;
                    self.filter.slots[f] = slot;
                    self.filter.valid_at[f] = valid_at;
                    self.filter.gens[f] = self.l1d.generation();
                }
                return (ready, HitLevel::L1);
            }
            SlotLookup::Miss => {}
        }
        if !hold_l1_mshr {
            let (fill, level) = self.below_l1(line, cycle + self.l1d.latency());
            self.l1d.fill(line, fill);
            return (fill, level);
        }
        let l1_start = match self.l1d.mshrs.claim(line, cycle) {
            MshrClaim::Merged { fill } => return (fill, HitLevel::L2),
            MshrClaim::Allocated { start } => start + self.l1d.latency(),
        };

        let (fill_from_below, level) = self.below_l1(line, l1_start);
        self.l1d.mshrs.record_fill(line, fill_from_below);
        self.note_fill(fill_from_below);
        self.l1d.fill(line, fill_from_below);
        (fill_from_below, level)
    }

    fn below_l1(&mut self, line: u64, cycle: u64) -> (u64, HitLevel) {
        if let Lookup::Hit { ready } = self.l2.lookup(line, cycle) {
            return (ready, HitLevel::L2);
        }
        let l2_start = match self.l2.mshrs.claim(line, cycle) {
            MshrClaim::Merged { fill } => return (fill, HitLevel::L3),
            MshrClaim::Allocated { start } => start + self.l2.latency(),
        };

        let (fill, level) = self.below_l2(line, l2_start);
        self.l2.mshrs.record_fill(line, fill);
        self.note_fill(fill);
        self.l2.fill(line, fill);
        (fill, level)
    }

    fn below_l2(&mut self, line: u64, cycle: u64) -> (u64, HitLevel) {
        if let Lookup::Hit { ready } = self.l3.lookup(line, cycle) {
            return (ready, HitLevel::L3);
        }
        let l3_start = match self.l3.mshrs.claim(line, cycle) {
            MshrClaim::Merged { fill } => return (fill, HitLevel::Memory),
            MshrClaim::Allocated { start } => start + self.l3.latency(),
        };

        let fill = self.dram.access(line, l3_start);
        self.l3.mshrs.record_fill(line, fill);
        self.note_fill(fill);
        self.l3.fill(line, fill);
        (fill, HitLevel::Memory)
    }

    /// Approximate footprint helper: touches a line so that it is resident
    /// (used to warm caches in tests).
    pub fn warm(&mut self, addr: u64) {
        let line = line_of(addr);
        self.l1d.fill(line, 0);
        self.l2.fill(line, 0);
        self.l3.fill(line, 0);
    }

    /// Earliest MSHR fill completion strictly after `cycle` across every
    /// cache level, if any miss is outstanding. Used by the simulator's
    /// event-horizon engine as a defensive bound: all completion cycles
    /// are resolved at access time and queued by the core, so this can
    /// only tighten (never extend) a skip window.
    ///
    /// Queries must be non-decreasing in `cycle` over the hierarchy's
    /// lifetime (the simulated clock never runs backwards): the answer is
    /// served from the cached fill horizon — one comparison on the
    /// per-cycle path — and the horizon is only re-derived from the MSHR
    /// files once `cycle` reaches it. The cached bound may sit below the
    /// files' true minimum when a full-file claim retired an entry early;
    /// that only tightens the skip window, never extends it.
    #[inline]
    pub fn next_fill_cycle(&self, cycle: u64) -> Option<u64> {
        let h = self.fill_horizon.get();
        if h > cycle {
            return (h != u64::MAX).then_some(h);
        }
        let next = [&self.l1d, &self.l1i, &self.l2, &self.l3]
            .into_iter()
            .filter_map(|c| c.mshrs.next_fill_cycle(cycle))
            .min();
        self.fill_horizon.set(next.unwrap_or(u64::MAX));
        next
    }

    /// Line size in bytes (fixed).
    pub fn line_bytes(&self) -> u64 {
        LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MemConfig {
        MemConfig {
            prefetch: false,
            ..MemConfig::default()
        }
    }

    #[test]
    fn cold_miss_goes_to_memory_then_hits_l1() {
        let mut h = Hierarchy::new(&small_cfg());
        let (done, level) = h.access(0x10000, 0x400, 100, AccessKind::Load);
        assert_eq!(level, HitLevel::Memory);
        // at least L1+L2+L3 lookups plus DRAM activate+cas+burst
        assert!(done > 100 + 4 + 12 + 42);
        let (done2, level2) = h.access(0x10000, 0x400, done + 1, AccessKind::Load);
        assert_eq!(level2, HitLevel::L1);
        assert_eq!(done2, done + 1 + 4);
    }

    #[test]
    fn warm_line_hits_l1_immediately() {
        let mut h = Hierarchy::new(&small_cfg());
        h.warm(0x2000);
        let (done, level) = h.access(0x2000, 0, 10, AccessKind::Load);
        assert_eq!(level, HitLevel::L1);
        assert_eq!(done, 14);
    }

    #[test]
    fn l2_hit_after_l1_eviction_pattern() {
        let mut h = Hierarchy::new(&small_cfg());
        // Fill L2+L3 but not L1.
        h.l2.fill(crate::line_of(0x3000), 0);
        let (done, level) = h.access(0x3000, 0, 100, AccessKind::Load);
        assert_eq!(level, HitLevel::L2);
        // L1 latency (4) to detect miss, then L2 hit latency (12).
        assert_eq!(done, 100 + 4 + 12);
    }

    #[test]
    fn same_line_concurrent_misses_merge() {
        let mut h = Hierarchy::new(&small_cfg());
        let (d1, l1) = h.access(0x40000, 0, 100, AccessKind::Load);
        assert_eq!(l1, HitLevel::Memory);
        // Second access to the same line while the first is still in flight:
        // the L1 lookup hits the in-flight fill (valid_at in future).
        let (d2, _) = h.access(0x40000, 0, 101, AccessKind::Load);
        assert_eq!(d2, d1);
    }

    #[test]
    fn prefetcher_hides_latency_for_streaming() {
        let cfg = MemConfig {
            prefetch: true,
            prefetch_degree: 4,
            ..MemConfig::default()
        };
        let mut h = Hierarchy::new(&cfg);
        let mut t = 0;
        let mut total_lat = 0u64;
        // Sequential 64-byte stream; after warm-up, prefetches should
        // convert DRAM misses into L1/inflight hits.
        let mut late = 0;
        for i in 0..64u64 {
            let addr = 0x100000 + i * 64;
            let (done, level) = h.access(addr, 0x88, t, AccessKind::Load);
            total_lat += done - t;
            if i > 8 && level == HitLevel::Memory {
                late += 1;
            }
            t += 50;
        }
        assert!(h.stats.prefetches > 0, "prefetcher never fired");
        assert!(
            late < 16,
            "prefetcher failed to cover the stream: {late} memory-level misses"
        );
        let avg = total_lat / 64;
        assert!(avg < 120, "average latency too high: {avg}");
    }

    #[test]
    fn ifetch_misses_then_hits_and_prefetches_next_line() {
        let mut h = Hierarchy::new(&small_cfg());
        let t1 = h.ifetch(0x40_0000, 100);
        assert!(t1 > 104, "cold instruction miss must walk the hierarchy");
        // Same line now hits at the L1I latency.
        let t2 = h.ifetch(0x40_0010, t1);
        assert_eq!(t2, t1 + 4);
        // The sequential prefetch covered the next line.
        assert!(h.l1i.probe(crate::line_of(0x40_0040)));
    }

    #[test]
    fn ifetch_and_data_paths_share_the_l2() {
        let mut h = Hierarchy::new(&small_cfg());
        let t1 = h.ifetch(0x50_0000, 0);
        // A *data* access to the same line hits the L2 (unified), not DRAM.
        let (_, level) = h.access(0x50_0000, 0, t1 + 1, AccessKind::Load);
        assert_eq!(level, HitLevel::L2);
    }

    #[test]
    fn stats_accumulate_per_level() {
        let mut h = Hierarchy::new(&small_cfg());
        let (done, _) = h.access(0x5000, 0, 0, AccessKind::Load);
        let _ = h.access(0x5000, 0, done, AccessKind::Load);
        assert_eq!(h.stats.hits_mem, 1);
        assert_eq!(h.stats.hits_l1, 1);
        assert_eq!(h.stats.total(), 2);
        assert!((h.stats.l1_miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn filter_retouch_matches_first_hit_timing() {
        let mut h = Hierarchy::with_fast_lookup(&small_cfg());
        h.warm(0x2000);
        let (d1, l1) = h.access(0x2000, 0, 10, AccessKind::Load); // memoizes
        let (d2, l2) = h.access(0x2000, 0, 20, AccessKind::Load); // filter hit
        assert_eq!((l1, l2), (HitLevel::L1, HitLevel::L1));
        assert_eq!(d1, 14);
        assert_eq!(d2, 24);
        assert_eq!(h.l1d.hits, 2);
    }

    #[test]
    fn filter_entries_die_on_any_l1d_fill() {
        let mut h = Hierarchy::with_fast_lookup(&small_cfg());
        h.warm(0x2000);
        let _ = h.access(0x2000, 0, 10, AccessKind::Load); // memoizes
        h.l1d.fill(crate::line_of(0x9000), 50); // bumps generation
                                                // Stale entry must not be used; the normal lookup still hits.
        let (done, level) = h.access(0x2000, 0, 60, AccessKind::Load);
        assert_eq!(level, HitLevel::L1);
        assert_eq!(done, 64);
    }

    #[test]
    fn naive_lookup_knob_reports_mode() {
        let cfg = small_cfg();
        assert!(Hierarchy::with_naive_lookup(&cfg).is_naive());
        assert!(!Hierarchy::with_fast_lookup(&cfg).is_naive());
    }

    /// The memoized fill horizon must answer monotonic queries exactly
    /// like a fresh scan of every level's MSHR file.
    #[test]
    fn next_fill_cycle_memo_matches_mshr_scan() {
        let mut h = Hierarchy::new(&small_cfg());
        let scan = |h: &Hierarchy, t: u64| {
            [&h.l1d, &h.l1i, &h.l2, &h.l3]
                .into_iter()
                .filter_map(|c| c.mshrs.next_fill_cycle(t))
                .min()
        };
        assert_eq!(h.next_fill_cycle(0), None);
        let (d1, _) = h.access(0x10000, 0, 100, AccessKind::Load);
        assert_eq!(h.next_fill_cycle(100), scan(&h, 100));
        assert_eq!(h.next_fill_cycle(100), Some(d1).filter(|&f| f > 100));
        // A second outstanding miss lowers the horizon if it fills earlier.
        let _ = h.access(0x20000, 0, 110, AccessKind::Load);
        assert_eq!(h.next_fill_cycle(110), scan(&h, 110));
        // Walk the clock past each fill; memo and scan must stay in step.
        let mut t = 110;
        while let Some(f) = h.next_fill_cycle(t) {
            assert_eq!(Some(f), scan(&h, t), "diverged at cycle {t}");
            t = f;
        }
        assert_eq!(scan(&h, t), None);
    }
}
