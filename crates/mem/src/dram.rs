//! DDR4-lite DRAM timing model.
//!
//! Stand-in for the paper's Ramulator integration: per-bank open-row state,
//! activate/precharge/CAS timing, and a shared data bus. The model captures
//! what the scheduler observes — variable latencies in the 100–300 core
//! cycle range with bank-level parallelism and row-buffer locality — without
//! simulating the full DDR4 state machine.

use crate::config::DramConfig;
use crate::LINE_BYTES;

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// Single-channel, single-rank DRAM with `banks` banks.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    bus_busy_until: u64,
    /// Row-buffer hits served.
    pub row_hits: u64,
    /// Row misses (closed row or conflict).
    pub row_misses: u64,
}

impl Dram {
    /// Builds an idle DRAM from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks > 0, "DRAM needs at least one bank");
        let banks = vec![Bank::default(); cfg.banks];
        Dram {
            cfg,
            banks,
            bus_busy_until: 0,
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// The configuration this DRAM was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn decode(&self, line: u64) -> (usize, u64) {
        let addr = line * LINE_BYTES;
        let lines_per_row = self.cfg.row_bytes / LINE_BYTES;
        // Interleave consecutive rows across banks for bank-level parallelism.
        let row_global = line / lines_per_row;
        let bank = (row_global % self.cfg.banks as u64) as usize;
        let row = row_global / self.cfg.banks as u64;
        let _ = addr;
        (bank, row)
    }

    /// Services a 64-byte read/write of `line` arriving at `cycle`; returns
    /// the absolute completion cycle.
    ///
    /// Column accesses to an open row are pipelined: the bank is occupied
    /// for only the burst gap (CAS-to-CAS), not the full CAS latency, so
    /// a streaming row drains at bus speed. Activates and precharges
    /// occupy the bank for their full duration.
    pub fn access(&mut self, line: u64, cycle: u64) -> u64 {
        let (bank_idx, row) = self.decode(line);
        let bank = &mut self.banks[bank_idx];
        let start = cycle.max(bank.busy_until);
        let (col_start, array_lat) = match bank.open_row {
            Some(open) if open == row => {
                self.row_hits += 1;
                (start, self.cfg.cas)
            }
            Some(_) => {
                self.row_misses += 1;
                (start + self.cfg.rp + self.cfg.rcd, self.cfg.cas)
            }
            None => {
                self.row_misses += 1;
                (start + self.cfg.rcd, self.cfg.cas)
            }
        };
        bank.open_row = Some(row);
        let data_ready = col_start + array_lat;
        // Serialize transfers on the shared data bus.
        let bus_start = data_ready.max(self.bus_busy_until);
        let done = bus_start + self.cfg.burst;
        self.bus_busy_until = done;
        // CAS commands pipeline: the bank frees after the CAS-to-CAS gap.
        bank.busy_until = col_start + self.cfg.burst;
        done
    }

    /// Fraction of accesses that hit an open row.
    pub fn row_hit_ratio(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn first_access_pays_activate_plus_cas() {
        let mut d = dram();
        let cfg = d.config().clone();
        let done = d.access(0, 100);
        assert_eq!(done, 100 + cfg.rcd + cfg.cas + cfg.burst);
        assert_eq!(d.row_misses, 1);
    }

    #[test]
    fn same_row_hit_is_faster() {
        let mut d = dram();
        let cfg = d.config().clone();
        let t1 = d.access(0, 0);
        let t2 = d.access(1, t1); // same row, next line
        assert_eq!(t2 - t1, cfg.cas + cfg.burst);
        assert_eq!(d.row_hits, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = dram();
        let cfg = d.config().clone();
        let lines_per_row = cfg.row_bytes / LINE_BYTES;
        let t1 = d.access(0, 0);
        // Same bank, different row: banks interleave by row, so add
        // banks * lines_per_row lines.
        let conflict_line = cfg.banks as u64 * lines_per_row;
        let t2 = d.access(conflict_line, t1);
        assert!(t2 - t1 >= cfg.rp + cfg.rcd + cfg.cas);
        assert_eq!(d.row_misses, 2);
    }

    #[test]
    fn different_banks_overlap_activates() {
        let mut d = dram();
        let cfg = d.config().clone();
        let lines_per_row = cfg.row_bytes / LINE_BYTES;
        // Two accesses to different banks at the same cycle: array access
        // overlaps; only the bus serializes them.
        let t_a = d.access(0, 0);
        let t_b = d.access(lines_per_row, 0); // next row → next bank
        assert_eq!(t_a, cfg.rcd + cfg.cas + cfg.burst);
        assert_eq!(t_b, t_a + cfg.burst);
    }

    #[test]
    fn row_hit_ratio_reported() {
        let mut d = dram();
        let t = d.access(0, 0);
        let _ = d.access(1, t);
        assert!((d.row_hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        let _ = Dram::new(DramConfig {
            banks: 0,
            ..DramConfig::default()
        });
    }
}
