//! Load and store queues: store-to-load forwarding and memory-order
//! violation detection.
//!
//! μops are identified by their global **sequence number** (`seq`), a
//! monotonically increasing dynamic age assigned at rename; all ordering
//! queries compare sequence numbers.
//!
//! Entries are age-ordered, so seq lookups are binary searches, and each
//! queue keeps a position-indexed **resolved bitmask** (bit `p` set ⇔ the
//! entry at position `p` has a known address). The range-overlap searches
//! — forwarding and violation detection — iterate only the set bits on
//! the relevant side of the age boundary instead of scanning every entry.

use std::collections::VecDeque;

/// Queues support at most 128 entries (the resolved bitmask is a `u128`;
/// Table I tops out at 72 load-queue entries).
const MAX_QUEUE_CAP: usize = 128;

/// Bitmask with the low `n` bits set.
#[inline]
fn low_mask(n: usize) -> u128 {
    if n >= 128 {
        !0
    } else {
        (1u128 << n) - 1
    }
}

/// Removes bit `p` from a position-indexed mask, shifting higher
/// positions down by one (mirrors removing a queue entry at `p`).
#[inline]
fn collapse_bit(mask: u128, p: usize) -> u128 {
    (mask & low_mask(p)) | ((mask >> 1) & !low_mask(p))
}

/// Byte range of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRange {
    /// Start byte address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u8,
}

impl MemRange {
    /// Whether two ranges overlap.
    pub fn overlaps(&self, other: &MemRange) -> bool {
        self.addr < other.addr + other.size as u64 && other.addr < self.addr + self.size as u64
    }
}

/// A store-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct StoreEntry {
    /// Global age.
    pub seq: u64,
    /// Program counter (for MDP training on violations).
    pub pc: u64,
    /// Address once the AGU has executed.
    pub range: Option<MemRange>,
    /// Whether the store has issued (address computed).
    pub issued: bool,
}

/// A load-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct LoadEntry {
    /// Global age.
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Address once executed.
    pub range: Option<MemRange>,
    /// Sequence of the store that forwarded the value, if any.
    pub forwarded_from: Option<u64>,
    /// Whether the load has obtained its value.
    pub done: bool,
}

/// Store-to-load forwarding outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Forward {
    /// No older overlapping store in the queue: read from the cache.
    FromCache,
    /// Value forwarded from the given store's queue entry.
    FromStore {
        /// Sequence number of the forwarding store.
        store_seq: u64,
    },
}

/// Bounded in-order store queue (Table I: 56 entries at 8-wide).
#[derive(Debug, Clone)]
pub struct StoreQueue {
    cap: usize,
    entries: VecDeque<StoreEntry>,
    /// Bit `p` set ⇔ `entries[p]` has a resolved address.
    resolved: u128,
    /// Forwarding hits served.
    pub forwards: u64,
}

impl StoreQueue {
    /// Creates a store queue with `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` exceeds 128 (the resolved bitmask width).
    pub fn new(cap: usize) -> Self {
        assert!(
            cap <= MAX_QUEUE_CAP,
            "store queue capacity exceeds {MAX_QUEUE_CAP}"
        );
        StoreQueue {
            cap,
            entries: VecDeque::with_capacity(cap),
            resolved: 0,
            forwards: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an allocation would succeed.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.cap
    }

    /// Position of `seq` in the age-ordered queue, if present. Commits
    /// release oldest-first, so the front is checked before the binary
    /// search.
    #[inline]
    fn position(&self, seq: u64) -> Option<usize> {
        match self.entries.front() {
            Some(e) if e.seq == seq => return Some(0),
            Some(e) if e.seq > seq => return None,
            _ => {}
        }
        let p = self.entries.partition_point(|e| e.seq < seq);
        (p < self.entries.len() && self.entries[p].seq == seq).then_some(p)
    }

    /// Allocates an entry at dispatch.
    ///
    /// Returns `false` (and does nothing) when the queue is full.
    pub fn allocate(&mut self, seq: u64, pc: u64) -> bool {
        if !self.has_space() {
            return false;
        }
        debug_assert!(self.entries.back().map(|e| e.seq < seq).unwrap_or(true));
        self.entries.push_back(StoreEntry {
            seq,
            pc,
            range: None,
            issued: false,
        });
        true
    }

    /// Records the address of `seq` when its AGU executes, marking it issued.
    pub fn set_addr(&mut self, seq: u64, range: MemRange) {
        if let Some(p) = self.position(seq) {
            let e = &mut self.entries[p];
            e.range = Some(range);
            e.issued = true;
            self.resolved |= 1u128 << p;
        }
    }

    /// Finds the youngest store older than `load_seq` with a known
    /// overlapping address (forwarding source).
    pub fn forward_source(&mut self, load_seq: u64, range: MemRange) -> Forward {
        if self.resolved == 0 {
            return Forward::FromCache;
        }
        // Every queued store older than the load (common case): no age
        // boundary to search for.
        let boundary = match self.entries.back() {
            Some(e) if e.seq < load_seq => self.entries.len(),
            _ => self.entries.partition_point(|e| e.seq < load_seq),
        };
        // Only resolved entries older than the load, youngest first.
        let mut cand = self.resolved & low_mask(boundary);
        while cand != 0 {
            let p = 127 - cand.leading_zeros() as usize;
            let e = &self.entries[p];
            if e.range.map(|r| r.overlaps(&range)).unwrap_or(false) {
                self.forwards += 1;
                return Forward::FromStore { store_seq: e.seq };
            }
            cand &= !(1u128 << p);
        }
        Forward::FromCache
    }

    /// Releases the entry for `seq` at commit.
    pub fn release(&mut self, seq: u64) {
        if let Some(p) = self.position(seq) {
            self.entries.remove(p);
            self.resolved = collapse_bit(self.resolved, p);
        }
    }

    /// Drops all entries younger than `seq` (squash).
    pub fn flush_after(&mut self, seq: u64) {
        while let Some(back) = self.entries.back() {
            if back.seq > seq {
                self.entries.pop_back();
            } else {
                break;
            }
        }
        self.resolved &= low_mask(self.entries.len());
    }

    /// Returns the entry for `seq`, if present.
    pub fn get(&self, seq: u64) -> Option<&StoreEntry> {
        self.position(seq).map(|p| &self.entries[p])
    }
}

/// Bounded in-order load queue (Table I: 72 entries at 8-wide).
#[derive(Debug, Clone)]
pub struct LoadQueue {
    cap: usize,
    entries: VecDeque<LoadEntry>,
    /// Bit `p` set ⇔ `entries[p]` is done (executed with known address).
    done: u128,
    /// Memory-order violations detected.
    pub violations: u64,
}

impl LoadQueue {
    /// Creates a load queue with `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` exceeds 128 (the done bitmask width).
    pub fn new(cap: usize) -> Self {
        assert!(
            cap <= MAX_QUEUE_CAP,
            "load queue capacity exceeds {MAX_QUEUE_CAP}"
        );
        LoadQueue {
            cap,
            entries: VecDeque::with_capacity(cap),
            done: 0,
            violations: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an allocation would succeed.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.cap
    }

    /// Position of `seq` in the age-ordered queue, if present. Commits
    /// release oldest-first, so the front is checked before the binary
    /// search.
    #[inline]
    fn position(&self, seq: u64) -> Option<usize> {
        match self.entries.front() {
            Some(e) if e.seq == seq => return Some(0),
            Some(e) if e.seq > seq => return None,
            _ => {}
        }
        let p = self.entries.partition_point(|e| e.seq < seq);
        (p < self.entries.len() && self.entries[p].seq == seq).then_some(p)
    }

    /// Allocates an entry at dispatch; `false` when full.
    pub fn allocate(&mut self, seq: u64, pc: u64) -> bool {
        if !self.has_space() {
            return false;
        }
        debug_assert!(self.entries.back().map(|e| e.seq < seq).unwrap_or(true));
        self.entries.push_back(LoadEntry {
            seq,
            pc,
            range: None,
            forwarded_from: None,
            done: false,
        });
        true
    }

    /// Records a load's address, value provenance and completion.
    pub fn set_executed(&mut self, seq: u64, range: MemRange, forwarded_from: Option<u64>) {
        if let Some(p) = self.position(seq) {
            let e = &mut self.entries[p];
            e.range = Some(range);
            e.forwarded_from = forwarded_from;
            e.done = true;
            self.done |= 1u128 << p;
        }
    }

    /// Checks for a memory-order violation when a store resolves its
    /// address: the oldest *executed* load younger than the store whose
    /// range overlaps and whose value did not come from this store or a
    /// younger one. Returns that load's `(seq, pc)`.
    pub fn violation_on_store(&mut self, store_seq: u64, range: MemRange) -> Option<(u64, u64)> {
        if self.done == 0 {
            return None;
        }
        let boundary = self.entries.partition_point(|e| e.seq <= store_seq);
        // Only executed entries younger than the store, oldest first.
        let mut cand = self.done & !low_mask(boundary);
        while cand != 0 {
            let p = cand.trailing_zeros() as usize;
            let e = &self.entries[p];
            if e.range.map(|r| r.overlaps(&range)).unwrap_or(false)
                && e.forwarded_from.map(|f| f < store_seq).unwrap_or(true)
            {
                self.violations += 1;
                return Some((e.seq, e.pc));
            }
            cand &= cand - 1;
        }
        None
    }

    /// Releases the entry for `seq` at commit.
    pub fn release(&mut self, seq: u64) {
        if let Some(p) = self.position(seq) {
            self.entries.remove(p);
            self.done = collapse_bit(self.done, p);
        }
    }

    /// Drops all entries with `seq` strictly greater than the argument.
    pub fn flush_after(&mut self, seq: u64) {
        while let Some(back) = self.entries.back() {
            if back.seq > seq {
                self.entries.pop_back();
            } else {
                break;
            }
        }
        self.done &= low_mask(self.entries.len());
    }

    /// Returns the entry for `seq`, if present.
    pub fn get(&self, seq: u64) -> Option<&LoadEntry> {
        self.position(seq).map(|p| &self.entries[p])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(addr: u64) -> MemRange {
        MemRange { addr, size: 8 }
    }

    #[test]
    fn forwarding_picks_youngest_older_store() {
        let mut sq = StoreQueue::new(8);
        sq.allocate(1, 0x10);
        sq.allocate(3, 0x14);
        sq.allocate(5, 0x18);
        sq.set_addr(1, r(100));
        sq.set_addr(3, r(100));
        sq.set_addr(5, r(200));
        assert_eq!(
            sq.forward_source(4, r(100)),
            Forward::FromStore { store_seq: 3 }
        );
        assert_eq!(
            sq.forward_source(2, r(100)),
            Forward::FromStore { store_seq: 1 }
        );
        assert_eq!(sq.forward_source(6, r(300)), Forward::FromCache);
        assert_eq!(sq.forwards, 2);
    }

    #[test]
    fn unknown_store_addresses_do_not_forward() {
        let mut sq = StoreQueue::new(8);
        sq.allocate(1, 0x10);
        assert_eq!(sq.forward_source(2, r(100)), Forward::FromCache);
    }

    #[test]
    fn violation_detected_for_early_load() {
        let mut lq = LoadQueue::new(8);
        lq.allocate(4, 0x20);
        lq.set_executed(4, r(100), None); // read from cache
                                          // Store seq 2 later resolves to the same address → violation.
        assert_eq!(lq.violation_on_store(2, r(100)), Some((4, 0x20)));
        assert_eq!(lq.violations, 1);
    }

    #[test]
    fn no_violation_when_load_forwarded_from_younger_store() {
        let mut lq = LoadQueue::new(8);
        lq.allocate(4, 0x20);
        // Load got its value from store seq 3 (younger than the resolving
        // store seq 2), so the value is correct.
        lq.set_executed(4, r(100), Some(3));
        assert_eq!(lq.violation_on_store(2, r(100)), None);
    }

    #[test]
    fn violation_when_load_forwarded_from_older_store() {
        let mut lq = LoadQueue::new(8);
        lq.allocate(4, 0x20);
        // Load forwarded from store 1, but store 2 (between 1 and 4) now
        // resolves to the same address: the load read a stale value.
        lq.set_executed(4, r(100), Some(1));
        assert_eq!(lq.violation_on_store(2, r(100)), Some((4, 0x20)));
    }

    #[test]
    fn violation_picks_oldest_offending_load() {
        let mut lq = LoadQueue::new(8);
        lq.allocate(4, 0x20);
        lq.allocate(6, 0x24);
        lq.set_executed(4, r(100), None);
        lq.set_executed(6, r(100), None);
        assert_eq!(lq.violation_on_store(2, r(100)).unwrap().0, 4);
    }

    #[test]
    fn flush_after_removes_younger_entries() {
        let mut sq = StoreQueue::new(8);
        sq.allocate(1, 0);
        sq.allocate(3, 0);
        sq.allocate(5, 0);
        sq.flush_after(3);
        assert_eq!(sq.len(), 2);
        assert!(sq.get(5).is_none());

        let mut lq = LoadQueue::new(8);
        lq.allocate(2, 0);
        lq.allocate(4, 0);
        lq.flush_after(2);
        assert_eq!(lq.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut sq = StoreQueue::new(2);
        assert!(sq.allocate(1, 0));
        assert!(sq.allocate(2, 0));
        assert!(!sq.allocate(3, 0));
        sq.release(1);
        assert!(sq.allocate(3, 0));
    }

    #[test]
    fn release_is_order_independent() {
        let mut lq = LoadQueue::new(4);
        lq.allocate(1, 0);
        lq.allocate(2, 0);
        lq.release(1);
        assert!(lq.get(1).is_none());
        assert!(lq.get(2).is_some());
    }

    #[test]
    fn masks_track_middle_release_and_flush() {
        // Resolve alternating stores, release one from the middle, and
        // check forwarding still sees exactly the surviving resolved ones.
        let mut sq = StoreQueue::new(8);
        for s in [2u64, 4, 6, 8] {
            sq.allocate(s, 0);
        }
        sq.set_addr(2, r(100));
        sq.set_addr(6, r(100));
        sq.release(4); // middle, unresolved — higher bits shift down
        assert_eq!(
            sq.forward_source(9, r(100)),
            Forward::FromStore { store_seq: 6 }
        );
        sq.release(6);
        assert_eq!(
            sq.forward_source(9, r(100)),
            Forward::FromStore { store_seq: 2 }
        );
        sq.flush_after(1);
        assert_eq!(sq.forward_source(9, r(100)), Forward::FromCache);

        let mut lq = LoadQueue::new(8);
        for s in [3u64, 5, 7] {
            lq.allocate(s, s);
        }
        lq.set_executed(5, r(100), None);
        lq.set_executed(7, r(100), None);
        lq.release(3); // oldest, not done
        assert_eq!(lq.violation_on_store(1, r(100)), Some((5, 5)));
        lq.flush_after(5);
        // 7 flushed; 5 remains the only done entry.
        assert_eq!(lq.violation_on_store(1, r(100)), Some((5, 5)));
        assert_eq!(lq.violation_on_store(6, r(100)), None);
    }

    #[test]
    #[should_panic(expected = "capacity exceeds")]
    fn oversized_queue_panics() {
        let _ = LoadQueue::new(129);
    }
}
