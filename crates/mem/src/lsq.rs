//! Load and store queues: store-to-load forwarding and memory-order
//! violation detection.
//!
//! μops are identified by their global **sequence number** (`seq`), a
//! monotonically increasing dynamic age assigned at rename; all ordering
//! queries compare sequence numbers.

use std::collections::VecDeque;

/// Byte range of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRange {
    /// Start byte address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u8,
}

impl MemRange {
    /// Whether two ranges overlap.
    pub fn overlaps(&self, other: &MemRange) -> bool {
        self.addr < other.addr + other.size as u64 && other.addr < self.addr + self.size as u64
    }
}

/// A store-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct StoreEntry {
    /// Global age.
    pub seq: u64,
    /// Program counter (for MDP training on violations).
    pub pc: u64,
    /// Address once the AGU has executed.
    pub range: Option<MemRange>,
    /// Whether the store has issued (address computed).
    pub issued: bool,
}

/// A load-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct LoadEntry {
    /// Global age.
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Address once executed.
    pub range: Option<MemRange>,
    /// Sequence of the store that forwarded the value, if any.
    pub forwarded_from: Option<u64>,
    /// Whether the load has obtained its value.
    pub done: bool,
}

/// Store-to-load forwarding outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Forward {
    /// No older overlapping store in the queue: read from the cache.
    FromCache,
    /// Value forwarded from the given store's queue entry.
    FromStore {
        /// Sequence number of the forwarding store.
        store_seq: u64,
    },
}

/// Bounded in-order store queue (Table I: 56 entries at 8-wide).
#[derive(Debug, Clone)]
pub struct StoreQueue {
    cap: usize,
    entries: VecDeque<StoreEntry>,
    /// Forwarding hits served.
    pub forwards: u64,
}

impl StoreQueue {
    /// Creates a store queue with `cap` entries.
    pub fn new(cap: usize) -> Self {
        StoreQueue {
            cap,
            entries: VecDeque::new(),
            forwards: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an allocation would succeed.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.cap
    }

    /// Allocates an entry at dispatch.
    ///
    /// Returns `false` (and does nothing) when the queue is full.
    pub fn allocate(&mut self, seq: u64, pc: u64) -> bool {
        if !self.has_space() {
            return false;
        }
        debug_assert!(self.entries.back().map(|e| e.seq < seq).unwrap_or(true));
        self.entries.push_back(StoreEntry {
            seq,
            pc,
            range: None,
            issued: false,
        });
        true
    }

    /// Records the address of `seq` when its AGU executes, marking it issued.
    pub fn set_addr(&mut self, seq: u64, range: MemRange) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.range = Some(range);
            e.issued = true;
        }
    }

    /// Finds the youngest store older than `load_seq` with a known
    /// overlapping address (forwarding source).
    pub fn forward_source(&mut self, load_seq: u64, range: MemRange) -> Forward {
        let hit = self
            .entries
            .iter()
            .rev()
            .filter(|e| e.seq < load_seq)
            .find(|e| e.range.map(|r| r.overlaps(&range)).unwrap_or(false));
        match hit {
            Some(e) => {
                self.forwards += 1;
                Forward::FromStore { store_seq: e.seq }
            }
            None => Forward::FromCache,
        }
    }

    /// Releases the entry for `seq` at commit.
    pub fn release(&mut self, seq: u64) {
        if let Some(pos) = self.entries.iter().position(|e| e.seq == seq) {
            self.entries.remove(pos);
        }
    }

    /// Drops all entries younger than `seq` (squash).
    pub fn flush_after(&mut self, seq: u64) {
        while let Some(back) = self.entries.back() {
            if back.seq > seq {
                self.entries.pop_back();
            } else {
                break;
            }
        }
    }

    /// Returns the entry for `seq`, if present.
    pub fn get(&self, seq: u64) -> Option<&StoreEntry> {
        self.entries.iter().find(|e| e.seq == seq)
    }
}

/// Bounded in-order load queue (Table I: 72 entries at 8-wide).
#[derive(Debug, Clone)]
pub struct LoadQueue {
    cap: usize,
    entries: VecDeque<LoadEntry>,
    /// Memory-order violations detected.
    pub violations: u64,
}

impl LoadQueue {
    /// Creates a load queue with `cap` entries.
    pub fn new(cap: usize) -> Self {
        LoadQueue {
            cap,
            entries: VecDeque::new(),
            violations: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an allocation would succeed.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.cap
    }

    /// Allocates an entry at dispatch; `false` when full.
    pub fn allocate(&mut self, seq: u64, pc: u64) -> bool {
        if !self.has_space() {
            return false;
        }
        debug_assert!(self.entries.back().map(|e| e.seq < seq).unwrap_or(true));
        self.entries.push_back(LoadEntry {
            seq,
            pc,
            range: None,
            forwarded_from: None,
            done: false,
        });
        true
    }

    /// Records a load's address, value provenance and completion.
    pub fn set_executed(&mut self, seq: u64, range: MemRange, forwarded_from: Option<u64>) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.range = Some(range);
            e.forwarded_from = forwarded_from;
            e.done = true;
        }
    }

    /// Checks for a memory-order violation when a store resolves its
    /// address: the oldest *executed* load younger than the store whose
    /// range overlaps and whose value did not come from this store or a
    /// younger one. Returns that load's `(seq, pc)`.
    pub fn violation_on_store(&mut self, store_seq: u64, range: MemRange) -> Option<(u64, u64)> {
        let hit = self
            .entries
            .iter()
            .filter(|e| e.seq > store_seq && e.done)
            .filter(|e| e.range.map(|r| r.overlaps(&range)).unwrap_or(false))
            .find(|e| e.forwarded_from.map(|f| f < store_seq).unwrap_or(true));
        if let Some(e) = hit {
            self.violations += 1;
            Some((e.seq, e.pc))
        } else {
            None
        }
    }

    /// Releases the entry for `seq` at commit.
    pub fn release(&mut self, seq: u64) {
        if let Some(pos) = self.entries.iter().position(|e| e.seq == seq) {
            self.entries.remove(pos);
        }
    }

    /// Drops all entries with `seq` strictly greater than the argument.
    pub fn flush_after(&mut self, seq: u64) {
        while let Some(back) = self.entries.back() {
            if back.seq > seq {
                self.entries.pop_back();
            } else {
                break;
            }
        }
    }

    /// Returns the entry for `seq`, if present.
    pub fn get(&self, seq: u64) -> Option<&LoadEntry> {
        self.entries.iter().find(|e| e.seq == seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(addr: u64) -> MemRange {
        MemRange { addr, size: 8 }
    }

    #[test]
    fn forwarding_picks_youngest_older_store() {
        let mut sq = StoreQueue::new(8);
        sq.allocate(1, 0x10);
        sq.allocate(3, 0x14);
        sq.allocate(5, 0x18);
        sq.set_addr(1, r(100));
        sq.set_addr(3, r(100));
        sq.set_addr(5, r(200));
        assert_eq!(
            sq.forward_source(4, r(100)),
            Forward::FromStore { store_seq: 3 }
        );
        assert_eq!(
            sq.forward_source(2, r(100)),
            Forward::FromStore { store_seq: 1 }
        );
        assert_eq!(sq.forward_source(6, r(300)), Forward::FromCache);
        assert_eq!(sq.forwards, 2);
    }

    #[test]
    fn unknown_store_addresses_do_not_forward() {
        let mut sq = StoreQueue::new(8);
        sq.allocate(1, 0x10);
        assert_eq!(sq.forward_source(2, r(100)), Forward::FromCache);
    }

    #[test]
    fn violation_detected_for_early_load() {
        let mut lq = LoadQueue::new(8);
        lq.allocate(4, 0x20);
        lq.set_executed(4, r(100), None); // read from cache
                                          // Store seq 2 later resolves to the same address → violation.
        assert_eq!(lq.violation_on_store(2, r(100)), Some((4, 0x20)));
        assert_eq!(lq.violations, 1);
    }

    #[test]
    fn no_violation_when_load_forwarded_from_younger_store() {
        let mut lq = LoadQueue::new(8);
        lq.allocate(4, 0x20);
        // Load got its value from store seq 3 (younger than the resolving
        // store seq 2), so the value is correct.
        lq.set_executed(4, r(100), Some(3));
        assert_eq!(lq.violation_on_store(2, r(100)), None);
    }

    #[test]
    fn violation_when_load_forwarded_from_older_store() {
        let mut lq = LoadQueue::new(8);
        lq.allocate(4, 0x20);
        // Load forwarded from store 1, but store 2 (between 1 and 4) now
        // resolves to the same address: the load read a stale value.
        lq.set_executed(4, r(100), Some(1));
        assert_eq!(lq.violation_on_store(2, r(100)), Some((4, 0x20)));
    }

    #[test]
    fn violation_picks_oldest_offending_load() {
        let mut lq = LoadQueue::new(8);
        lq.allocate(4, 0x20);
        lq.allocate(6, 0x24);
        lq.set_executed(4, r(100), None);
        lq.set_executed(6, r(100), None);
        assert_eq!(lq.violation_on_store(2, r(100)).unwrap().0, 4);
    }

    #[test]
    fn flush_after_removes_younger_entries() {
        let mut sq = StoreQueue::new(8);
        sq.allocate(1, 0);
        sq.allocate(3, 0);
        sq.allocate(5, 0);
        sq.flush_after(3);
        assert_eq!(sq.len(), 2);
        assert!(sq.get(5).is_none());

        let mut lq = LoadQueue::new(8);
        lq.allocate(2, 0);
        lq.allocate(4, 0);
        lq.flush_after(2);
        assert_eq!(lq.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut sq = StoreQueue::new(2);
        assert!(sq.allocate(1, 0));
        assert!(sq.allocate(2, 0));
        assert!(!sq.allocate(3, 0));
        sq.release(1);
        assert!(sq.allocate(3, 0));
    }

    #[test]
    fn release_is_order_independent() {
        let mut lq = LoadQueue::new(4);
        lq.allocate(1, 0);
        lq.allocate(2, 0);
        lq.release(1);
        assert!(lq.get(1).is_none());
        assert!(lq.get(2).is_some());
    }
}
