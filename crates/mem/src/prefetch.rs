//! Stride-based L1D prefetcher (Table I).
//!
//! Classic per-PC stride detection: a small table keyed by load PC tracks
//! the last address and stride; after two consecutive accesses with the
//! same stride the entry becomes confident and emits prefetch candidates
//! `degree` strides ahead.

/// Per-PC stride table entry.
#[derive(Debug, Clone, Copy)]
struct Entry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// A per-PC stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Entry>,
    degree: usize,
    /// Prefetch candidates emitted.
    pub issued: u64,
}

impl StridePrefetcher {
    /// Builds a prefetcher with `entries` table slots and lookahead
    /// `degree` (in strides).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize, degree: usize) -> Self {
        assert!(entries > 0, "prefetcher table must have entries");
        let e = Entry {
            pc: 0,
            last_addr: 0,
            stride: 0,
            confidence: 0,
            valid: false,
        };
        StridePrefetcher {
            table: vec![e; entries],
            degree,
            issued: 0,
        }
    }

    /// Observes a demand access `(pc, addr)` and returns the byte addresses
    /// to prefetch (empty when the stride is not yet confident or zero).
    pub fn observe(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        let idx = (pc as usize) % self.table.len();
        let e = &mut self.table[idx];
        if !e.valid || e.pc != pc {
            *e = Entry {
                pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return Vec::new();
        }
        let stride = addr as i64 - e.last_addr as i64;
        if stride == e.stride && stride != 0 {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_addr = addr;
        if e.confidence >= 2 {
            let mut out = Vec::with_capacity(self.degree);
            for k in 1..=self.degree as i64 {
                let target = addr as i64 + e.stride * k;
                if target >= 0 {
                    out.push(target as u64);
                }
            }
            self.issued += out.len() as u64;
            out
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stride_becomes_confident_after_three_repeats() {
        let mut p = StridePrefetcher::new(64, 2);
        assert!(p.observe(0x40, 1000).is_empty()); // learn addr
        assert!(p.observe(0x40, 1064).is_empty()); // learn stride
        assert!(p.observe(0x40, 1128).is_empty()); // confidence 1
        let pf = p.observe(0x40, 1192); // confidence 2 → fire
        assert_eq!(pf, vec![1256, 1320]);
        assert_eq!(p.issued, 2);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(64, 1);
        p.observe(0x40, 1000);
        p.observe(0x40, 1064);
        p.observe(0x40, 1128);
        p.observe(0x40, 1192);
        assert!(!p.observe(0x40, 1256).is_empty());
        // Irregular jump: must re-learn.
        assert!(p.observe(0x40, 5000).is_empty());
        assert!(p.observe(0x40, 5064).is_empty());
        assert!(p.observe(0x40, 5128).is_empty());
    }

    #[test]
    fn zero_stride_never_fires() {
        let mut p = StridePrefetcher::new(64, 2);
        for _ in 0..10 {
            assert!(p.observe(0x40, 1000).is_empty());
        }
    }

    #[test]
    fn pc_aliasing_replaces_entry() {
        let mut p = StridePrefetcher::new(1, 1);
        p.observe(0x40, 1000);
        p.observe(0x41, 2000); // evicts 0x40's entry
        assert!(p.observe(0x40, 1064).is_empty()); // re-learns from scratch
    }

    #[test]
    fn negative_stride_prefetches_downward() {
        let mut p = StridePrefetcher::new(64, 1);
        p.observe(0x40, 4096);
        p.observe(0x40, 4032);
        p.observe(0x40, 3968);
        let pf = p.observe(0x40, 3904);
        assert_eq!(pf, vec![3840]);
    }
}
