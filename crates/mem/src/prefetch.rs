//! Stride-based L1D prefetcher (Table I).
//!
//! Classic per-PC stride detection: a small table keyed by load PC tracks
//! the last address and stride; after two consecutive accesses with the
//! same stride the entry becomes confident and emits prefetch candidates
//! `degree` strides ahead. Candidates are written into a caller-provided
//! fixed buffer ([`MAX_PF_DEGREE`] slots) so the per-load hot path never
//! touches the heap.

/// Maximum prefetch candidates one observation can emit — the size of the
/// out-buffer callers hand to [`StridePrefetcher::observe`].
pub const MAX_PF_DEGREE: usize = 8;

/// Per-PC stride table entry.
#[derive(Debug, Clone, Copy)]
struct Entry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// A per-PC stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Entry>,
    degree: usize,
    /// Prefetch candidates emitted.
    pub issued: u64,
}

impl StridePrefetcher {
    /// Builds a prefetcher with `entries` table slots and lookahead
    /// `degree` (in strides).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `degree` exceeds [`MAX_PF_DEGREE`].
    pub fn new(entries: usize, degree: usize) -> Self {
        assert!(entries > 0, "prefetcher table must have entries");
        assert!(
            degree <= MAX_PF_DEGREE,
            "prefetch degree {degree} exceeds the fixed out-buffer ({MAX_PF_DEGREE})"
        );
        let e = Entry {
            pc: 0,
            last_addr: 0,
            stride: 0,
            confidence: 0,
            valid: false,
        };
        StridePrefetcher {
            table: vec![e; entries],
            degree,
            issued: 0,
        }
    }

    /// Observes a demand access `(pc, addr)`, writes the byte addresses to
    /// prefetch into `out`, and returns how many were emitted (zero when
    /// the stride is not yet confident or zero).
    pub fn observe(&mut self, pc: u64, addr: u64, out: &mut [u64; MAX_PF_DEGREE]) -> usize {
        let idx = (pc as usize) % self.table.len();
        let e = &mut self.table[idx];
        if !e.valid || e.pc != pc {
            *e = Entry {
                pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return 0;
        }
        let stride = addr as i64 - e.last_addr as i64;
        if stride == e.stride && stride != 0 {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_addr = addr;
        if e.confidence < 2 {
            return 0;
        }
        let mut n = 0;
        for k in 1..=self.degree as i64 {
            let target = addr as i64 + e.stride * k;
            if target >= 0 {
                out[n] = target as u64;
                n += 1;
            }
        }
        self.issued += n as u64;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test shim collecting the out-buffer into a `Vec`.
    fn obs(p: &mut StridePrefetcher, pc: u64, addr: u64) -> Vec<u64> {
        let mut buf = [0u64; MAX_PF_DEGREE];
        let n = p.observe(pc, addr, &mut buf);
        buf[..n].to_vec()
    }

    #[test]
    fn constant_stride_becomes_confident_after_three_repeats() {
        let mut p = StridePrefetcher::new(64, 2);
        assert!(obs(&mut p, 0x40, 1000).is_empty()); // learn addr
        assert!(obs(&mut p, 0x40, 1064).is_empty()); // learn stride
        assert!(obs(&mut p, 0x40, 1128).is_empty()); // confidence 1
        let pf = obs(&mut p, 0x40, 1192); // confidence 2 → fire
        assert_eq!(pf, vec![1256, 1320]);
        assert_eq!(p.issued, 2);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(64, 1);
        obs(&mut p, 0x40, 1000);
        obs(&mut p, 0x40, 1064);
        obs(&mut p, 0x40, 1128);
        obs(&mut p, 0x40, 1192);
        assert!(!obs(&mut p, 0x40, 1256).is_empty());
        // Irregular jump: must re-learn.
        assert!(obs(&mut p, 0x40, 5000).is_empty());
        assert!(obs(&mut p, 0x40, 5064).is_empty());
        assert!(obs(&mut p, 0x40, 5128).is_empty());
    }

    #[test]
    fn zero_stride_never_fires() {
        let mut p = StridePrefetcher::new(64, 2);
        for _ in 0..10 {
            assert!(obs(&mut p, 0x40, 1000).is_empty());
        }
    }

    #[test]
    fn pc_aliasing_replaces_entry() {
        let mut p = StridePrefetcher::new(1, 1);
        obs(&mut p, 0x40, 1000);
        obs(&mut p, 0x41, 2000); // evicts 0x40's entry
        assert!(obs(&mut p, 0x40, 1064).is_empty()); // re-learns from scratch
    }

    #[test]
    fn negative_stride_prefetches_downward() {
        let mut p = StridePrefetcher::new(64, 1);
        obs(&mut p, 0x40, 4096);
        obs(&mut p, 0x40, 4032);
        obs(&mut p, 0x40, 3968);
        let pf = obs(&mut p, 0x40, 3904);
        assert_eq!(pf, vec![3840]);
    }

    #[test]
    fn max_degree_fills_the_whole_buffer() {
        let mut p = StridePrefetcher::new(64, MAX_PF_DEGREE);
        let mut buf = [0u64; MAX_PF_DEGREE];
        for i in 0..3u64 {
            assert_eq!(p.observe(0x40, 1000 + i * 64, &mut buf), 0);
        }
        let n = p.observe(0x40, 1000 + 3 * 64, &mut buf);
        assert_eq!(n, MAX_PF_DEGREE);
        assert_eq!(buf[0], 1000 + 4 * 64);
        assert_eq!(buf[MAX_PF_DEGREE - 1], 1000 + 11 * 64);
    }

    #[test]
    #[should_panic(expected = "exceeds the fixed out-buffer")]
    fn oversized_degree_panics() {
        let _ = StridePrefetcher::new(64, MAX_PF_DEGREE + 1);
    }
}
