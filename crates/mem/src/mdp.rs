//! Store-set memory dependence prediction (Chrysos & Emer \[11\]).
//!
//! Two structures, exactly as in the paper (Table I: 1024-entry SSIT,
//! 7-bit SSID):
//!
//! * **SSIT** (store-set identifier table): indexed by instruction PC,
//!   holds the SSID of the store set the instruction belongs to. Trained
//!   on memory-order violations.
//! * **LFST** (last fetched store table): indexed by SSID, holds the
//!   sequence number of the most recently fetched, still-in-flight store
//!   of the set. Consumer loads/stores of the set serialize behind it.
//!
//! Ballerino extends each LFST entry with *steering information* (P-IQ
//! index + Reserved flag, §IV-C); that extension lives in
//! `ballerino-core`, keyed by the [`SsId`] values this module hands out.

/// A store-set identifier (7 bits in Table I → 128 sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SsId(pub u8);

/// MDP configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdpConfig {
    /// Number of SSIT entries (PC-indexed).
    pub ssit_entries: usize,
    /// Number of distinct SSIDs (LFST entries).
    pub num_ssids: usize,
}

impl Default for MdpConfig {
    fn default() -> Self {
        MdpConfig {
            ssit_entries: 1024,
            num_ssids: 128,
        }
    }
}

/// What the MDP tells rename about a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MdpAdvice {
    /// The store set the μop belongs to, if any.
    pub ssid: Option<SsId>,
    /// The in-flight store (by sequence number) the μop must wait for
    /// (issue-after), if any.
    pub wait_for: Option<u64>,
}

/// The store-set predictor.
#[derive(Debug, Clone)]
pub struct Mdp {
    cfg: MdpConfig,
    ssit: Vec<Option<SsId>>,
    lfst: Vec<Option<u64>>,
    next_ssid: usize,
    /// Violations used for training.
    pub trainings: u64,
    /// Loads/stores serialized by a prediction.
    pub serializations: u64,
}

impl Mdp {
    /// Builds an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero entries.
    pub fn new(cfg: MdpConfig) -> Self {
        assert!(
            cfg.ssit_entries > 0 && cfg.num_ssids > 0,
            "MDP tables must be non-empty"
        );
        let ssit = vec![None; cfg.ssit_entries];
        let lfst = vec![None; cfg.num_ssids];
        Mdp {
            cfg,
            ssit,
            lfst,
            next_ssid: 0,
            trainings: 0,
            serializations: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MdpConfig {
        &self.cfg
    }

    fn ssit_index(&self, pc: u64) -> usize {
        (pc as usize / 4) % self.cfg.ssit_entries
    }

    /// Called when a **load** is renamed. Returns the load's store set and
    /// the store it should wait for.
    pub fn on_rename_load(&mut self, pc: u64) -> MdpAdvice {
        let idx = self.ssit_index(pc);
        match self.ssit[idx] {
            Some(ssid) => {
                let wait_for = self.lfst[ssid.0 as usize];
                if wait_for.is_some() {
                    self.serializations += 1;
                }
                MdpAdvice {
                    ssid: Some(ssid),
                    wait_for,
                }
            }
            None => MdpAdvice::default(),
        }
    }

    /// Called when a **store** is renamed. Returns the store's set and the
    /// previous in-flight store of the set (store-store serialization),
    /// then records this store as the set's last fetched store.
    pub fn on_rename_store(&mut self, pc: u64, seq: u64) -> MdpAdvice {
        let idx = self.ssit_index(pc);
        match self.ssit[idx] {
            Some(ssid) => {
                let prev = self.lfst[ssid.0 as usize];
                if prev.is_some() {
                    self.serializations += 1;
                }
                self.lfst[ssid.0 as usize] = Some(seq);
                MdpAdvice {
                    ssid: Some(ssid),
                    wait_for: prev,
                }
            }
            None => MdpAdvice::default(),
        }
    }

    /// Called when the store `seq` of set `ssid` issues: releases the LFST
    /// entry if this store performed its most recent update.
    pub fn on_store_issued(&mut self, ssid: SsId, seq: u64) {
        let e = &mut self.lfst[ssid.0 as usize];
        if *e == Some(seq) {
            *e = None;
        }
    }

    /// Trains the predictor on a memory-order violation between
    /// `load_pc` and `store_pc` (Chrysos-Emer assignment rules).
    pub fn on_violation(&mut self, load_pc: u64, store_pc: u64) {
        self.trainings += 1;
        let li = self.ssit_index(load_pc);
        let si = self.ssit_index(store_pc);
        match (self.ssit[li], self.ssit[si]) {
            (None, None) => {
                let ssid = self.alloc_ssid();
                self.ssit[li] = Some(ssid);
                self.ssit[si] = Some(ssid);
            }
            (Some(l), None) => self.ssit[si] = Some(l),
            (None, Some(s)) => self.ssit[li] = Some(s),
            (Some(l), Some(s)) => {
                // Merge: both adopt the smaller SSID.
                let m = SsId(l.0.min(s.0));
                self.ssit[li] = Some(m);
                self.ssit[si] = Some(m);
            }
        }
    }

    /// Invalidates LFST entries pointing at squashed stores (younger than
    /// `seq`).
    pub fn flush_after(&mut self, seq: u64) {
        for e in &mut self.lfst {
            if let Some(s) = *e {
                if s > seq {
                    *e = None;
                }
            }
        }
    }

    fn alloc_ssid(&mut self) -> SsId {
        let id = SsId((self.next_ssid % self.cfg.num_ssids) as u8);
        self.next_ssid += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_pcs_get_no_advice() {
        let mut m = Mdp::new(MdpConfig::default());
        assert_eq!(m.on_rename_load(0x100), MdpAdvice::default());
        assert_eq!(m.on_rename_store(0x200, 5), MdpAdvice::default());
    }

    #[test]
    fn violation_creates_store_set_and_serializes_future_pair() {
        let mut m = Mdp::new(MdpConfig::default());
        m.on_violation(0x100, 0x200);
        // Next iteration: store fetched first, then load.
        let s = m.on_rename_store(0x200, 10);
        assert!(s.ssid.is_some());
        assert_eq!(s.wait_for, None);
        let l = m.on_rename_load(0x100);
        assert_eq!(l.ssid, s.ssid);
        assert_eq!(l.wait_for, Some(10));
        assert_eq!(m.serializations, 1);
    }

    #[test]
    fn store_issue_releases_lfst() {
        let mut m = Mdp::new(MdpConfig::default());
        m.on_violation(0x100, 0x200);
        let s = m.on_rename_store(0x200, 10);
        m.on_store_issued(s.ssid.unwrap(), 10);
        let l = m.on_rename_load(0x100);
        assert_eq!(l.wait_for, None);
    }

    #[test]
    fn newer_store_update_wins_lfst() {
        let mut m = Mdp::new(MdpConfig::default());
        m.on_violation(0x100, 0x200);
        let s1 = m.on_rename_store(0x200, 10);
        let s2 = m.on_rename_store(0x200, 20);
        assert_eq!(s2.wait_for, Some(10)); // store-store serialization
                                           // Old store issuing must NOT release the entry (20 owns it now).
        m.on_store_issued(s1.ssid.unwrap(), 10);
        let l = m.on_rename_load(0x100);
        assert_eq!(l.wait_for, Some(20));
    }

    #[test]
    fn merge_assigns_common_ssid() {
        let mut m = Mdp::new(MdpConfig::default());
        m.on_violation(0x100, 0x200); // set A
        m.on_violation(0x300, 0x400); // set B
        m.on_violation(0x100, 0x400); // merge A and B pcs
        let a = m.on_rename_store(0x400, 1).ssid.unwrap();
        let b = m.on_rename_load(0x100).ssid.unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn flush_clears_squashed_store_pointers() {
        let mut m = Mdp::new(MdpConfig::default());
        m.on_violation(0x100, 0x200);
        m.on_rename_store(0x200, 50);
        m.flush_after(40); // store 50 squashed
        assert_eq!(m.on_rename_load(0x100).wait_for, None);
    }

    #[test]
    fn ssid_allocation_wraps_within_capacity() {
        let mut m = Mdp::new(MdpConfig {
            ssit_entries: 1024,
            num_ssids: 4,
        });
        for i in 0..10u64 {
            m.on_violation(0x1000 + i * 8, 0x8000 + i * 8);
        }
        // All handed-out SSIDs are within range.
        for i in 0..10u64 {
            let a = m.on_rename_load(0x1000 + i * 8);
            if let Some(ssid) = a.ssid {
                assert!((ssid.0 as usize) < 4);
            }
        }
    }
}
