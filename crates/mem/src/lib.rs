//! # ballerino-mem
//!
//! The memory-system substrate of the Ballerino reproduction:
//!
//! * [`cache`] — set-associative caches with per-line fill timestamps and
//!   MSHR-limited outstanding misses (L1I/L1D/L2/L3 of Table I),
//! * [`dram`] — a bank/row-state DDR4-lite timing model standing in for the
//!   paper's Ramulator integration,
//! * [`prefetch`] — the stride-based L1D prefetcher of Table I,
//! * [`hierarchy`] — the composed L1→L2→L3→DRAM walk with prefetch hooks,
//! * [`lsq`] — load/store queues with store-to-load forwarding and memory
//!   order violation detection,
//! * [`mdp`] — store-set memory dependence prediction (SSIT + LFST).
//!
//! All times are in **core cycles**; callers pass the current cycle and get
//! back an absolute completion cycle. The model is deterministic: the same
//! request sequence always produces the same timings.
//!
//! The per-access hot path (flat SoA cache arrays, MRU fast hits, the
//! hierarchy line filter, slot-array MSHRs) has a frozen seed-exact
//! counterpart selected by [`Hierarchy::with_naive_lookup`] or the
//! `BALLERINO_MEM_NAIVE` environment variable; `tests/hierarchy_equiv.rs`
//! pins the two paths to identical timings, levels, and statistics.

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod hierarchy;
pub mod lsq;
pub mod mdp;
pub mod mshr;
pub mod prefetch;

pub use cache::Cache;
pub use config::{CacheConfig, DramConfig, MemConfig};
pub use dram::Dram;
pub use hierarchy::{AccessKind, Hierarchy, HitLevel, MemStats};
pub use lsq::{LoadQueue, StoreQueue};
pub use mdp::{Mdp, MdpConfig, SsId};
pub use mshr::MshrFile;
pub use prefetch::{StridePrefetcher, MAX_PF_DEGREE};

/// Cache line size in bytes, fixed across the hierarchy.
pub const LINE_BYTES: u64 = 64;

/// Converts a byte address to a line address.
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}
