//! Miss-status holding registers (MSHRs).
//!
//! Each cache level owns an [`MshrFile`] bounding the number of outstanding
//! misses. A new miss to a line already being fetched *merges* into the
//! existing entry (completing when it fills); when all MSHRs are busy the
//! requester waits until the earliest fill frees one.

/// A bounded file of outstanding-miss registers.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// (line address, fill completion cycle)
    entries: Vec<(u64, u64)>,
    /// Statistics: merged (secondary) misses.
    pub merges: u64,
    /// Statistics: cycles spent waiting for a free MSHR (sum over requests).
    pub stall_cycles: u64,
}

/// Result of claiming an MSHR for a missing line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrClaim {
    /// The line is already in flight; it fills at the given cycle.
    Merged {
        /// Absolute cycle at which the in-flight fill completes.
        fill: u64,
    },
    /// A new MSHR was reserved; the miss may start at the given cycle
    /// (later than the request when the file was full).
    Allocated {
        /// Earliest cycle the miss request can be sent downstream.
        start: u64,
    },
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile {
            capacity,
            entries: Vec::new(),
            merges: 0,
            stall_cycles: 0,
        }
    }

    /// Number of live entries at `cycle` (after retiring filled ones).
    pub fn occupancy(&mut self, cycle: u64) -> usize {
        self.retire(cycle);
        self.entries.len()
    }

    fn retire(&mut self, cycle: u64) {
        self.entries.retain(|&(_, fill)| fill > cycle);
    }

    /// Claims an MSHR for `line` at `cycle`.
    ///
    /// Returns [`MshrClaim::Merged`] if the line is already outstanding
    /// (the secondary miss completes at the primary's fill time), otherwise
    /// [`MshrClaim::Allocated`] with the possibly-delayed start cycle. After
    /// an allocation the caller **must** call [`MshrFile::record_fill`] to
    /// set the entry's fill time.
    pub fn claim(&mut self, line: u64, cycle: u64) -> MshrClaim {
        self.retire(cycle);
        if let Some(&(_, fill)) = self.entries.iter().find(|&&(l, _)| l == line) {
            self.merges += 1;
            return MshrClaim::Merged { fill };
        }
        let start = if self.entries.len() < self.capacity {
            cycle
        } else {
            // Wait for the earliest outstanding fill to free a register.
            let earliest = self.entries.iter().map(|&(_, f)| f).min().unwrap_or(cycle);
            self.stall_cycles += earliest.saturating_sub(cycle);
            self.retire(earliest);
            earliest
        };
        // Reserve a slot with a placeholder fill; record_fill overwrites it.
        self.entries.push((line, u64::MAX));
        MshrClaim::Allocated { start }
    }

    /// Records the fill completion time of the most recent allocation for
    /// `line`.
    pub fn record_fill(&mut self, line: u64, fill: u64) {
        if let Some(e) = self.entries.iter_mut().rev().find(|e| e.0 == line) {
            e.1 = fill;
        }
    }

    /// Earliest fill completion strictly after `cycle`, if any miss is
    /// outstanding. Placeholder entries awaiting [`MshrFile::record_fill`]
    /// are ignored (their real fill time is always recorded in the same
    /// hierarchy walk that allocated them).
    pub fn next_fill_cycle(&self, cycle: u64) -> Option<u64> {
        self.entries
            .iter()
            .map(|&(_, fill)| fill)
            .filter(|&f| f > cycle && f != u64::MAX)
            .min()
    }

    /// Drops all entries (used on machine reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_miss_allocates_immediately() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.claim(10, 100), MshrClaim::Allocated { start: 100 });
        m.record_fill(10, 200);
        assert_eq!(m.occupancy(100), 1);
    }

    #[test]
    fn same_line_merges_into_primary_miss() {
        let mut m = MshrFile::new(2);
        m.claim(10, 100);
        m.record_fill(10, 200);
        assert_eq!(m.claim(10, 150), MshrClaim::Merged { fill: 200 });
        assert_eq!(m.merges, 1);
        assert_eq!(m.occupancy(150), 1);
    }

    #[test]
    fn full_file_delays_start_until_earliest_fill() {
        let mut m = MshrFile::new(1);
        m.claim(10, 100);
        m.record_fill(10, 180);
        match m.claim(11, 120) {
            MshrClaim::Allocated { start } => assert_eq!(start, 180),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.stall_cycles, 60);
    }

    #[test]
    fn entries_retire_after_fill() {
        let mut m = MshrFile::new(1);
        m.claim(10, 100);
        m.record_fill(10, 150);
        assert_eq!(m.occupancy(151), 0);
        // New miss allocates immediately now.
        assert_eq!(m.claim(11, 160), MshrClaim::Allocated { start: 160 });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
