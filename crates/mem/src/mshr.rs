//! Miss-status holding registers (MSHRs).
//!
//! Each cache level owns an [`MshrFile`] bounding the number of outstanding
//! misses. A new miss to a line already being fetched *merges* into the
//! existing entry (completing when it fills); when all MSHRs are busy the
//! requester waits until the earliest fill frees one.
//!
//! Storage is a fixed-capacity slot array (`lines` / `fills`) with an
//! occupancy bitmask: claims take the lowest free bit in O(1), releases
//! clear a bit, and the per-edge `Vec::retain` compaction of the seed
//! implementation is gone — retiring a filled entry is a single bit clear
//! and slots are reused forever without reallocation.

/// A bounded file of outstanding-miss registers.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// Line address per slot (meaningful where the occupancy bit is set).
    lines: Box<[u64]>,
    /// Fill completion per slot; `u64::MAX` is the placeholder an
    /// allocation holds until [`MshrFile::record_fill`].
    fills: Box<[u64]>,
    /// Occupancy bitmask: bit `i` set ⇔ slot `i` holds a live miss.
    occ: u64,
    /// Statistics: merged (secondary) misses.
    pub merges: u64,
    /// Statistics: cycles spent waiting for a free MSHR (sum over requests).
    pub stall_cycles: u64,
}

/// Result of claiming an MSHR for a missing line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrClaim {
    /// The line is already in flight; it fills at the given cycle.
    Merged {
        /// Absolute cycle at which the in-flight fill completes.
        fill: u64,
    },
    /// A new MSHR was reserved; the miss may start at the given cycle
    /// (later than the request when the file was full).
    Allocated {
        /// Earliest cycle the miss request can be sent downstream.
        start: u64,
    },
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds 64 (the occupancy bitmask
    /// is a single word; Table I tops out at 64 L3 MSHRs).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        assert!(
            capacity <= 64,
            "MSHR slot file supports at most 64 registers"
        );
        MshrFile {
            capacity,
            lines: vec![0; capacity].into_boxed_slice(),
            fills: vec![0; capacity].into_boxed_slice(),
            occ: 0,
            merges: 0,
            stall_cycles: 0,
        }
    }

    /// Fixed number of registers in the file.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries at `cycle` (after retiring filled ones).
    pub fn occupancy(&mut self, cycle: u64) -> usize {
        self.retire(cycle);
        self.occ.count_ones() as usize
    }

    fn retire(&mut self, cycle: u64) {
        let mut m = self.occ;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.fills[i] <= cycle {
                self.occ &= !(1u64 << i);
            }
        }
    }

    /// Claims an MSHR for `line` at `cycle`.
    ///
    /// Returns [`MshrClaim::Merged`] if the line is already outstanding
    /// (the secondary miss completes at the primary's fill time), otherwise
    /// [`MshrClaim::Allocated`] with the possibly-delayed start cycle. After
    /// an allocation the caller **must** call [`MshrFile::record_fill`] to
    /// set the entry's fill time.
    pub fn claim(&mut self, line: u64, cycle: u64) -> MshrClaim {
        // Single pass: retire filled entries and look for a live merge
        // candidate at once. A stale entry for the same line retires
        // rather than merging, exactly as the two-pass retire-then-scan
        // would have decided; remaining stale bits after an early merge
        // return are cleaned up by the next claim or occupancy query.
        let mut m = self.occ;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.fills[i] <= cycle {
                self.occ &= !(1u64 << i);
            } else if self.lines[i] == line {
                self.merges += 1;
                return MshrClaim::Merged {
                    fill: self.fills[i],
                };
            }
        }
        let start = if (self.occ.count_ones() as usize) < self.capacity {
            cycle
        } else {
            // Wait for the earliest outstanding fill to free a register.
            let mut earliest = u64::MAX;
            let mut m = self.occ;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                earliest = earliest.min(self.fills[i]);
            }
            self.stall_cycles += earliest.saturating_sub(cycle);
            self.retire(earliest);
            earliest
        };
        let slot = (!self.occ).trailing_zeros() as usize;
        self.lines[slot] = line;
        // Placeholder fill; record_fill overwrites it.
        self.fills[slot] = u64::MAX;
        self.occ |= 1u64 << slot;
        MshrClaim::Allocated { start }
    }

    /// Records the fill completion time of the outstanding allocation for
    /// `line` (at most one can exist: duplicates merge at claim time).
    pub fn record_fill(&mut self, line: u64, fill: u64) {
        let mut m = self.occ;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.lines[i] == line {
                self.fills[i] = fill;
                return;
            }
        }
    }

    /// Earliest fill completion strictly after `cycle`, if any miss is
    /// outstanding. Placeholder entries awaiting [`MshrFile::record_fill`]
    /// are ignored (their real fill time is always recorded in the same
    /// hierarchy walk that allocated them).
    pub fn next_fill_cycle(&self, cycle: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut m = self.occ;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            let f = self.fills[i];
            if f > cycle && f != u64::MAX {
                best = Some(best.map_or(f, |b: u64| b.min(f)));
            }
        }
        best
    }

    /// Drops all entries (used on machine reset).
    pub fn clear(&mut self) {
        self.occ = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_miss_allocates_immediately() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.claim(10, 100), MshrClaim::Allocated { start: 100 });
        m.record_fill(10, 200);
        assert_eq!(m.occupancy(100), 1);
    }

    #[test]
    fn same_line_merges_into_primary_miss() {
        let mut m = MshrFile::new(2);
        m.claim(10, 100);
        m.record_fill(10, 200);
        assert_eq!(m.claim(10, 150), MshrClaim::Merged { fill: 200 });
        assert_eq!(m.merges, 1);
        assert_eq!(m.occupancy(150), 1);
    }

    #[test]
    fn full_file_delays_start_until_earliest_fill() {
        let mut m = MshrFile::new(1);
        m.claim(10, 100);
        m.record_fill(10, 180);
        match m.claim(11, 120) {
            MshrClaim::Allocated { start } => assert_eq!(start, 180),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.stall_cycles, 60);
    }

    #[test]
    fn entries_retire_after_fill() {
        let mut m = MshrFile::new(1);
        m.claim(10, 100);
        m.record_fill(10, 150);
        assert_eq!(m.occupancy(151), 0);
        // New miss allocates immediately now.
        assert_eq!(m.claim(11, 160), MshrClaim::Allocated { start: 160 });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn oversized_capacity_panics() {
        let _ = MshrFile::new(65);
    }

    #[test]
    fn full_then_drained_file_reuses_slots_without_growth() {
        let cap = 4usize;
        let mut m = MshrFile::new(cap);
        for round in 0..256u64 {
            let base = round * 1_000;
            for k in 0..cap as u64 {
                match m.claim(base + k, base) {
                    MshrClaim::Allocated { start } => {
                        assert_eq!(start, base, "drained file must not stall");
                        m.record_fill(base + k, base + 10 + k);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(m.occupancy(base), cap, "file full");
            assert_eq!(m.capacity(), cap, "slot storage must never grow");
            // Past the last fill, every slot is free again.
            assert_eq!(m.occupancy(base + 20), 0, "file drained");
            assert_eq!(m.next_fill_cycle(base + 20), None);
        }
    }

    #[test]
    fn next_fill_skips_placeholders_and_past_fills() {
        let mut m = MshrFile::new(4);
        m.claim(1, 100);
        m.record_fill(1, 150);
        m.claim(2, 100);
        m.record_fill(2, 130);
        m.claim(3, 100); // placeholder, no record_fill yet
        assert_eq!(m.next_fill_cycle(100), Some(130));
        assert_eq!(m.next_fill_cycle(140), Some(150));
        assert_eq!(m.next_fill_cycle(150), None);
    }
}
