//! Memory-system configuration (Table I).

/// Configuration of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit latency in core cycles.
    pub latency: u64,
    /// Number of miss-status holding registers.
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets for 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / crate::LINE_BYTES;
        let sets = lines as usize / self.ways;
        assert!(
            sets > 0 && sets * self.ways == lines as usize,
            "cache geometry must divide evenly: {self:?}"
        );
        sets
    }

    /// Table I L1 data/instruction cache: 32 KiB, 8-way, 4-cycle, 8 MSHRs.
    pub fn l1() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            latency: 4,
            mshrs: 8,
        }
    }

    /// Table I L2: 256 KiB, 8-way, 12-cycle, 32 MSHRs.
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            ways: 8,
            latency: 12,
            mshrs: 32,
        }
    }

    /// Table I L3: 1 MiB, 4-way, 42-cycle, 64 MSHRs.
    pub fn l3() -> Self {
        CacheConfig {
            size_bytes: 1024 * 1024,
            ways: 4,
            latency: 42,
            mshrs: 64,
        }
    }
}

/// DDR4-lite DRAM timing configuration, in core cycles.
///
/// Defaults approximate one channel/one rank of DDR4-2400 behind a 3.4 GHz
/// core: a row-buffer hit costs ~`cas`, a closed-row access adds
/// activate, and a row conflict adds precharge + activate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks (single channel, single rank; Table I).
    pub banks: usize,
    /// Row size in bytes (determines row-buffer locality).
    pub row_bytes: u64,
    /// Column access latency (row-buffer hit), core cycles.
    pub cas: u64,
    /// Row activate latency, core cycles.
    pub rcd: u64,
    /// Precharge latency, core cycles.
    pub rp: u64,
    /// Data-bus occupancy per 64-byte transfer, core cycles.
    pub burst: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // DDR4-2400 behind a 3.4GHz core: tCAS ≈ tRCD ≈ tRP ≈ 13.75ns ≈ 47
        // core cycles; burst of 8 @ 1200MHz ≈ 3.3ns ≈ 11 core cycles.
        DramConfig {
            banks: 16,
            row_bytes: 8192,
            cas: 47,
            rcd: 47,
            rp: 47,
            burst: 11,
        }
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L2 unified cache.
    pub l2: CacheConfig,
    /// L3 last-level cache.
    pub l3: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Whether the stride prefetcher is enabled (Table I: yes).
    pub prefetch: bool,
    /// Prefetch degree (lines fetched ahead on a confident stride). Must
    /// not exceed [`crate::prefetch::MAX_PF_DEGREE`]: prefetch candidates
    /// travel through a fixed stack buffer, never the heap.
    pub prefetch_degree: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1d: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            l3: CacheConfig::l3(),
            dram: DramConfig::default(),
            prefetch: true,
            prefetch_degree: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_geometries_divide_evenly() {
        assert_eq!(CacheConfig::l1().num_sets(), 64);
        assert_eq!(CacheConfig::l2().num_sets(), 512);
        assert_eq!(CacheConfig::l3().num_sets(), 4096);
    }

    #[test]
    fn default_memconfig_uses_table_i() {
        let m = MemConfig::default();
        assert_eq!(m.l1d.latency, 4);
        assert_eq!(m.l2.latency, 12);
        assert_eq!(m.l3.latency, 42);
        assert!(m.prefetch);
    }

    #[test]
    fn default_prefetch_degree_fits_the_out_buffer() {
        assert!(MemConfig::default().prefetch_degree <= crate::prefetch::MAX_PF_DEGREE);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_geometry_panics() {
        let c = CacheConfig {
            size_bytes: 1024,
            ways: 3,
            latency: 1,
            mshrs: 1,
        };
        let _ = c.num_sets();
    }
}
