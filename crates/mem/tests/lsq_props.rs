//! Property tests for the LSQ and MSHR file, driven by the in-repo
//! deterministic [`Rng64`] (many seeded cases per property).

use ballerino_isa::rng::Rng64;
use ballerino_mem::lsq::{Forward, MemRange, StoreQueue};
use ballerino_mem::mshr::{MshrClaim, MshrFile};

/// Forwarding always returns the *youngest older* store with a known
/// overlapping address — checked against a brute-force model.
#[test]
fn forwarding_matches_bruteforce() {
    for case in 0..512u64 {
        let mut rng = Rng64::new(0x15_0001 + case);
        let n = rng.index(19) + 1;
        let stores: Vec<(u64, bool)> = (0..n).map(|_| (rng.below(64), rng.chance(0.5))).collect();
        let load_pos = rng.index(20);
        let load_addr = rng.below(64);

        let mut sq = StoreQueue::new(64);
        let mut model: Vec<(u64, u64, bool)> = Vec::new(); // (seq, addr, known)
        for (i, (addr, known)) in stores.iter().enumerate() {
            let seq = (i as u64 + 1) * 2;
            sq.allocate(seq, seq * 4);
            if *known {
                sq.set_addr(
                    seq,
                    MemRange {
                        addr: *addr * 8,
                        size: 8,
                    },
                );
            }
            model.push((seq, *addr * 8, *known));
        }
        let load_seq = (load_pos as u64) * 2 + 1; // odd: between stores
        let range = MemRange {
            addr: load_addr * 8,
            size: 8,
        };
        let got = sq.forward_source(load_seq, range);
        let want = model
            .iter()
            .rev()
            .find(|(s, a, k)| *s < load_seq && *k && *a == load_addr * 8)
            .map(|(s, _, _)| *s);
        match (got, want) {
            (Forward::FromStore { store_seq }, Some(w)) => assert_eq!(store_seq, w),
            (Forward::FromCache, None) => {}
            other => panic!("mismatch: {other:?}"),
        }
    }
}

/// The MSHR file never tracks more than its capacity of live lines,
/// and merged claims always return the primary's fill time.
#[test]
fn mshr_capacity_and_merging() {
    for case in 0..512u64 {
        let mut rng = Rng64::new(0x15_0002 + case);
        let n = rng.index(39) + 1;
        let reqs: Vec<(u64, u64)> = (0..n).map(|_| (rng.below(8), rng.below(49) + 1)).collect();

        let cap = 4usize;
        let mut m = MshrFile::new(cap);
        let mut t = 0u64;
        let mut outstanding: Vec<(u64, u64)> = Vec::new();
        for (line, dur) in reqs {
            t += 1;
            outstanding.retain(|&(_, f)| f > t);
            match m.claim(line, t) {
                MshrClaim::Merged { fill } => {
                    let primary = outstanding.iter().find(|&&(l, _)| l == line);
                    assert!(primary.is_some(), "merged without a primary");
                    assert_eq!(fill, primary.unwrap().1);
                }
                MshrClaim::Allocated { start } => {
                    assert!(start >= t);
                    let fill = start + dur;
                    m.record_fill(line, fill);
                    outstanding.retain(|&(_, f)| f > start);
                    outstanding.push((line, fill));
                    assert!(outstanding.len() <= cap, "capacity exceeded");
                }
            }
            assert!(m.occupancy(t) <= cap);
        }
    }
}

/// Store queue flush+release keeps entries consistent: entries never
/// resurface after removal.
#[test]
fn store_queue_flush_is_final() {
    for case in 0..512u64 {
        let mut rng = Rng64::new(0x15_0003 + case);
        let n = rng.index(19) + 1;
        let seqs: Vec<u64> = (0..n).map(|_| rng.below(99) + 1).collect();
        let flush_at = rng.below(99) + 1;

        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut sq = StoreQueue::new(64);
        for &s in &sorted {
            sq.allocate(s, s * 4);
        }
        sq.flush_after(flush_at);
        for &s in &sorted {
            assert_eq!(sq.get(s).is_some(), s <= flush_at);
        }
    }
}
