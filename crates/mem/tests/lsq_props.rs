//! Property tests for the LSQ and MSHR file.

use ballerino_mem::lsq::{Forward, MemRange, StoreQueue};
use ballerino_mem::mshr::{MshrClaim, MshrFile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Forwarding always returns the *youngest older* store with a known
    /// overlapping address — checked against a brute-force model.
    #[test]
    fn forwarding_matches_bruteforce(
        stores in proptest::collection::vec((0u64..64, any::<bool>()), 1..20),
        load_pos in 0usize..20,
        load_addr in 0u64..64,
    ) {
        let mut sq = StoreQueue::new(64);
        let mut model: Vec<(u64, u64, bool)> = Vec::new(); // (seq, addr, known)
        for (i, (addr, known)) in stores.iter().enumerate() {
            let seq = (i as u64 + 1) * 2;
            sq.allocate(seq, seq * 4);
            if *known {
                sq.set_addr(seq, MemRange { addr: *addr * 8, size: 8 });
            }
            model.push((seq, *addr * 8, *known));
        }
        let load_seq = (load_pos as u64) * 2 + 1; // odd: between stores
        let range = MemRange { addr: load_addr * 8, size: 8 };
        let got = sq.forward_source(load_seq, range);
        let want = model
            .iter()
            .rev()
            .find(|(s, a, k)| *s < load_seq && *k && *a == load_addr * 8)
            .map(|(s, _, _)| *s);
        match (got, want) {
            (Forward::FromStore { store_seq }, Some(w)) => prop_assert_eq!(store_seq, w),
            (Forward::FromCache, None) => {}
            other => prop_assert!(false, "mismatch: {:?}", other),
        }
    }

    /// The MSHR file never tracks more than its capacity of live lines,
    /// and merged claims always return the primary's fill time.
    #[test]
    fn mshr_capacity_and_merging(
        reqs in proptest::collection::vec((0u64..8, 1u64..50), 1..40),
    ) {
        let cap = 4usize;
        let mut m = MshrFile::new(cap);
        let mut t = 0u64;
        let mut outstanding: Vec<(u64, u64)> = Vec::new();
        for (line, dur) in reqs {
            t += 1;
            outstanding.retain(|&(_, f)| f > t);
            match m.claim(line, t) {
                MshrClaim::Merged { fill } => {
                    let primary = outstanding.iter().find(|&&(l, _)| l == line);
                    prop_assert!(primary.is_some(), "merged without a primary");
                    prop_assert_eq!(fill, primary.unwrap().1);
                }
                MshrClaim::Allocated { start } => {
                    prop_assert!(start >= t);
                    let fill = start + dur;
                    m.record_fill(line, fill);
                    outstanding.retain(|&(_, f)| f > start);
                    outstanding.push((line, fill));
                    prop_assert!(outstanding.len() <= cap, "capacity exceeded");
                }
            }
            prop_assert!(m.occupancy(t) <= cap);
        }
    }

    /// Store queue flush+release keeps entries consistent: entries never
    /// resurface after removal.
    #[test]
    fn store_queue_flush_is_final(
        seqs in proptest::collection::vec(1u64..100, 1..20),
        flush_at in 1u64..100,
    ) {
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut sq = StoreQueue::new(64);
        for &s in &sorted {
            sq.allocate(s, s * 4);
        }
        sq.flush_after(flush_at);
        for &s in &sorted {
            prop_assert_eq!(sq.get(s).is_some(), s <= flush_at);
        }
    }
}
