//! Naive-vs-fast A/B property tests for the memory hierarchy.
//!
//! The fast path (flat SoA cache arrays with MRU hit shortcuts, the
//! direct-mapped line filter, slot-array MSHRs) must be *timing-identical*
//! to the frozen seed-exact naive path: every access returns the same
//! `(completion_cycle, HitLevel)`, and every statistic — per-level hits,
//! cache hit/miss counters, MSHR merges and stalls, DRAM row locality,
//! prefetches — lands on the same value. Randomized streams mix regimes
//! the fast path optimizes for (hot-line re-touch, streaming evictions,
//! MSHR-merge storms) with stores, prefetch kinds, and instruction
//! fetches.

use ballerino_isa::rng::Rng64;
use ballerino_mem::{AccessKind, CacheConfig, Hierarchy, MemConfig};

/// Tiny geometry so randomized streams exercise evictions and full MSHR
/// files constantly: L1 1 KiB/2-way/2 MSHRs, L2 4 KiB/4-way, L3 16 KiB.
fn tiny_cfg(prefetch: bool, degree: usize) -> MemConfig {
    MemConfig {
        l1d: CacheConfig {
            size_bytes: 1024,
            ways: 2,
            latency: 4,
            mshrs: 2,
        },
        l2: CacheConfig {
            size_bytes: 4 * 1024,
            ways: 4,
            latency: 12,
            mshrs: 4,
        },
        l3: CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            latency: 42,
            mshrs: 8,
        },
        prefetch,
        prefetch_degree: degree,
        ..MemConfig::default()
    }
}

/// One randomized address: mixes a hot pool (re-touch regime), a striding
/// stream (evict + prefetch-training regime), a small set-conflict pool
/// (MSHR-merge regime), and cold randoms.
fn gen_addr(rng: &mut Rng64, stream_pos: &mut u64) -> u64 {
    match rng.index(10) {
        // Hot pool: 16 lines, exercises the MRU path and line filter.
        0..=3 => 0x10_0000 + rng.below(16) * 64 + rng.below(64),
        // Striding stream: trains the prefetcher, evicts constantly.
        4..=6 => {
            *stream_pos += 64;
            0x40_0000 + *stream_pos
        }
        // Set-conflict pool: lines far apart that alias in tiny L1 sets,
        // keeping misses outstanding → merges and full MSHR files.
        7..=8 => 0x80_0000 + rng.below(24) * 1024,
        // Cold random within 8 MiB.
        _ => rng.below(8 << 20),
    }
}

fn drive_pair(cfg: &MemConfig, seed: u64, ops: usize) {
    let mut fast = Hierarchy::with_fast_lookup(cfg);
    let mut naive = Hierarchy::with_naive_lookup(cfg);
    assert!(!fast.is_naive() && naive.is_naive());

    let mut rng = Rng64::new(seed);
    let mut t = 0u64;
    let mut stream_pos = 0u64;
    // A handful of PCs so the stride table gains confidence.
    let pcs = [0x400u64, 0x404, 0x440, 0x500, 0x7fc];
    for op in 0..ops {
        // Mostly tight cycles (MSHR pressure), occasional long gaps
        // (drains the files and ages LRU).
        t += match rng.index(12) {
            0..=7 => rng.below(3),
            8..=10 => rng.below(30),
            _ => rng.below(2_000),
        };
        if rng.chance(0.06) {
            let pc = 0x1000 + rng.below(64) * 4;
            let a = naive.ifetch(pc, t);
            let b = fast.ifetch(pc, t);
            assert_eq!(a, b, "ifetch diverged at op {op} (seed {seed:#x})");
            continue;
        }
        let addr = gen_addr(&mut rng, &mut stream_pos);
        let pc = pcs[rng.index(pcs.len())];
        let kind = match rng.index(10) {
            0..=5 => AccessKind::Load,
            6..=8 => AccessKind::Store,
            _ => AccessKind::Prefetch,
        };
        let a = naive.access(addr, pc, t, kind);
        let b = fast.access(addr, pc, t, kind);
        assert_eq!(
            a, b,
            "access diverged at op {op}: addr {addr:#x} pc {pc:#x} cycle {t} \
             {kind:?} (seed {seed:#x})"
        );
    }

    // Every observable statistic must agree, not just the timings.
    assert_eq!(
        naive.stats, fast.stats,
        "MemStats diverged (seed {seed:#x})"
    );
    for (name, n, f) in [
        ("l1d", &naive.l1d, &fast.l1d),
        ("l1i", &naive.l1i, &fast.l1i),
        ("l2", &naive.l2, &fast.l2),
        ("l3", &naive.l3, &fast.l3),
    ] {
        assert_eq!(n.hits, f.hits, "{name} hits diverged (seed {seed:#x})");
        assert_eq!(
            n.misses, f.misses,
            "{name} misses diverged (seed {seed:#x})"
        );
        assert_eq!(
            n.mshrs.merges, f.mshrs.merges,
            "{name} MSHR merges diverged (seed {seed:#x})"
        );
        assert_eq!(
            n.mshrs.stall_cycles, f.mshrs.stall_cycles,
            "{name} MSHR stalls diverged (seed {seed:#x})"
        );
    }
    assert_eq!(naive.dram.row_hits, fast.dram.row_hits, "seed {seed:#x}");
    assert_eq!(
        naive.dram.row_misses, fast.dram.row_misses,
        "seed {seed:#x}"
    );
}

#[test]
fn fast_path_matches_naive_on_tiny_geometry() {
    for case in 0..48u64 {
        let degree = 1 + (case % 4) as usize;
        let prefetch = case % 3 != 0;
        drive_pair(&tiny_cfg(prefetch, degree), 0x3A57_0000 + case, 1_500);
    }
}

#[test]
fn fast_path_matches_naive_on_table_i_geometry() {
    for case in 0..12u64 {
        let cfg = MemConfig {
            prefetch: case % 2 == 0,
            ..MemConfig::default()
        };
        drive_pair(&cfg, 0xFA57_0000 + case, 3_000);
    }
}

/// Dedicated MSHR-merge storm: round-robin over `2 * ways` lines of one
/// L1 set at 1-cycle spacing, so re-touches race in-flight fills and
/// every level's file sees merges and full-stall waits.
#[test]
fn fast_path_matches_naive_under_mshr_merge_storms() {
    for case in 0..8u64 {
        let cfg = tiny_cfg(false, 1);
        let mut fast = Hierarchy::with_fast_lookup(&cfg);
        let mut naive = Hierarchy::with_naive_lookup(&cfg);
        let mut rng = Rng64::new(0x5708_0000 + case);
        let sets = 8u64; // tiny L1: 1024 B / 64 B / 2 ways
        let mut t = 0u64;
        for i in 0..4_000u64 {
            t += rng.below(2);
            let lane = i % 4;
            let addr = (rng.below(4) * sets + lane * sets * 101) * 64;
            let a = naive.access(addr, 0x400, t, AccessKind::Load);
            let b = fast.access(addr, 0x400, t, AccessKind::Load);
            assert_eq!(a, b, "storm diverged at {i} (case {case})");
        }
        assert_eq!(naive.stats, fast.stats);
        assert!(
            naive.l1d.mshrs.merges > 0 || naive.l2.mshrs.merges > 0,
            "storm produced no merges — pattern lost its teeth"
        );
    }
}

/// Evict-heavy streaming: strictly sequential lines far larger than the
/// L3, the regime where the line filter must keep invalidating itself.
#[test]
fn fast_path_matches_naive_under_streaming_evictions() {
    let cfg = tiny_cfg(true, 4);
    let mut fast = Hierarchy::with_fast_lookup(&cfg);
    let mut naive = Hierarchy::with_naive_lookup(&cfg);
    let mut t = 0u64;
    for i in 0..6_000u64 {
        let addr = i * 64;
        let a = naive.access(addr, 0x88, t, AccessKind::Load);
        let b = fast.access(addr, 0x88, t, AccessKind::Load);
        assert_eq!(a, b, "stream diverged at line {i}");
        t = a.0.min(t + 3);
    }
    assert_eq!(naive.stats, fast.stats);
    assert!(naive.stats.prefetches > 0);
}
