//! [`SeqSlab`]: a sequence-indexed slab for in-flight pipeline state.
//!
//! The core assigns sequence numbers densely and monotonically at rename
//! and retires them from exactly two ends: commit removes the *oldest*
//! entries and squash removes the *youngest*. That access pattern means a
//! `HashMap<u64, Inflight>` — which the seed simulator used — pays for
//! hashing, probing, and pointer-chasing on every one of the several
//! lookups the pipeline does per μop per cycle, while the live keys are
//! always (nearly) one contiguous range.
//!
//! `SeqSlab` exploits the pattern directly: entries live in a `VecDeque`
//! at offset `seq - base`, so every lookup is one bounds check plus one
//! indexed load. The only discontiguity arises after a memory-order
//! squash, when the flushed tail's sequence numbers are never reissued
//! (the core keeps `next_seq` monotonic so age comparisons stay valid
//! everywhere); the first insert after a squash back-fills the gap with
//! empty slots, bounded by the ROB size and amortized over the squash
//! penalty itself.

use std::collections::VecDeque;

/// A slab keyed by dense, monotonically allocated sequence numbers.
///
/// Insertions must be in increasing `seq` order (gaps allowed); removals
/// may target any live entry but in practice hit the two ends. Lookup is
/// O(1); removal is O(1) plus end compaction.
#[derive(Debug, Default)]
pub struct SeqSlab<T> {
    /// Sequence number of `slots[0]`.
    base: u64,
    slots: VecDeque<Option<T>>,
    live: usize,
}

impl<T> SeqSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        SeqSlab {
            base: 0,
            slots: VecDeque::new(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the slab holds no entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn index_of(&self, seq: u64) -> Option<usize> {
        if seq < self.base {
            return None;
        }
        let idx = (seq - self.base) as usize;
        (idx < self.slots.len()).then_some(idx)
    }

    /// Whether `seq` maps to a live entry.
    #[inline]
    pub fn contains(&self, seq: u64) -> bool {
        self.index_of(seq).is_some_and(|i| self.slots[i].is_some())
    }

    /// Shared access to the entry for `seq`.
    #[inline]
    pub fn get(&self, seq: u64) -> Option<&T> {
        self.index_of(seq).and_then(|i| self.slots[i].as_ref())
    }

    /// Mutable access to the entry for `seq`.
    #[inline]
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut T> {
        match self.index_of(seq) {
            Some(i) => self.slots[i].as_mut(),
            None => None,
        }
    }

    /// Inserts `value` at `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not strictly above every sequence number ever
    /// inserted (the slab relies on monotonic allocation).
    pub fn insert(&mut self, seq: u64, value: T) {
        if self.slots.is_empty() {
            self.base = seq;
        }
        let next = self.base + self.slots.len() as u64;
        assert!(
            seq >= next,
            "SeqSlab insert out of order: seq {seq} < next {next}"
        );
        // Back-fill the post-squash gap (flushed seqs are never reused).
        for _ in next..seq {
            self.slots.push_back(None);
        }
        self.slots.push_back(Some(value));
        self.live += 1;
    }

    /// Iterates over live entries in sequence order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Removes and returns the entry for `seq`, compacting empty slots at
    /// both ends so the slab tracks the live window.
    pub fn remove(&mut self, seq: u64) -> Option<T> {
        let idx = self.index_of(seq)?;
        let value = self.slots[idx].take()?;
        self.live -= 1;
        self.compact();
        Some(value)
    }

    /// Removes the entry for `seq`, dropping it in place instead of
    /// moving it out. Callers that have already copied the fields they
    /// need (commit) avoid moving the whole entry off the slab. Returns
    /// whether an entry was removed.
    pub fn discard(&mut self, seq: u64) -> bool {
        let Some(idx) = self.index_of(seq) else {
            return false;
        };
        if self.slots[idx].is_none() {
            return false;
        }
        self.slots[idx] = None;
        self.live -= 1;
        self.compact();
        true
    }

    fn compact(&mut self) {
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        while matches!(self.slots.back(), Some(None)) {
            self.slots.pop_back();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_fifo() {
        let mut s = SeqSlab::new();
        for seq in 1..=8u64 {
            s.insert(seq, seq * 10);
        }
        assert_eq!(s.len(), 8);
        assert_eq!(s.get(3), Some(&30));
        assert!(s.contains(8));
        assert!(!s.contains(0));
        assert!(!s.contains(9));
        for seq in 1..=8u64 {
            assert_eq!(s.remove(seq), Some(seq * 10));
            assert_eq!(s.remove(seq), None);
        }
        assert!(s.is_empty());
    }

    #[test]
    fn squash_gap_backfills() {
        let mut s = SeqSlab::new();
        for seq in 1..=10u64 {
            s.insert(seq, seq);
        }
        // Squash: remove the youngest 6 (seqs 5..=10), as a ROB walk does.
        for seq in (5..=10u64).rev() {
            assert_eq!(s.remove(seq), Some(seq));
        }
        assert_eq!(s.len(), 4);
        // Refetched work gets fresh seqs; 5..=10 are dead forever.
        s.insert(11, 11);
        for seq in 5..=10u64 {
            assert!(!s.contains(seq), "flushed seq {seq} must stay dead");
            assert_eq!(s.get(seq), None);
        }
        assert_eq!(s.get(11), Some(&11));
        assert_eq!(s.get(4), Some(&4));
        // Oldest-first commits drain across the gap.
        for seq in 1..=4u64 {
            assert_eq!(s.remove(seq), Some(seq));
        }
        assert_eq!(s.remove(11), Some(11));
        assert!(s.is_empty());
    }

    #[test]
    fn mutation_through_get_mut() {
        let mut s = SeqSlab::new();
        s.insert(7, String::from("a"));
        s.get_mut(7).unwrap().push('b');
        assert_eq!(s.get(7).map(String::as_str), Some("ab"));
        assert!(s.get_mut(6).is_none());
    }

    #[test]
    fn drain_then_reuse_keeps_old_seqs_dead() {
        let mut s = SeqSlab::new();
        s.insert(1, 1);
        s.insert(2, 2);
        s.remove(2);
        s.remove(1);
        assert!(s.is_empty());
        s.insert(40, 40);
        assert!(!s.contains(1));
        assert!(!s.contains(2));
        assert!(s.contains(40));
    }

    #[test]
    fn matches_reference_hashmap_under_pipeline_pattern() {
        use ballerino_isa::rng::Rng64;
        use std::collections::HashMap;
        let mut rng = Rng64::new(99);
        let mut s = SeqSlab::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut next_seq = 1u64;
        let mut live: VecDeque<u64> = VecDeque::new();
        for _ in 0..20_000 {
            match rng.index(4) {
                // Allocate (dispatch).
                0 | 1 => {
                    let seq = next_seq;
                    next_seq += 1;
                    s.insert(seq, seq ^ 0xABCD);
                    model.insert(seq, seq ^ 0xABCD);
                    live.push_back(seq);
                }
                // Commit the oldest.
                2 => {
                    if let Some(seq) = live.pop_front() {
                        assert_eq!(s.remove(seq), model.remove(&seq));
                    }
                }
                // Squash a random-length tail.
                _ => {
                    let n = rng.index(4) + 1;
                    for _ in 0..n {
                        let Some(seq) = live.pop_back() else { break };
                        assert_eq!(s.remove(seq), model.remove(&seq));
                    }
                }
            }
            assert_eq!(s.len(), model.len());
            let probe = rng.below(next_seq.max(2));
            assert_eq!(s.get(probe), model.get(&probe));
        }
    }
}
