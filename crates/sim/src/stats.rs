//! Simulation results: IPC, scheduling-delay breakdowns (Figs. 3c/12),
//! and all the per-structure statistics the figures consume.

use ballerino_energy::{EnergyEvents, StructureSizes};
use ballerino_mem::MemStats;
use ballerino_sched::{HeadStateStats, IssueBreakdown, SteerStats};

/// Instruction class of Fig. 3c: loads, load-dependents, and the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingClass {
    /// Loads.
    Ld,
    /// μops directly or transitively dependent on an incomplete older
    /// load at dispatch.
    LdC,
    /// Everything else.
    Rst,
}

/// All classes in display order.
pub const TIMING_CLASSES: [TimingClass; 3] = [TimingClass::Ld, TimingClass::LdC, TimingClass::Rst];

impl TimingClass {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TimingClass::Ld => "Ld",
            TimingClass::LdC => "LdC",
            TimingClass::Rst => "Rst",
        }
    }
}

/// Accumulated decode→dispatch→ready→issue delays per class.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingBreakdown {
    sums: [[u64; 3]; 3], // [class][segment]
    counts: [u64; 3],
}

impl TimingBreakdown {
    fn idx(c: TimingClass) -> usize {
        match c {
            TimingClass::Ld => 0,
            TimingClass::LdC => 1,
            TimingClass::Rst => 2,
        }
    }

    /// Records one committed μop's delays.
    pub fn record(
        &mut self,
        class: TimingClass,
        decode: u64,
        dispatch: u64,
        ready: u64,
        issue: u64,
    ) {
        let i = Self::idx(class);
        debug_assert!(decode <= dispatch && dispatch <= issue);
        let ready = ready.clamp(dispatch, issue);
        self.sums[i][0] += dispatch - decode;
        self.sums[i][1] += ready - dispatch;
        self.sums[i][2] += issue - ready;
        self.counts[i] += 1;
    }

    /// Average `(decode→dispatch, dispatch→ready, ready→issue)` cycles
    /// for a class.
    pub fn avg(&self, class: TimingClass) -> (f64, f64, f64) {
        let i = Self::idx(class);
        let n = self.counts[i].max(1) as f64;
        (
            self.sums[i][0] as f64 / n,
            self.sums[i][1] as f64 / n,
            self.sums[i][2] as f64 / n,
        )
    }

    /// Average over all classes combined.
    pub fn avg_all(&self) -> (f64, f64, f64) {
        let n: u64 = self.counts.iter().sum();
        let n = n.max(1) as f64;
        let seg = |s: usize| self.sums.iter().map(|row| row[s]).sum::<u64>() as f64 / n;
        (seg(0), seg(1), seg(2))
    }

    /// Committed μops recorded for a class.
    pub fn count(&self, class: TimingClass) -> u64 {
        self.counts[Self::idx(class)]
    }
}

/// The complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Scheduler name (e.g. `"ooo"`, `"ballerino-12"`).
    pub scheduler: String,
    /// Workload name.
    pub workload: String,
    /// Cycles simulated.
    pub cycles: u64,
    /// μops committed.
    pub committed: u64,
    /// Branch mispredictions observed.
    pub mispredicts: u64,
    /// Memory-order violation squashes.
    pub violations: u64,
    /// Dispatch-stall cycles (scheduler refused).
    pub dispatch_stalls: u64,
    /// Dispatch slots lost per structural reason:
    /// `[rob, lq, sq, regs, sched]`.
    pub stall_reasons: [u64; 5],
    /// Per-class scheduling-delay breakdown.
    pub timing: TimingBreakdown,
    /// Which structure issued each μop.
    pub issue_breakdown: IssueBreakdown,
    /// Steering outcomes (CES/Ballerino).
    pub steer: SteerStats,
    /// P-IQ head states (CES/Ballerino).
    pub heads: HeadStateStats,
    /// Memory hierarchy statistics.
    pub mem: MemStats,
    /// Energy micro-events.
    pub energy: EnergyEvents,
    /// Structure sizes for the energy model's leakage terms.
    pub sizes: StructureSizes,
    /// Core frequency (GHz) the run represents.
    pub freq_ghz: f64,
    /// Host wall-clock seconds the simulation itself took (throughput
    /// instrumentation; excludes trace generation).
    pub host_wall_s: f64,
    /// Cycles the event-horizon engine fast-forwarded instead of stepping
    /// (throughput instrumentation; a subset of `cycles`). Always zero on
    /// the reference core and when `skip_idle` is off.
    pub cycles_skipped: u64,
    /// Cycles executed inside the macro-step engine's fused loop
    /// (throughput instrumentation; a subset of `cycles`, disjoint from
    /// `cycles_skipped`). Always zero on the reference core and when
    /// `use_macro` is off.
    pub cycles_macro: u64,
    /// Cycles whose issue stage was served from a pre-planned grant
    /// block instead of a live scheduler query (throughput
    /// instrumentation; a subset of `cycles_macro`). Always zero on the
    /// reference core and when `use_block` is off.
    pub cycles_block: u64,
    /// Grant blocks the scheduler built (throughput instrumentation).
    pub blocks_built: u64,
    /// Grant blocks that died to a validation failure before being fully
    /// consumed (throughput instrumentation; the rest expired naturally).
    pub blocks_invalidated: u64,
    /// Histogram of built block lengths in planned cycles, bucket `i`
    /// holding lengths in `[2^i, 2^(i+1))` with the last bucket open
    /// (throughput instrumentation).
    pub block_len_hist: [u64; 8],
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Wall-clock seconds at the configured frequency.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Speedup versus a baseline run of the same workload, in execution
    /// time (accounts for frequency differences).
    pub fn speedup_over(&self, base: &SimResult) -> f64 {
        base.seconds() / self.seconds()
    }

    /// Simulator throughput: committed μops per host wall-clock second.
    pub fn sim_uops_per_sec(&self) -> f64 {
        if self.host_wall_s > 0.0 {
            self.committed as f64 / self.host_wall_s
        } else {
            0.0
        }
    }

    /// Simulator throughput: simulated cycles per host wall-clock second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.host_wall_s > 0.0 {
            self.cycles as f64 / self.host_wall_s
        } else {
            0.0
        }
    }
}

/// Geometric mean over a slice of positive values.
pub fn geomean(vals: &[f64]) -> f64 {
    assert!(!vals.is_empty(), "geomean of empty slice");
    let s: f64 = vals.iter().map(|v| v.ln()).sum();
    (s / vals.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_breakdown_averages_segments() {
        let mut t = TimingBreakdown::default();
        t.record(TimingClass::Ld, 0, 2, 5, 9);
        t.record(TimingClass::Ld, 10, 12, 12, 14);
        let (d2d, d2r, r2i) = t.avg(TimingClass::Ld);
        assert_eq!(d2d, 2.0);
        assert_eq!(d2r, 1.5);
        assert_eq!(r2i, 3.0);
        assert_eq!(t.count(TimingClass::Ld), 2);
    }

    #[test]
    fn ready_is_clamped_into_dispatch_issue_range() {
        let mut t = TimingBreakdown::default();
        // Ready before dispatch (ready-at-dispatch μop).
        t.record(TimingClass::Rst, 0, 4, 1, 6);
        let (_, d2r, r2i) = t.avg(TimingClass::Rst);
        assert_eq!(d2r, 0.0);
        assert_eq!(r2i, 2.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        let _ = geomean(&[]);
    }
}
