//! The seed's pipeline-state layout, kept as a reference model.
//!
//! This is the pre-refactor [`Core`](crate::core::Core): identical cycle
//! semantics, but in-flight state lives in `HashMap`/`HashSet`
//! structures and the issue path allocates fresh buffers every cycle.
//! The production core replaced those with the sequence-indexed
//! [`SeqSlab`](crate::slab::SeqSlab), a dense taint vector, waiter lists
//! folded into each store's entry, and reused scratch buffers.
//!
//! It exists for exactly two purposes, both exercised by the
//! `perf_smoke` bench binary:
//!
//! 1. **Equivalence**: the refactor is a pure performance change, so the
//!    reference and production cores must report byte-identical cycle
//!    counts on every workload.
//! 2. **Throughput A/B**: the measured speedup of the production core
//!    over this reference is the data-layout half of the
//!    `BENCH_simthroughput.json` trajectory.
//!
//! Only the adaptations needed to share today's interfaces were made
//! (the scheduler contract takes [`HeldSet`] and [`SimResult`] carries
//! `host_wall_s`); the data layout is the seed's.

use crate::config::CoreConfig;
use crate::stats::{SimResult, TimingBreakdown, TimingClass};
use ballerino_energy::{EnergyEvents, StructureSizes};
use ballerino_frontend::{Btb, RenamedOp, Renamer, Tage};
use ballerino_isa::{MicroOp, OpClass, Trace};
use ballerino_mem::lsq::{Forward, MemRange};
use ballerino_mem::{AccessKind, Hierarchy, LoadQueue, Mdp, MdpConfig, StoreQueue};
use ballerino_sched::ports::PortArbiter;
use ballerino_sched::{
    DispatchOutcome, FuBusy, HeldSet, PortAlloc, ReadyCtx, SchedUop, Scheduler, Scoreboard,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Store-to-load forwarding latency (cycles after AGU).
const FORWARD_LATENCY: u64 = 3;

#[derive(Debug)]
struct Inflight {
    op: MicroOp,
    trace_idx: usize,
    renamed: RenamedOp,
    uop: SchedUop,
    decode_cycle: u64,
    dispatch_cycle: u64,
    issue_cycle: Option<u64>,
    complete_at: Option<u64>,
    completed: bool,
    class: TimingClass,
    mispredicted: bool,
    ready_cycle: u64,
}

#[derive(Debug)]
struct Prepared {
    seq: u64,
    uop: SchedUop,
}

/// The reference core: seed data layout, production semantics.
pub struct CoreRef {
    cfg: CoreConfig,
    sched: Box<dyn Scheduler>,
    sizes: StructureSizes,

    cycle: u64,
    next_seq: u64,

    renamer: Renamer,
    scb: Scoreboard,
    rob: VecDeque<u64>,
    inflight: HashMap<u64, Inflight>,
    pending: Option<Prepared>,

    alloc_q: VecDeque<(usize, u64, bool)>,
    fetch_idx: usize,
    fetch_resume_at: u64,
    fetch_stalled: bool,
    /// Cache line currently streaming out of the L1I.
    fetch_line: Option<u64>,

    tage: Tage,
    btb: Btb,
    hier: Hierarchy,
    lq: LoadQueue,
    sq: StoreQueue,
    mdp: Option<Mdp>,
    held: HeldSet,
    waiters: HashMap<u64, Vec<u64>>,
    arbiter: PortArbiter,
    fu_busy: FuBusy,
    events: BinaryHeap<Reverse<(u64, u64)>>,
    taint: HashMap<u32, u64>,

    committed: u64,
    mispredicts: u64,
    stall_reasons: [u64; 5],
    violations: u64,
    dispatch_stalls: u64,
    timing: TimingBreakdown,
    energy: EnergyEvents,
}

impl CoreRef {
    /// Builds a core around a scheduler.
    pub fn new(cfg: CoreConfig, sched: Box<dyn Scheduler>, sizes: StructureSizes) -> Self {
        let renamer = Renamer::new(cfg.int_regs, cfg.fp_regs);
        let scb = Scoreboard::new(renamer.total_phys());
        let hier = Hierarchy::new(&cfg.mem);
        let lq = LoadQueue::new(cfg.lq_entries);
        let sq = StoreQueue::new(cfg.sq_entries);
        let mdp = if cfg.use_mdp {
            Some(Mdp::new(MdpConfig::default()))
        } else {
            None
        };
        let arbiter = PortArbiter::new(cfg.port_map.clone());
        CoreRef {
            cfg,
            sched,
            sizes,
            cycle: 0,
            next_seq: 1,
            renamer,
            scb,
            rob: VecDeque::new(),
            inflight: HashMap::new(),
            pending: None,
            alloc_q: VecDeque::new(),
            fetch_idx: 0,
            fetch_resume_at: 0,
            fetch_stalled: false,
            fetch_line: None,
            tage: Tage::new(),
            btb: Btb::default(),
            hier,
            lq,
            sq,
            mdp,
            held: HeldSet::new(),
            waiters: HashMap::new(),
            arbiter,
            fu_busy: FuBusy::new(),
            events: BinaryHeap::new(),
            taint: HashMap::new(),
            committed: 0,
            mispredicts: 0,
            stall_reasons: [0; 5],
            violations: 0,
            dispatch_stalls: 0,
            timing: TimingBreakdown::default(),
            energy: EnergyEvents::default(),
        }
    }

    /// Runs the trace to completion and returns the results.
    ///
    /// # Panics
    ///
    /// Panics if the machine stops making progress (a scheduler deadlock
    /// is always a bug, never a valid outcome).
    pub fn run(mut self, trace: &Trace) -> SimResult {
        let started = std::time::Instant::now();
        let target = trace.len() as u64;
        let max_cycles = 600 * target + 200_000;
        while self.committed < target {
            self.step(trace);
            if self.cycle >= max_cycles {
                let head = self.rob.front().map(|s| {
                    let i = &self.inflight[s];
                    format!(
                        "seq={} class={:?} port={} issued={:?} complete={:?} held={} srcs_ready={} mdp_wait={:?}",
                        s, i.uop.class, i.uop.port, i.issue_cycle, i.complete_at,
                        self.held.contains(*s),
                        self.scb.srcs_ready(&i.uop.srcs, self.cycle),
                        i.uop.mdp_wait,
                    )
                });
                panic!(
                    "no forward progress: {} committed of {target} after {} cycles (sched {}, wl {}); rob head: {head:?}; occupancy {}/{}; held {}",
                    self.committed, self.cycle, self.sched.name(), trace.name,
                    self.sched.occupancy(), self.sched.capacity(), self.held.len(),
                );
            }
        }
        let mut result = self.finish(trace);
        result.host_wall_s = started.elapsed().as_secs_f64();
        result
    }

    fn step(&mut self, trace: &Trace) {
        self.writeback();
        self.commit();
        self.issue_stage();
        self.dispatch(trace);
        self.fetch(trace);
        self.cycle += 1;
    }

    // ---------------------------------------------------------- writeback
    fn writeback(&mut self) {
        while let Some(&Reverse((t, seq))) = self.events.peek() {
            if t > self.cycle {
                break;
            }
            self.events.pop();
            let Some(inf) = self.inflight.get_mut(&seq) else {
                continue;
            };
            inf.completed = true;
            if let Some(d) = inf.uop.dst {
                self.energy.prf_writes += 1;
                self.sched.on_complete(d);
            }
            if inf.op.is_branch() && inf.mispredicted {
                // Resolution redirects the front end after the recovery
                // penalty (Table I).
                self.fetch_stalled = false;
                self.fetch_resume_at = self.cycle + self.cfg.recovery_penalty;
            }
        }
    }

    // ------------------------------------------------------------- commit
    fn commit(&mut self) {
        for _ in 0..self.cfg.issue_width {
            let Some(&seq) = self.rob.front() else { break };
            let done = {
                let inf = &self.inflight[&seq];
                inf.completed && inf.complete_at.map(|t| t <= self.cycle).unwrap_or(false)
            };
            if !done {
                break;
            }
            self.rob.pop_front();
            let inf = self.inflight.remove(&seq).expect("committing inflight");
            self.energy.rob_reads += 1;
            if let Some(prev) = inf.renamed.prev_dst {
                self.renamer.release(prev);
                self.taint.remove(&prev.raw());
            }
            if inf.op.is_load() {
                self.lq.release(seq);
            }
            if inf.op.is_store() {
                self.sq.release(seq);
                // The store writes the cache at commit.
                if let Some(m) = inf.op.mem {
                    let _ = self
                        .hier
                        .access(m.addr, inf.op.pc, self.cycle, AccessKind::Store);
                }
            }
            self.timing.record(
                inf.class,
                inf.decode_cycle,
                inf.dispatch_cycle,
                inf.ready_cycle,
                inf.issue_cycle.expect("committed ⇒ issued"),
            );
            self.committed += 1;
        }
    }

    // -------------------------------------------------------------- issue
    fn issue_stage(&mut self) {
        let mut out = Vec::new();
        {
            let ctx = ReadyCtx {
                cycle: self.cycle,
                scb: &self.scb,
                held: &self.held,
            };
            let mut ports = PortAlloc::new(
                self.cfg.port_map.num_ports(),
                self.cfg.issue_width,
                &self.fu_busy,
                self.cycle,
            );
            self.sched.issue(&ctx, &mut ports, &mut out);
        }
        out.sort_unstable();
        for seq in out {
            if !self.inflight.contains_key(&seq) {
                continue; // flushed by an earlier violation in this batch
            }
            self.process_issue(seq);
        }
    }

    /// Executes one issued μop: computes its completion time, updates the
    /// LSQ/scoreboard, and handles violations and MDP releases.
    fn process_issue(&mut self, seq: u64) {
        let cycle = self.cycle;
        let (op, uop, trace_idx) = {
            let inf = self.inflight.get_mut(&seq).expect("issued inflight");
            debug_assert!(inf.issue_cycle.is_none(), "double issue of {seq}");
            inf.issue_cycle = Some(cycle);
            (inf.op.clone(), inf.uop, inf.trace_idx)
        };
        let _ = trace_idx;
        self.arbiter.release(uop.port);
        self.energy.prf_reads += uop.srcs.iter().flatten().count() as u64;
        self.energy.fu.record(uop.class);

        let completion = match uop.class {
            OpClass::Load => {
                let m = op.mem.expect("load has mem info");
                let range = MemRange {
                    addr: m.addr,
                    size: m.size,
                };
                self.energy.lsq_searches += 1;
                let fwd = self.sq.forward_source(seq, range);
                let done = match fwd {
                    Forward::FromStore { .. } => cycle + 1 + FORWARD_LATENCY,
                    Forward::FromCache => {
                        let (done, _) =
                            self.hier.access(m.addr, op.pc, cycle + 1, AccessKind::Load);
                        done
                    }
                };
                let fwd_from = match fwd {
                    Forward::FromStore { store_seq } => Some(store_seq),
                    Forward::FromCache => None,
                };
                self.lq.set_executed(seq, range, fwd_from);
                self.energy.lsq_writes += 1;
                done
            }
            OpClass::Store => {
                let m = op.mem.expect("store has mem info");
                let range = MemRange {
                    addr: m.addr,
                    size: m.size,
                };
                self.sq.set_addr(seq, range);
                self.energy.lsq_writes += 1;
                self.energy.lsq_searches += 1;
                let violation = self.lq.violation_on_store(seq, range);

                // Release MDP waiters: the store has issued.
                if let Some(mdp) = self.mdp.as_mut() {
                    if let Some(ssid) = uop.ssid {
                        mdp.on_store_issued(ssid, seq);
                    }
                }
                if let Some(ws) = self.waiters.remove(&seq) {
                    for w in ws {
                        self.held.remove(w);
                        if let Some(wi) = self.inflight.get_mut(&w) {
                            wi.ready_cycle = wi.ready_cycle.max(cycle + 1);
                        }
                    }
                }

                if let Some((load_seq, load_pc)) = violation {
                    self.squash_from(load_seq, op.pc, load_pc);
                }
                cycle + 1
            }
            other => cycle + other.exec_latency() as u64,
        };

        // The violation squash may have flushed this store? Never: the
        // squash point is a *younger* load. The store itself survives.
        let Some(inf) = self.inflight.get_mut(&seq) else {
            return;
        };
        inf.complete_at = Some(completion);
        inf.ready_cycle = inf
            .ready_cycle
            .max(self.scb.srcs_ready_cycle(&uop.srcs).min(cycle));
        if uop.class.unpipelined() {
            self.fu_busy
                .reserve(uop.port, uop.class, cycle + uop.class.exec_latency() as u64);
        }
        if let Some(d) = uop.dst {
            self.scb.set_ready_at(d, completion);
        }
        self.events.push(Reverse((completion, seq)));
    }

    // ----------------------------------------------------------- dispatch
    fn dispatch(&mut self, trace: &Trace) {
        for _ in 0..self.cfg.front_width {
            // Retry a previously prepared-but-stalled μop first.
            if let Some(p) = self.pending.take() {
                match self.offer(p) {
                    Some(p) => {
                        self.pending = Some(p);
                        self.dispatch_stalls += 1;
                        self.stall_reasons[4] += 1;
                        return;
                    }
                    None => continue,
                }
            }
            let Some(&(trace_idx, decode_cycle, mispred)) = self.alloc_q.front() else {
                return;
            };
            if decode_cycle + self.cfg.rename_latency > self.cycle {
                return;
            }
            let op = &trace.ops[trace_idx];
            // Structural resources checked before renaming.
            if self.rob.len() >= self.cfg.rob_entries {
                self.stall_reasons[0] += 1;
                return;
            }
            if op.is_load() && !self.lq.has_space() {
                self.stall_reasons[1] += 1;
                return;
            }
            if op.is_store() && !self.sq.has_space() {
                self.stall_reasons[2] += 1;
                return;
            }
            let Some(prepared) = self.prepare(trace_idx, decode_cycle, mispred, op.clone()) else {
                self.stall_reasons[3] += 1;
                return; // out of physical registers; retry next cycle
            };
            self.alloc_q.pop_front();
            // Frozen reference path: kept verbatim rather than reshaped
            // into `if let`.
            #[allow(clippy::single_match)]
            match self.offer(prepared) {
                Some(p) => {
                    self.pending = Some(p);
                    self.dispatch_stalls += 1;
                    return;
                }
                None => {}
            }
        }
    }

    /// Renames one μop and builds its scheduler view. Returns `None` when
    /// the free list is empty (nothing is consumed).
    fn prepare(
        &mut self,
        trace_idx: usize,
        decode_cycle: u64,
        mispredicted: bool,
        op: MicroOp,
    ) -> Option<Prepared> {
        let renamed = self.renamer.rename(&op).ok()?;
        let seq = self.next_seq;
        self.next_seq += 1;

        self.energy.rename_lookups += (op.num_srcs() + op.dst.is_some() as usize) as u64;
        if op.dst.is_some() {
            self.energy.rename_writes += 1;
        }
        if let Some(d) = renamed.dst {
            self.scb.allocate(d);
        }

        // MDP advice: store sets serialize loads (and stores) behind the
        // last in-flight store of their set.
        let mut ssid = None;
        let mut mdp_wait = None;
        if let Some(mdp) = self.mdp.as_mut() {
            if op.is_load() {
                self.energy.mdp_lookups += 1;
                let a = mdp.on_rename_load(op.pc);
                ssid = a.ssid;
                mdp_wait = a.wait_for;
            } else if op.is_store() {
                self.energy.mdp_lookups += 1;
                self.energy.mdp_updates += 1;
                let a = mdp.on_rename_store(op.pc, seq);
                ssid = a.ssid;
                mdp_wait = a.wait_for;
            }
        }
        // Only hold on stores that are still in flight and un-issued.
        if let Some(ws) = mdp_wait {
            let store_pending = self
                .inflight
                .get(&ws)
                .map(|i| i.issue_cycle.is_none())
                .unwrap_or(false);
            if store_pending {
                self.held.insert(seq);
                self.waiters.entry(ws).or_default().push(seq);
            } else {
                mdp_wait = None;
            }
        }

        // Fig. 3c class: Ld / LdC / Rst via load-taint propagation.
        let class = if op.is_load() {
            TimingClass::Ld
        } else {
            let tainted = renamed.srcs.iter().flatten().any(|s| {
                self.taint
                    .get(&s.raw())
                    .map(|lseq| {
                        self.inflight
                            .get(lseq)
                            .map(|i| !i.completed)
                            .unwrap_or(false)
                    })
                    .unwrap_or(false)
            });
            if tainted {
                TimingClass::LdC
            } else {
                TimingClass::Rst
            }
        };
        if let Some(d) = renamed.dst {
            if op.is_load() {
                self.taint.insert(d.raw(), seq);
            } else if class == TimingClass::LdC {
                let inherited = renamed
                    .srcs
                    .iter()
                    .flatten()
                    .find_map(|s| self.taint.get(&s.raw()).copied());
                if let Some(l) = inherited {
                    self.taint.insert(d.raw(), l);
                } else {
                    self.taint.remove(&d.raw());
                }
            } else {
                self.taint.remove(&d.raw());
            }
        }

        let port = self.arbiter.assign_reference(op.class);
        let uop = SchedUop {
            seq,
            pc: op.pc,
            class: op.class,
            port,
            srcs: renamed.srcs,
            dst: renamed.dst,
            ssid,
            mdp_wait,
            load_dep: class == TimingClass::LdC,
        };
        let inf = Inflight {
            op,
            trace_idx,
            renamed,
            uop,
            decode_cycle,
            dispatch_cycle: 0,
            issue_cycle: None,
            complete_at: None,
            completed: false,
            class,
            mispredicted,
            ready_cycle: 0,
        };
        self.inflight.insert(seq, inf);
        Some(Prepared { seq, uop })
    }

    /// Offers a prepared μop to the scheduler; returns it back on stall.
    fn offer(&mut self, p: Prepared) -> Option<Prepared> {
        let outcome = {
            let ctx = ReadyCtx {
                cycle: self.cycle,
                scb: &self.scb,
                held: &self.held,
            };
            self.sched.try_dispatch(p.uop, &ctx)
        };
        match outcome {
            DispatchOutcome::Stall(_) => return Some(p),
            DispatchOutcome::Accepted | DispatchOutcome::AcceptedIssued => {}
        }
        let seq = p.seq;
        self.rob.push_back(seq);
        self.energy.rob_writes += 1;
        {
            let inf = self.inflight.get_mut(&seq).expect("prepared inflight");
            inf.dispatch_cycle = self.cycle;
            if inf.op.is_load() {
                let ok = self.lq.allocate(seq, inf.op.pc);
                debug_assert!(ok, "LQ space checked at prepare");
                self.energy.lsq_writes += 1;
            }
            if inf.op.is_store() {
                let ok = self.sq.allocate(seq, inf.op.pc);
                debug_assert!(ok, "SQ space checked at prepare");
                self.energy.lsq_writes += 1;
            }
        }
        if outcome == DispatchOutcome::AcceptedIssued {
            self.process_issue(seq);
        }
        None
    }

    // -------------------------------------------------------------- fetch
    fn fetch(&mut self, trace: &Trace) {
        if self.fetch_stalled || self.cycle < self.fetch_resume_at {
            return;
        }
        let mut fetched = 0;
        while fetched < self.cfg.front_width
            && self.alloc_q.len() < self.cfg.alloc_queue
            && self.fetch_idx < trace.len()
        {
            let op = &trace.ops[self.fetch_idx];
            // Instruction-cache access: crossing into a new line consults
            // the L1I; a miss stalls fetch until the line arrives.
            let line = op.pc / 64;
            if self.fetch_line != Some(line) {
                let ready = self.hier.ifetch(op.pc, self.cycle);
                self.fetch_line = Some(line);
                if ready > self.cycle + self.hier.l1i.latency() {
                    self.fetch_resume_at = ready;
                    break;
                }
            }
            let mut mispred = false;
            if let Some(b) = op.branch {
                self.energy.bp_lookups += 1;
                let pred = self.tage.predict(op.pc);
                let dir_correct = self.tage.update(op.pc, pred, b.taken);
                let target_pred = self.btb.lookup(op.pc);
                self.btb.update(op.pc, b.target);
                mispred = !dir_correct || (b.taken && target_pred != Some(b.target));
                if mispred {
                    self.mispredicts += 1;
                }
            }
            self.alloc_q
                .push_back((self.fetch_idx, self.cycle, mispred));
            self.energy.fetched_uops += 1;
            self.energy.decoded_uops += 1;
            self.fetch_idx += 1;
            fetched += 1;
            if mispred {
                // Wrong-path fetch is not simulated: the front end waits
                // for the branch to resolve.
                self.fetch_stalled = true;
                break;
            }
        }
        if fetched > 0 {
            self.energy.l1i_accesses += 1;
        }
    }

    // -------------------------------------------------------------- squash
    /// Flushes every μop with `seq >= first_bad` (the violating load and
    /// everything younger), restores the RAT by walking the ROB tail
    /// first, trains the MDP, and redirects fetch.
    fn squash_from(&mut self, first_bad: u64, store_pc: u64, load_pc: u64) {
        self.violations += 1;
        let cycle = self.cycle;
        let flush_upto = first_bad - 1;
        let mut dests = Vec::new();
        let mut refetch_idx = None;

        // The pending (renamed but un-dispatched) μop is the youngest.
        if let Some(p) = self.pending.take() {
            if p.seq >= first_bad {
                let inf = self.inflight.remove(&p.seq).expect("pending inflight");
                self.rollback_one(&inf, &mut dests);
                refetch_idx = Some(inf.trace_idx);
            } else {
                self.pending = Some(p);
            }
        }

        while let Some(&back) = self.rob.back() {
            if back < first_bad {
                break;
            }
            self.rob.pop_back();
            let inf = self.inflight.remove(&back).expect("rob entry inflight");
            self.rollback_one(&inf, &mut dests);
            refetch_idx = Some(inf.trace_idx);
        }

        self.sched.flush_after(flush_upto, &dests);
        self.lq.flush_after(flush_upto);
        self.sq.flush_after(flush_upto);
        if let Some(mdp) = self.mdp.as_mut() {
            mdp.flush_after(flush_upto);
            mdp.on_violation(load_pc, store_pc);
            self.energy.mdp_updates += 2;
        }
        self.waiters.retain(|store, _| *store <= flush_upto);

        self.alloc_q.clear();
        self.fetch_idx = refetch_idx.expect("squash flushed at least the load");
        self.fetch_stalled = false;
        self.fetch_resume_at = cycle + self.cfg.recovery_penalty;
    }

    fn rollback_one(&mut self, inf: &Inflight, dests: &mut Vec<ballerino_isa::PhysReg>) {
        self.renamer.rollback(inf.op.dst, &inf.renamed);
        if let Some(d) = inf.renamed.dst {
            self.scb.force_ready(d);
            self.taint.remove(&d.raw());
            dests.push(d);
        }
        if inf.issue_cycle.is_none() {
            self.arbiter.release(inf.uop.port);
        }
        self.held.remove(inf.uop.seq);
        self.energy.rename_writes += 1; // RAT restore
    }

    // -------------------------------------------------------------- finish
    fn finish(mut self, trace: &Trace) -> SimResult {
        self.energy.cycles = self.cycle;
        self.energy.sched = self.sched.energy_events();
        self.energy.l1d_accesses = self.hier.l1d.hits + self.hier.l1d.misses;
        self.energy.l2_accesses = self.hier.l2.hits + self.hier.l2.misses;
        self.energy.l3_accesses = self.hier.l3.hits + self.hier.l3.misses;
        self.energy.dram_accesses = self.hier.dram.row_hits + self.hier.dram.row_misses;

        SimResult {
            scheduler: self.sched.name().to_string(),
            workload: trace.name.clone(),
            cycles: self.cycle,
            committed: self.committed,
            mispredicts: self.mispredicts,
            violations: self.violations,
            dispatch_stalls: self.dispatch_stalls,
            stall_reasons: self.stall_reasons,
            timing: self.timing,
            issue_breakdown: self.sched.issue_breakdown(),
            steer: self.sched.steer_stats(),
            heads: self.sched.head_stats(),
            mem: self.hier.stats,
            energy: self.energy,
            sizes: self.sizes,
            freq_ghz: self.cfg.freq_ghz,
            host_wall_s: 0.0,
            cycles_skipped: 0,
            cycles_macro: 0,
            cycles_block: 0,
            blocks_built: 0,
            blocks_invalidated: 0,
            block_len_hist: [0; 8],
        }
    }
}
