//! Core configuration presets (Table I).

use ballerino_isa::PortMap;
use ballerino_mem::MemConfig;

/// Default macro-engine hysteresis: fused runs shorter than this are
/// treated as failed engagements (the regime was not steady enough to
/// amortize the macro loop's entry and ring-flush overhead).
pub const MACRO_MIN_RUN: u64 = 8;

/// Default dormancy bounds after failed macro/block engagements. The
/// first failure costs only the minimum (so warm-up hiccups do not
/// suppress the engine); consecutive failures double the dormancy up
/// to the maximum, so persistently unsteady phases (e.g. the
/// memory-bound `stream_triad`) re-test the gate only rarely.
pub const MACRO_BACKOFF_MIN: u64 = 8;
/// See [`MACRO_BACKOFF_MIN`].
pub const MACRO_BACKOFF_MAX: u64 = 512;

/// Machine width preset of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 2-wide @ 2.0 GHz.
    Two,
    /// 4-wide @ 2.5 GHz.
    Four,
    /// 8-wide @ 3.4 GHz (the primary configuration).
    Eight,
    /// 10-wide @ 3.4 GHz (§VI-E1 state-of-the-art point).
    Ten,
}

impl Width {
    /// Issue width (= number of ports).
    pub fn issue(self) -> usize {
        match self {
            Width::Two => 2,
            Width::Four => 4,
            Width::Eight => 8,
            Width::Ten => 10,
        }
    }
}

/// Full core configuration.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Fetch/decode/dispatch width (Table I: 4 at 8-wide).
    pub front_width: usize,
    /// Issue and commit width.
    pub issue_width: usize,
    /// Allocation-queue entries between decode and rename (so that up to
    /// ~160 μops sit between decode and issue, §II-C).
    pub alloc_queue: usize,
    /// Cycles from decode to earliest dispatch (decode + 2-stage rename).
    pub rename_latency: u64,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Integer physical registers.
    pub int_regs: usize,
    /// Floating-point physical registers.
    pub fp_regs: usize,
    /// Pipeline recovery penalty in cycles (Table I: 11, 8 for InO).
    pub recovery_penalty: u64,
    /// Issue ports and their FU bindings.
    pub port_map: PortMap,
    /// Memory-system configuration.
    pub mem: MemConfig,
    /// Whether the store-set MDP is present (Table I: absent in InO).
    pub use_mdp: bool,
    /// Core frequency in GHz (for reporting; timing is in cycles).
    pub freq_ghz: f64,
    /// Whether the event-horizon engine may fast-forward provably idle
    /// stretches of cycles (see ARCHITECTURE.md, "The quiesce contract").
    /// Purely a simulator-throughput knob: results are byte-identical
    /// either way.
    pub skip_idle: bool,
    /// Whether the macro-step engine may execute steady-state cycle runs
    /// in one fused pass (see ARCHITECTURE.md, "The macro-step engine").
    /// Purely a simulator-throughput knob: results are byte-identical
    /// either way.
    pub use_macro: bool,
    /// Whether the macro-step engine may serve issue from pre-planned
    /// grant blocks ([`ballerino_sched::Scheduler::macro_grant_block`])
    /// instead of querying the scheduler every cycle. Purely a
    /// simulator-throughput knob: results are byte-identical either way.
    pub use_block: bool,
    /// Macro-engine hysteresis: fused runs shorter than this count as
    /// failed engagements ([`MACRO_MIN_RUN`]). Overridable at runtime
    /// via `BALLERINO_MACRO_BACKOFF=min_run[,backoff_min[,backoff_max]]`.
    pub macro_min_run: u64,
    /// Minimum dormancy after a failed engagement ([`MACRO_BACKOFF_MIN`]).
    pub macro_backoff_min: u64,
    /// Maximum dormancy after consecutive failed engagements
    /// ([`MACRO_BACKOFF_MAX`]).
    pub macro_backoff_max: u64,
}

impl CoreConfig {
    /// Builds the Table I configuration for a width.
    pub fn preset(width: Width) -> Self {
        match width {
            Width::Eight => CoreConfig {
                front_width: 4,
                issue_width: 8,
                alloc_queue: 64,
                rename_latency: 3,
                rob_entries: 224,
                lq_entries: 72,
                sq_entries: 56,
                int_regs: 180,
                fp_regs: 168,
                recovery_penalty: 11,
                port_map: PortMap::skylake_8wide(),
                mem: MemConfig::default(),
                use_mdp: true,
                freq_ghz: 3.4,
                skip_idle: true,
                use_macro: true,
                use_block: true,
                macro_min_run: MACRO_MIN_RUN,
                macro_backoff_min: MACRO_BACKOFF_MIN,
                macro_backoff_max: MACRO_BACKOFF_MAX,
            },
            Width::Ten => CoreConfig {
                issue_width: 10,
                port_map: PortMap::wide_10(),
                ..Self::preset(Width::Eight)
            },
            Width::Four => CoreConfig {
                front_width: 4,
                issue_width: 4,
                alloc_queue: 48,
                rename_latency: 3,
                rob_entries: 128,
                lq_entries: 48,
                sq_entries: 32,
                int_regs: 128,
                fp_regs: 96,
                recovery_penalty: 11,
                port_map: PortMap::four_wide(),
                mem: MemConfig::default(),
                use_mdp: true,
                freq_ghz: 2.5,
                skip_idle: true,
                use_macro: true,
                use_block: true,
                macro_min_run: MACRO_MIN_RUN,
                macro_backoff_min: MACRO_BACKOFF_MIN,
                macro_backoff_max: MACRO_BACKOFF_MAX,
            },
            Width::Two => CoreConfig {
                front_width: 2,
                issue_width: 2,
                alloc_queue: 24,
                rename_latency: 3,
                rob_entries: 48,
                lq_entries: 24,
                sq_entries: 16,
                // Table I lists 32/32; renaming needs headroom over the
                // 32 architectural names, so we use the smallest viable
                // sizes above that (documented deviation).
                int_regs: 48,
                fp_regs: 48,
                recovery_penalty: 11,
                port_map: PortMap::two_wide(),
                mem: MemConfig::default(),
                use_mdp: true,
                freq_ghz: 2.0,
                skip_idle: true,
                use_macro: true,
                use_block: true,
                macro_min_run: MACRO_MIN_RUN,
                macro_backoff_min: MACRO_BACKOFF_MIN,
                macro_backoff_max: MACRO_BACKOFF_MAX,
            },
        }
    }

    /// The in-order variant of a preset: shorter recovery, smaller
    /// reorder logic and store queue, no MDP (Table I, InO column).
    pub fn preset_inorder(width: Width) -> Self {
        let mut c = Self::preset(width);
        c.recovery_penalty = 8;
        c.rob_entries = match width {
            Width::Two => 16,
            Width::Four => 32,
            _ => 64,
        };
        c.sq_entries = match width {
            Width::Two => 4,
            Width::Four => 8,
            _ => 16,
        };
        c.use_mdp = false;
        c
    }

    /// Total physical registers.
    pub fn total_phys(&self) -> usize {
        self.int_regs + self.fp_regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_wide_matches_table_i() {
        let c = CoreConfig::preset(Width::Eight);
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.rob_entries, 224);
        assert_eq!(c.lq_entries, 72);
        assert_eq!(c.sq_entries, 56);
        assert_eq!(c.int_regs, 180);
        assert_eq!(c.fp_regs, 168);
        assert_eq!(c.recovery_penalty, 11);
        assert_eq!(c.port_map.num_ports(), 8);
        assert!((c.freq_ghz - 3.4).abs() < 1e-12);
    }

    #[test]
    fn narrower_presets_scale_down() {
        let four = CoreConfig::preset(Width::Four);
        assert_eq!(four.rob_entries, 128);
        assert_eq!(four.port_map.num_ports(), 4);
        let two = CoreConfig::preset(Width::Two);
        assert_eq!(two.rob_entries, 48);
        assert_eq!(two.issue_width, 2);
    }

    #[test]
    fn inorder_preset_drops_mdp_and_recovery() {
        let c = CoreConfig::preset_inorder(Width::Eight);
        assert!(!c.use_mdp);
        assert_eq!(c.recovery_penalty, 8);
        assert_eq!(c.rob_entries, 64);
        assert_eq!(c.sq_entries, 16);
    }
}
