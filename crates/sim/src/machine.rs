//! Machine factory: Table II scheduling-window configurations per design
//! and width, plus the one-call [`run_machine`] helper the benches use.

use crate::config::{CoreConfig, Width};
use crate::core::Core;
use crate::stats::SimResult;
use ballerino_core::{Ballerino, BallerinoConfig};
use ballerino_energy::StructureSizes;
use ballerino_isa::Trace;
use ballerino_sched::{
    Casino, CasinoConfig, Ces, CesConfig, Dnb, DnbConfig, Fxa, FxaConfig, InOrderIq,
    InOrderIqConfig, Ldt, LdtConfig, Lsc, LscConfig, OooIq, OooIqConfig, Scheduler,
};

/// Which microarchitecture to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// Stall-on-use in-order core (`InO`).
    InOrder,
    /// Baseline out-of-order core (`OoO`).
    OutOfOrder,
    /// OoO with oldest-first select (Fig. 11 rightmost bars).
    OutOfOrderOldestFirst,
    /// OoO without memory dependence prediction (§III-B's 1.5× claim).
    OutOfOrderNoMdp,
    /// Complexity-effective superscalar \[3\].
    Ces,
    /// CES + M-dependence-aware steering (Fig. 13).
    CesMda,
    /// CASINO cascaded in-order windows \[2\].
    Casino,
    /// Front-end execution architecture \[1\].
    Fxa,
    /// Fig. 13 Step 1: S-IQ + P-IQs, no MDA, no sharing.
    BallerinoStep1,
    /// Fig. 13 Step 2: Step 1 + MDA steering.
    BallerinoStep2,
    /// Ballerino (Step 3): 1 S-IQ + 7 P-IQs at 8-wide.
    Ballerino,
    /// Step 3 without implementation constraints (ideal).
    BallerinoIdeal,
    /// Ballerino-12: 1 S-IQ + 11 P-IQs.
    Ballerino12,
    /// Ballerino with a custom P-IQ count (Figs. 6b, 17c).
    BallerinoN(usize),
    /// Load Slice Core (extension baseline from §VII related work).
    LoadSliceCore,
    /// Delay-and-Bypass (extension baseline from §VII related work).
    DelayAndBypass,
    /// Load-delay-tracking issue queue (Diavastos & Carlson, see
    /// PAPERS.md): delay-sorted select from a per-register predicted
    /// ready-cycle table.
    Ldt,
    /// Ballerino with tracked load delays replacing store-set (MDA)
    /// steering for S-IQ→P-IQ placement.
    BallerinoLdt,
}

impl MachineKind {
    /// All headline designs of Fig. 11, in display order.
    pub const FIG11: [MachineKind; 9] = [
        MachineKind::Ces,
        MachineKind::Casino,
        MachineKind::Fxa,
        MachineKind::Ballerino,
        MachineKind::Ballerino12,
        MachineKind::Ldt,
        MachineKind::BallerinoLdt,
        MachineKind::OutOfOrder,
        MachineKind::OutOfOrderOldestFirst,
    ];

    /// Short display label.
    pub fn label(self) -> String {
        match self {
            MachineKind::InOrder => "InO".into(),
            MachineKind::OutOfOrder => "OoO".into(),
            MachineKind::OutOfOrderOldestFirst => "OoO+of".into(),
            MachineKind::OutOfOrderNoMdp => "OoO-noMDP".into(),
            MachineKind::Ces => "CES".into(),
            MachineKind::CesMda => "CES+MDA".into(),
            MachineKind::Casino => "CASINO".into(),
            MachineKind::Fxa => "FXA".into(),
            MachineKind::BallerinoStep1 => "Step1".into(),
            MachineKind::BallerinoStep2 => "Step2".into(),
            MachineKind::Ballerino => "Ballerino".into(),
            MachineKind::BallerinoIdeal => "Ballerino-ideal".into(),
            MachineKind::Ballerino12 => "Ballerino-12".into(),
            MachineKind::BallerinoN(n) => format!("Ballerino-{}", n + 1),
            MachineKind::LoadSliceCore => "LSC".into(),
            MachineKind::DelayAndBypass => "DNB".into(),
            MachineKind::Ldt => "LDT".into(),
            MachineKind::BallerinoLdt => "Ballerino-LDT".into(),
        }
    }
}

/// One point of the design space: a machine kind and width plus the
/// sweepable deviations from their Table I/II presets.
///
/// A `DesignPoint` with no overrides builds exactly the same machine as
/// [`build_scheduler`]; sweeps enumerate thousands of these and feed
/// them to both the tier-0 analytic estimator and (for promoted points)
/// the cycle-accurate [`run_point`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// Which microarchitecture.
    pub kind: MachineKind,
    /// Machine width preset.
    pub width: Width,
    /// Total scheduling-window entry budget, or `None` for the width's
    /// Table II default. Kinds with composite windows (CES, CASINO,
    /// Ballerino, …) scale their internal queues proportionally; see
    /// [`build_scheduler_point`].
    pub iq_entries: Option<usize>,
    /// DRAM timing scale in percent (100 = the DDR4-lite default;
    /// 50 = twice-as-fast memory, 200 = twice-as-slow). Scales `cas`,
    /// `rcd`, `rp` and `burst` with a floor of one cycle.
    pub dram_scale_pct: u32,
}

impl DesignPoint {
    /// The preset design point for a kind at a width (no overrides).
    pub fn new(kind: MachineKind, width: Width) -> Self {
        DesignPoint {
            kind,
            width,
            iq_entries: None,
            dram_scale_pct: 100,
        }
    }

    /// Compact display label, e.g. `Ballerino/8w/iq96/dram100`.
    pub fn label(&self) -> String {
        let w = match self.width {
            Width::Two => 2,
            Width::Four => 4,
            Width::Eight => 8,
            Width::Ten => 10,
        };
        let iq = self
            .iq_entries
            .map(|e| e.to_string())
            .unwrap_or_else(|| "dflt".into());
        format!(
            "{}/{}w/iq{}/dram{}",
            self.kind.label(),
            w,
            iq,
            self.dram_scale_pct
        )
    }
}

fn iq_entries(width: Width) -> usize {
    match width {
        Width::Two => 32,
        Width::Four => 64,
        Width::Eight | Width::Ten => 96,
    }
}

/// Splits a total window budget `t` across `parts` equal queues, with a
/// floor so tiny budgets still build a working scheduler.
fn split_budget(t: usize, parts: usize, floor: usize) -> usize {
    (t / parts.max(1)).max(floor)
}

fn ces_piqs(width: Width) -> (usize, usize) {
    match width {
        Width::Two => (2, 16),
        Width::Four => (4, 16),
        Width::Eight => (8, 12),
        Width::Ten => (10, 12),
    }
}

fn ballerino_cfg(width: Width, total_phys: usize) -> BallerinoConfig {
    let mut c = match width {
        Width::Two => BallerinoConfig::two_wide(),
        Width::Four => BallerinoConfig::four_wide(),
        Width::Eight => BallerinoConfig::eight_wide(),
        Width::Ten => BallerinoConfig {
            num_piqs: 9,
            ..BallerinoConfig::eight_wide()
        },
    };
    c.num_phys_regs = total_phys;
    c
}

/// Builds the core configuration, scheduler and energy structure sizes
/// for a machine kind at a width.
pub fn build_scheduler(
    kind: MachineKind,
    width: Width,
) -> (CoreConfig, Box<dyn Scheduler>, StructureSizes) {
    build_scheduler_inner(&DesignPoint::new(kind, width), false)
}

/// Builds the core configuration, scheduler and energy structure sizes
/// for an arbitrary [`DesignPoint`].
///
/// The `iq_entries` budget maps onto each kind's window structure:
/// monolithic queues (InO, OoO) take it directly; CES divides it across
/// its P-IQs; CASINO scales every cascade stage proportionally; FXA
/// gives half to its OoO backend; LSC and DNB split it across their
/// queues; Ballerino divides the budget net of the S-IQ across its
/// P-IQs. All mappings are monotone in the budget and floor-clamped so
/// any budget ≥ 16 builds a working machine.
pub fn build_scheduler_point(
    point: &DesignPoint,
) -> (CoreConfig, Box<dyn Scheduler>, StructureSizes) {
    build_scheduler_inner(point, false)
}

/// `reference = true` freezes the seed's allocation-heavy select/issue
/// paths inside the OoO and Ballerino schedulers (identical grant
/// decisions) for the `perf_smoke` throughput A/B.
fn build_scheduler_inner(
    point: &DesignPoint,
    reference: bool,
) -> (CoreConfig, Box<dyn Scheduler>, StructureSizes) {
    let (kind, width) = (point.kind, point.width);
    let mut cfg = match kind {
        MachineKind::InOrder => CoreConfig::preset_inorder(width),
        _ => CoreConfig::preset(width),
    };
    if kind == MachineKind::OutOfOrderNoMdp {
        cfg.use_mdp = false;
    }
    // Dev knob for throughput A/Bs of the event-horizon engine itself;
    // results are identical either way (see tests/skip_equivalence.rs).
    if ballerino_isa::env_flag("BALLERINO_NO_SKIP") {
        cfg.skip_idle = false;
    }
    // A/B oracle knob for the macro-step engine; results are identical
    // either way (see tests/macro_equivalence.rs).
    if ballerino_isa::env_flag("BALLERINO_NO_MACRO") {
        cfg.use_macro = false;
    }
    // A/B oracle knob for block-grant macro-stepping; results are
    // identical either way (see tests/macro_equivalence.rs).
    if ballerino_isa::env_flag("BALLERINO_NO_BLOCK") {
        cfg.use_block = false;
    }
    // Macro-engine hysteresis override, `min_run[,backoff_min[,backoff_max]]`
    // (e.g. `BALLERINO_MACRO_BACKOFF=4,8,256`), for A/B-ing block-vs-
    // backoff interactions without rebuilds. Results are identical for
    // any values: the ladder only shifts which engine serves a cycle.
    if let Some(v) = ballerino_isa::env_val("BALLERINO_MACRO_BACKOFF") {
        let mut parts = v.split(',').map(|p| p.trim().parse::<u64>());
        let mut take = |dst: &mut u64| {
            if let Some(Ok(x)) = parts.next() {
                *dst = x;
            }
        };
        take(&mut cfg.macro_min_run);
        take(&mut cfg.macro_backoff_min);
        take(&mut cfg.macro_backoff_max);
        assert!(
            cfg.macro_backoff_min > 0 && cfg.macro_backoff_min <= cfg.macro_backoff_max,
            "BALLERINO_MACRO_BACKOFF: need 0 < backoff_min <= backoff_max, got {v:?}"
        );
    }
    if point.dram_scale_pct != 100 {
        let scale = |x: u64| ((x * point.dram_scale_pct as u64) / 100).max(1);
        cfg.mem.dram.cas = scale(cfg.mem.dram.cas);
        cfg.mem.dram.rcd = scale(cfg.mem.dram.rcd);
        cfg.mem.dram.rp = scale(cfg.mem.dram.rp);
        cfg.mem.dram.burst = scale(cfg.mem.dram.burst);
    }
    let phys = cfg.total_phys();
    let entries = point.iq_entries.unwrap_or_else(|| iq_entries(width));
    let common_sizes = StructureSizes {
        rob_entries: cfg.rob_entries,
        lsq_entries: cfg.lq_entries + cfg.sq_entries,
        prf_entries: phys,
        has_mdp: cfg.use_mdp,
        ..StructureSizes::default()
    };

    let (sched, sizes): (Box<dyn Scheduler>, StructureSizes) = match kind {
        MachineKind::InOrder => (
            Box::new(InOrderIq::new(InOrderIqConfig {
                entries,
                read_ports: cfg.issue_width,
            })),
            StructureSizes {
                cam_entries: 0,
                fifo_entries: entries,
                has_steer: false,
                ..common_sizes
            },
        ),
        MachineKind::OutOfOrder | MachineKind::OutOfOrderNoMdp => {
            let mut iq = OooIq::new(OooIqConfig {
                entries,
                oldest_first: false,
            });
            if reference {
                iq = iq.with_reference_select();
            }
            (
                Box::new(iq),
                StructureSizes {
                    cam_entries: entries,
                    fifo_entries: 0,
                    ..common_sizes
                },
            )
        }
        MachineKind::OutOfOrderOldestFirst => {
            let mut iq = OooIq::new(OooIqConfig {
                entries,
                oldest_first: true,
            });
            if reference {
                iq = iq.with_reference_select();
            }
            (
                Box::new(iq),
                StructureSizes {
                    cam_entries: entries,
                    fifo_entries: 0,
                    ..common_sizes
                },
            )
        }
        MachineKind::Ces | MachineKind::CesMda => {
            let (n, e) = ces_piqs(width);
            let e = point.iq_entries.map(|t| split_budget(t, n, 4)).unwrap_or(e);
            (
                Box::new(Ces::new(CesConfig {
                    num_piqs: n,
                    piq_entries: e,
                    num_phys_regs: phys,
                    mda_steering: kind == MachineKind::CesMda,
                    num_ssids: 128,
                })),
                StructureSizes {
                    cam_entries: 0,
                    fifo_entries: n * e,
                    has_steer: true,
                    ..common_sizes
                },
            )
        }
        MachineKind::Casino => {
            let mut c = match width {
                Width::Two => CasinoConfig::two_wide(),
                Width::Four => CasinoConfig::four_wide(),
                Width::Eight | Width::Ten => CasinoConfig::eight_wide(),
            };
            if let Some(t) = point.iq_entries {
                // Scale every cascade stage proportionally to the budget.
                let total = c.total_entries().max(1);
                for s in &mut c.siqs {
                    s.entries = (s.entries * t / total).max(4);
                }
                c.final_iq.entries = (c.final_iq.entries * t / total).max(4);
            }
            let fifo = c.total_entries();
            (
                Box::new(Casino::new(c)),
                StructureSizes {
                    cam_entries: 0,
                    fifo_entries: fifo,
                    has_steer: false,
                    ..common_sizes
                },
            )
        }
        MachineKind::Fxa => {
            let mut c = match width {
                Width::Two => FxaConfig {
                    ixu_width: 2,
                    backend_entries: 16,
                    backend_width: 2,
                    ..FxaConfig::default()
                },
                Width::Four => FxaConfig {
                    backend_entries: 32,
                    backend_width: 4,
                    ..FxaConfig::default()
                },
                Width::Eight => FxaConfig::default(),
                Width::Ten => FxaConfig {
                    backend_width: 5,
                    ..FxaConfig::default()
                },
            };
            if let Some(t) = point.iq_entries {
                // The IXU front is pipelined latches, not an IQ — the
                // budget lands entirely on the OoO backend.
                c.backend_entries = t.max(8);
            }
            let cam = c.backend_entries;
            (
                Box::new(Fxa::new(c)),
                StructureSizes {
                    cam_entries: cam,
                    fifo_entries: 12, // IXU pipeline latches
                    ..common_sizes
                },
            )
        }
        MachineKind::LoadSliceCore => {
            let mut c = match width {
                Width::Two => LscConfig {
                    bypass_entries: 12,
                    main_entries: 20,
                    ports_per_queue: 2,
                    ..LscConfig::default()
                },
                Width::Four => LscConfig {
                    bypass_entries: 24,
                    main_entries: 40,
                    ports_per_queue: 3,
                    ..LscConfig::default()
                },
                _ => LscConfig::default(),
            };
            if let Some(t) = point.iq_entries {
                // Keep the paper's ~1:2 bypass:main split.
                c.bypass_entries = (t / 3).max(6);
                c.main_entries = t.saturating_sub(t / 3).max(8);
            }
            let fifo = c.bypass_entries + c.main_entries;
            (
                Box::new(Lsc::new(c)),
                StructureSizes {
                    cam_entries: 0,
                    fifo_entries: fifo,
                    has_steer: true, // the IST plays the steering role
                    ..common_sizes
                },
            )
        }
        MachineKind::DelayAndBypass => {
            let mut c = match width {
                Width::Two => DnbConfig {
                    ooo_entries: 12,
                    bypass_entries: 10,
                    delay_entries: 10,
                    inorder_ports: 2,
                    ..DnbConfig::default()
                },
                Width::Four => DnbConfig {
                    ooo_entries: 24,
                    bypass_entries: 20,
                    delay_entries: 20,
                    inorder_ports: 3,
                    ..DnbConfig::default()
                },
                _ => DnbConfig::default(),
            };
            if let Some(t) = point.iq_entries {
                // Even three-way split across the OoO/bypass/delay queues.
                c.ooo_entries = (t / 3).max(6);
                c.bypass_entries = (t / 3).max(5);
                c.delay_entries = t.saturating_sub(2 * (t / 3)).max(5);
            }
            let (cam, fifo) = (c.ooo_entries, c.bypass_entries + c.delay_entries);
            (
                Box::new(Dnb::new(c)),
                StructureSizes {
                    cam_entries: cam,
                    fifo_entries: fifo,
                    ..common_sizes
                },
            )
        }
        MachineKind::Ldt => {
            let iq = Ldt::new(LdtConfig {
                entries,
                num_phys_regs: phys,
            });
            (
                Box::new(iq),
                StructureSizes {
                    cam_entries: entries,
                    fifo_entries: 0,
                    ..common_sizes
                },
            )
        }
        MachineKind::BallerinoStep1
        | MachineKind::BallerinoStep2
        | MachineKind::Ballerino
        | MachineKind::BallerinoIdeal
        | MachineKind::Ballerino12
        | MachineKind::BallerinoLdt
        | MachineKind::BallerinoN(_) => {
            let mut c = ballerino_cfg(width, phys);
            match kind {
                MachineKind::BallerinoStep1 => {
                    c.mda_steering = false;
                    c.piq_sharing = false;
                }
                MachineKind::BallerinoStep2 => c.piq_sharing = false,
                MachineKind::BallerinoIdeal => c.ideal_sharing = true,
                MachineKind::Ballerino12 => c.num_piqs = 11,
                MachineKind::BallerinoLdt => {
                    c.mda_steering = false;
                    c.ldt_steering = true;
                }
                MachineKind::BallerinoN(n) => c.num_piqs = n,
                _ => {}
            }
            if let Some(t) = point.iq_entries {
                // The S-IQ keeps its preset size; the budget net of it
                // divides across the P-IQs, rounded down to the even
                // capacity the two-partition P-IQ requires.
                let e = split_budget(t.saturating_sub(c.siq_entries), c.num_piqs, 4);
                c.piq_entries = e & !1;
            }
            let fifo = c.siq_entries + c.num_piqs * c.piq_entries;
            let mut b = Ballerino::new(c);
            if reference {
                b = b.with_reference_issue();
            }
            (
                Box::new(b),
                StructureSizes {
                    cam_entries: 0,
                    fifo_entries: fifo,
                    has_steer: true,
                    ..common_sizes
                },
            )
        }
    };
    (cfg, sched, sizes)
}

/// Builds and runs one machine over a trace.
pub fn run_machine(kind: MachineKind, width: Width, trace: &Trace) -> SimResult {
    let (cfg, sched, sizes) = build_scheduler(kind, width);
    Core::new(cfg, sched, sizes).run(trace)
}

/// Like [`run_machine`], but reuses a pre-resolved dependence DAG for
/// the trace (see [`ballerino_isa::TraceDag`]). Harnesses that run many
/// machines over the same trace should resolve (or memoize) the DAG once
/// and pass it here; `run_machine` resolves a private copy per call when
/// the macro-step engine is enabled.
pub fn run_machine_with_dag(
    kind: MachineKind,
    width: Width,
    trace: &Trace,
    dag: Option<&ballerino_isa::TraceDag>,
) -> SimResult {
    let (cfg, sched, sizes) = build_scheduler(kind, width);
    Core::new(cfg, sched, sizes).run_with_dag(trace, dag)
}

/// Like [`run_machine`], but on the seed-layout
/// [`CoreRef`](crate::core_ref::CoreRef) reference pipeline. Must report
/// the same cycles as [`run_machine`] on every input; exists for the
/// `perf_smoke` equivalence + throughput A/B.
pub fn run_machine_reference(kind: MachineKind, width: Width, trace: &Trace) -> SimResult {
    let (cfg, sched, sizes) = build_scheduler_inner(&DesignPoint::new(kind, width), true);
    crate::core_ref::CoreRef::new(cfg, sched, sizes).run(trace)
}

/// Builds and runs one [`DesignPoint`] over a trace, reusing a
/// pre-resolved dependence DAG when available. This is the sweep
/// engine's cycle-accurate tier: every enumerated configuration —
/// including IQ-budget and DRAM-latency overrides — funnels through
/// here.
pub fn run_point(
    point: &DesignPoint,
    trace: &Trace,
    dag: Option<&ballerino_isa::TraceDag>,
) -> SimResult {
    let (cfg, sched, sizes) = build_scheduler_point(point);
    Core::new(cfg, sched, sizes).run_with_dag(trace, dag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_at_every_width() {
        let kinds = [
            MachineKind::InOrder,
            MachineKind::OutOfOrder,
            MachineKind::OutOfOrderOldestFirst,
            MachineKind::OutOfOrderNoMdp,
            MachineKind::Ces,
            MachineKind::CesMda,
            MachineKind::Casino,
            MachineKind::Fxa,
            MachineKind::BallerinoStep1,
            MachineKind::BallerinoStep2,
            MachineKind::Ballerino,
            MachineKind::BallerinoIdeal,
            MachineKind::Ballerino12,
            MachineKind::BallerinoN(5),
            MachineKind::LoadSliceCore,
            MachineKind::DelayAndBypass,
            MachineKind::Ldt,
            MachineKind::BallerinoLdt,
        ];
        for kind in kinds {
            for width in [Width::Two, Width::Four, Width::Eight, Width::Ten] {
                let (cfg, sched, sizes) = build_scheduler(kind, width);
                assert!(sched.capacity() > 0, "{kind:?} {width:?}");
                assert!(cfg.issue_width >= 2);
                assert!(sizes.prf_entries > 64);
            }
        }
    }

    #[test]
    fn window_sizes_match_table_ii_at_8_wide() {
        let (_, ooo, _) = build_scheduler(MachineKind::OutOfOrder, Width::Eight);
        assert_eq!(ooo.capacity(), 96);
        let (_, ces, _) = build_scheduler(MachineKind::Ces, Width::Eight);
        assert_eq!(ces.capacity(), 8 * 12);
        let (_, casino, _) = build_scheduler(MachineKind::Casino, Width::Eight);
        assert_eq!(casino.capacity(), 8 + 40 + 40 + 8);
        let (_, b, _) = build_scheduler(MachineKind::Ballerino, Width::Eight);
        assert_eq!(b.capacity(), 8 + 7 * 12);
        let (_, b12, _) = build_scheduler(MachineKind::Ballerino12, Width::Eight);
        assert_eq!(b12.capacity(), 8 + 11 * 12);
        let (_, fxa, _) = build_scheduler(MachineKind::Fxa, Width::Eight);
        assert_eq!(fxa.capacity(), 48);
    }

    #[test]
    fn ino_preset_is_used_for_inorder() {
        let (cfg, _, sizes) = build_scheduler(MachineKind::InOrder, Width::Eight);
        assert!(!cfg.use_mdp);
        assert_eq!(cfg.recovery_penalty, 8);
        assert!(!sizes.has_mdp);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = MachineKind::FIG11.iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn default_design_point_matches_build_scheduler() {
        for kind in [
            MachineKind::OutOfOrder,
            MachineKind::Ces,
            MachineKind::Casino,
            MachineKind::Fxa,
            MachineKind::Ballerino,
            MachineKind::LoadSliceCore,
            MachineKind::DelayAndBypass,
            MachineKind::Ldt,
            MachineKind::BallerinoLdt,
        ] {
            for width in [Width::Two, Width::Four, Width::Eight] {
                let (cfg_a, sched_a, sizes_a) = build_scheduler(kind, width);
                let (cfg_b, sched_b, sizes_b) =
                    build_scheduler_point(&DesignPoint::new(kind, width));
                assert_eq!(sched_a.capacity(), sched_b.capacity(), "{kind:?} {width:?}");
                assert_eq!(cfg_a.mem.dram.cas, cfg_b.mem.dram.cas);
                assert_eq!(sizes_a.cam_entries, sizes_b.cam_entries);
                assert_eq!(sizes_a.fifo_entries, sizes_b.fifo_entries);
            }
        }
    }

    #[test]
    fn iq_budget_override_scales_capacity_monotonically() {
        for kind in [
            MachineKind::OutOfOrder,
            MachineKind::Ces,
            MachineKind::Casino,
            MachineKind::Fxa,
            MachineKind::Ballerino,
            MachineKind::LoadSliceCore,
            MachineKind::DelayAndBypass,
            MachineKind::Ldt,
            MachineKind::BallerinoLdt,
        ] {
            let mut prev = 0;
            for budget in [24, 48, 96, 160, 256] {
                let point = DesignPoint {
                    iq_entries: Some(budget),
                    ..DesignPoint::new(kind, Width::Eight)
                };
                let (_, sched, _) = build_scheduler_point(&point);
                assert!(
                    sched.capacity() >= prev,
                    "{kind:?}: capacity must not shrink as the IQ budget grows"
                );
                prev = sched.capacity();
            }
            assert!(prev > 0);
        }
    }

    #[test]
    fn dram_scale_stretches_latencies() {
        let slow = DesignPoint {
            dram_scale_pct: 300,
            ..DesignPoint::new(MachineKind::OutOfOrder, Width::Eight)
        };
        let (cfg_base, _, _) = build_scheduler(MachineKind::OutOfOrder, Width::Eight);
        let (cfg_slow, _, _) = build_scheduler_point(&slow);
        assert_eq!(cfg_slow.mem.dram.cas, cfg_base.mem.dram.cas * 3);
        assert_eq!(cfg_slow.mem.dram.burst, cfg_base.mem.dram.burst * 3);
    }

    #[test]
    fn design_point_labels_encode_overrides() {
        let p = DesignPoint {
            iq_entries: Some(96),
            dram_scale_pct: 150,
            ..DesignPoint::new(MachineKind::Ballerino, Width::Eight)
        };
        assert_eq!(p.label(), "Ballerino/8w/iq96/dram150");
    }
}
